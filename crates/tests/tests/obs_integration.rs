//! Cross-crate checks for the observability layer: identically seeded
//! runs must produce identical deterministic metrics and identical
//! stable traces, and the metrics registry must agree with the engine's
//! own op accounting.

use xsi_core::obs::json::Json;
use xsi_core::{FlightRecorder, OneIndex, SimpleAkIndex, UpdateEngine};
use xsi_graph::{EdgeKind, Graph, NodeId};
use xsi_workload::SplitMix64;

const LABELS: [&str; 4] = ["a", "b", "c", "d"];

/// Builds a small random acyclic base graph (edges only from earlier to
/// later handles, mirroring `engine_equivalence.rs`).
fn random_base(rng: &mut SplitMix64) -> (Graph, Vec<NodeId>) {
    let mut g = Graph::new();
    let mut handles = vec![g.root()];
    for _ in 0..rng.random_range(4..9usize) {
        let l = LABELS[rng.random_range(0..LABELS.len())];
        handles.push(g.add_node(l, None));
    }
    for _ in 0..rng.random_range(3..14usize) {
        let (i, j) = (
            rng.random_range(0..handles.len()),
            rng.random_range(0..handles.len()),
        );
        if i == j {
            continue;
        }
        let (u, v) = (handles[i.min(j)], handles[i.max(j)]);
        let kind = if rng.random_bool(0.7) {
            EdgeKind::Child
        } else {
            EdgeKind::IdRef
        };
        let _ = g.insert_edge(u, v, kind);
    }
    (g, handles)
}

/// Runs one fixed seeded workload through a fully instrumented engine
/// and returns it (metrics + flight recorder populated).
fn instrumented_run(seed: u64) -> UpdateEngine {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let (g, mut handles) = random_base(&mut rng);
    let mut engine = UpdateEngine::new(g);
    engine
        .obs_mut()
        .set_recorder(Box::new(FlightRecorder::new(4096)));
    engine.obs_mut().enable_metrics();
    engine.register(Box::new(OneIndex::build(engine.graph())));
    engine.register(Box::new(SimpleAkIndex::build(engine.graph(), 2)));

    for _ in 0..60 {
        match rng.random_range(0..4usize) {
            0 => {
                let l = LABELS[rng.random_range(0..LABELS.len())];
                handles.push(engine.add_node(l, None));
            }
            1 | 2 => {
                let (i, j) = (
                    rng.random_range(0..handles.len()),
                    rng.random_range(0..handles.len()),
                );
                if i != j {
                    let (u, v) = (handles[i.min(j)], handles[i.max(j)]);
                    let _ = engine.insert_edge(u, v, EdgeKind::IdRef);
                }
            }
            _ => {
                let (i, j) = (
                    rng.random_range(0..handles.len()),
                    rng.random_range(0..handles.len()),
                );
                let _ = engine.delete_edge(handles[i], handles[j]);
            }
        }
    }
    engine
}

#[test]
fn identical_seeded_runs_emit_identical_deterministic_state() {
    for seed in [1u64, 7, 0xDEAD] {
        let a = instrumented_run(seed);
        let b = instrumented_run(seed);
        // Deterministic metrics projection (timing histograms excluded)
        // must be byte-identical.
        assert_eq!(
            a.obs().metrics_deterministic_json(),
            b.obs().metrics_deterministic_json(),
            "seed {seed}: deterministic metrics diverge"
        );
        // The stable trace projection (timestamps excluded) too.
        assert_eq!(
            a.obs().stable_trace(),
            b.obs().stable_trace(),
            "seed {seed}: stable traces diverge"
        );
        assert_eq!(a.obs().events_emitted(), b.obs().events_emitted());
        assert!(a.obs().events_emitted() > 0, "seed {seed}: no events");
    }
}

#[test]
fn metrics_op_counters_match_engine_stats() {
    let engine = instrumented_run(42);
    let v = Json::parse(&engine.obs().metrics_json()).expect("valid metrics JSON");
    let counters = v.get("counters").and_then(Json::as_arr).expect("counters");
    let ops_total: f64 = counters
        .iter()
        .filter(|c| c.get("name").and_then(Json::as_str) == Some("ops_total"))
        .filter_map(|c| c.get("value").and_then(Json::as_f64))
        .sum();
    assert_eq!(
        ops_total as usize,
        engine.stats().ops,
        "sum of ops_total series must equal EngineStats::ops"
    );
}

#[test]
fn flight_recorder_retains_every_event_when_under_capacity() {
    let engine = instrumented_run(3);
    let emitted = engine.obs().events_emitted();
    assert!(emitted > 0 && emitted < 4096, "workload fits the ring");
    assert_eq!(engine.obs().flight_events().len() as u64, emitted);
    // Sequence numbers are dense and start at zero.
    for (i, ev) in engine.obs().flight_events().iter().enumerate() {
        assert_eq!(ev.seq, i as u64);
    }
}

#[test]
fn untouched_index_aggregate_stays_at_the_no_op_identity() {
    // Satellite 1 regression: the per-index accumulator starts at (and,
    // absent real work, stays at) `UpdateStats::identity()`, so an
    // all-no-op history reports `no_op == true` instead of the old
    // `Default`-derived `false`.
    let mut g = Graph::new();
    let a = g.add_node("a", None);
    let b = g.add_node("b", None);
    g.insert_edge(g.root(), a, EdgeKind::Child).unwrap();
    g.insert_edge(a, b, EdgeKind::Child).unwrap();
    let mut engine = UpdateEngine::new(g);
    engine
        .obs_mut()
        .set_recorder(Box::new(FlightRecorder::new(64)));
    engine.obs_mut().enable_metrics();
    let h = engine.register(Box::new(SimpleAkIndex::build(engine.graph(), 1)));

    let stats = engine.index_stats(h);
    assert!(stats.no_op, "freshly registered index starts at identity");
    assert_eq!(stats.splits + stats.merges, 0);
    assert_eq!(stats.split_nanos + stats.merge_nanos, 0);
    let v = Json::parse(&engine.obs().metrics_json()).unwrap();
    let counters = v.get("counters").and_then(Json::as_arr).unwrap();
    let phase_events: f64 = counters
        .iter()
        .filter(|c| {
            matches!(
                c.get("name").and_then(Json::as_str),
                Some("splits_total" | "merges_total")
            )
        })
        .filter_map(|c| c.get("value").and_then(Json::as_f64))
        .sum();
    assert_eq!(phase_events, 0.0, "no phase work was recorded");
}
