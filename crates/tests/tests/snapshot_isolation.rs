//! Satellite: snapshot isolation — a frozen [`IndexSnapshot`] answers
//! every query byte-identically to the live index at its freeze point,
//! and keeps returning those exact answers while the writer churns the
//! engine underneath it. The copy-on-write discipline is what makes
//! this hold: the writer's next mutation of a frozen block clones that
//! block's extent run instead of mutating the shared one in place.
//!
//! Every freeze point is checked twice:
//!
//! 1. **at freeze** — `eval_index_raw` over the snapshot equals the same
//!    walk over the live family view (for the extent-only simple
//!    baseline, the conformance lab's [`DerivedView`] plays the live
//!    side, exactly as the in-harness oracle does);
//! 2. **at the end** — after all remaining churn, the snapshot's
//!    answers are byte-identical to what was recorded at freeze time.
//!
//! Runs both acyclic and cyclic churn (back-edges are `IdRef`, like the
//! paper's cyclicity knob), all four registered families.
//!
//! Seed-pinned: rerun one failing case with `XSI_TEST_SEED=<seed>`.

use xsi_conformance::DerivedView;
use xsi_core::{
    AkIndex, IndexHandle, IndexSnapshot, OneIndex, PropagateOneIndex, SimpleAkIndex, UpdateEngine,
};
use xsi_graph::{EdgeKind, Graph, NodeId};
use xsi_query::{eval_index_raw, PathExpr};
use xsi_workload::{test_seed, SplitMix64};

const LABELS: [&str; 4] = ["a", "b", "c", "d"];
const K: usize = 2;
const SLOTS: [&str; 4] = ["1-index", "propagate", "ak", "simple"];

/// Per-slot, per-query sorted answers recorded at a freeze instant.
type AtFreeze = Vec<Vec<Vec<NodeId>>>;

/// Random root-reachable base graph; cyclic when asked.
fn random_base(rng: &mut SplitMix64, cyclic: bool) -> (Graph, Vec<NodeId>) {
    let mut g = Graph::new();
    let mut handles = vec![g.root()];
    let n_nodes = rng.random_range(4..12usize);
    for i in 0..n_nodes {
        let l = LABELS[rng.random_range(0..LABELS.len())];
        let n = g.add_node(l, None);
        let p = handles[rng.random_range(0..=i)];
        g.insert_edge(p, n, EdgeKind::Child).unwrap();
        handles.push(n);
    }
    for _ in 0..rng.random_range(2..8usize) {
        let (mut i, mut j) = (
            rng.random_range(0..handles.len()),
            rng.random_range(1..handles.len()),
        );
        if !cyclic && i > j {
            std::mem::swap(&mut i, &mut j);
        }
        if i == j {
            continue;
        }
        let kind = if i > j {
            EdgeKind::IdRef
        } else {
            EdgeKind::Child
        };
        let _ = g.insert_edge(handles[i], handles[j], kind);
    }
    (g, handles)
}

/// One random engine mutation (the same mix the query-equivalence suite
/// churns with, taken a single step at a time so freezes interleave).
fn churn_step(engine: &mut UpdateEngine, handles: &mut Vec<NodeId>, rng: &mut SplitMix64) {
    match rng.random_range(0..8usize) {
        0 => {
            let l = LABELS[rng.random_range(0..LABELS.len())];
            handles.push(engine.add_node(l, None));
        }
        1..=4 => {
            let u = handles[rng.random_range(0..handles.len())];
            let v = handles[rng.random_range(0..handles.len())];
            let kind = if rng.random_bool(0.4) {
                EdgeKind::IdRef
            } else {
                EdgeKind::Child
            };
            let _ = engine.insert_edge(u, v, kind);
        }
        5 | 6 => {
            let u = handles[rng.random_range(0..handles.len())];
            let v = handles[rng.random_range(0..handles.len())];
            let _ = engine.delete_edge(u, v);
        }
        _ => {
            let n = handles[rng.random_range(0..handles.len())];
            if engine.remove_node(n).is_ok() {
                handles.retain(|&h| h != n);
            }
        }
    }
    handles.retain(|&h| engine.graph().is_alive(h));
}

/// Predicate-free random query (the raw block walk needs no validation
/// pass, and both sides of every comparison run the identical walk).
fn random_query(rng: &mut SplitMix64) -> String {
    let steps = rng.random_range(1..=3usize);
    let mut q = String::new();
    for _ in 0..steps {
        q.push_str(if rng.random_bool(0.35) { "//" } else { "/" });
        if rng.random_bool(0.2) {
            q.push('*');
        } else {
            q.push_str(LABELS[rng.random_range(0..LABELS.len())]);
        }
    }
    q
}

/// The live-side raw answers for slot `slot`, mirroring the conformance
/// harness's at-freeze oracle (DerivedView for the extent-only simple
/// baseline, the family's own view otherwise).
fn live_raw(
    engine: &UpdateEngine,
    handles: &[IndexHandle; 4],
    slot: usize,
    expr: &PathExpr,
) -> Vec<NodeId> {
    let g = engine.graph();
    if slot == 3 {
        let simple = engine
            .index(handles[slot])
            .as_any()
            .downcast_ref::<SimpleAkIndex>()
            .expect("slot 3 is the simple A(k) baseline");
        let view = DerivedView::from_assignment(g, &simple.assignment(g), Some(K));
        eval_index_raw(&view, expr)
    } else {
        let view = engine
            .index(handles[slot])
            .query_view(g)
            .expect("family exposes a live view");
        eval_index_raw(&*view, expr)
    }
}

#[test]
fn frozen_views_answer_identically_under_churn() {
    let base = test_seed(0xF5EE);
    let mut saw_cow_clone = false;
    for case in 0..30u64 {
        let case = base.wrapping_add(case); // replay one case: XSI_TEST_SEED=<case>
        let mut rng = SplitMix64::seed_from_u64(case);
        let cyclic = case % 2 == 1;
        let (g0, mut handles) = random_base(&mut rng, cyclic);

        let mut engine = UpdateEngine::new(g0.clone());
        let hs = [
            engine.register(Box::new(OneIndex::build(&g0))),
            engine.register(Box::new(PropagateOneIndex::build(&g0))),
            engine.register(Box::new(AkIndex::build(&g0, K))),
            engine.register(Box::new(SimpleAkIndex::build(&g0, K))),
        ];

        let exprs: Vec<PathExpr> = (0..5)
            .map(|_| {
                let q = random_query(&mut rng);
                PathExpr::parse(&q).unwrap_or_else(|e| panic!("seed {case:#x}: {q:?}: {e}"))
            })
            .collect();

        // Interleave churn with freeze points; remember every frozen
        // view together with the answers it gave at its freeze instant.
        let mut held: Vec<(Vec<IndexSnapshot>, AtFreeze)> = Vec::new();
        for step in 0..32usize {
            churn_step(&mut engine, &mut handles, &mut rng);
            if step % 8 != 7 {
                continue;
            }
            let snaps: Vec<IndexSnapshot> = engine
                .freeze()
                .into_iter()
                .map(|s| s.expect("every registered family freezes"))
                .collect();
            let mut at_freeze: AtFreeze = Vec::new();
            for (slot, snap) in snaps.iter().enumerate() {
                let per_query: Vec<Vec<NodeId>> = exprs
                    .iter()
                    .map(|expr| {
                        let frozen = eval_index_raw(snap, expr);
                        let live = live_raw(&engine, &hs, slot, expr);
                        assert_eq!(
                            frozen, live,
                            "seed {case:#x} step {step}: {} frozen view disagrees \
                             with the live index at the freeze point on {expr}",
                            SLOTS[slot]
                        );
                        frozen
                    })
                    .collect();
                at_freeze.push(per_query);
            }
            held.push((snaps, at_freeze));
        }
        assert!(!held.is_empty());

        // All churn is done; every snapshot held across it must still
        // answer byte-identically to what it answered when frozen.
        for (fp, (snaps, at_freeze)) in held.iter().enumerate() {
            for (slot, snap) in snaps.iter().enumerate() {
                for (qi, expr) in exprs.iter().enumerate() {
                    assert_eq!(
                        eval_index_raw(snap, expr),
                        at_freeze[slot][qi],
                        "seed {case:#x} freeze {fp}: writer churn leaked into the \
                         frozen {} view on {expr}",
                        SLOTS[slot]
                    );
                }
            }
        }

        // The isolation above must come from copy-on-write actually
        // firing somewhere, not from a workload too tame to collide
        // with a frozen run.
        for h in hs {
            if engine.index(h).cow_clones() > 0 {
                saw_cow_clone = true;
            }
        }
    }
    assert!(
        saw_cow_clone,
        "workload too tame: no writer mutation ever hit a frozen extent run"
    );
}
