//! Cross-crate invariants for the causal span layer: balanced
//! open/close under panics, correct parent links across nested kernel
//! scans, byte-identical folded output on seed-pinned replays, and the
//! CompoundProcess accounting contract against the engine's phase
//! timers.

use std::panic::{catch_unwind, AssertUnwindSafe};

use xsi_core::obs::span::{self, SpanGuard, SpanKind};
use xsi_core::obs::{folded_stacks, FoldWeight};
use xsi_core::{AkIndex, OneIndex, UpdateEngine};
use xsi_graph::{EdgeKind, NodeId};
use xsi_workload::{generate_xmark, EdgePool, XmarkParams};

/// One seeded engine run over pooled IDREF edges with span collection
/// armed; returns the finished tree plus the engine and its index
/// handles (for the phase timers).
fn collected_run(
    seed: u64,
    pairs: usize,
) -> (span::SpanTree, UpdateEngine, Vec<xsi_core::IndexHandle>) {
    let mut g = generate_xmark(&XmarkParams::new(0.01, 1.0, seed));
    let mut pool = EdgePool::extract(&mut g, 0.2, seed);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for _ in 0..32 {
        if let Some(e) = pool.next_insert() {
            edges.push(e);
        }
    }
    assert!(!edges.is_empty(), "xmark pool yielded no IDREF edges");

    let mut engine = UpdateEngine::new(g);
    let handles = vec![
        engine.register(Box::new(OneIndex::build(engine.graph()))),
        engine.register(Box::new(AkIndex::build(engine.graph(), 2))),
    ];

    span::begin_collection();
    for i in 0..pairs {
        let (u, v) = edges[i % edges.len()];
        engine
            .insert_edge(u, v, EdgeKind::IdRef)
            .expect("pooled insert");
        engine.delete_edge(u, v).expect("pooled delete");
    }
    (span::end_collection(), engine, handles)
}

#[test]
fn workload_tree_is_well_formed_and_balanced() {
    let (tree, _engine, _handles) = collected_run(7, 40);
    assert!(!tree.is_empty(), "instrumented run recorded no spans");
    assert_eq!(tree.dropped, 0);
    assert!(tree.is_well_formed());
    assert_eq!(span::open_depth(), 0, "guards leaked past end_collection");
    // The workload exercises every hot-path kind.
    for kind in [
        SpanKind::Op,
        SpanKind::IndexDispatch,
        SpanKind::Split,
        SpanKind::Merge,
        SpanKind::CompoundProcess,
        SpanKind::KernelScan,
    ] {
        assert!(
            tree.kind_count(kind) > 0,
            "no {kind:?} spans in an insert+delete workload"
        );
    }
}

#[test]
fn parent_links_nest_kernel_scans_under_dispatch() {
    let (tree, _engine, _handles) = collected_run(11, 40);
    // Every KernelScan sits under a CompoundProcess (per-iteration
    // scans) or directly under a Split (the aggregate fixpoint span);
    // walking further up must reach an IndexDispatch before any root.
    let mut scans_checked = 0usize;
    for s in tree.spans.iter().filter(|s| s.kind == SpanKind::KernelScan) {
        let parent = tree.get(s.parent).expect("KernelScan must not be a root");
        assert!(
            matches!(parent.kind, SpanKind::CompoundProcess | SpanKind::Split),
            "KernelScan {} under {:?}",
            s.id,
            parent.kind
        );
        let mut cur = s.parent;
        let mut saw_dispatch = false;
        while let Some(a) = tree.get(cur) {
            if a.kind == SpanKind::IndexDispatch {
                saw_dispatch = true;
                break;
            }
            cur = a.parent;
        }
        assert!(
            saw_dispatch,
            "KernelScan {} has no IndexDispatch ancestor",
            s.id
        );
        scans_checked += 1;
    }
    assert!(scans_checked > 0);

    // CompoundProcess never self-nests (the maintainers drop their seed
    // span before entering merge_fold), and every one carries the
    // per-family dispatch above it.
    for s in tree
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::CompoundProcess)
    {
        let mut cur = s.parent;
        while let Some(a) = tree.get(cur) {
            assert_ne!(
                a.kind,
                SpanKind::CompoundProcess,
                "CompoundProcess {} nested inside CompoundProcess {}",
                s.id,
                a.id
            );
            cur = a.parent;
        }
        assert_ne!(
            tree.effective_family(s.id),
            xsi_core::obs::IndexFamily::NONE,
            "CompoundProcess {} resolved no family",
            s.id
        );
    }
}

#[test]
fn folded_count_output_is_byte_identical_across_replays() {
    let (tree_a, engine_a, _ha) = collected_run(42, 30);
    let (tree_b, engine_b, _hb) = collected_run(42, 30);
    let folded_a = folded_stacks(&tree_a, engine_a.obs().families(), FoldWeight::Count);
    let folded_b = folded_stacks(&tree_b, engine_b.obs().families(), FoldWeight::Count);
    assert!(!folded_a.is_empty());
    assert_eq!(
        folded_a, folded_b,
        "Count-weighted folded output must be deterministic under a pinned seed"
    );
}

#[test]
fn compound_spans_account_for_phase_nanos() {
    let (tree, engine, handles) = collected_run(3, 60);
    let phase_nanos: u64 = handles
        .iter()
        .map(|&h| {
            let s = engine.index_stats(h);
            s.split_nanos + s.merge_nanos
        })
        .sum();
    let compound = tree.kind_nanos(SpanKind::CompoundProcess);
    assert!(phase_nanos > 0);
    // Release runs on xmark 0.05 hold >= 90% (EXPERIMENTS.md records the
    // measured figure; xsi_bench prints it per run). Debug + tiny scale
    // inflate the per-iteration bookkeeping outside the spans, so the
    // tier-1 gate uses a conservative floor that still catches a
    // detached or mis-nested instrumentation point.
    assert!(
        compound as f64 >= 0.5 * phase_nanos as f64,
        "CompoundProcess spans cover {compound} of {phase_nanos} phase nanos"
    );
}

#[test]
fn unwinding_closes_open_spans_and_keeps_collecting() {
    span::begin_collection();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _op = SpanGuard::enter(SpanKind::Op);
        let _dispatch = SpanGuard::enter(SpanKind::IndexDispatch);
        panic!("unwind through instrumented region");
    }));
    assert!(result.is_err());
    assert_eq!(span::open_depth(), 0, "unwind left spans open");
    // The collection survives the panic and keeps accepting spans.
    drop(SpanGuard::enter(SpanKind::Op));
    let tree = span::end_collection();
    assert!(tree.is_well_formed());
    assert_eq!(tree.len(), 3);
    assert_eq!(tree.kind_count(SpanKind::Op), 2);
}
