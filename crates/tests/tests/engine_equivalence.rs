//! Satellite: engine-equivalence — random update sequences applied
//! through the single-writer [`UpdateEngine`] must leave every registered
//! index in exactly the state produced by (a) per-index sequential
//! maintenance over a twin graph, and (b) where the family guarantees it,
//! a rebuild from scratch; validity is additionally cross-checked against
//! the `reference` fixpoint oracles via the trait-level checkers.

use std::collections::HashMap;
use xsi_core::{check, reference, AkIndex, OneIndex, SimpleAkIndex, UpdateEngine};
use xsi_graph::{is_acyclic, EdgeKind, Graph, NodeId};
use xsi_workload::{test_seed, SplitMix64};

const LABELS: [&str; 4] = ["a", "b", "c", "d"];
const K: usize = 2;

/// A random **acyclic** base graph: a handful of labeled nodes, edges
/// only from earlier to later handles. Acyclicity keeps the minimal
/// 1-index unique (Theorem 1's minimum), so the equivalence assertions
/// below can demand exact partition equality — on cyclic graphs several
/// distinct minimal 1-indexes exist and the merge order may pick any.
fn random_base(rng: &mut SplitMix64) -> (Graph, Vec<NodeId>) {
    let mut g = Graph::new();
    let mut handles = vec![g.root()];
    let n_nodes = rng.random_range(3..10usize);
    for _ in 0..n_nodes {
        let l = LABELS[rng.random_range(0..LABELS.len())];
        handles.push(g.add_node(l, None));
    }
    let n_edges = rng.random_range(2..16usize);
    for _ in 0..n_edges {
        let (i, j) = (
            rng.random_range(0..handles.len()),
            rng.random_range(0..handles.len()),
        );
        if i == j {
            continue;
        }
        let (u, v) = (handles[i.min(j)], handles[i.max(j)]);
        let kind = if rng.random_bool(0.7) {
            EdgeKind::Child
        } else {
            EdgeKind::IdRef
        };
        let _ = g.insert_edge(u, v, kind); // dups/root-in rejected
    }
    (g, handles)
}

#[derive(Debug, Clone, Copy)]
enum Op {
    AddNode(usize),
    InsertEdge(usize, usize),
    DeleteEdge(usize, usize),
    RemoveNode(usize),
}

fn random_ops(rng: &mut SplitMix64, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| match rng.random_range(0..8usize) {
            0 => Op::AddNode(rng.random_range(0..LABELS.len())),
            1..=3 => Op::InsertEdge(rng.random_range(0..32usize), rng.random_range(0..32usize)),
            4 | 5 => Op::DeleteEdge(rng.random_range(0..32usize), rng.random_range(0..32usize)),
            _ => Op::RemoveNode(rng.random_range(0..32usize)),
        })
        .collect()
}

/// Sequential twin: one graph, the three indexes notified one after the
/// other through the same hook contract the engine uses.
struct Sequential {
    g: Graph,
    one: OneIndex,
    ak: AkIndex,
    simple: SimpleAkIndex,
}

impl Sequential {
    fn new(g: Graph) -> Self {
        let one = OneIndex::build(&g);
        let ak = AkIndex::build(&g, K);
        let simple = SimpleAkIndex::build(&g, K);
        Sequential { g, one, ak, simple }
    }

    fn add_node(&mut self, label: &str) -> NodeId {
        let n = self.g.add_node(label, None);
        self.one.on_node_added(&self.g, n);
        self.ak.on_node_added(&self.g, n);
        SimpleAkIndex::on_node_added(&mut self.simple, &self.g, n);
        n
    }

    fn insert_edge(&mut self, u: NodeId, v: NodeId, kind: EdgeKind) -> bool {
        if self.g.insert_edge(u, v, kind).is_err() {
            return false;
        }
        self.one.notify_edge_inserted(&self.g, u, v);
        self.ak.notify_edge_inserted(&self.g, u, v);
        self.simple.notify_edge_inserted(&self.g, u, v);
        true
    }

    fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if self.g.delete_edge(u, v).is_err() {
            return false;
        }
        self.one.notify_edge_deleted(&self.g, u, v);
        self.ak.notify_edge_deleted(&self.g, u, v);
        self.simple.notify_edge_deleted(&self.g, u, v);
        true
    }

    fn remove_node(&mut self, n: NodeId) -> bool {
        if !self.g.is_alive(n) || n == self.g.root() {
            return false;
        }
        let parents: Vec<NodeId> = self.g.pred(n).collect();
        for p in parents {
            assert!(self.delete_edge(p, n));
        }
        let children: Vec<NodeId> = self.g.succ(n).collect();
        for c in children {
            assert!(self.delete_edge(n, c));
        }
        self.one.on_node_removing(&self.g, n);
        self.ak.on_node_removing(&self.g, n);
        SimpleAkIndex::on_node_removing(&mut self.simple, &self.g, n);
        self.g.remove_node(n).expect("edgeless non-root node");
        true
    }
}

#[test]
fn engine_equals_sequential_equals_rebuild() {
    let base = test_seed(0xE9E9);
    for case in 0..64u64 {
        let case = base.wrapping_add(case); // replay one case: XSI_TEST_SEED=<case>
        let mut rng = SplitMix64::seed_from_u64(case);
        let (g0, mut handles) = random_base(&mut rng);

        let mut engine = UpdateEngine::new(g0.clone());
        let h_one = engine.register(Box::new(OneIndex::build(&g0)));
        let h_ak = engine.register(Box::new(AkIndex::build(&g0, K)));
        let h_simple = engine.register(Box::new(SimpleAkIndex::build(&g0, K)));
        let mut seq = Sequential::new(g0);

        for op in random_ops(&mut rng, 40) {
            match op {
                Op::AddNode(l) => {
                    let n_engine = engine.add_node(LABELS[l], None);
                    let n_seq = seq.add_node(LABELS[l]);
                    // Same deterministic id allocation on both twins.
                    assert_eq!(n_engine, n_seq, "case {case}");
                    handles.push(n_engine);
                }
                Op::InsertEdge(i, j) => {
                    let (i, j) = (i % handles.len(), j % handles.len());
                    if i == j {
                        continue;
                    }
                    // Forward edges only — keeps the graph acyclic.
                    let (u, v) = (handles[i.min(j)], handles[i.max(j)]);
                    let engine_ok = engine.insert_edge(u, v, EdgeKind::IdRef).is_ok();
                    let seq_ok = seq.insert_edge(u, v, EdgeKind::IdRef);
                    assert_eq!(engine_ok, seq_ok, "case {case}");
                }
                Op::DeleteEdge(i, j) => {
                    let (u, v) = (handles[i % handles.len()], handles[j % handles.len()]);
                    let engine_ok = engine.delete_edge(u, v).is_ok();
                    let seq_ok = seq.delete_edge(u, v);
                    assert_eq!(engine_ok, seq_ok, "case {case}");
                }
                Op::RemoveNode(i) => {
                    let n = handles[i % handles.len()];
                    let engine_ok = engine.remove_node(n).is_ok();
                    let seq_ok = seq.remove_node(n);
                    assert_eq!(engine_ok, seq_ok, "case {case}");
                }
            }
            // The two graphs stay identical.
            assert_eq!(
                engine.graph().node_count(),
                seq.g.node_count(),
                "case {case}"
            );
            assert_eq!(
                engine.graph().edge_count(),
                seq.g.edge_count(),
                "case {case}"
            );
        }

        // Every registered index passes its own validity checker.
        engine
            .check()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));

        // Engine ≡ sequential, exactly (canonical partitions).
        let g = seq.g;
        let e_one = engine
            .index(h_one)
            .as_any()
            .downcast_ref::<OneIndex>()
            .unwrap();
        let e_ak = engine
            .index(h_ak)
            .as_any()
            .downcast_ref::<AkIndex>()
            .unwrap();
        let e_simple = engine
            .index(h_simple)
            .as_any()
            .downcast_ref::<SimpleAkIndex>()
            .unwrap();
        assert_eq!(e_one.canonical(), seq.one.canonical(), "case {case}");
        assert_eq!(e_ak.canonical(), seq.ak.canonical(), "case {case}");
        assert_eq!(
            e_simple.canonical(&g),
            seq.simple.canonical(&g),
            "case {case}"
        );

        // ≡ rebuild-from-scratch where the theorems promise it:
        // Theorem 2 — A(k) split/merge keeps the minimum chain on any graph.
        assert_eq!(
            e_ak.canonical(),
            AkIndex::build(&g, K).canonical(),
            "case {case}"
        );
        // Theorem 1 — the 1-index stays minimal (and valid) everywhere;
        // on acyclic graphs (our workload) it is the unique minimum,
        // i.e. exactly the fresh Paige–Tarjan build.
        assert!(check::is_valid_1index(&g, e_one.partition()), "case {case}");
        assert!(
            check::is_minimal_1index(&g, e_one.partition()),
            "case {case}"
        );
        assert_eq!(
            e_one.canonical(),
            OneIndex::build(&g).canonical(),
            "case {case}"
        );

        // The simple baseline is a refinement (safe) of the true A(k).
        let exact = AkIndex::build(&g, K);
        assert!(e_simple.block_count() >= exact.block_count(), "case {case}");
        let sa = e_simple.assignment(&g);
        let ea = exact.assignment(&g, K);
        let mut map: HashMap<u32, u32> = HashMap::new();
        for n in g.nodes() {
            let entry = map.entry(sa[n.index()]).or_insert(ea[n.index()]);
            assert_eq!(
                *entry,
                ea[n.index()],
                "case {case}: simple not a refinement"
            );
        }
    }
}

/// A random base graph that may contain **cycles**: a root-reachable
/// spanning tree plus extra edges in either handle direction, back-edges
/// carried as `IdRef` (the paper's cyclicity knob: person→auction
/// references meeting auction→person references).
fn random_cyclic_base(rng: &mut SplitMix64) -> (Graph, Vec<NodeId>) {
    let mut g = Graph::new();
    let mut handles = vec![g.root()];
    let n_nodes = rng.random_range(3..10usize);
    for i in 0..n_nodes {
        let l = LABELS[rng.random_range(0..LABELS.len())];
        let n = g.add_node(l, None);
        // Tree edge from an earlier handle keeps everything reachable.
        let p = handles[rng.random_range(0..=i)];
        g.insert_edge(p, n, EdgeKind::Child).unwrap();
        handles.push(n);
    }
    let n_edges = rng.random_range(2..12usize);
    for _ in 0..n_edges {
        let (i, j) = (
            rng.random_range(0..handles.len()),
            rng.random_range(1..handles.len()),
        );
        if i == j {
            continue;
        }
        // Back-edges (i > j) close cycles and are always IdRef; forward
        // edges are IdRef half the time (short-circuit keeps the RNG
        // stream unchanged).
        let kind = if i > j || rng.random_bool(0.5) {
            EdgeKind::IdRef
        } else {
            EdgeKind::Child
        };
        let _ = g.insert_edge(handles[i], handles[j], kind);
    }
    (g, handles)
}

/// Satellite: the equivalence suite on **cyclic** base graphs. Exact
/// partition equality against a fresh build is unsound for the 1-index
/// here (several distinct minimal 1-indexes exist, and the merge order
/// may realize any of them), so the sound contract is asserted instead:
///
/// * engine ≡ sequential twin, exactly (same algorithm, same stream);
/// * 1-index: valid + minimal (Theorem 1) + `minimum ≤ blocks ≤ nodes`,
///   with exact oracle equality whenever the evolved graph happens to be
///   acyclic — and exact **size** equality after a rebuild (any graph);
/// * A(k): exact equality with a fresh build on any graph (Theorem 2);
/// * simple baseline: refinement of the exact A(k) classes.
#[test]
fn engine_equals_sequential_on_cyclic_graphs() {
    let base = test_seed(0xC1C1);
    let mut saw_cyclic = 0usize;
    for case in 0..48u64 {
        let case = base.wrapping_add(case); // replay one case: XSI_TEST_SEED=<case>
        let mut rng = SplitMix64::seed_from_u64(case);
        let (g0, mut handles) = random_cyclic_base(&mut rng);

        let mut engine = UpdateEngine::new(g0.clone());
        let h_one = engine.register(Box::new(OneIndex::build(&g0)));
        let h_ak = engine.register(Box::new(AkIndex::build(&g0, K)));
        let h_simple = engine.register(Box::new(SimpleAkIndex::build(&g0, K)));
        let mut seq = Sequential::new(g0);

        for op in random_ops(&mut rng, 40) {
            match op {
                Op::AddNode(l) => {
                    let n_engine = engine.add_node(LABELS[l], None);
                    let n_seq = seq.add_node(LABELS[l]);
                    assert_eq!(n_engine, n_seq, "seed {case:#x}");
                    handles.push(n_engine);
                }
                Op::InsertEdge(i, j) => {
                    // Any direction — cycles are the point here.
                    let (u, v) = (handles[i % handles.len()], handles[j % handles.len()]);
                    let engine_ok = engine.insert_edge(u, v, EdgeKind::IdRef).is_ok();
                    let seq_ok = seq.insert_edge(u, v, EdgeKind::IdRef);
                    assert_eq!(engine_ok, seq_ok, "seed {case:#x}");
                }
                Op::DeleteEdge(i, j) => {
                    let (u, v) = (handles[i % handles.len()], handles[j % handles.len()]);
                    let engine_ok = engine.delete_edge(u, v).is_ok();
                    let seq_ok = seq.delete_edge(u, v);
                    assert_eq!(engine_ok, seq_ok, "seed {case:#x}");
                }
                Op::RemoveNode(i) => {
                    let n = handles[i % handles.len()];
                    let engine_ok = engine.remove_node(n).is_ok();
                    let seq_ok = seq.remove_node(n);
                    assert_eq!(engine_ok, seq_ok, "seed {case:#x}");
                }
            }
        }

        engine
            .check()
            .unwrap_or_else(|e| panic!("seed {case:#x}: {e}"));

        let g = seq.g;
        if !is_acyclic(&g) {
            saw_cyclic += 1;
        }
        let e_one = engine
            .index(h_one)
            .as_any()
            .downcast_ref::<OneIndex>()
            .unwrap();
        let e_ak = engine
            .index(h_ak)
            .as_any()
            .downcast_ref::<AkIndex>()
            .unwrap();
        let e_simple = engine
            .index(h_simple)
            .as_any()
            .downcast_ref::<SimpleAkIndex>()
            .unwrap();

        // Engine ≡ sequential twin, exactly — cyclic or not.
        assert_eq!(e_one.canonical(), seq.one.canonical(), "seed {case:#x}");
        assert_eq!(e_ak.canonical(), seq.ak.canonical(), "seed {case:#x}");
        assert_eq!(
            e_simple.canonical(&g),
            seq.simple.canonical(&g),
            "seed {case:#x}"
        );

        // 1-index: sound contract on any graph…
        assert!(
            check::is_valid_1index(&g, e_one.partition()),
            "seed {case:#x}"
        );
        assert!(
            check::is_minimal_1index(&g, e_one.partition()),
            "seed {case:#x}"
        );
        let minimum = reference::partition_size(&g, &reference::bisim_classes(&g));
        assert!(
            minimum <= e_one.block_count() && e_one.block_count() <= g.node_count(),
            "seed {case:#x}: {} blocks outside [{minimum}, {}]",
            e_one.block_count(),
            g.node_count()
        );
        // …and exact equality exactly when acyclicity makes it sound.
        if is_acyclic(&g) {
            assert_eq!(
                e_one.canonical(),
                OneIndex::build(&g).canonical(),
                "seed {case:#x}"
            );
        }

        // A(k): exact against a fresh build on ANY graph (Theorem 2).
        assert_eq!(
            e_ak.canonical(),
            AkIndex::build(&g, K).canonical(),
            "seed {case:#x}"
        );

        // Simple baseline: refinement of the exact A(k) classes.
        let exact = AkIndex::build(&g, K);
        let sa = e_simple.assignment(&g);
        let ea = exact.assignment(&g, K);
        let mut map: HashMap<u32, u32> = HashMap::new();
        for n in g.nodes() {
            let entry = map.entry(sa[n.index()]).or_insert(ea[n.index()]);
            assert_eq!(
                *entry,
                ea[n.index()],
                "seed {case:#x}: simple not a refinement"
            );
        }

        // Rebuild restores exact size-minimality for every family, even
        // where the realized minimal index was a different one.
        let (g, mut indexes) = engine.into_parts();
        for idx in &mut indexes {
            let name = idx.describe();
            idx.rebuild(&g);
            idx.check(&g)
                .unwrap_or_else(|e| panic!("seed {case:#x}: {name}: {e}"));
            assert_eq!(
                idx.block_count(),
                idx.minimum_block_count(&g),
                "seed {case:#x}: {name} rebuild must land on the minimum"
            );
        }
    }
    // The workload must actually exercise cycles, not just permit them.
    assert!(
        saw_cyclic >= 8,
        "only {saw_cyclic}/48 cases ended cyclic — generator drifted"
    );
}

/// The engine's batch path and its single-op path agree with each other.
#[test]
fn engine_batch_path_matches_single_ops() {
    use xsi_core::{NodeRef, UpdateOp};
    let base = test_seed(0xBA7C);
    for case in 0..32u64 {
        let case = base.wrapping_add(case); // replay one case: XSI_TEST_SEED=<case>
        let mut rng = SplitMix64::seed_from_u64(case);
        let (g0, handles) = random_base(&mut rng);

        let mut via_batch = UpdateEngine::new(g0.clone());
        let hb = via_batch.register(Box::new(OneIndex::build(&g0)));
        let mut via_singles = UpdateEngine::new(g0.clone());
        let hs = via_singles.register(Box::new(OneIndex::build(&g0)));

        // A batch of inserts that are valid by construction.
        let mut ops = vec![UpdateOp::AddNode { label: "e".into() }];
        let mut expected_new_edges = 0;
        for &u in handles.iter().take(3) {
            if u != g0.root() {
                ops.push(UpdateOp::InsertEdge {
                    from: NodeRef::New(0),
                    to: NodeRef::Existing(u),
                    kind: EdgeKind::IdRef,
                });
                expected_new_edges += 1;
            }
        }
        let result = via_batch.apply_batch(&ops).unwrap();
        assert_eq!(result.ops_applied, 1 + expected_new_edges, "case {case}");

        let n = via_singles.add_node("e", None);
        assert_eq!(n, result.created[0], "case {case}");
        for &u in handles.iter().take(3) {
            if u != g0.root() {
                via_singles.insert_edge(n, u, EdgeKind::IdRef).unwrap();
            }
        }

        via_batch.check().unwrap();
        via_singles.check().unwrap();
        let b = via_batch
            .index(hb)
            .as_any()
            .downcast_ref::<OneIndex>()
            .unwrap();
        let s = via_singles
            .index(hs)
            .as_any()
            .downcast_ref::<OneIndex>()
            .unwrap();
        assert_eq!(b.canonical(), s.canonical(), "case {case}");
        assert_eq!(
            via_batch.stats().ops,
            via_singles.stats().ops,
            "case {case}"
        );
    }
}
