//! Satellite: concurrent readers — a writer thread churns the
//! [`UpdateEngine`] and rotates Arc-shared frozen bundles while ≥ 4
//! reader threads continuously re-evaluate queries over whichever
//! bundle is current. Every bundle carries the answers recorded at its
//! freeze instant, so a reader detecting any drift proves the writer's
//! copy-on-write mutations leaked into a shared extent run.
//!
//! [`IndexSnapshot`] is plain owned data behind `Arc`s (`Send + Sync`),
//! so no locking guards the snapshots themselves — only the rotation
//! slot is behind an `RwLock`. A reader panic (stale data, poisoned
//! lock, anything) fails the test through the join handle.
//!
//! Deterministic workload (seed-pinned via `XSI_TEST_SEED`), time-boxed
//! writer, and every reader must get through at least one full check.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use xsi_core::{AkIndex, IndexSnapshot, OneIndex, PropagateOneIndex, SimpleAkIndex, UpdateEngine};
use xsi_graph::{EdgeKind, NodeId};
use xsi_query::{eval_index_raw, PathExpr};
use xsi_workload::{test_seed, SplitMix64};

const LABELS: [&str; 4] = ["a", "b", "c", "d"];
const K: usize = 2;
const READERS: usize = 4;
const QUERIES: [&str; 5] = ["/a", "//b", "/a/b", "//c//*", "//d/a"];

/// One rotation: the four family snapshots plus the raw answers each
/// gave at the freeze instant, `expected[slot][query]`.
struct FreezeBundle {
    id: usize,
    snaps: Vec<IndexSnapshot>,
    expected: Vec<Vec<Vec<NodeId>>>,
}

fn freeze_bundle(engine: &mut UpdateEngine, id: usize, exprs: &[PathExpr]) -> FreezeBundle {
    let snaps: Vec<IndexSnapshot> = engine
        .freeze()
        .into_iter()
        .map(|s| s.expect("every registered family freezes"))
        .collect();
    let expected = snaps
        .iter()
        .map(|snap| exprs.iter().map(|e| eval_index_raw(snap, e)).collect())
        .collect();
    FreezeBundle {
        id,
        snaps,
        expected,
    }
}

#[test]
fn frozen_views_survive_concurrent_writer_churn() {
    let seed = test_seed(0xC0C0);
    let mut rng = SplitMix64::seed_from_u64(seed);

    // Base graph: root + a spray of labelled children, so the families
    // start with shared multi-node extent runs for churn to split.
    let mut g = xsi_graph::Graph::new();
    let mut handles = vec![g.root()];
    for i in 0..16usize {
        let n = g.add_node(LABELS[i % LABELS.len()], None);
        let p = handles[rng.random_range(0..handles.len())];
        g.insert_edge(p, n, EdgeKind::Child).unwrap();
        handles.push(n);
    }

    let mut engine = UpdateEngine::new(g.clone());
    engine.register(Box::new(OneIndex::build(&g)));
    engine.register(Box::new(PropagateOneIndex::build(&g)));
    engine.register(Box::new(AkIndex::build(&g, K)));
    engine.register(Box::new(SimpleAkIndex::build(&g, K)));

    let exprs: Vec<PathExpr> = QUERIES
        .iter()
        .map(|q| PathExpr::parse(q).unwrap())
        .collect();

    // Publish an initial bundle before any reader starts, so every
    // reader is guaranteed at least one full check.
    let current: Arc<RwLock<Arc<FreezeBundle>>> =
        Arc::new(RwLock::new(Arc::new(freeze_bundle(&mut engine, 0, &exprs))));
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let current = Arc::clone(&current);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let exprs: Vec<PathExpr> = QUERIES
                    .iter()
                    .map(|q| PathExpr::parse(q).unwrap())
                    .collect();
                let mut checks = 0usize;
                let mut last_seen;
                loop {
                    let stop_after = done.load(Ordering::Acquire);
                    let bundle = Arc::clone(&current.read().unwrap());
                    for (slot, snap) in bundle.snaps.iter().enumerate() {
                        for (qi, expr) in exprs.iter().enumerate() {
                            assert_eq!(
                                eval_index_raw(snap, expr),
                                bundle.expected[slot][qi],
                                "reader {r}: bundle {} slot {slot} drifted on {expr} \
                                 while the writer churned",
                                bundle.id
                            );
                        }
                    }
                    checks += 1;
                    last_seen = bundle.id;
                    if stop_after {
                        break;
                    }
                }
                (checks, last_seen)
            })
        })
        .collect();

    // Writer: random churn, freezing + rotating the bundle every few
    // ops. Time-boxed so a scheduling hiccup can't hang the suite.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut published = 0usize;
    for step in 0..400usize {
        match rng.random_range(0..8usize) {
            0 => {
                let l = LABELS[rng.random_range(0..LABELS.len())];
                handles.push(engine.add_node(l, None));
            }
            1..=4 => {
                let u = handles[rng.random_range(0..handles.len())];
                let v = handles[rng.random_range(0..handles.len())];
                let kind = if rng.random_bool(0.4) {
                    EdgeKind::IdRef
                } else {
                    EdgeKind::Child
                };
                let _ = engine.insert_edge(u, v, kind);
            }
            5 | 6 => {
                let u = handles[rng.random_range(0..handles.len())];
                let v = handles[rng.random_range(0..handles.len())];
                let _ = engine.delete_edge(u, v);
            }
            _ => {
                let n = handles[rng.random_range(0..handles.len())];
                if engine.remove_node(n).is_ok() {
                    handles.retain(|&h| h != n);
                }
            }
        }
        handles.retain(|&h| engine.graph().is_alive(h));
        if step % 10 == 9 {
            published += 1;
            let bundle = Arc::new(freeze_bundle(&mut engine, published, &exprs));
            *current.write().unwrap() = bundle;
        }
        if Instant::now() >= deadline {
            break;
        }
    }
    done.store(true, Ordering::Release);

    let mut total_checks = 0usize;
    for (r, h) in readers.into_iter().enumerate() {
        let (checks, last_seen) = h.join().unwrap_or_else(|_| {
            panic!("reader {r} panicked: a frozen view drifted under writer churn")
        });
        assert!(checks > 0, "reader {r} never completed a check");
        assert!(
            last_seen <= published,
            "reader {r} saw an impossible bundle"
        );
        total_checks += checks;
    }
    assert!(published >= 10, "writer only rotated {published} bundles");
    assert!(
        total_checks >= READERS,
        "readers only completed {total_checks} checks"
    );
}
