//! Cross-crate integration tests: generated workloads flow through XML
//! serialization, index construction, long mixed-update sequences, and
//! subgraph churn, with the theorems' guarantees checked along the way.

use xsi_core::{check, reference, AkIndex, OneIndex, SimpleAkIndex};
use xsi_graph::{extract_subtree, is_acyclic, EdgeKind};
use xsi_workload::{
    collect_subtree_roots, generate_imdb, generate_xmark, EdgePool, ImdbParams, XmarkParams,
};
use xsi_xml::{parse_str, serialize, ParseOptions, SerializeOptions};

/// A long mixed-update run on cyclic XMark keeps the 1-index minimal and
/// (empirically, per Figure 10) minimum.
#[test]
fn xmark_mixed_updates_keep_1index_minimal() {
    let mut g = generate_xmark(&XmarkParams::new(0.02, 1.0, 3));
    let mut pool = EdgePool::extract(&mut g, 0.2, 3);
    let mut idx = OneIndex::build(&g);
    for step in 0..150 {
        let (u, v) = pool.next_insert().unwrap();
        idx.insert_edge(&mut g, u, v, EdgeKind::IdRef).unwrap();
        let (u, v) = pool.next_delete().unwrap();
        idx.delete_edge(&mut g, u, v).unwrap();
        if step % 25 == 0 {
            idx.partition().check_consistency(&g).unwrap();
            assert!(check::is_minimal_1index(&g, idx.partition()));
        }
    }
    // Final state: compare against a fresh construction.
    assert_eq!(idx.canonical(), OneIndex::build(&g).canonical());
}

/// On the acyclic XMark(0), every intermediate state must equal the
/// unique minimum (Theorem 1).
#[test]
fn acyclic_xmark_updates_maintain_minimum() {
    let mut g = generate_xmark(&XmarkParams::new(0.02, 0.0, 4));
    assert!(is_acyclic(&g));
    let mut pool = EdgePool::extract(&mut g, 0.2, 4);
    let mut idx = OneIndex::build(&g);
    for _ in 0..60 {
        let (u, v) = pool.next_insert().unwrap();
        idx.insert_edge(&mut g, u, v, EdgeKind::IdRef).unwrap();
        // Re-inserted IDREFs can close cycles only via watch edges, which
        // XMark(0) has none of; the graph stays acyclic.
        assert_eq!(idx.canonical(), OneIndex::build(&g).canonical());
        let (u, v) = pool.next_delete().unwrap();
        idx.delete_edge(&mut g, u, v).unwrap();
        assert_eq!(idx.canonical(), OneIndex::build(&g).canonical());
    }
}

/// The A(k) chain equals the from-scratch minimum chain after a mixed run
/// on the clustered cyclic IMDB graph (Theorem 2).
#[test]
fn imdb_mixed_updates_keep_ak_minimum() {
    let mut g = generate_imdb(&ImdbParams::new(0.01, 5));
    let mut pool = EdgePool::extract(&mut g, 0.2, 5);
    let mut idx = AkIndex::build(&g, 3);
    for _ in 0..80 {
        let (u, v) = pool.next_insert().unwrap();
        idx.insert_edge(&mut g, u, v, EdgeKind::IdRef).unwrap();
        let (u, v) = pool.next_delete().unwrap();
        idx.delete_edge(&mut g, u, v).unwrap();
    }
    idx.check_consistency(&g).unwrap();
    assert_eq!(idx.canonical(), AkIndex::build(&g, 3).canonical());
    let chain = idx.chain_assignments(&g);
    assert!(check::is_valid_ak_chain(&g, &chain));
}

/// Subgraph churn on XMark: retire and re-list auctions; the 1-index
/// tracks the fresh construction (Corollary 1 behaviour on real data).
#[test]
fn subgraph_churn_tracks_construction() {
    let mut g = generate_xmark(&XmarkParams::new(0.02, 1.0, 6));
    let roots = collect_subtree_roots(&g, "open_auction", 10, 6);
    assert!(!roots.is_empty());
    let mut idx = OneIndex::build(&g);
    let mut subs = Vec::new();
    for &r in &roots {
        let (sub, members) = extract_subtree(&g, r);
        idx.remove_subgraph(&mut g, &members).unwrap();
        subs.push(sub);
    }
    idx.partition().check_consistency(&g).unwrap();
    assert!(check::is_minimal_1index(&g, idx.partition()));
    for sub in &subs {
        idx.add_subgraph(&mut g, sub).unwrap();
    }
    idx.partition().check_consistency(&g).unwrap();
    assert_eq!(idx.canonical(), OneIndex::build(&g).canonical());
}

/// Serialize a generated (tree + IDREF) graph to XML, parse it back, and
/// verify the round trip produces a graph whose minimum 1-index has the
/// same size — i.e. the XML layer loses no structural information.
#[test]
fn xml_round_trip_preserves_index_structure() {
    let g = generate_xmark(&XmarkParams::new(0.005, 1.0, 8));
    let xml = serialize(&g, &SerializeOptions::default()).unwrap();
    let reparsed = parse_str(&xml, &ParseOptions::default()).unwrap();
    assert_eq!(reparsed.graph.node_count(), g.node_count());
    assert_eq!(reparsed.graph.edge_count(), g.edge_count());
    assert_eq!(
        reparsed.graph.edge_count_of_kind(EdgeKind::IdRef),
        g.edge_count_of_kind(EdgeKind::IdRef)
    );
    let a = OneIndex::build(&g);
    let b = OneIndex::build(&reparsed.graph);
    assert_eq!(a.block_count(), b.block_count());
}

/// The simple baseline drifts up while split/merge holds the minimum —
/// the Figure 13 contrast, asserted end to end at test scale.
#[test]
fn simple_baseline_drifts_while_split_merge_holds() {
    let mut g1 = generate_xmark(&XmarkParams::new(0.01, 1.0, 9));
    let mut g2 = g1.clone();
    let mut pool1 = EdgePool::extract(&mut g1, 0.2, 9);
    let mut pool2 = EdgePool::extract(&mut g2, 0.2, 9);
    let mut exact = AkIndex::build(&g1, 2);
    let mut simple = SimpleAkIndex::build(&g2, 2);
    for _ in 0..100 {
        let (u, v) = pool1.next_insert().unwrap();
        exact.insert_edge(&mut g1, u, v, EdgeKind::IdRef).unwrap();
        let (u, v) = pool1.next_delete().unwrap();
        exact.delete_edge(&mut g1, u, v).unwrap();
        let (u, v) = pool2.next_insert().unwrap();
        simple.insert_edge(&mut g2, u, v, EdgeKind::IdRef).unwrap();
        let (u, v) = pool2.next_delete().unwrap();
        simple.delete_edge(&mut g2, u, v).unwrap();
    }
    let min1 = AkIndex::build(&g1, 2).block_count();
    assert_eq!(exact.block_count(), min1, "split/merge = minimum");
    let min2 = AkIndex::build(&g2, 2).block_count();
    assert!(
        simple.block_count() > min2,
        "simple should have drifted above the minimum ({} vs {min2})",
        simple.block_count()
    );
}

/// Reference oracle and production construction agree on both generated
/// datasets (sampled sizes).
#[test]
fn construction_matches_oracle_on_generated_data() {
    let g = generate_xmark(&XmarkParams::new(0.01, 1.0, 10));
    let idx = OneIndex::build(&g);
    let classes = reference::bisim_classes(&g);
    assert_eq!(idx.block_count(), reference::partition_size(&g, &classes));
    let g = generate_imdb(&ImdbParams::new(0.005, 10));
    let idx = AkIndex::build(&g, 4);
    let oracle = reference::k_bisim_chain(&g, 4);
    assert_eq!(idx.block_count(), reference::partition_size(&g, &oracle[4]));
}
