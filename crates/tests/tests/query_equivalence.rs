//! Satellite: query-equivalence — for every index family, evaluating a
//! random path expression through [`xsi_query::eval_index`] over the
//! family's [`IndexQueryView`] returns exactly the naive data-graph
//! answer, on graphs that have been churned through the [`UpdateEngine`]
//! first (so the views reflect *maintained* state, not fresh builds).
//!
//! Families and why their views are exact:
//!
//! * `OneIndex` — bisimulation quotient: every linear path is precise;
//!   predicated paths trigger the validation pass.
//! * `PropagateOneIndex` — drifts from minimality but stays a *valid*
//!   refinement, and any valid 1-index answers linear paths exactly.
//! * `AkIndex` — precise up to `k`; longer paths and predicates are
//!   validated by `eval_index` automatically.
//! * `SimpleAkIndex` — no built-in view (extents only); the conformance
//!   lab's [`DerivedView`] reconstructs one from the class assignment
//!   with horizon `Some(k)`, sound because the baseline is always a
//!   refinement of the true A(k) partition.
//!
//! Seed-pinned: rerun one failing case with `XSI_TEST_SEED=<seed>`.

use xsi_conformance::DerivedView;
use xsi_core::{AkIndex, OneIndex, PropagateOneIndex, SimpleAkIndex, UpdateEngine};
use xsi_graph::{EdgeKind, Graph, NodeId};
use xsi_query::{eval_graph, eval_index, PathExpr};
use xsi_workload::{test_seed, SplitMix64};

const LABELS: [&str; 4] = ["a", "b", "c", "d"];
const K: usize = 2;

/// Random root-reachable base graph; cyclic when asked (back-edges are
/// `IdRef`, like the paper's cyclicity knob).
fn random_base(rng: &mut SplitMix64, cyclic: bool) -> (Graph, Vec<NodeId>) {
    let mut g = Graph::new();
    let mut handles = vec![g.root()];
    let n_nodes = rng.random_range(4..12usize);
    for i in 0..n_nodes {
        let l = LABELS[rng.random_range(0..LABELS.len())];
        let n = g.add_node(l, None);
        let p = handles[rng.random_range(0..=i)];
        g.insert_edge(p, n, EdgeKind::Child).unwrap();
        handles.push(n);
    }
    for _ in 0..rng.random_range(2..10usize) {
        let (mut i, mut j) = (
            rng.random_range(0..handles.len()),
            rng.random_range(1..handles.len()),
        );
        if !cyclic && i > j {
            std::mem::swap(&mut i, &mut j); // forward edges keep it acyclic
        }
        if i == j {
            continue;
        }
        let kind = if i > j {
            EdgeKind::IdRef
        } else {
            EdgeKind::Child
        };
        let _ = g.insert_edge(handles[i], handles[j], kind);
    }
    (g, handles)
}

/// Churn the engine (and its registered indexes) with random edge flips
/// and node adds so the maintained views are genuinely post-update state.
fn churn(engine: &mut UpdateEngine, handles: &mut Vec<NodeId>, rng: &mut SplitMix64) {
    for _ in 0..24 {
        match rng.random_range(0..8usize) {
            0 => {
                let l = LABELS[rng.random_range(0..LABELS.len())];
                handles.push(engine.add_node(l, None));
            }
            1..=4 => {
                let u = handles[rng.random_range(0..handles.len())];
                let v = handles[rng.random_range(0..handles.len())];
                let kind = if rng.random_bool(0.4) {
                    EdgeKind::IdRef
                } else {
                    EdgeKind::Child
                };
                let _ = engine.insert_edge(u, v, kind);
            }
            5 | 6 => {
                let u = handles[rng.random_range(0..handles.len())];
                let v = handles[rng.random_range(0..handles.len())];
                let _ = engine.delete_edge(u, v);
            }
            _ => {
                let n = handles[rng.random_range(0..handles.len())];
                if engine.remove_node(n).is_ok() {
                    handles.retain(|&h| h != n);
                }
            }
        }
    }
    handles.retain(|&h| engine.graph().is_alive(h));
}

/// Random query: 1–3 steps, `/`/`//` axes, labels or `*`, and an
/// occasional existence predicate to force the validation pass.
fn random_query(rng: &mut SplitMix64) -> String {
    let steps = rng.random_range(1..=3usize);
    let mut q = String::new();
    for s in 0..steps {
        q.push_str(if rng.random_bool(0.35) { "//" } else { "/" });
        if rng.random_bool(0.2) {
            q.push('*');
        } else {
            q.push_str(LABELS[rng.random_range(0..LABELS.len())]);
        }
        if s == 0 && rng.random_bool(0.25) {
            q.push('[');
            q.push_str(LABELS[rng.random_range(0..LABELS.len())]);
            q.push(']');
        }
    }
    q
}

#[test]
fn index_query_views_agree_with_naive_evaluation() {
    let base = test_seed(0x9E41);
    for case in 0..40u64 {
        let case = base.wrapping_add(case); // replay one case: XSI_TEST_SEED=<case>
        let mut rng = SplitMix64::seed_from_u64(case);
        let (g0, mut handles) = random_base(&mut rng, case % 2 == 1);

        let mut engine = UpdateEngine::new(g0.clone());
        let h_one = engine.register(Box::new(OneIndex::build(&g0)));
        let h_prop = engine.register(Box::new(PropagateOneIndex::build(&g0)));
        let h_ak = engine.register(Box::new(AkIndex::build(&g0, K)));
        let h_simple = engine.register(Box::new(SimpleAkIndex::build(&g0, K)));
        churn(&mut engine, &mut handles, &mut rng);

        let queries: Vec<PathExpr> = (0..6)
            .map(|_| {
                let q = random_query(&mut rng);
                PathExpr::parse(&q).unwrap_or_else(|e| panic!("seed {case:#x}: {q:?}: {e}"))
            })
            .collect();

        let g = engine.graph();
        for expr in &queries {
            let truth = eval_graph(g, expr);
            // Families with built-in views.
            for h in [h_one, h_prop, h_ak] {
                let idx = engine.index(h);
                let view = idx.query_view(g).expect("family exposes a view");
                assert_eq!(
                    eval_index(g, &*view, expr),
                    truth,
                    "seed {case:#x}: {} disagrees on {expr}",
                    idx.describe()
                );
            }
            // Simple baseline through the conformance lab's derived view:
            // refinement of exact A(k) ⇒ horizon Some(K) is sound.
            let simple = engine
                .index(h_simple)
                .as_any()
                .downcast_ref::<SimpleAkIndex>()
                .unwrap();
            let view = DerivedView::from_assignment(g, &simple.assignment(g), Some(K));
            assert_eq!(
                eval_index(g, &view, expr),
                truth,
                "seed {case:#x}: simple A(k) derived view disagrees on {expr}"
            );
        }
    }
}

/// The drifted propagate baseline (strictly more blocks than the
/// minimum) still answers queries exactly: validity, not minimality, is
/// what query correctness rests on.
#[test]
fn drifted_propagate_index_still_answers_exactly() {
    let base = test_seed(0xD21F);
    let mut saw_drift = 0usize;
    for case in 0..24u64 {
        let case = base.wrapping_add(case);
        let mut rng = SplitMix64::seed_from_u64(case);
        let (g0, mut handles) = random_base(&mut rng, true);
        let mut engine = UpdateEngine::new(g0.clone());
        let h_prop = engine.register(Box::new(PropagateOneIndex::build(&g0)));
        churn(&mut engine, &mut handles, &mut rng);

        let g = engine.graph();
        let prop = engine.index(h_prop);
        if prop.block_count() > prop.minimum_block_count(g) {
            saw_drift += 1;
        }
        for _ in 0..6 {
            let q = random_query(&mut rng);
            let expr = PathExpr::parse(&q).unwrap();
            let view = prop.query_view(g).expect("propagate exposes a view");
            assert_eq!(
                eval_index(g, &*view, &expr),
                eval_graph(g, &expr),
                "seed {case:#x}: drifted propagate disagrees on {q}"
            );
        }
    }
    assert!(
        saw_drift >= 4,
        "workload too tame: only {saw_drift} drifted cases"
    );
}
