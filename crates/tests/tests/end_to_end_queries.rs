//! End-to-end query correctness: on generated datasets, every query must
//! give identical answers evaluated (a) directly on the data graph,
//! (b) through the 1-index, and (c) through the A(k)-index with
//! validation — including *after* incremental maintenance has reshaped
//! the indexes.

use xsi_core::{AkIndex, OneIndex};
use xsi_graph::EdgeKind;
use xsi_query::{eval_ak_index, eval_ak_validated, eval_graph, eval_one_index, PathExpr};
use xsi_workload::{generate_imdb, generate_xmark, EdgePool, ImdbParams, XmarkParams};

const XMARK_QUERIES: &[&str] = &[
    "/site/people/person",
    "/site/people/person/name",
    "/site/regions/*/item",
    "/site/open_auctions/open_auction/bidder/personref/person",
    "/site/closed_auctions/closed_auction/itemref/item",
    "//watch/open_auction",
    "//incategory/category/name",
    "//person/watches/watch",
    "/site/catgraph/edge/category",
    "//parlist/listitem",
];

const IMDB_QUERIES: &[&str] = &[
    "/imdb/movies/movie/title",
    "/imdb/movies/movie/cast/actor/person",
    "/imdb/people/person/filmography/acted_in/movie",
    "//actor/person/name",
    "//movie/genre",
];

#[test]
fn xmark_queries_agree_across_engines() {
    let g = generate_xmark(&XmarkParams::new(0.02, 1.0, 21));
    let one = OneIndex::build(&g);
    for &k in &[2usize, 4] {
        let ak = AkIndex::build(&g, k);
        for q in XMARK_QUERIES {
            let expr = PathExpr::parse(q).unwrap();
            let exact = eval_graph(&g, &expr);
            assert_eq!(eval_one_index(&g, &one, &expr), exact, "1-index on {q}");
            // Raw A(k) answers are supersets; validated answers are exact.
            let raw = eval_ak_index(&g, &ak, &expr);
            for n in &exact {
                assert!(raw.contains(n), "A({k}) lost a result on {q}");
            }
            assert_eq!(eval_ak_validated(&g, &ak, &expr), exact, "A({k}) on {q}");
        }
    }
}

#[test]
fn imdb_queries_agree_across_engines() {
    let g = generate_imdb(&ImdbParams::new(0.01, 22));
    let one = OneIndex::build(&g);
    let ak = AkIndex::build(&g, 3);
    for q in IMDB_QUERIES {
        let expr = PathExpr::parse(q).unwrap();
        let exact = eval_graph(&g, &expr);
        assert_eq!(eval_one_index(&g, &one, &expr), exact, "1-index on {q}");
        assert_eq!(eval_ak_validated(&g, &ak, &expr), exact, "A(3) on {q}");
    }
}

#[test]
fn queries_stay_correct_under_maintenance() {
    let mut g = generate_xmark(&XmarkParams::new(0.01, 1.0, 23));
    let mut pool = EdgePool::extract(&mut g, 0.2, 23);
    let mut one = OneIndex::build(&g);
    let mut ak = AkIndex::build(&g, 3);
    let exprs: Vec<PathExpr> = XMARK_QUERIES
        .iter()
        .map(|q| PathExpr::parse(q).unwrap())
        .collect();
    for round in 0..40 {
        let (u, v) = pool.next_insert().unwrap();
        g.insert_edge(u, v, EdgeKind::IdRef).unwrap();
        one.notify_edge_inserted(&g, u, v);
        ak.notify_edge_inserted(&g, u, v);
        let (u, v) = pool.next_delete().unwrap();
        g.delete_edge(u, v).unwrap();
        one.notify_edge_deleted(&g, u, v);
        ak.notify_edge_deleted(&g, u, v);
        if round % 10 == 9 {
            for expr in &exprs {
                let exact = eval_graph(&g, expr);
                assert_eq!(eval_one_index(&g, &one, expr), exact, "1-index {expr}");
                assert_eq!(eval_ak_validated(&g, &ak, expr), exact, "A(3) {expr}");
            }
        }
    }
}

/// The precision boundary: raw A(k) answers are exact for paths of length
/// ≤ k and (on a graph crafted to confuse them) strictly larger beyond.
#[test]
fn ak_precision_boundary() {
    // Two x-chains distinguished only at depth 3.
    let mut g = xsi_graph::Graph::new();
    let root = g.root();
    let mk = |g: &mut xsi_graph::Graph, parent, label: &str| {
        let n = g.add_node(label, None);
        g.insert_edge(parent, n, EdgeKind::Child).unwrap();
        n
    };
    let a = mk(&mut g, root, "a");
    let b = mk(&mut g, root, "b");
    let xa = mk(&mut g, a, "x");
    let xb = mk(&mut g, b, "x");
    let ya = mk(&mut g, xa, "y");
    let yb = mk(&mut g, xb, "y");
    let _za = mk(&mut g, ya, "z");
    let _zb = mk(&mut g, yb, "z");

    let expr = PathExpr::parse("/a/x/y/z").unwrap();
    let exact = eval_graph(&g, &expr);
    assert_eq!(exact.len(), 1);
    // k = 1: the two y/z chains are conflated; raw answer has both z's.
    let ak1 = AkIndex::build(&g, 1);
    let raw = eval_ak_index(&g, &ak1, &expr);
    assert_eq!(raw.len(), 2, "A(1) must conflate the two z nodes");
    assert_eq!(eval_ak_validated(&g, &ak1, &expr), exact);
    // k = 4 ≥ path length: raw answer is already exact.
    let ak4 = AkIndex::build(&g, 4);
    assert_eq!(eval_ak_index(&g, &ak4, &expr), exact);
}
