//! Heavy stress tests, `#[ignore]`d by default — run with
//! `cargo test --release --test stress -- --ignored`.
//!
//! These push the theorems at dataset scale: thousands of updates over
//! tens of thousands of nodes with exact-equality verification against
//! fresh constructions, far beyond what the per-commit suite can afford.

use xsi_core::{check, AkIndex, OneIndex};
use xsi_graph::EdgeKind;
use xsi_workload::{
    generate_dblp, generate_imdb, generate_xmark, DblpParams, EdgePool, ImdbParams, XmarkParams,
};

/// Theorem 1 on a ~100 k-node DAG: exact minimum at every checkpoint.
#[test]
#[ignore = "heavy: run with --ignored"]
fn theorem1_dblp_large() {
    let mut g = generate_dblp(&DblpParams::new(0.4, 99));
    let mut pool = EdgePool::extract(&mut g, 0.2, 99);
    let mut idx = OneIndex::build(&g);
    for pair in 1..=1000 {
        let (u, v) = pool.next_insert().unwrap();
        idx.insert_edge(&mut g, u, v, EdgeKind::IdRef).unwrap();
        let (u, v) = pool.next_delete().unwrap();
        idx.delete_edge(&mut g, u, v).unwrap();
        if pair % 200 == 0 {
            assert_eq!(idx.canonical(), OneIndex::build(&g).canonical());
            idx.partition().check_consistency(&g).unwrap();
        }
    }
}

/// Theorem 2 on cyclic XMark: the A(3) chain equals the rebuilt minimum
/// chain at every checkpoint.
#[test]
#[ignore = "heavy: run with --ignored"]
fn theorem2_xmark_large() {
    let mut g = generate_xmark(&XmarkParams::new(0.3, 1.0, 99));
    let mut pool = EdgePool::extract(&mut g, 0.2, 99);
    let mut idx = AkIndex::build(&g, 3);
    for pair in 1..=1000 {
        let (u, v) = pool.next_insert().unwrap();
        idx.insert_edge(&mut g, u, v, EdgeKind::IdRef).unwrap();
        let (u, v) = pool.next_delete().unwrap();
        idx.delete_edge(&mut g, u, v).unwrap();
        if pair % 250 == 0 {
            idx.check_consistency(&g).unwrap();
            assert_eq!(idx.canonical(), AkIndex::build(&g, 3).canonical());
        }
    }
}

/// Minimality invariant (Lemma 3) on cyclic IMDB, with a full
/// from-first-principles check every 100 pairs.
#[test]
#[ignore = "heavy: run with --ignored"]
fn lemma3_imdb_minimality() {
    let mut g = generate_imdb(&ImdbParams::new(0.2, 99));
    let mut pool = EdgePool::extract(&mut g, 0.2, 99);
    let mut idx = OneIndex::build(&g);
    for pair in 1..=500 {
        let (u, v) = pool.next_insert().unwrap();
        idx.insert_edge(&mut g, u, v, EdgeKind::IdRef).unwrap();
        let (u, v) = pool.next_delete().unwrap();
        idx.delete_edge(&mut g, u, v).unwrap();
        if pair % 100 == 0 {
            idx.partition().check_consistency(&g).unwrap();
            assert!(
                check::is_minimal_1index(&g, idx.partition()),
                "minimality violated at pair {pair}"
            );
        }
    }
}

/// Snapshot round trips at scale, including a drifted (propagate) state,
/// and maintenance continuing seamlessly after a load.
#[test]
#[ignore = "heavy: run with --ignored"]
fn snapshots_at_scale() {
    let mut g = generate_xmark(&XmarkParams::new(0.3, 1.0, 99));
    let mut pool = EdgePool::extract(&mut g, 0.2, 99);
    let mut idx = OneIndex::build(&g);
    for _ in 0..200 {
        let (u, v) = pool.next_insert().unwrap();
        idx.propagate_insert_edge(&mut g, u, v, EdgeKind::IdRef)
            .unwrap();
        let (u, v) = pool.next_delete().unwrap();
        idx.propagate_delete_edge(&mut g, u, v).unwrap();
    }
    let bytes = idx.to_snapshot();
    let mut restored = OneIndex::from_snapshot(&g, &bytes).unwrap();
    assert_eq!(restored.canonical(), idx.canonical());
    // Maintenance continues on the restored index.
    for _ in 0..50 {
        let (u, v) = pool.next_insert().unwrap();
        restored.insert_edge(&mut g, u, v, EdgeKind::IdRef).unwrap();
    }
    restored.partition().check_consistency(&g).unwrap();
}
