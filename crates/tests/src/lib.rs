//! Intentionally empty: this crate exists only to host the workspace's
//! cross-crate integration suites under `tests/`. See the package
//! manifest for the rationale.
#![forbid(unsafe_code)]
