//! The memory-accounting contract tests (DESIGN.md §13).
//!
//! Three properties pin the `HeapUse`/`MemReport` layer:
//!
//! 1. **Walker oracle** — for every index family, the categorized
//!    [`MemReport`] must sum to *exactly* the deep `heap_use()` computed
//!    by the independent traversal path (the categories are disjoint and
//!    exhaustive, or the accounting is lying). Checked across build,
//!    update churn, and slot-recycling states.
//! 2. **CoW attribution** — after a freeze every live extent run is
//!    shared (counted once, on the live side as "shared" bytes and on
//!    the snapshot side as retention); as the writer mutates blocks the
//!    sharing ratio falls monotonically toward zero while the total
//!    stays exact.
//! 3. **Determinism** — two identically seeded runs publish
//!    bit-identical mem reports (stable trace lines and deterministic
//!    metrics JSON), so golden mem artifacts are diffable.

use xsi_core::obs::mem::HeapUse;
use xsi_core::{
    AkIndex, OneIndex, PropagateOneIndex, SimpleAkIndex, StructuralIndex, UpdateEngine,
};
use xsi_graph::Graph;
use xsi_workload::{generate_xmark, EdgePool, XmarkParams};

fn xmark(scale: f64, seed: u64) -> Graph {
    generate_xmark(&XmarkParams::new(scale, 0.05, seed))
}

/// The deep bytes of an index through the family-specific traversal —
/// the walker side of the oracle, distinct from the `MemReport`
/// categorization pass.
fn walker_bytes(idx: &dyn StructuralIndex) -> usize {
    let any = idx.as_any();
    if let Some(one) = any.downcast_ref::<OneIndex>() {
        one.partition().heap_use()
    } else if let Some(p) = any.downcast_ref::<PropagateOneIndex>() {
        p.0.partition().heap_use()
    } else if let Some(ak) = any.downcast_ref::<AkIndex>() {
        ak.heap_use()
    } else if let Some(sim) = any.downcast_ref::<SimpleAkIndex>() {
        sim.heap_use()
    } else {
        panic!("unknown index family: {}", idx.describe());
    }
}

fn assert_report_matches_walker(idx: &dyn StructuralIndex) {
    let r = idx
        .mem_report()
        .unwrap_or_else(|| panic!("{} publishes a mem report", idx.describe()));
    assert_eq!(
        r.total_bytes(),
        walker_bytes(idx) as u64,
        "{}: category sum must equal the walker's deep bytes exactly",
        idx.describe()
    );
    assert_eq!(
        r.blocks as usize,
        if let Some(ak) = idx.as_any().downcast_ref::<AkIndex>() {
            ak.total_blocks()
        } else {
            idx.block_count()
        },
        "{}: one report row per live block",
        idx.describe()
    );
    // Histogram mass equals the number of extent-bearing recordings.
    let hist_mass: u64 = r.extent_len_hist.iter().sum();
    assert!(hist_mass <= r.owned_extents + r.shared_extents);
    assert!(hist_mass > 0, "{}: no extents recorded", idx.describe());
}

#[test]
fn walker_oracle_matches_heap_use_across_churn() {
    let mut g = xmark(0.02, 42);
    let pool = EdgePool::extract(&mut g, 0.2, 7);
    let mut engine = UpdateEngine::new(g);
    let handles = [
        engine.register(Box::new(OneIndex::build(engine.graph()))),
        engine.register(Box::new(PropagateOneIndex(OneIndex::build(engine.graph())))),
        engine.register(Box::new(AkIndex::build(engine.graph(), 2))),
        engine.register(Box::new(SimpleAkIndex::build(engine.graph(), 2))),
    ];

    for &h in &handles {
        assert_report_matches_walker(engine.index(h));
    }

    // Update churn: re-insert the extracted pool, then delete half of
    // it again — slot recycling, spills and scratch growth included.
    let mut pool = pool;
    let mut inserted = Vec::new();
    while let Some((u, v)) = pool.next_insert() {
        engine
            .insert_edge(u, v, xsi_graph::EdgeKind::IdRef)
            .unwrap();
        inserted.push((u, v));
    }
    for &h in &handles {
        assert_report_matches_walker(engine.index(h));
    }
    for &(u, v) in inserted.iter().step_by(2) {
        engine.delete_edge(u, v).unwrap();
    }
    for &h in &handles {
        assert_report_matches_walker(engine.index(h));
    }
}

#[test]
fn cow_sharing_counted_once_and_ratio_falls_as_writer_clones() {
    let mut g = xmark(0.02, 11);
    let pool = EdgePool::extract(&mut g, 0.25, 3);
    let mut engine = UpdateEngine::new(g);
    let h = engine.register(Box::new(OneIndex::build(engine.graph())));

    let before = engine.index(h).mem_report().unwrap();
    assert_eq!(before.shared_extents, 0, "nothing shared before a freeze");
    assert_eq!(before.extent_shared_bytes, 0);

    let snaps = engine.freeze();
    let snap = snaps[0].as_ref().expect("1-index freezes");
    let frozen = engine.index(h).mem_report().unwrap();
    assert_eq!(
        frozen.shared_extents, frozen.blocks,
        "a fresh freeze shares every live extent run"
    );
    assert_eq!(frozen.owned_extents, 0);
    assert!(frozen.sharing_ratio() > 0.999);
    // Shared-once: the freeze moved bytes between categories without
    // inventing any — the total still equals the walker's deep bytes.
    assert_eq!(
        frozen.total_bytes(),
        before.total_bytes(),
        "freeze itself allocates nothing on the live side"
    );
    // The snapshot retains at least every shared run (it also owns its
    // label strings and successor lists).
    assert!(snap.heap_use() as u64 >= frozen.extent_shared_bytes);

    // Writer churn: mutating a frozen block clones its run (shared →
    // owned), and nothing can *become* shared without another freeze —
    // so the shared side only ever shrinks. (The sharing *ratio* is not
    // monotone step-to-step: merges also shrink the owned side.)
    let mut pool = pool;
    let mut last_shared = (frozen.shared_extents, frozen.extent_shared_bytes);
    while let Some((u, v)) = pool.next_insert() {
        engine
            .insert_edge(u, v, xsi_graph::EdgeKind::IdRef)
            .unwrap();
        let r = engine.index(h).mem_report().unwrap();
        assert_report_matches_walker(engine.index(h));
        assert!(
            r.shared_extents <= last_shared.0 && r.extent_shared_bytes <= last_shared.1,
            "the shared side must not grow while only the writer mutates"
        );
        last_shared = (r.shared_extents, r.extent_shared_bytes);
    }
    let after = engine.index(h).mem_report().unwrap();
    assert!(
        after.shared_extents < frozen.shared_extents,
        "churn must clone at least one shared run"
    );
    assert!(
        after.sharing_ratio() < frozen.sharing_ratio(),
        "sharing ratio falls as the writer clones"
    );
    assert!(
        engine.index(h).cow_clones() > 0,
        "the clones were CoW clones"
    );
}

fn run_once(seed: u64) -> (Vec<String>, String) {
    let mut g = xmark(0.02, seed);
    let mut pool = EdgePool::extract(&mut g, 0.2, seed ^ 0x9e37);
    let mut engine = UpdateEngine::new(g);
    engine
        .obs_mut()
        .set_recorder(Box::new(xsi_core::FlightRecorder::new(4096)));
    engine.obs_mut().enable_metrics();
    engine.register(Box::new(OneIndex::build(engine.graph())));
    engine.register(Box::new(SimpleAkIndex::build(engine.graph(), 2)));
    while let Some((u, v)) = pool.next_insert() {
        engine
            .insert_edge(u, v, xsi_graph::EdgeKind::IdRef)
            .unwrap();
    }
    engine.publish_mem_reports();
    let trace: Vec<String> = engine
        .obs()
        .stable_trace()
        .into_iter()
        .filter(|l| l.contains("mem-report"))
        .collect();
    let json = engine.obs().metrics_deterministic_json();
    (trace, json)
}

#[test]
fn mem_reports_are_deterministic_across_identical_runs() {
    let (trace_a, json_a) = run_once(1234);
    let (trace_b, json_b) = run_once(1234);
    assert!(!trace_a.is_empty(), "mem-report events were emitted");
    assert_eq!(trace_a, trace_b, "stable mem-report lines are golden");
    assert_eq!(json_a, json_b, "deterministic metrics JSON is golden");
}
