//! Randomized tests for block-id recycling in the dense store layer.
//!
//! The [`SlotMap`] recycles slot indexes through a LIFO free list; the
//! whole point of the generation scheme is that a handle held across a
//! `release` can never silently alias the block that reused the slot.
//! These tests drive adversarial alloc/release interleavings (seeded
//! through `xsi_workload::test_seed`, so a failing case is replayable
//! with `XSI_TEST_SEED=...`) and assert:
//!
//! * every handle saved before a release fails `is_current` forever,
//!   even after its slot is re-allocated at a fresh generation;
//! * `get` on a stale handle returns `None` (never the usurper's value);
//! * side tables indexed by slot index stay consistent with the map's
//!   own live-slot iteration;
//! * at the index level, node-add/remove churn (which allocates and
//!   releases partition blocks) keeps both maintainers' `check`
//!   oracles green while slots are being recycled.

use xsi_core::store::{SlotKey, SlotMap};
use xsi_core::{AkIndex, OneIndex};
use xsi_graph::{EdgeKind, Graph, NodeId};
use xsi_workload::{test_seed, SplitMix64};

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Key(u32, u32);
impl SlotKey for Key {
    fn from_raw_parts(idx: u32, gen: u32) -> Self {
        Key(idx, gen)
    }
    fn idx(self) -> u32 {
        self.0
    }
    fn gen(self) -> u32 {
        self.1
    }
}

/// One adversarial interleaving: biased random walk over alloc/release
/// with a payload check and a shadow side table after every step.
fn drive_slot_map(seed: u64, steps: usize) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut m: SlotMap<Key, u64> = SlotMap::new();
    // Live handles with the payload we wrote through them.
    let mut live: Vec<(Key, u64)> = Vec::new();
    // Every handle ever released — must stay stale forever.
    let mut stale: Vec<Key> = Vec::new();
    // The side-table pattern the partition uses: values indexed by raw
    // slot index, valid only while the slot is live.
    let mut side: Vec<u64> = Vec::new();
    let mut next_payload = 1u64;

    for step in 0..steps {
        // Bias toward allocation early, toward release when large, and
        // occasionally release in bursts to exercise LIFO reuse depth.
        let release = !live.is_empty() && (rng.random_bool(0.4) || live.len() > 24);
        if release {
            let burst = rng.random_range(1..=live.len().min(4));
            for _ in 0..burst {
                let i = rng.random_range(0..live.len());
                let (k, payload) = live.swap_remove(i);
                assert_eq!(m.get(k), Some(&payload), "seed {seed:#x} step {step}");
                m.release(k);
                stale.push(k);
            }
        } else {
            let (k, v) = m.alloc();
            *v = next_payload;
            if side.len() <= k.index() {
                side.resize(k.index() + 1, 0);
            }
            side[k.index()] = next_payload;
            live.push((k, next_payload));
            next_payload += 1;
        }

        // Generation checks fire on every stale handle, even when the
        // slot has been re-allocated (same idx, fresh generation).
        for &k in &stale {
            assert!(
                !m.is_current(k),
                "seed {seed:#x} step {step}: stale handle {k:?} reads as current"
            );
            assert_eq!(
                m.get(k),
                None,
                "seed {seed:#x} step {step}: stale handle {k:?} reads a value"
            );
        }
        // Live handles stay current and the side table agrees with the
        // map for every live slot.
        assert_eq!(m.len(), live.len());
        for &(k, payload) in &live {
            assert!(m.is_current(k));
            assert_eq!(m[k], payload);
            assert_eq!(side[k.index()], payload);
            assert_eq!(m.handle_at(k.idx()), Some(k));
        }
        // Iteration sees exactly the live slots, in index order.
        let mut expected: Vec<u32> = live.iter().map(|&(k, _)| k.idx()).collect();
        expected.sort_unstable();
        let seen: Vec<u32> = m.keys().map(SlotKey::idx).collect();
        assert_eq!(seen, expected, "seed {seed:#x} step {step}");
    }
}

#[test]
fn slot_map_recycling_never_leaks_stale_handles() {
    let base = test_seed(0x51_07_4A_B1);
    for case in 0..24u64 {
        drive_slot_map(base.wrapping_add(case), 160);
    }
}

#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "stale or dead handle")]
fn stale_handle_access_panics_after_recycling() {
    let mut m: SlotMap<Key, u64> = SlotMap::new();
    let (a, _) = m.alloc();
    let (b, _) = m.alloc();
    m.release(a);
    m.release(b);
    // Both slots recycled at fresh generations; the old handle must trip
    // the generation debug_assert, not read the usurper.
    let _ = m.alloc();
    let _ = m.alloc();
    let _ = m[a];
}

/// Node-add/remove churn at the index level: every added node allocates
/// a block, every removal releases one, and the LIFO free list makes
/// later adds reuse released slots. Both maintainers' consistency
/// oracles must hold at every step while this recycling is happening.
#[test]
fn index_level_block_recycling_keeps_side_tables_consistent() {
    let base = test_seed(0x0B10_C4EC);
    let labels = ["a", "b", "c"];
    for case in 0..8u64 {
        let seed = base.wrapping_add(case);
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut g = Graph::new();
        let anchor = g.add_node("site", None);
        g.insert_edge(g.root(), anchor, EdgeKind::Child).unwrap();
        let mut one = OneIndex::build(&g);
        let mut ak = AkIndex::build(&g, 2);
        let mut nodes: Vec<NodeId> = Vec::new();
        for step in 0..120 {
            if nodes.is_empty() || rng.random_bool(0.55) {
                let n = g.add_node(labels[rng.random_range(0..labels.len())], None);
                one.on_node_added(&g, n);
                ak.on_node_added(&g, n);
                if rng.random_bool(0.7) {
                    g.insert_edge(anchor, n, EdgeKind::Child).unwrap();
                    one.notify_edge_inserted(&g, anchor, n);
                    ak.notify_edge_inserted(&g, anchor, n);
                }
                nodes.push(n);
            } else {
                let n = nodes.swap_remove(rng.random_range(0..nodes.len()));
                if g.has_edge(anchor, n) {
                    g.delete_edge(anchor, n).unwrap();
                    one.notify_edge_deleted(&g, anchor, n);
                    ak.notify_edge_deleted(&g, anchor, n);
                }
                one.on_node_removing(&g, n);
                ak.on_node_removing(&g, n);
                g.remove_node(n).unwrap();
            }
            one.partition()
                .check_consistency(&g)
                .unwrap_or_else(|e| panic!("seed {seed:#x} step {step}: 1-index: {e}"));
            ak.check_consistency(&g)
                .unwrap_or_else(|e| panic!("seed {seed:#x} step {step}: A(2): {e}"));
        }
    }
}
