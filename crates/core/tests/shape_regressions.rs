//! Shape-regression tests: hand-built graph families that stress
//! distinct code paths of the split and merge phases, each verified
//! against the oracle after every update.
//!
//! The property suites explore random graphs; these pin down named
//! structures — stars, bipartite layers, deep chains, diamond lattices,
//! cycle chains — where specific behaviours (huge sibling fan-out,
//! cascading splits to depth n, simultaneous multi-block merges,
//! self-iedge blocks) must hold.

use xsi_core::check::{is_minimal_1index, minimality_violation};
use xsi_core::{reference, AkIndex, OneIndex};
use xsi_graph::{EdgeKind, Graph, NodeId};

fn assert_one_index_minimum(g: &Graph, idx: &OneIndex) {
    idx.partition().check_consistency(g).unwrap();
    assert!(
        is_minimal_1index(g, idx.partition()),
        "{:?}",
        minimality_violation(g, idx.partition())
    );
    let classes = reference::bisim_classes(g);
    assert_eq!(idx.canonical(), reference::canonical_partition(g, &classes));
}

fn assert_ak_minimum(g: &Graph, idx: &AkIndex) {
    idx.check_consistency(g).unwrap();
    let oracle = reference::k_bisim_chain(g, idx.k());
    let chain = idx.chain_assignments(g);
    for level in 0..=idx.k() {
        assert_eq!(
            reference::canonical_partition(g, &chain[level]),
            reference::canonical_partition(g, &oracle[level]),
            "level {level}"
        );
    }
}

/// Star: one hub with 200 leaves in one inode. Toggling extra edges into
/// single leaves exercises the split-out-of-a-huge-block path and the
/// sibling search across a large merge-candidate set.
#[test]
fn star_split_and_remerge() {
    let mut g = Graph::new();
    let hub = g.add_node("hub", None);
    g.insert_edge(g.root(), hub, EdgeKind::Child).unwrap();
    let witness = g.add_node("w", None);
    g.insert_edge(g.root(), witness, EdgeKind::Child).unwrap();
    let leaves: Vec<NodeId> = (0..200)
        .map(|_| {
            let l = g.add_node("leaf", None);
            g.insert_edge(hub, l, EdgeKind::Child).unwrap();
            l
        })
        .collect();
    let mut idx = OneIndex::build(&g);
    assert_eq!(idx.block_count(), 4); // ROOT, hub, w, {leaves}
                                      // Single out three leaves, one at a time.
    for &l in &leaves[..3] {
        idx.insert_edge(&mut g, witness, l, EdgeKind::IdRef)
            .unwrap();
        assert_one_index_minimum(&g, &idx);
    }
    // The three singled-out leaves share one inode (same parents).
    assert_eq!(idx.block_of(leaves[0]), idx.block_of(leaves[1]));
    assert_eq!(idx.block_count(), 5);
    // Put them back.
    for &l in &leaves[..3] {
        idx.delete_edge(&mut g, witness, l).unwrap();
        assert_one_index_minimum(&g, &idx);
    }
    assert_eq!(idx.block_count(), 4);
}

/// Bipartite layers: L1 (20 a-nodes) all pointing at L2 (20 b-nodes).
/// Deleting one cross edge must not split anything (the iedge survives
/// with multiplicity 399); deleting *all* edges from one a-node splits
/// the b-side only when some b loses its last L1 parent.
#[test]
fn bipartite_multiplicity_resilience() {
    let mut g = Graph::new();
    let r = g.root();
    let l1: Vec<NodeId> = (0..20)
        .map(|_| {
            let n = g.add_node("a", None);
            g.insert_edge(r, n, EdgeKind::Child).unwrap();
            n
        })
        .collect();
    let l2: Vec<NodeId> = (0..20).map(|_| g.add_node("b", None)).collect();
    for &u in &l1 {
        for &v in &l2 {
            g.insert_edge(u, v, EdgeKind::Child).unwrap();
        }
    }
    let mut idx = OneIndex::build(&g);
    assert_eq!(idx.block_count(), 3);
    // Deleting one edge is a no-op for the index.
    let stats = idx.delete_edge(&mut g, l1[0], l2[0]).unwrap().0;
    assert!(stats.no_op);
    assert_eq!(idx.block_count(), 3);
    assert_one_index_minimum(&g, &idx);
    // Delete the remaining edges of l1[0]: b-nodes keep 19 other parents
    // in the same inode, so the index still never splits.
    for &v in &l2[1..] {
        idx.delete_edge(&mut g, l1[0], v).unwrap();
    }
    // ... but l1[0] itself now has different children (none), which does
    // not affect backward bisimulation: still 3 blocks.
    assert_eq!(idx.block_count(), 3);
    assert_one_index_minimum(&g, &idx);
}

/// Deep chain with identical labels: a 300-deep path of `n` nodes. Each
/// node is its own class (different depth ⇒ different incoming path), a
/// worst case for per-node blocks; adding a shortcut edge reshuffles a
/// suffix.
#[test]
fn deep_chain_shortcut() {
    let mut g = Graph::new();
    let mut prev = g.root();
    let mut chain = Vec::new();
    for _ in 0..300 {
        let n = g.add_node("n", None);
        g.insert_edge(prev, n, EdgeKind::Child).unwrap();
        chain.push(n);
        prev = n;
    }
    let mut idx = OneIndex::build(&g);
    assert_eq!(idx.block_count(), 301);
    idx.insert_edge(&mut g, chain[9], chain[200], EdgeKind::IdRef)
        .unwrap();
    assert_one_index_minimum(&g, &idx);
    idx.delete_edge(&mut g, chain[9], chain[200]).unwrap();
    assert_one_index_minimum(&g, &idx);
}

/// Diamond lattice: 2 layers of {a,b} pairs where both parents point at
/// both children — blocks with multiple parents and multiplicity-2
/// iedges throughout, merged across the lattice.
#[test]
fn diamond_lattice_updates() {
    let mut g = Graph::new();
    let r = g.root();
    let mut layer: Vec<NodeId> = (0..4)
        .map(|_| {
            let n = g.add_node("l0", None);
            g.insert_edge(r, n, EdgeKind::Child).unwrap();
            n
        })
        .collect();
    for depth in 1..6 {
        let next: Vec<NodeId> = (0..4)
            .map(|_| g.add_node(&format!("l{depth}"), None))
            .collect();
        for &u in &layer {
            for &v in &next {
                g.insert_edge(u, v, EdgeKind::Child).unwrap();
            }
        }
        layer = next;
    }
    let mut idx = OneIndex::build(&g);
    assert_eq!(idx.block_count(), 7); // ROOT + one block per layer
                                      // Single a bottom node out via a witness, then restore.
    let w = g.add_node("w", None);
    idx.on_node_added(&g, w);
    idx.insert_edge(&mut g, r, w, EdgeKind::Child).unwrap();
    idx.insert_edge(&mut g, w, layer[0], EdgeKind::IdRef)
        .unwrap();
    assert_one_index_minimum(&g, &idx);
    assert_eq!(idx.block_count(), 9); // + {w}, bottom layer split in two
    idx.delete_edge(&mut g, w, layer[0]).unwrap();
    assert_one_index_minimum(&g, &idx);
    assert_eq!(idx.block_count(), 8); // diamond layers + {w}
}

/// A chain of 2-cycles for the A(k)-index: each pair (p_i, o_i) forms a
/// cycle, and consecutive pairs are linked. Exercises level-ordered
/// splits through cyclic structure for every k.
#[test]
fn cycle_chain_ak_maintenance() {
    for k in 1..=4 {
        let mut g = Graph::new();
        let r = g.root();
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        for _ in 0..6 {
            let p = g.add_node("p", None);
            let o = g.add_node("o", None);
            g.insert_edge(p, o, EdgeKind::Child).unwrap();
            g.insert_edge(o, p, EdgeKind::IdRef).unwrap();
            pairs.push((p, o));
        }
        g.insert_edge(r, pairs[0].0, EdgeKind::Child).unwrap();
        for w in pairs.windows(2) {
            g.insert_edge(w[0].1, w[1].0, EdgeKind::Child).unwrap();
        }
        let mut idx = AkIndex::build(&g, k);
        assert_ak_minimum(&g, &idx);
        // Cross-link the last pair back to the second: a long cycle.
        let (p1, _) = pairs[1];
        let (_, o5) = pairs[5];
        idx.insert_edge(&mut g, o5, p1, EdgeKind::IdRef).unwrap();
        assert_ak_minimum(&g, &idx);
        idx.delete_edge(&mut g, o5, p1).unwrap();
        assert_ak_minimum(&g, &idx);
    }
}

/// Self-iedge block: sibling nodes with edges among them (same label) so
/// the inode has an iedge to itself; splits and merges must keep the
/// self-counts straight.
///
/// This is also a live Figure 4 specimen: breaking the ring fragments the
/// block into per-position singletons (the true minimum — each node has a
/// distinct incoming path), but *closing* it again leaves the singletons
/// pairwise unmergeable (each has a different predecessor block), so the
/// maintained index is **minimal yet not minimum** — merging all six at
/// once would be needed, the Θ(n) simultaneous merge the paper proves
/// too expensive to chase. Theorem 1's cyclic clause promises exactly
/// minimality here, and that is what we assert.
#[test]
fn self_iedge_block_updates() {
    let mut g = Graph::new();
    let r = g.root();
    let hub = g.add_node("hub", None);
    g.insert_edge(r, hub, EdgeKind::Child).unwrap();
    let xs: Vec<NodeId> = (0..6)
        .map(|_| {
            let n = g.add_node("x", None);
            g.insert_edge(hub, n, EdgeKind::Child).unwrap();
            n
        })
        .collect();
    // Ring among the x's: every x has an x-parent and the hub.
    for i in 0..6 {
        g.insert_edge(xs[i], xs[(i + 1) % 6], EdgeKind::IdRef)
            .unwrap();
    }
    let mut idx = OneIndex::build(&g);
    assert_one_index_minimum(&g, &idx);
    let bx = idx.block_of(xs[0]);
    assert!(idx.has_iedge(bx, bx), "ring makes a self-iedge");
    // Break the ring at one point: every position gets its own incoming
    // path, so the minimum fragments into singletons — and the maintained
    // index follows exactly.
    idx.delete_edge(&mut g, xs[0], xs[1]).unwrap();
    assert_one_index_minimum(&g, &idx);
    assert_eq!(idx.block_count(), 8);
    // Restore the ring: the positions become bisimilar again, but no
    // *pairwise* merge is legal (distinct predecessor blocks) — the index
    // stays minimal (Theorem 1, cyclic clause) while the minimum drops
    // back to 3. The quality gap is the Figure 4 phenomenon.
    idx.insert_edge(&mut g, xs[0], xs[1], EdgeKind::IdRef)
        .unwrap();
    idx.partition().check_consistency(&g).unwrap();
    assert!(
        is_minimal_1index(&g, idx.partition()),
        "{:?}",
        minimality_violation(&g, idx.partition())
    );
    assert_eq!(idx.block_count(), 8, "minimal, stuck above the minimum");
    let min = reference::partition_size(&g, &reference::bisim_classes(&g));
    assert_eq!(min, 3, "the minimum re-coarsens once the ring closes");
    // Reconstruction is the escape hatch the paper prescribes.
    let rebuilt = xsi_core::rebuild::reconstruct_1index(&g, &idx);
    assert_eq!(rebuilt.block_count(), 3);
}
