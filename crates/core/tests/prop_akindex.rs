//! Randomized tests for the A(k)-index: Theorem 2 says the split/merge
//! algorithm maintains the unique **minimum** A(0)..A(k) chain on *any*
//! data graph — so after every random update the maintained chain must be
//! partition-identical to a from-scratch rebuild, level by level.
//!
//! Driven by the in-repo seeded PRNG so tier-1 runs fully offline.

use xsi_core::check::{ak_chain_violation, is_valid_ak_chain};
use xsi_core::reference;
use xsi_core::{AkIndex, SimpleAkIndex};
use xsi_graph::{EdgeKind, Graph, NodeId};
use xsi_workload::SplitMix64;

#[derive(Debug, Clone)]
struct Spec {
    labels: Vec<u8>,
    edges: Vec<(usize, usize)>,
    toggles: Vec<usize>,
    k: usize,
}

fn random_spec(
    rng: &mut SplitMix64,
    max_nodes: usize,
    max_edges: usize,
    max_toggles: usize,
) -> Spec {
    let n = rng.random_range(2..=max_nodes);
    let k = rng.random_range(0..=4usize);
    let labels = (0..n).map(|_| rng.random_range(0..3usize) as u8).collect();
    let edges = (0..rng.random_range(0..=max_edges))
        .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
        .collect();
    let toggles = (0..rng.random_range(1..=max_toggles))
        .map(|_| rng.random_range(0..n * n))
        .collect();
    Spec {
        labels,
        edges,
        toggles,
        k,
    }
}

fn build_graph(spec: &Spec) -> (Graph, Vec<NodeId>) {
    let mut g = Graph::new();
    let names = ["a", "b", "c"];
    let nodes: Vec<NodeId> = spec
        .labels
        .iter()
        .map(|&l| g.add_node(names[l as usize], None))
        .collect();
    let root = g.root();
    for &n in &nodes {
        g.insert_edge(root, n, EdgeKind::Child).unwrap();
    }
    for &(u, v) in &spec.edges {
        if u != v {
            let _ = g.insert_edge(nodes[u], nodes[v], EdgeKind::Child);
        }
    }
    (g, nodes)
}

fn assert_minimum_chain(g: &Graph, idx: &AkIndex) {
    idx.check_consistency(g).unwrap();
    let chain = idx.chain_assignments(g);
    assert!(
        is_valid_ak_chain(g, &chain),
        "{:?}\n{idx:?}",
        ak_chain_violation(g, &chain)
    );
    let oracle = reference::k_bisim_chain(g, idx.k());
    for level in 0..=idx.k() {
        assert_eq!(
            reference::canonical_partition(g, &chain[level]),
            reference::canonical_partition(g, &oracle[level]),
            "level {level} of k={} chain is not minimum\ngraph: {g:?}\n{idx:?}",
            idx.k()
        );
    }
}

/// Construction equals the oracle chain at every level.
#[test]
fn construction_matches_oracle() {
    for case in 0..160u64 {
        let mut rng = SplitMix64::seed_from_u64(0x1A4B + case);
        let s = random_spec(&mut rng, 8, 18, 1);
        let (g, _) = build_graph(&s);
        let idx = AkIndex::build(&g, s.k);
        assert_minimum_chain(&g, &idx);
    }
}

/// Random edge toggles: the maintained chain stays the minimum chain
/// (Theorem 2) on arbitrary, possibly cyclic graphs.
#[test]
fn updates_maintain_minimum_chain() {
    for case in 0..160u64 {
        let mut rng = SplitMix64::seed_from_u64(0x2A4B + case);
        let s = random_spec(&mut rng, 7, 10, 16);
        let (mut g, nodes) = build_graph(&s);
        let mut idx = AkIndex::build(&g, s.k);
        let n = nodes.len();
        for &t in &s.toggles {
            let (u, v) = (nodes[t / n], nodes[t % n]);
            if u == v {
                continue;
            }
            if g.has_edge(u, v) {
                idx.delete_edge(&mut g, u, v).unwrap();
            } else {
                idx.insert_edge(&mut g, u, v, EdgeKind::IdRef).unwrap();
            }
            assert_minimum_chain(&g, &idx);
        }
    }
}

/// The simple baseline is always a refinement of the minimum (safe),
/// never smaller than it, and a rebuild lands exactly on the minimum.
#[test]
fn simple_baseline_is_safe() {
    for case in 0..160u64 {
        let mut rng = SplitMix64::seed_from_u64(0x3A4B + case);
        let s = random_spec(&mut rng, 7, 10, 12);
        let (mut g, nodes) = build_graph(&s);
        let mut simple = SimpleAkIndex::build(&g, s.k);
        let n = nodes.len();
        for &t in &s.toggles {
            let (u, v) = (nodes[t / n], nodes[t % n]);
            if u == v {
                continue;
            }
            if g.has_edge(u, v) {
                simple.delete_edge(&mut g, u, v).unwrap();
            } else {
                simple.insert_edge(&mut g, u, v, EdgeKind::IdRef).unwrap();
            }
            let oracle = reference::k_bisim_chain(&g, s.k).pop().unwrap();
            let min_size = reference::partition_size(&g, &oracle);
            assert!(simple.block_count() >= min_size, "case {case}");
            // Refinement check: same simple block ⇒ same oracle class.
            let sa = simple.assignment(&g);
            let mut map = std::collections::HashMap::new();
            for w in g.nodes() {
                let e = map.entry(sa[w.index()]).or_insert(oracle[w.index()]);
                assert_eq!(*e, oracle[w.index()], "case {case}: not a refinement");
            }
        }
        let rebuilt = SimpleAkIndex::build(&g, s.k);
        let oracle = reference::k_bisim_chain(&g, s.k).pop().unwrap();
        assert_eq!(
            rebuilt.canonical(&g),
            reference::canonical_partition(&g, &oracle),
            "case {case}"
        );
    }
}

/// Mixed node + edge life cycle: add a node, wire it, unwire it,
/// remove it — the chain must return to its original partition.
#[test]
fn node_lifecycle_round_trip() {
    for case in 0..160u64 {
        let mut rng = SplitMix64::seed_from_u64(0x4A4B + case);
        let s = random_spec(&mut rng, 6, 8, 1);
        let label = rng.random_range(0..3usize) as u8;
        let attach = rng.random_range(0..6usize);
        let (mut g, nodes) = build_graph(&s);
        let mut idx = AkIndex::build(&g, s.k);
        let before = idx.canonical();
        let names = ["a", "b", "c"];
        let fresh = g.add_node(names[label as usize], None);
        idx.on_node_added(&g, fresh);
        assert_minimum_chain(&g, &idx);
        let anchor = nodes[attach % nodes.len()];
        idx.insert_edge(&mut g, anchor, fresh, EdgeKind::Child)
            .unwrap();
        assert_minimum_chain(&g, &idx);
        idx.delete_edge(&mut g, anchor, fresh).unwrap();
        assert_minimum_chain(&g, &idx);
        idx.on_node_removing(&g, fresh);
        g.remove_node(fresh).unwrap();
        assert_eq!(idx.canonical(), before, "case {case}");
    }
}
