//! Randomized tests: the 1-index split/merge maintenance versus the
//! naive fixpoint oracle, on randomized graphs and update sequences.
//!
//! These encode the paper's theorems directly:
//! * Lemma 3 / Theorem 1 (cyclic clause): after any update the index is a
//!   valid, **minimal** 1-index;
//! * Theorem 1 (acyclic clause): on DAGs the maintained index *equals*
//!   the unique minimum 1-index (the oracle's fixpoint partition).
//!
//! Driven by the in-repo seeded PRNG so tier-1 runs fully offline.

use xsi_core::check::{is_valid_1index, minimality_violation};
use xsi_core::reference;
use xsi_core::OneIndex;
use xsi_graph::{is_acyclic, EdgeKind, Graph, NodeId};
use xsi_workload::SplitMix64;

/// A small random graph description: node labels from a tiny alphabet and
/// candidate edges as (from, to) index pairs.
#[derive(Debug, Clone)]
struct RandomGraphSpec {
    labels: Vec<u8>,
    edges: Vec<(usize, usize)>,
    /// Updates: (edge index into `all_pairs`, insert?) toggles.
    toggles: Vec<usize>,
}

fn random_spec(
    rng: &mut SplitMix64,
    max_nodes: usize,
    max_edges: usize,
    max_toggles: usize,
) -> RandomGraphSpec {
    let n = rng.random_range(2..=max_nodes);
    let labels = (0..n).map(|_| rng.random_range(0..4usize) as u8).collect();
    let edges = (0..rng.random_range(0..=max_edges))
        .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
        .collect();
    let toggles = (0..rng.random_range(1..=max_toggles))
        .map(|_| rng.random_range(0..n * n))
        .collect();
    RandomGraphSpec {
        labels,
        edges,
        toggles,
    }
}

/// Materializes the spec: nodes (each connected from the root so the graph
/// is rooted), then the initial edge set (dedup, no self-loops).
fn build_graph(spec: &RandomGraphSpec) -> (Graph, Vec<NodeId>) {
    let mut g = Graph::new();
    let labels = ["a", "b", "c", "d"];
    let nodes: Vec<NodeId> = spec
        .labels
        .iter()
        .map(|&l| g.add_node(labels[l as usize], None))
        .collect();
    let root = g.root();
    for &n in &nodes {
        g.insert_edge(root, n, EdgeKind::Child).unwrap();
    }
    for &(u, v) in &spec.edges {
        if u != v {
            let _ = g.insert_edge(nodes[u], nodes[v], EdgeKind::Child);
        }
    }
    (g, nodes)
}

fn assert_minimal_and_tracking(g: &Graph, idx: &OneIndex) {
    idx.partition().check_consistency(g).unwrap();
    assert!(is_valid_1index(g, idx.partition()));
    if let Some(v) = minimality_violation(g, idx.partition()) {
        panic!(
            "index not minimal: {v}\ngraph: {g:?}\nindex: {:?}",
            idx.partition()
        );
    }
    if is_acyclic(g) {
        let classes = reference::bisim_classes(g);
        assert_eq!(
            idx.canonical(),
            reference::canonical_partition(g, &classes),
            "DAG index must be the minimum 1-index\ngraph: {g:?}"
        );
    }
}

/// Construction matches the oracle on arbitrary (cyclic) graphs.
#[test]
fn construction_matches_oracle() {
    for case in 0..192u64 {
        let mut rng = SplitMix64::seed_from_u64(0x1C0D + case);
        let spec = random_spec(&mut rng, 8, 20, 1);
        let (g, _) = build_graph(&spec);
        let idx = OneIndex::build(&g);
        idx.partition().check_consistency(&g).unwrap();
        let classes = reference::bisim_classes(&g);
        assert_eq!(
            idx.canonical(),
            reference::canonical_partition(&g, &classes),
            "case {case}"
        );
    }
}

/// Toggling random edges (insert if absent, delete if present) keeps
/// the maintained index minimal, and minimum on DAGs.
#[test]
fn updates_preserve_minimality() {
    for case in 0..192u64 {
        let mut rng = SplitMix64::seed_from_u64(0x2C0D + case);
        let spec = random_spec(&mut rng, 7, 12, 24);
        let (mut g, nodes) = build_graph(&spec);
        let mut idx = OneIndex::build(&g);
        let n = nodes.len();
        for &t in &spec.toggles {
            let (u, v) = (nodes[t / n], nodes[t % n]);
            if u == v {
                continue;
            }
            if g.has_edge(u, v) {
                // Never disconnect the root edges; they are part of the
                // fixture. Toggle only non-root edges.
                idx.delete_edge(&mut g, u, v).unwrap();
            } else {
                idx.insert_edge(&mut g, u, v, EdgeKind::IdRef).unwrap();
            }
            assert_minimal_and_tracking(&g, &idx);
        }
    }
}

/// Propagate (split-only) always keeps the index *valid*, and a final
/// merge-capable update sequence... propagate's guarantee is only
/// safety: verify validity after every toggle.
#[test]
fn propagate_preserves_validity() {
    for case in 0..192u64 {
        let mut rng = SplitMix64::seed_from_u64(0x3C0D + case);
        let spec = random_spec(&mut rng, 7, 12, 16);
        let (mut g, nodes) = build_graph(&spec);
        let mut idx = OneIndex::build(&g);
        let n = nodes.len();
        for &t in &spec.toggles {
            let (u, v) = (nodes[t / n], nodes[t % n]);
            if u == v {
                continue;
            }
            if g.has_edge(u, v) {
                idx.propagate_delete_edge(&mut g, u, v).unwrap();
            } else {
                idx.propagate_insert_edge(&mut g, u, v, EdgeKind::IdRef)
                    .unwrap();
            }
            idx.partition().check_consistency(&g).unwrap();
            assert!(is_valid_1index(&g, idx.partition()), "case {case}");
            // Propagate never drops below the minimum size.
            let min = reference::partition_size(&g, &reference::bisim_classes(&g));
            assert!(idx.block_count() >= min, "case {case}");
        }
    }
}

/// Subgraph round-trip: extracting, removing and re-adding a random
/// subtree preserves index minimality (Corollary 1).
#[test]
fn subgraph_removal_and_addition() {
    for case in 0..192u64 {
        let mut rng = SplitMix64::seed_from_u64(0x4C0D + case);
        let spec = random_spec(&mut rng, 8, 16, 1);
        let pick = rng.random_range(0..8usize);
        let (mut g, nodes) = build_graph(&spec);
        let mut idx = OneIndex::build(&g);
        let root_pick = nodes[pick % nodes.len()];
        let (sub, members) = xsi_graph::extract_subtree(&g, root_pick);
        idx.remove_subgraph(&mut g, &members).unwrap();
        assert_minimal_and_tracking(&g, &idx);
        let (_, _stats) = idx.add_subgraph(&mut g, &sub).unwrap();
        assert_minimal_and_tracking(&g, &idx);
    }
}
