//! Property-based tests: the 1-index split/merge maintenance versus the
//! naive fixpoint oracle, on randomized graphs and update sequences.
//!
//! These encode the paper's theorems directly:
//! * Lemma 3 / Theorem 1 (cyclic clause): after any update the index is a
//!   valid, **minimal** 1-index;
//! * Theorem 1 (acyclic clause): on DAGs the maintained index *equals*
//!   the unique minimum 1-index (the oracle's fixpoint partition).

use proptest::prelude::*;
use xsi_core::check::{is_valid_1index, minimality_violation};
use xsi_core::reference;
use xsi_core::OneIndex;
use xsi_graph::{is_acyclic, EdgeKind, Graph, NodeId};

/// A small random graph description: node labels from a tiny alphabet and
/// candidate edges as (from, to) index pairs.
#[derive(Debug, Clone)]
struct RandomGraphSpec {
    labels: Vec<u8>,
    edges: Vec<(usize, usize)>,
    /// Updates: (edge index into `all_pairs`, insert?) toggles.
    toggles: Vec<usize>,
}

fn spec_strategy(
    max_nodes: usize,
    max_edges: usize,
    max_toggles: usize,
) -> impl Strategy<Value = RandomGraphSpec> {
    (2..=max_nodes).prop_flat_map(move |n| {
        (
            proptest::collection::vec(0u8..4, n),
            proptest::collection::vec((0..n, 0..n), 0..=max_edges),
            proptest::collection::vec(0..(n * n), 1..=max_toggles),
        )
            .prop_map(|(labels, edges, toggles)| RandomGraphSpec {
                labels,
                edges,
                toggles,
            })
    })
}

/// Materializes the spec: nodes (each connected from the root so the graph
/// is rooted), then the initial edge set (dedup, no self-loops).
fn build_graph(spec: &RandomGraphSpec) -> (Graph, Vec<NodeId>) {
    let mut g = Graph::new();
    let labels = ["a", "b", "c", "d"];
    let nodes: Vec<NodeId> = spec
        .labels
        .iter()
        .map(|&l| g.add_node(labels[l as usize], None))
        .collect();
    let root = g.root();
    for &n in &nodes {
        g.insert_edge(root, n, EdgeKind::Child).unwrap();
    }
    for &(u, v) in &spec.edges {
        if u != v {
            let _ = g.insert_edge(nodes[u], nodes[v], EdgeKind::Child);
        }
    }
    (g, nodes)
}

fn assert_minimal_and_tracking(g: &Graph, idx: &OneIndex) {
    idx.partition().check_consistency(g).unwrap();
    assert!(is_valid_1index(g, idx.partition()));
    if let Some(v) = minimality_violation(g, idx.partition()) {
        panic!(
            "index not minimal: {v}\ngraph: {g:?}\nindex: {:?}",
            idx.partition()
        );
    }
    if is_acyclic(g) {
        let classes = reference::bisim_classes(g);
        assert_eq!(
            idx.canonical(),
            reference::canonical_partition(g, &classes),
            "DAG index must be the minimum 1-index\ngraph: {g:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Construction matches the oracle on arbitrary (cyclic) graphs.
    #[test]
    fn construction_matches_oracle(spec in spec_strategy(8, 20, 1)) {
        let (g, _) = build_graph(&spec);
        let idx = OneIndex::build(&g);
        idx.partition().check_consistency(&g).unwrap();
        let classes = reference::bisim_classes(&g);
        prop_assert_eq!(idx.canonical(), reference::canonical_partition(&g, &classes));
    }

    /// Toggling random edges (insert if absent, delete if present) keeps
    /// the maintained index minimal, and minimum on DAGs.
    #[test]
    fn updates_preserve_minimality(spec in spec_strategy(7, 12, 24)) {
        let (mut g, nodes) = build_graph(&spec);
        let mut idx = OneIndex::build(&g);
        let n = nodes.len();
        for &t in &spec.toggles {
            let (u, v) = (nodes[t / n], nodes[t % n]);
            if u == v {
                continue;
            }
            if g.has_edge(u, v) {
                // Never disconnect the root edges; they are part of the
                // fixture. Toggle only non-root edges.
                idx.delete_edge(&mut g, u, v).unwrap();
            } else {
                idx.insert_edge(&mut g, u, v, EdgeKind::IdRef).unwrap();
            }
            assert_minimal_and_tracking(&g, &idx);
        }
    }

    /// Propagate (split-only) always keeps the index *valid*, and a final
    /// merge-capable update sequence... propagate's guarantee is only
    /// safety: verify validity after every toggle.
    #[test]
    fn propagate_preserves_validity(spec in spec_strategy(7, 12, 16)) {
        let (mut g, nodes) = build_graph(&spec);
        let mut idx = OneIndex::build(&g);
        let n = nodes.len();
        for &t in &spec.toggles {
            let (u, v) = (nodes[t / n], nodes[t % n]);
            if u == v {
                continue;
            }
            if g.has_edge(u, v) {
                idx.propagate_delete_edge(&mut g, u, v).unwrap();
            } else {
                idx.propagate_insert_edge(&mut g, u, v, EdgeKind::IdRef).unwrap();
            }
            idx.partition().check_consistency(&g).unwrap();
            prop_assert!(is_valid_1index(&g, idx.partition()));
            // Propagate never drops below the minimum size.
            let min = reference::partition_size(&g, &reference::bisim_classes(&g));
            prop_assert!(idx.block_count() >= min);
        }
    }

    /// Subgraph round-trip: extracting, removing and re-adding a random
    /// subtree preserves index minimality (Corollary 1).
    #[test]
    fn subgraph_removal_and_addition(spec in spec_strategy(8, 16, 1), pick in 0usize..8) {
        let (mut g, nodes) = build_graph(&spec);
        let mut idx = OneIndex::build(&g);
        let root_pick = nodes[pick % nodes.len()];
        let (sub, members) = xsi_graph::extract_subtree(&g, root_pick);
        idx.remove_subgraph(&mut g, &members).unwrap();
        assert_minimal_and_tracking(&g, &idx);
        let (_, _stats) = idx.add_subgraph(&mut g, &sub).unwrap();
        assert_minimal_and_tracking(&g, &idx);
    }
}
