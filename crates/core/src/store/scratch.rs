//! Epoch-stamped dense scratch tables for per-operation maps keyed by
//! slot index.
//!
//! `split_by_set` used to allocate two `HashMap`s and a `HashSet` per
//! call — on the hottest path in the system. A [`ScratchTable`] lives
//! inside the owning structure and is reset in O(1) by bumping an
//! epoch stamp; entries written under an older epoch read as absent.
//! The touched-key list preserves first-write order, so callers get a
//! deterministic iteration order for free (and sort it when a
//! different order is part of the contract).

/// A dense `u32 → V` map with O(1) bulk reset via epoch stamps.
#[derive(Clone, Debug, Default)]
pub struct ScratchTable<V: Copy + Default> {
    stamp: Vec<u32>,
    vals: Vec<V>,
    touched: Vec<u32>,
    epoch: u32,
}

impl<V: Copy + Default> ScratchTable<V> {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a fresh use of the table: previous entries become absent.
    pub fn begin(&mut self) {
        self.touched.clear();
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // One clear per 2^32 uses: reset the stamps for real.
                self.stamp.iter_mut().for_each(|s| *s = 0);
                1
            }
        };
    }

    /// Grows the key space to cover indexes `< n`.
    pub fn ensure_len(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.vals.resize(n, V::default());
        }
    }

    /// The value at `i`, if written since the last `begin`. Indexes
    /// beyond the reserved key space read as absent.
    pub fn get(&self, i: u32) -> Option<V> {
        let i = i as usize;
        (self.stamp.get(i) == Some(&self.epoch)).then(|| self.vals[i]) // xsi-lint: allow(slice-index, the stamp check proves i is within the resized tables)
    }

    /// Writes `v` at `i` (growing the key space if needed), recording
    /// first-writes in the touched list.
    pub fn set(&mut self, i: u32, v: V) {
        self.ensure_len(i as usize + 1);
        // xsi-lint: allow(slice-index, ensure_len grew stamp and vals past i)
        if self.stamp[i as usize] != self.epoch {
            self.stamp[i as usize] = self.epoch; // xsi-lint: allow(slice-index, ensure_len grew stamp and vals past i)
            self.touched.push(i);
        }
        self.vals[i as usize] = v; // xsi-lint: allow(slice-index, ensure_len grew stamp and vals past i)
    }

    /// Mutates the entry at `i` through `f`, initializing absent
    /// entries to `V::default()` first.
    pub fn update(&mut self, i: u32, f: impl FnOnce(&mut V)) {
        self.ensure_len(i as usize + 1);
        // xsi-lint: allow(slice-index, ensure_len grew stamp and vals past i)
        if self.stamp[i as usize] != self.epoch {
            self.stamp[i as usize] = self.epoch; // xsi-lint: allow(slice-index, ensure_len grew stamp and vals past i)
            self.vals[i as usize] = V::default(); // xsi-lint: allow(slice-index, ensure_len grew stamp and vals past i)
            self.touched.push(i);
        }
        f(&mut self.vals[i as usize]); // xsi-lint: allow(slice-index, ensure_len grew stamp and vals past i)
    }

    /// Keys written since the last `begin`, in first-write order.
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// Number of distinct keys written since the last `begin`.
    pub fn touched_len(&self) -> usize {
        self.touched.len()
    }
}

impl<V: Copy + Default> crate::obs::mem::HeapUse for ScratchTable<V> {
    /// The three backing vectors, capacity-based. Scratch tables are
    /// long-lived per-index allocations (that is the point of them), so
    /// they are part of the persistent footprint.
    fn heap_use(&self) -> usize {
        crate::obs::mem::vec_cap_heap(&self.stamp)
            + crate::obs::mem::vec_cap_heap(&self.vals)
            + crate::obs::mem::vec_cap_heap(&self.touched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_resets_in_o1() {
        let mut t: ScratchTable<u32> = ScratchTable::new();
        t.begin();
        t.set(4, 10);
        t.update(4, |v| *v += 1);
        t.update(9, |v| *v += 5);
        assert_eq!(t.get(4), Some(11));
        assert_eq!(t.get(9), Some(5));
        assert_eq!(t.touched(), &[4, 9]);
        t.begin();
        assert_eq!(t.get(4), None);
        assert_eq!(t.get(9), None);
        assert_eq!(t.touched(), &[] as &[u32]);
        t.set(4, 1);
        assert_eq!(t.get(4), Some(1));
    }

    #[test]
    fn out_of_range_reads_absent() {
        let mut t: ScratchTable<u32> = ScratchTable::new();
        t.begin();
        assert_eq!(t.get(1000), None);
        t.set(2, 3);
        assert_eq!(t.get(1000), None);
    }
}
