//! Copy-on-write extent runs for the freeze path (DESIGN.md §11).
//!
//! A [`CowVec`] is an `Arc`-backed `Vec` that dereferences to a slice,
//! so every *read* site of a block extent compiles unchanged, while
//! every *write* site goes through [`CowVec::make_mut`] and pays for a
//! clone only when the run is actually shared with a frozen
//! [`crate::view::IndexSnapshot`]. That is the whole freeze contract:
//! `freeze()` takes `Arc` clones of the live runs in O(blocks) without
//! copying a single node id, and the writer's next mutation of a frozen
//! block clones exactly that block's run — counted in the `clones`
//! out-parameter so the obs layer can export `snapshot_cow_clones`.
//!
//! Single-writer like everything else in the data plane: the live index
//! mutates through `&mut self`, so `make_mut` needs no locking —
//! `Arc::make_mut` alone decides between in-place mutation (unique) and
//! clone-first (shared with at least one snapshot).

use std::ops::Deref;
use std::sync::Arc;

/// An `Arc`-shared node run with copy-on-write mutation.
///
/// Reads deref to `&[T]`; writes must go through [`CowVec::make_mut`],
/// which clones the underlying `Vec` first iff a snapshot still shares
/// it (incrementing the caller's clone counter when it does).
#[derive(Clone, Debug)]
pub struct CowVec<T> {
    inner: Arc<Vec<T>>,
}

impl<T> Default for CowVec<T> {
    fn default() -> Self {
        CowVec {
            inner: Arc::new(Vec::new()),
        }
    }
}

impl<T: Clone> CowVec<T> {
    /// An empty, uniquely owned run.
    pub fn new() -> Self {
        CowVec {
            inner: Arc::new(Vec::new()),
        }
    }

    /// Mutable access to the underlying `Vec`. If the run is shared
    /// (a frozen snapshot holds it), the run is cloned first and
    /// `clones` is incremented — the snapshot keeps the original.
    #[inline]
    pub fn make_mut(&mut self, clones: &mut u64) -> &mut Vec<T> {
        if Arc::strong_count(&self.inner) > 1 {
            *clones += 1;
        }
        Arc::make_mut(&mut self.inner)
    }

    /// Shares the run with a snapshot: an O(1) `Arc` clone, no node
    /// ids copied.
    #[inline]
    pub fn share(&self) -> Arc<Vec<T>> {
        Arc::clone(&self.inner)
    }

    /// Whether at least one snapshot still shares this run.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.inner) > 1
    }

    /// Consumes the run, returning the `Vec` iff it is uniquely owned
    /// — the allocation-recycling path in `merge_blocks`. Returns
    /// `None` when a snapshot shares the run (the snapshot keeps it;
    /// the caller starts fresh).
    pub fn take_unique(self) -> Option<Vec<T>> {
        Arc::try_unwrap(self.inner).ok()
    }
}

impl<T> CowVec<T> {
    /// Estimated heap bytes of the run: the `Arc<Vec<T>>` header
    /// allocation plus the element buffer (capacity-based). A shared
    /// run reports the same bytes from every holder — the attribution
    /// layer ([`crate::obs::mem::MemReport`]) decides who counts it.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        crate::obs::mem::ARC_VEC_HEADER + self.inner.capacity() * std::mem::size_of::<T>()
    }
}

impl<T> crate::obs::mem::HeapUse for CowVec<T> {
    fn heap_use(&self) -> usize {
        self.heap_bytes()
    }
}

impl<T> Deref for CowVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        &self.inner
    }
}

impl<T> From<Vec<T>> for CowVec<T> {
    fn from(v: Vec<T>) -> Self {
        CowVec { inner: Arc::new(v) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_mutation_never_clones() {
        let mut v: CowVec<u32> = CowVec::new();
        let mut clones = 0u64;
        v.make_mut(&mut clones).push(1);
        v.make_mut(&mut clones).push(2);
        assert_eq!(&*v, &[1, 2]);
        assert_eq!(clones, 0);
        assert!(!v.is_shared());
    }

    #[test]
    fn shared_mutation_clones_once_and_preserves_the_snapshot() {
        let mut v: CowVec<u32> = vec![1, 2, 3].into();
        let snap = v.share();
        assert!(v.is_shared());
        let mut clones = 0u64;
        v.make_mut(&mut clones).push(4);
        assert_eq!(clones, 1, "first mutation of a shared run clones");
        assert_eq!(&*v, &[1, 2, 3, 4]);
        assert_eq!(&*snap, &[1, 2, 3], "the frozen run is untouched");
        // The run is unique again: further mutation is in place.
        v.make_mut(&mut clones).push(5);
        assert_eq!(clones, 1);
    }

    #[test]
    fn take_unique_recycles_only_unshared_runs() {
        let v: CowVec<u32> = vec![7].into();
        assert_eq!(v.take_unique(), Some(vec![7]));
        let v: CowVec<u32> = vec![8].into();
        let _snap = v.share();
        assert_eq!(v.take_unique(), None);
    }
}
