//! # `core::store` — the dense data plane (DESIGN.md §10)
//!
//! The paper's split/merge loops spend their time in exactly three
//! access patterns: *block-by-id* (extent moves, partner allocation),
//! *count-by-neighbor-block* (iedge multiplicities), and
//! *value-by-node* (assignment and position side tables). Before this
//! module those went through `Vec` + hand-rolled free lists and
//! `HashMap`s — the same structure class behind the PR 2/PR 4
//! nondeterminism bug family. The store gives each pattern a dedicated
//! dense structure:
//!
//! * [`SlotMap`] — generation-checked block storage. Recycled slots bump
//!   a generation counter, and every handle ([`SlotKey`]) carries the
//!   generation it was minted with, so a stale handle (held across a
//!   `release`) is caught by `debug_assert` instead of silently reading
//!   the block that reused the slot.
//! * [`IedgeMap`] — adaptive neighbor-count maps. Low-degree blocks (the
//!   overwhelmingly common case in XML block graphs) stay in an inline
//!   sorted array; above [`iedge::INLINE_CAP`] entries the map spills to
//!   a `BTreeMap`. Both representations iterate in sorted key order, so
//!   iteration order can never leak nondeterminism.
//! * [`ScratchTable`] — epoch-stamped dense maps over slot indexes for
//!   the transient per-operation tables (splitter counts, partner
//!   assignment) that used to be freshly allocated `HashMap`s on every
//!   `split_by_set` call.
//! * [`CowVec`] — `Arc`-shared extent runs with copy-on-write mutation,
//!   the storage contract behind [`crate::view::IndexSnapshot`]: a
//!   freeze shares every run in O(1) each, and the writer's next
//!   mutation of a frozen block clones only that block's run.
//!
//! The [`StoreReport`] summarizes iedge-map representation state for the
//! obs layer (inline vs spilled population, cumulative spill events,
//! probe lengths).

pub mod cow;
pub mod iedge;
pub mod scratch;
pub mod slot;

pub use cow::CowVec;
pub use iedge::{IedgeMap, IedgeRepr};
pub use scratch::ScratchTable;
pub use slot::{SlotKey, SlotMap};

/// A point-in-time summary of every [`IedgeMap`] owned by one index
/// structure, cheap enough to compute on demand (one pass over the
/// block table) and exported through the obs layer as gauges plus a
/// probe-length histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreReport {
    /// Live maps currently in the inline representation.
    pub inline_maps: u64,
    /// Live maps currently spilled to the sorted-map representation.
    pub spilled_maps: u64,
    /// Cumulative inline→spilled transitions, including maps that have
    /// since been cleared or whose block was recycled.
    pub spill_events: u64,
    /// Total (block, neighbor) entries across live maps.
    pub entries: u64,
    /// Largest live map.
    pub max_entries: u64,
    /// Sum over live maps of the worst-case comparison count of one
    /// lookup (⌈log₂ len⌉ + 1); divide by the map population for a mean
    /// probe length.
    pub probe_total: u64,
    /// Live blocks scanned.
    pub blocks: u64,
}

impl StoreReport {
    /// Folds one *live* map's representation state into the report.
    /// Spill events are accounted separately (they survive in recycled
    /// slots): add [`IedgeMap::spill_count`] over **all** slots to
    /// `spill_events`.
    pub fn absorb<K: slot::SlotKey>(&mut self, m: &IedgeMap<K>) {
        match m.repr() {
            IedgeRepr::Inline => self.inline_maps += 1,
            IedgeRepr::Spilled => self.spilled_maps += 1,
        }
        let len = m.len() as u64;
        self.entries += len;
        self.max_entries = self.max_entries.max(len);
        self.probe_total += m.probe_len() as u64;
    }

    /// Merges another report (e.g. per-level or per-family shards).
    pub fn merge(&mut self, other: &StoreReport) {
        self.inline_maps += other.inline_maps;
        self.spilled_maps += other.spilled_maps;
        self.spill_events += other.spill_events;
        self.entries += other.entries;
        self.max_entries = self.max_entries.max(other.max_entries);
        self.probe_total += other.probe_total;
        self.blocks += other.blocks;
    }
}
