//! Generation-checked slot map: dense block storage with stale-handle
//! detection.
//!
//! Block ids are recycled through a LIFO free list (so id assignment
//! stays deterministic and dense), which historically meant a handle
//! held across a `release` could silently alias whatever block reused
//! the slot. Here every slot carries a generation that is bumped on
//! release, and every handle carries the generation it was minted with;
//! `debug_assert`s on each access catch staleness in debug builds and
//! the `release-debug-asserts` CI job, while release builds pay a plain
//! array index.

use std::marker::PhantomData;

/// A typed handle into a [`SlotMap`]: a slot index plus the generation
/// the handle was minted with. Implemented by `BlockId` and `ABlockId`
/// so each index family keeps its own handle type.
pub trait SlotKey: Copy + Eq + Ord + std::fmt::Debug {
    /// Reassembles a handle from its parts. `gen` must come from the
    /// owning map (or a serialized snapshot of it).
    fn from_raw_parts(idx: u32, gen: u32) -> Self;
    /// The slot index.
    fn idx(self) -> u32;
    /// The generation this handle was minted with.
    fn gen(self) -> u32;
    /// The slot index as a `usize`, for table indexing.
    fn index(self) -> usize {
        self.idx() as usize
    }
    /// A never-valid handle, usable as an array filler / sentinel.
    fn dangling() -> Self {
        Self::from_raw_parts(u32::MAX, u32::MAX)
    }
}

#[derive(Clone)]
struct Slot<T> {
    /// Bumped every time the slot is released; a handle is current iff
    /// its generation matches.
    gen: u32,
    alive: bool,
    val: T,
}

/// Dense generational storage: values stay in place across recycling
/// (so `Vec` capacity inside them is reused), handles are checked
/// against the slot generation in debug builds.
#[derive(Clone)]
pub struct SlotMap<K: SlotKey, T> {
    slots: Vec<Slot<T>>,
    /// LIFO free list of slot indexes — deterministic reuse order.
    free: Vec<u32>,
    live: usize,
    _key: PhantomData<K>,
}

impl<K: SlotKey, T: Default> Default for SlotMap<K, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: SlotKey, T: Default> SlotMap<K, T> {
    /// An empty map.
    pub fn new() -> Self {
        SlotMap {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            _key: PhantomData,
        }
    }

    /// Allocates a slot, reusing the most recently released one if any.
    /// The returned value is whatever the slot last held (cleared by the
    /// caller at release time per the release contract) or `T::default()`
    /// for a brand-new slot; the caller re-initializes its fields.
    pub fn alloc(&mut self) -> (K, &mut T) {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            let s = &mut self.slots[idx as usize]; // xsi-lint: allow(slice-index, free-list entries index previously pushed slots)
            debug_assert!(!s.alive, "free list entry must be dead");
            s.alive = true;
            (K::from_raw_parts(idx, s.gen), &mut s.val)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("invariant: < 2^32 slots");
            self.slots.push(Slot {
                gen: 0,
                alive: true,
                val: T::default(),
            });
            (K::from_raw_parts(idx, 0), &mut self.slots[idx as usize].val) // xsi-lint: allow(slice-index, idx was just pushed)
        }
    }

    /// Releases a slot: the handle (and every copy of it) becomes stale,
    /// the slot joins the free list, and the value stays in place for
    /// the next `alloc` to reuse.
    pub fn release(&mut self, k: K) {
        debug_assert!(self.is_current(k), "release of stale handle {k:?}");
        let s = &mut self.slots[k.index()]; // xsi-lint: allow(slice-index, release asserts the handle is current, so idx is in range)
        s.alive = false;
        s.gen = s.gen.wrapping_add(1);
        self.live -= 1;
        self.free.push(k.idx());
    }

    /// Is `k` a live, current-generation handle?
    pub fn is_current(&self, k: K) -> bool {
        self.slots
            .get(k.index())
            .is_some_and(|s| s.alive && s.gen == k.gen())
    }

    /// The live handle for slot `idx` (e.g. from a raw `u32` in a query
    /// view or a snapshot), or `None` if the slot is dead or out of
    /// range.
    pub fn handle_at(&self, idx: u32) -> Option<K> {
        self.slots
            .get(idx as usize)
            .filter(|s| s.alive)
            .map(|s| K::from_raw_parts(idx, s.gen))
    }

    /// Number of live slots.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no slot is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + free), i.e. the exclusive
    /// upper bound on slot indexes.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Pre-sizes the slot vector (no slots are allocated).
    pub fn reserve(&mut self, additional: usize) {
        self.slots.reserve(additional);
    }

    /// Live entries in slot-index order — deterministic by construction.
    pub fn iter(&self) -> impl Iterator<Item = (K, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, s)| (K::from_raw_parts(i as u32, s.gen), &s.val))
    }

    /// Live handles in slot-index order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, s)| K::from_raw_parts(i as u32, s.gen))
    }

    /// Every slot (live or dead) in slot-index order — for storage
    /// reports that account for state retained in recycled slots.
    pub fn iter_all_slots(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().map(|s| &s.val)
    }

    /// Read access without the liveness check (the generation must still
    /// be current) — for the narrow release-path case where a handle is
    /// inspected after `release`. Prefer indexing.
    pub fn get(&self, k: K) -> Option<&T> {
        self.slots
            .get(k.index())
            .filter(|s| s.alive && s.gen == k.gen())
            .map(|s| &s.val)
    }
}

impl<K: SlotKey, T> SlotMap<K, T> {
    /// Heap bytes of the slab shell itself: the slot vector (capacity,
    /// including the per-slot generation/liveness header) and the free
    /// list. Excludes whatever the payloads own — see the `HeapUse`
    /// impl, which adds those.
    pub fn shell_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot<T>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }
}

impl<K: SlotKey, T: Default + crate::obs::mem::HeapUse> crate::obs::mem::HeapUse for SlotMap<K, T> {
    /// Shell plus payload bytes over *all* slots, dead ones included —
    /// recycled slots deliberately retain their allocations, and this
    /// is where that retention is made visible.
    fn heap_use(&self) -> usize {
        self.shell_bytes()
            + self
                .iter_all_slots()
                .map(crate::obs::mem::HeapUse::heap_use)
                .sum::<usize>()
    }
}

impl<K: SlotKey, T: Default> std::ops::Index<K> for SlotMap<K, T> {
    type Output = T;
    fn index(&self, k: K) -> &T {
        debug_assert!(
            self.is_current(k),
            "stale or dead handle {k:?} (slot gen {:?})",
            self.slots.get(k.index()).map(|s| s.gen)
        );
        &self.slots[k.index()].val // xsi-lint: allow(slice-index, a current handle indexes an existing slot; staleness is the callers bug and checked above)
    }
}

impl<K: SlotKey, T: Default> std::ops::IndexMut<K> for SlotMap<K, T> {
    fn index_mut(&mut self, k: K) -> &mut T {
        debug_assert!(
            self.is_current(k),
            "stale or dead handle {k:?} (slot gen {:?})",
            self.slots.get(k.index()).map(|s| s.gen)
        );
        &mut self.slots[k.index()].val // xsi-lint: allow(slice-index, a current handle indexes an existing slot; staleness is the callers bug and checked above)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
    struct Key(u32, u32);
    impl SlotKey for Key {
        fn from_raw_parts(idx: u32, gen: u32) -> Self {
            Key(idx, gen)
        }
        fn idx(self) -> u32 {
            self.0
        }
        fn gen(self) -> u32 {
            self.1
        }
    }

    #[test]
    fn alloc_release_recycles_lifo_with_fresh_generation() {
        let mut m: SlotMap<Key, u32> = SlotMap::new();
        let (a, va) = m.alloc();
        *va = 7;
        let (b, _) = m.alloc();
        assert_eq!((a.idx(), a.gen()), (0, 0));
        assert_eq!((b.idx(), b.gen()), (1, 0));
        m.release(a);
        assert!(!m.is_current(a));
        let (a2, va2) = m.alloc();
        assert_eq!(a2.idx(), 0, "LIFO reuse");
        assert_eq!(a2.gen(), 1, "generation bumped");
        assert_eq!(*va2, 7, "value retained for reuse");
        assert!(m.is_current(a2));
        assert!(!m.is_current(a), "old handle stays stale");
        assert_eq!(m.handle_at(0), Some(a2));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale or dead handle")]
    fn stale_access_panics_in_debug() {
        let mut m: SlotMap<Key, u32> = SlotMap::new();
        let (a, _) = m.alloc();
        m.release(a);
        let (_b, _) = m.alloc(); // reuses the slot
        let _ = m[a];
    }

    #[test]
    fn iteration_is_index_ordered_over_live_slots() {
        let mut m: SlotMap<Key, u32> = SlotMap::new();
        let keys: Vec<Key> = (0..5)
            .map(|i| {
                let (k, v) = m.alloc();
                *v = i;
                k
            })
            .collect();
        m.release(keys[2]);
        let seen: Vec<u32> = m.iter().map(|(k, _)| k.idx()).collect();
        assert_eq!(seen, vec![0, 1, 3, 4]);
        assert_eq!(m.len(), 4);
        assert_eq!(m.capacity(), 5);
    }
}
