//! Adaptive iedge-multiplicity maps: inline sorted array for the
//! common low-degree case, spilling to a `BTreeMap` above
//! [`INLINE_CAP`] entries.
//!
//! A block's `parents`/`children` maps hold one `(neighbor block,
//! dedge count)` entry per distinct neighbor. In XML block graphs the
//! degree distribution is sharply skewed toward small: almost every
//! block has a handful of neighbor blocks, and the maintenance loops
//! hammer those maps with point increments/decrements. The inline
//! representation keeps the entries in two parallel fixed arrays
//! (sorted by key, binary-searched), so the hot case is a few
//! comparisons inside one or two cache lines with no pointer chasing —
//! and iteration is sorted in *both* representations, which removes
//! hash-iteration order from the bug surface entirely (the PR 2/PR 4
//! incident class).

use super::slot::SlotKey;
use std::collections::BTreeMap;

/// Entries held inline before spilling. Chosen to cover the bulk of
/// the degree distribution while keeping the struct within a few cache
/// lines; see DESIGN.md §10 for the measurement notes and
/// EXPERIMENTS.md for the 8/16/32 sweep that confirmed the default.
///
/// Overridable at *compile time* via the `XSI_INLINE_CAP` environment
/// variable (`option_env!`), clamped to `1..=64` — the upper bound
/// keeps `len: u8` honest and matches the inline-occupancy histogram's
/// bucket range. Invalid values fall back to the default of 8.
pub const INLINE_CAP: usize = parse_inline_cap(option_env!("XSI_INLINE_CAP"));

/// Const-parses the `XSI_INLINE_CAP` override; default 8, clamp 1..=64.
const fn parse_inline_cap(env: Option<&str>) -> usize {
    let Some(s) = env else { return 8 };
    let bytes = s.as_bytes();
    if bytes.is_empty() {
        return 8;
    }
    let mut v: usize = 0;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b < b'0' || b > b'9' {
            return 8;
        }
        v = v * 10 + (b - b'0') as usize;
        if v > 64 {
            return 64;
        }
        i += 1;
    }
    if v == 0 {
        1
    } else {
        v
    }
}

/// Which representation a map currently uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IedgeRepr {
    /// Sorted parallel arrays, ≤ [`INLINE_CAP`] entries.
    Inline,
    /// Sorted map, > [`INLINE_CAP`] entries (sticky until `clear`).
    Spilled,
}

#[derive(Clone, Debug)]
enum Repr<K: SlotKey> {
    Inline {
        len: u8,
        keys: [K; INLINE_CAP],
        counts: [u32; INLINE_CAP],
    },
    Spilled(BTreeMap<K, u32>),
}

/// A count-valued map keyed by block handles, with an adaptive
/// representation. Zero counts are never stored: `dec` removes the
/// entry when it reaches zero, mirroring the old `HashMap` call sites.
#[derive(Clone, Debug)]
pub struct IedgeMap<K: SlotKey> {
    repr: Repr<K>,
    /// Cumulative inline→spilled transitions over this map's lifetime.
    /// Survives `clear` and block recycling (slot values persist), so
    /// storage reports can sum it across all slots.
    spills: u32,
}

impl<K: SlotKey> Default for IedgeMap<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: SlotKey> IedgeMap<K> {
    /// An empty map in the inline representation.
    pub fn new() -> Self {
        IedgeMap {
            repr: Repr::Inline {
                len: 0,
                keys: [K::dangling(); INLINE_CAP],
                counts: [0; INLINE_CAP],
            },
            spills: 0,
        }
    }

    /// Number of entries (distinct neighbor blocks).
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Spilled(m) => m.len(),
        }
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current representation.
    pub fn repr(&self) -> IedgeRepr {
        match &self.repr {
            Repr::Inline { .. } => IedgeRepr::Inline,
            Repr::Spilled(_) => IedgeRepr::Spilled,
        }
    }

    /// Lifetime inline→spilled transition count.
    pub fn spill_count(&self) -> u32 {
        self.spills
    }

    /// `Some(entries)` while the map is inline (0..=[`INLINE_CAP`]),
    /// `None` once spilled — feeds the mem-report's inline-occupancy
    /// histogram, which is what the INLINE_CAP sweep reads.
    pub fn inline_occupancy(&self) -> Option<usize> {
        match &self.repr {
            Repr::Inline { len, .. } => Some(*len as usize),
            Repr::Spilled(_) => None,
        }
    }

    /// Worst-case comparisons for one lookup at the current size
    /// (⌈log₂ len⌉ + 1; 0 for an empty map) — the obs layer's
    /// probe-length proxy for both representations.
    pub fn probe_len(&self) -> u32 {
        let n = self.len() as u32;
        if n == 0 {
            0
        } else {
            32 - n.leading_zeros()
        }
    }

    /// The count for `k`, or `None` if absent.
    pub fn get(&self, k: K) -> Option<u32> {
        match &self.repr {
            Repr::Inline { len, keys, counts } => {
                keys[..*len as usize] // xsi-lint: allow(slice-index, len is at most INLINE_CAP)
                    .binary_search(&k)
                    .ok()
                    // xsi-lint: allow(slice-index, i is a binary_search hit within len)
                    .map(|i| counts[i])
            }
            Repr::Spilled(m) => m.get(&k).copied(),
        }
    }

    /// Does the map hold an entry for `k`?
    pub fn contains_key(&self, k: K) -> bool {
        self.get(k).is_some()
    }

    /// Adds `delta` to `k`'s count (inserting at 0), returning the new
    /// count. Spills to the sorted-map representation when the inline
    /// capacity is exceeded.
    pub fn add(&mut self, k: K, delta: u32) -> u32 {
        match &mut self.repr {
            Repr::Inline { len, keys, counts } => {
                let n = *len as usize;
                // xsi-lint: allow(slice-index, n = len is at most INLINE_CAP)
                match keys[..n].binary_search(&k) {
                    Ok(i) => {
                        counts[i] += delta; // xsi-lint: allow(slice-index, i is a binary_search hit within n)
                        counts[i] // xsi-lint: allow(slice-index, i is a binary_search hit within n)
                    }
                    Err(i) if n < INLINE_CAP => {
                        keys.copy_within(i..n, i + 1);
                        counts.copy_within(i..n, i + 1);
                        keys[i] = k; // xsi-lint: allow(slice-index, insertion point i is at most n, n < INLINE_CAP)
                        counts[i] = delta; // xsi-lint: allow(slice-index, insertion point i is at most n, n < INLINE_CAP)
                        *len += 1;
                        delta
                    }
                    Err(_) => {
                        self.spill();
                        self.add(k, delta)
                    }
                }
            }
            Repr::Spilled(m) => {
                let c = m.entry(k).or_insert(0);
                *c += delta;
                *c
            }
        }
    }

    /// Subtracts `delta` from `k`'s count, removing the entry when it
    /// reaches zero. Returns the new count.
    ///
    /// # Panics
    /// Debug-asserts the entry exists with count ≥ `delta` (count
    /// underflow is a maintenance-invariant violation).
    pub fn sub(&mut self, k: K, delta: u32) -> u32 {
        match &mut self.repr {
            Repr::Inline { len, keys, counts } => {
                let n = *len as usize;
                // xsi-lint: allow(slice-index, n = len is at most INLINE_CAP)
                let i = match keys[..n].binary_search(&k) {
                    Ok(i) => i,
                    Err(_) => {
                        debug_assert!(false, "iedge count underflow: missing entry {k:?}");
                        return 0;
                    }
                };
                debug_assert!(counts[i] >= delta, "iedge count underflow for {k:?}"); // xsi-lint: allow(slice-index, i is a binary_search hit within n)
                counts[i] = counts[i].saturating_sub(delta); // xsi-lint: allow(slice-index, i is a binary_search hit within n)
                                                             // xsi-lint: allow(slice-index, i is a binary_search hit within n)
                if counts[i] == 0 {
                    keys.copy_within(i + 1..n, i);
                    counts.copy_within(i + 1..n, i);
                    *len -= 1;
                    keys[*len as usize] = K::dangling(); // xsi-lint: allow(slice-index, len was just decremented below INLINE_CAP)
                    0
                } else {
                    counts[i] // xsi-lint: allow(slice-index, i is a binary_search hit within n)
                }
            }
            Repr::Spilled(m) => {
                let Some(c) = m.get_mut(&k) else {
                    debug_assert!(false, "iedge count underflow: missing entry {k:?}");
                    return 0;
                };
                debug_assert!(*c >= delta, "iedge count underflow for {k:?}");
                *c = c.saturating_sub(delta);
                if *c == 0 {
                    m.remove(&k);
                    0
                } else {
                    *c
                }
            }
        }
    }

    /// Sets `k`'s count to `v` (which must be > 0), returning the
    /// previous count if any.
    pub fn insert(&mut self, k: K, v: u32) -> Option<u32> {
        debug_assert!(v > 0, "zero counts are never stored");
        match &mut self.repr {
            Repr::Inline { len, keys, counts } => {
                let n = *len as usize;
                // xsi-lint: allow(slice-index, n = len is at most INLINE_CAP)
                match keys[..n].binary_search(&k) {
                    Ok(i) => Some(std::mem::replace(&mut counts[i], v)), // xsi-lint: allow(slice-index, i is a binary_search hit within n)
                    Err(i) if n < INLINE_CAP => {
                        keys.copy_within(i..n, i + 1);
                        counts.copy_within(i..n, i + 1);
                        keys[i] = k; // xsi-lint: allow(slice-index, insertion point i is at most n, n < INLINE_CAP)
                        counts[i] = v; // xsi-lint: allow(slice-index, insertion point i is at most n, n < INLINE_CAP)
                        *len += 1;
                        None
                    }
                    Err(_) => {
                        self.spill();
                        self.insert(k, v)
                    }
                }
            }
            Repr::Spilled(m) => m.insert(k, v),
        }
    }

    /// Removes `k`'s entry, returning its count if present.
    pub fn remove(&mut self, k: K) -> Option<u32> {
        match &mut self.repr {
            Repr::Inline { len, keys, counts } => {
                let n = *len as usize;
                let i = keys[..n].binary_search(&k).ok()?; // xsi-lint: allow(slice-index, n = len is at most INLINE_CAP)
                let c = counts[i]; // xsi-lint: allow(slice-index, i is a binary_search hit within n)
                keys.copy_within(i + 1..n, i);
                counts.copy_within(i + 1..n, i);
                *len -= 1;
                keys[*len as usize] = K::dangling(); // xsi-lint: allow(slice-index, len was just decremented below INLINE_CAP)
                Some(c)
            }
            Repr::Spilled(m) => m.remove(&k),
        }
    }

    /// Empties the map and returns it to the inline representation
    /// (the cumulative spill count is retained).
    pub fn clear(&mut self) {
        self.repr = Repr::Inline {
            len: 0,
            keys: [K::dangling(); INLINE_CAP],
            counts: [0; INLINE_CAP],
        };
    }

    /// Entries in ascending key order — in both representations.
    pub fn iter(&self) -> IedgeIter<'_, K> {
        match &self.repr {
            Repr::Inline { len, keys, counts } => IedgeIter::Inline {
                keys: &keys[..*len as usize], // xsi-lint: allow(slice-index, len is at most INLINE_CAP)
                counts: &counts[..*len as usize], // xsi-lint: allow(slice-index, len is at most INLINE_CAP)
                i: 0,
            },
            Repr::Spilled(m) => IedgeIter::Spilled(m.iter()),
        }
    }

    /// Keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Drains every entry (ascending key order), leaving the map empty
    /// and inline.
    pub fn drain_sorted(&mut self) -> Vec<(K, u32)> {
        let out: Vec<(K, u32)> = self.iter().collect();
        self.clear();
        out
    }

    fn spill(&mut self) {
        if let Repr::Inline { len, keys, counts } = &self.repr {
            let m: BTreeMap<K, u32> = keys[..*len as usize] // xsi-lint: allow(slice-index, len is at most INLINE_CAP)
                .iter()
                .copied()
                .zip(counts[..*len as usize].iter().copied()) // xsi-lint: allow(slice-index, len is at most INLINE_CAP)
                .collect();
            self.repr = Repr::Spilled(m);
            self.spills += 1;
        }
    }
}

impl<K: SlotKey> crate::obs::mem::HeapUse for IedgeMap<K> {
    /// Inline maps own no heap at all (the arrays live in the struct);
    /// spilled maps are charged per entry at the documented `BTreeMap`
    /// estimate.
    fn heap_use(&self) -> usize {
        match &self.repr {
            Repr::Inline { .. } => 0,
            Repr::Spilled(m) => crate::obs::mem::btree_map_heap::<K, u32>(m.len()),
        }
    }
}

/// Sorted entry iterator over either representation.
pub enum IedgeIter<'a, K: SlotKey> {
    /// Inline: parallel slices.
    Inline {
        /// Sorted keys.
        keys: &'a [K],
        /// Counts parallel to `keys`.
        counts: &'a [u32],
        /// Cursor.
        i: usize,
    },
    /// Spilled: the underlying sorted-map iterator.
    Spilled(std::collections::btree_map::Iter<'a, K, u32>),
}

impl<K: SlotKey> Iterator for IedgeIter<'_, K> {
    type Item = (K, u32);
    fn next(&mut self) -> Option<(K, u32)> {
        match self {
            IedgeIter::Inline { keys, counts, i } => {
                let k = *keys.get(*i)?;
                let c = counts[*i]; // xsi-lint: allow(slice-index, counts is parallel to keys and the keys get succeeded)
                *i += 1;
                Some((k, c))
            }
            IedgeIter::Spilled(it) => it.next().map(|(k, c)| (*k, *c)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
    struct Key(u32);
    impl SlotKey for Key {
        fn from_raw_parts(idx: u32, _gen: u32) -> Self {
            Key(idx)
        }
        fn idx(self) -> u32 {
            self.0
        }
        fn gen(self) -> u32 {
            0
        }
    }

    #[test]
    fn add_sub_roundtrip_inline() {
        let mut m: IedgeMap<Key> = IedgeMap::new();
        assert_eq!(m.add(Key(3), 2), 2);
        assert_eq!(m.add(Key(1), 1), 1);
        assert_eq!(m.add(Key(3), 1), 3);
        assert_eq!(m.get(Key(3)), Some(3));
        assert_eq!(m.sub(Key(3), 2), 1);
        assert_eq!(m.sub(Key(3), 1), 0);
        assert_eq!(m.get(Key(3)), None);
        assert_eq!(m.len(), 1);
        assert_eq!(m.repr(), IedgeRepr::Inline);
        assert_eq!(m.spill_count(), 0);
    }

    #[test]
    fn iteration_is_sorted_in_both_representations() {
        let mut m: IedgeMap<Key> = IedgeMap::new();
        for k in [9u32, 2, 7, 4, 0, 5, 1, 8] {
            m.add(Key(k), k + 1);
        }
        assert_eq!(m.repr(), IedgeRepr::Inline);
        let inline_order: Vec<u32> = m.keys().map(|k| k.0).collect();
        assert_eq!(inline_order, vec![0, 1, 2, 4, 5, 7, 8, 9]);

        m.add(Key(3), 10); // ninth distinct key: spills
        assert_eq!(m.repr(), IedgeRepr::Spilled);
        assert_eq!(m.spill_count(), 1);
        let spilled_order: Vec<u32> = m.keys().map(|k| k.0).collect();
        assert_eq!(spilled_order, vec![0, 1, 2, 3, 4, 5, 7, 8, 9]);
        // Entries survive the spill with their counts.
        for k in [9u32, 2, 7, 4, 0, 5, 1, 8] {
            assert_eq!(m.get(Key(k)), Some(k + 1));
        }
        assert_eq!(m.get(Key(3)), Some(10));
    }

    #[test]
    fn clear_returns_to_inline_and_keeps_spill_count() {
        let mut m: IedgeMap<Key> = IedgeMap::new();
        for k in 0..=INLINE_CAP as u32 {
            m.add(Key(k), 1);
        }
        assert_eq!(m.repr(), IedgeRepr::Spilled);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.repr(), IedgeRepr::Inline);
        assert_eq!(m.spill_count(), 1);
    }

    #[test]
    fn insert_and_remove_match_map_semantics() {
        let mut m: IedgeMap<Key> = IedgeMap::new();
        assert_eq!(m.insert(Key(5), 4), None);
        assert_eq!(m.insert(Key(5), 9), Some(4));
        assert_eq!(m.remove(Key(5)), Some(9));
        assert_eq!(m.remove(Key(5)), None);
    }

    #[test]
    fn drain_sorted_empties() {
        let mut m: IedgeMap<Key> = IedgeMap::new();
        for k in [5u32, 1, 3] {
            m.add(Key(k), k);
        }
        let drained = m.drain_sorted();
        assert_eq!(drained, vec![(Key(1), 1), (Key(3), 3), (Key(5), 5)]);
        assert!(m.is_empty());
    }

    #[test]
    fn probe_len_tracks_size() {
        let mut m: IedgeMap<Key> = IedgeMap::new();
        assert_eq!(m.probe_len(), 0);
        m.add(Key(0), 1);
        assert_eq!(m.probe_len(), 1);
        for k in 1..8u32 {
            m.add(Key(k), 1);
        }
        assert_eq!(m.probe_len(), 4); // ⌈log2 8⌉ + 1
    }
}
