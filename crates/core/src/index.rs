//! The [`StructuralIndex`] trait — one maintenance interface for every
//! index in this crate.
//!
//! The paper studies three maintenance algorithms over two index families
//! (split/merge and propagate over the 1-index; split/merge and the
//! simple BFS-repartition baseline over the A(k)-index). Before this
//! trait existed the repo carried three parallel dispatch paths — a
//! macro in `batch.rs`, `enum` matches in the bench driver, and separate
//! query entry points. The trait collapses them:
//!
//! * **mutation fan-out** — the [`crate::engine::UpdateEngine`] applies
//!   each graph mutation exactly once and notifies every registered index
//!   through the object-safe hooks below;
//! * **batching** — [`crate::batch::apply_batch`] is generic over
//!   `&mut dyn StructuralIndex`;
//! * **query evaluation** — [`StructuralIndex::query_view`] exposes the
//!   iedge graph uniformly, so `xsi-query` has a single block-walk;
//! * **reconstruction** — [`StructuralIndex::rebuild`] gives the 5 %-growth
//!   [`crate::rebuild::RebuildPolicy`] a uniform trigger target.
//!
//! ### Hook contract
//!
//! The hooks are *post-mutation observers*: the caller mutates the
//! [`Graph`] first and notifies afterwards (`on_edge_inserted` runs with
//! the edge present, `on_edge_deleted` with it absent, `on_node_added`
//! with the node alive and edgeless, `on_node_removing` with the node
//! still alive but already edgeless — the graph removal happens after).
//! This is the only ordering that lets several indexes observe one
//! mutation. Convenience mutators like [`OneIndex::insert_edge`] remain
//! for the single-index case and are equivalent to mutate-then-notify.

use crate::akindex::{AkIndex, SimpleAkIndex};
use crate::check;
use crate::obs::mem::MemReport;
use crate::oneindex::OneIndex;
use crate::rebuild::reconstruct_1index;
use crate::stats::UpdateStats;
use crate::store::StoreReport;
use crate::view::IndexSnapshot;
use xsi_graph::{Graph, NodeId};

/// A structural index over a [`Graph`] it does not own, maintainable
/// through object-safe post-mutation hooks.
pub trait StructuralIndex {
    /// A short human-readable description, e.g. `"1-index"` or
    /// `"A(3)-index"`. Used in engine stats and experiment output.
    fn describe(&self) -> String;

    /// Number of inodes (blocks) in the index partition.
    fn block_count(&self) -> usize;

    /// Observer for a freshly added node. The node must be alive in `g`
    /// and have no edges yet.
    fn on_node_added(&mut self, g: &Graph, n: NodeId);

    /// Observer for a node about to be removed. All of the node's edges
    /// must already have been deleted (and observed); `g.remove_node`
    /// happens after this hook returns.
    fn on_node_removing(&mut self, g: &Graph, n: NodeId);

    /// Observer for an edge insertion already applied to `g`.
    fn on_edge_inserted(&mut self, g: &Graph, u: NodeId, v: NodeId) -> UpdateStats;

    /// Observer for an edge deletion already applied to `g`.
    fn on_edge_deleted(&mut self, g: &Graph, u: NodeId, v: NodeId) -> UpdateStats;

    /// Reconstructs the index from scratch (or via the index graph where
    /// the family supports it) so that it is the minimum index of `g`.
    /// This is the [`crate::rebuild::RebuildPolicy`] target.
    fn rebuild(&mut self, g: &Graph);

    /// The size of the freshly built *minimum* index of the same family
    /// and parameters — the denominator of the paper's quality metric
    /// `size / minimum − 1`. Not charged to maintenance time.
    fn minimum_block_count(&self, g: &Graph) -> usize;

    /// Internal consistency + validity oracle (test/debug aid): verifies
    /// the index's invariants against `g` and returns a description of
    /// the first violation.
    fn check(&self, g: &Graph) -> Result<(), String>;

    /// A uniform read-only view of the index's iedge graph for query
    /// evaluation, or `None` if the index keeps no iedges (the simple
    /// baseline maintains extents only).
    fn query_view<'a>(&'a self, _g: &'a Graph) -> Option<Box<dyn IndexQueryView + 'a>> {
        None
    }

    /// A point-in-time summary of the index's dense-store iedge maps
    /// (inline vs spilled population, cumulative spill events, probe
    /// lengths — see [`StoreReport`]), or `None` for families that keep
    /// no iedge maps. Cheap: one pass over the block table.
    fn store_report(&self) -> Option<StoreReport> {
        None
    }

    /// A point-in-time deep-memory attribution of the index (extent
    /// bytes split shared/owned, iedge inline/spill split, side tables,
    /// slab shell, dead-slot retention — see [`MemReport`] and DESIGN.md
    /// §13), or `None` for families without accounting. The report's
    /// `total_bytes()` equals the structure's deep `heap_use()` exactly.
    fn mem_report(&self) -> Option<MemReport> {
        None
    }

    /// Freezes an immutable in-memory [`IndexSnapshot`] of the index in
    /// O(blocks) — extent runs are `Arc`-shared, not copied (see
    /// [`crate::view`]). `None` for families that cannot produce a
    /// self-contained queryable view.
    fn freeze(&self, _g: &Graph) -> Option<IndexSnapshot> {
        None
    }

    /// Cumulative count of extent runs the writer has had to clone
    /// because a frozen snapshot still shared them (exported as
    /// `snapshot_cow_clones`). Always 0 for families whose freeze
    /// materializes rather than shares.
    fn cow_clones(&self) -> u64 {
        0
    }

    /// Escape hatch to the concrete type (for tests and tools that need
    /// family-specific APIs on an index registered as a trait object).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Block-level navigation over an index graph: everything the generic
/// query evaluator needs, with raw `u32` block ids so one object-safe
/// interface covers [`crate::partition::BlockId`] and
/// [`crate::akindex::ABlockId`] alike.
pub trait IndexQueryView {
    /// The block containing the graph root.
    fn start_block(&self) -> u32;
    /// Iedge successors of a block.
    fn isucc(&self, b: u32) -> Vec<u32>;
    /// The label name shared by the block's extent.
    fn label_name(&self, b: u32) -> &str;
    /// The block's extent of dnodes, borrowed from the index — extent
    /// iteration over matched blocks allocates nothing.
    fn extent(&self, b: u32) -> &[NodeId];
    /// Maximum predicate-free path length the index answers *exactly*;
    /// `None` means unbounded (the 1-index). Longer paths are safe
    /// over-approximations that need validation.
    fn precise_up_to(&self) -> Option<usize>;
}

// ---------------------------------------------------------------------------
// 1-index (split/merge)
// ---------------------------------------------------------------------------

impl StructuralIndex for OneIndex {
    fn describe(&self) -> String {
        "1-index".into()
    }

    fn block_count(&self) -> usize {
        OneIndex::block_count(self)
    }

    fn on_node_added(&mut self, g: &Graph, n: NodeId) {
        OneIndex::on_node_added(self, g, n);
    }

    fn on_node_removing(&mut self, g: &Graph, n: NodeId) {
        OneIndex::on_node_removing(self, g, n);
    }

    fn on_edge_inserted(&mut self, g: &Graph, u: NodeId, v: NodeId) -> UpdateStats {
        self.notify_edge_inserted(g, u, v)
    }

    fn on_edge_deleted(&mut self, g: &Graph, u: NodeId, v: NodeId) -> UpdateStats {
        self.notify_edge_deleted(g, u, v)
    }

    fn rebuild(&mut self, g: &Graph) {
        // The maintained index is always a refinement of the minimum
        // (Lemma 1), so the cheap index-graph reconstruction applies.
        *self = reconstruct_1index(g, self);
    }

    fn minimum_block_count(&self, g: &Graph) -> usize {
        OneIndex::build(g).block_count()
    }

    fn check(&self, g: &Graph) -> Result<(), String> {
        self.partition().check_consistency(g)?;
        if let Some(v) = check::validity_violation(g, self.partition()) {
            return Err(v);
        }
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn query_view<'a>(&'a self, g: &'a Graph) -> Option<Box<dyn IndexQueryView + 'a>> {
        Some(Box::new(OneIndexView { idx: self, g }))
    }

    fn store_report(&self) -> Option<StoreReport> {
        Some(self.partition().store_report())
    }

    fn mem_report(&self) -> Option<MemReport> {
        Some(self.partition().mem_report())
    }

    fn freeze(&self, g: &Graph) -> Option<IndexSnapshot> {
        Some(IndexSnapshot::from_one_index(g, self, self.describe()))
    }

    fn cow_clones(&self) -> u64 {
        self.partition().cow_clone_count()
    }
}

struct OneIndexView<'a> {
    idx: &'a OneIndex,
    g: &'a Graph,
}

impl IndexQueryView for OneIndexView<'_> {
    fn start_block(&self) -> u32 {
        self.idx.block_of(self.g.root()).raw()
    }

    fn isucc(&self, b: u32) -> Vec<u32> {
        // Raw view ids are slot indexes; reconstruct the live
        // generation-checked handle before touching the partition.
        let b = self.idx.partition().handle(b);
        self.idx.isucc(b).map(|c| c.raw()).collect()
    }

    fn label_name(&self, b: u32) -> &str {
        let b = self.idx.partition().handle(b);
        self.g.labels().name(self.idx.label(b))
    }

    fn extent(&self, b: u32) -> &[NodeId] {
        self.idx.extent(self.idx.partition().handle(b))
    }

    fn precise_up_to(&self) -> Option<usize> {
        None // bisimulation answers every linear path exactly
    }
}

// ---------------------------------------------------------------------------
// 1-index (propagate baseline)
// ---------------------------------------------------------------------------

/// The *propagate* baseline viewed as a [`StructuralIndex`]: the same
/// [`OneIndex`] state, but edge observers run the split phase only (no
/// merges), so the index drifts away from minimality — the behaviour the
/// 5 %-growth [`crate::rebuild::RebuildPolicy`] exists to bound.
#[derive(Clone, Debug)]
pub struct PropagateOneIndex(pub OneIndex);

impl PropagateOneIndex {
    /// Builds the minimum 1-index to start from.
    pub fn build(g: &Graph) -> Self {
        PropagateOneIndex(OneIndex::build(g))
    }

    /// The wrapped index.
    pub fn inner(&self) -> &OneIndex {
        &self.0
    }
}

impl StructuralIndex for PropagateOneIndex {
    fn describe(&self) -> String {
        "1-index(propagate)".into()
    }

    fn block_count(&self) -> usize {
        self.0.block_count()
    }

    fn on_node_added(&mut self, g: &Graph, n: NodeId) {
        self.0.on_node_added(g, n);
    }

    fn on_node_removing(&mut self, g: &Graph, n: NodeId) {
        self.0.on_node_removing(g, n);
    }

    fn on_edge_inserted(&mut self, g: &Graph, u: NodeId, v: NodeId) -> UpdateStats {
        debug_assert!(g.has_edge(u, v), "notify before mutating the graph");
        self.0.apply_insert(g, u, v, false)
    }

    fn on_edge_deleted(&mut self, g: &Graph, u: NodeId, v: NodeId) -> UpdateStats {
        debug_assert!(!g.has_edge(u, v), "notify after mutating the graph");
        self.0.apply_delete(g, u, v, false)
    }

    fn rebuild(&mut self, g: &Graph) {
        // Propagate keeps the index a refinement of the minimum, so the
        // paper's index-graph reconstruction (Section 7.1) applies.
        self.0 = reconstruct_1index(g, &self.0);
    }

    fn minimum_block_count(&self, g: &Graph) -> usize {
        OneIndex::build(g).block_count()
    }

    fn check(&self, g: &Graph) -> Result<(), String> {
        self.0.partition().check_consistency(g)?;
        if let Some(v) = check::validity_violation(g, self.0.partition()) {
            return Err(v);
        }
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn query_view<'a>(&'a self, g: &'a Graph) -> Option<Box<dyn IndexQueryView + 'a>> {
        Some(Box::new(OneIndexView { idx: &self.0, g }))
    }

    fn store_report(&self) -> Option<StoreReport> {
        Some(self.0.partition().store_report())
    }

    fn mem_report(&self) -> Option<MemReport> {
        Some(self.0.partition().mem_report())
    }

    fn freeze(&self, g: &Graph) -> Option<IndexSnapshot> {
        Some(IndexSnapshot::from_one_index(g, &self.0, self.describe()))
    }

    fn cow_clones(&self) -> u64 {
        self.0.partition().cow_clone_count()
    }
}

// ---------------------------------------------------------------------------
// A(k)-index (split/merge on the refinement tree)
// ---------------------------------------------------------------------------

impl StructuralIndex for AkIndex {
    fn describe(&self) -> String {
        format!("A({})-index", self.k())
    }

    fn block_count(&self) -> usize {
        AkIndex::block_count(self)
    }

    fn on_node_added(&mut self, g: &Graph, n: NodeId) {
        AkIndex::on_node_added(self, g, n);
    }

    fn on_node_removing(&mut self, g: &Graph, n: NodeId) {
        AkIndex::on_node_removing(self, g, n);
    }

    fn on_edge_inserted(&mut self, g: &Graph, u: NodeId, v: NodeId) -> UpdateStats {
        self.notify_edge_inserted(g, u, v)
    }

    fn on_edge_deleted(&mut self, g: &Graph, u: NodeId, v: NodeId) -> UpdateStats {
        self.notify_edge_deleted(g, u, v)
    }

    fn rebuild(&mut self, g: &Graph) {
        *self = AkIndex::build(g, self.k());
    }

    fn minimum_block_count(&self, g: &Graph) -> usize {
        AkIndex::build(g, self.k()).block_count()
    }

    fn check(&self, g: &Graph) -> Result<(), String> {
        self.check_consistency(g)?;
        let chain = self.chain_assignments(g);
        if let Some(v) = check::ak_chain_violation(g, &chain) {
            return Err(v);
        }
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn query_view<'a>(&'a self, g: &'a Graph) -> Option<Box<dyn IndexQueryView + 'a>> {
        Some(Box::new(AkIndexView { idx: self, g }))
    }

    fn store_report(&self) -> Option<StoreReport> {
        Some(AkIndex::store_report(self))
    }

    fn mem_report(&self) -> Option<MemReport> {
        Some(AkIndex::mem_report(self))
    }

    fn freeze(&self, g: &Graph) -> Option<IndexSnapshot> {
        Some(IndexSnapshot::from_ak_index(g, self, self.describe()))
    }

    fn cow_clones(&self) -> u64 {
        self.cow_clone_count()
    }
}

struct AkIndexView<'a> {
    idx: &'a AkIndex,
    g: &'a Graph,
}

impl IndexQueryView for AkIndexView<'_> {
    fn start_block(&self) -> u32 {
        self.idx.block_of(self.g.root()).raw()
    }

    fn isucc(&self, b: u32) -> Vec<u32> {
        self.idx
            .isucc(self.idx.handle(b))
            .map(|c| c.raw())
            .collect()
    }

    fn label_name(&self, b: u32) -> &str {
        self.g.labels().name(self.idx.label(self.idx.handle(b)))
    }

    fn extent(&self, b: u32) -> &[NodeId] {
        self.idx.extent(self.idx.handle(b))
    }

    fn precise_up_to(&self) -> Option<usize> {
        Some(self.idx.k())
    }
}

// ---------------------------------------------------------------------------
// A(k)-index (simple BFS-repartition baseline)
// ---------------------------------------------------------------------------

impl StructuralIndex for SimpleAkIndex {
    fn describe(&self) -> String {
        format!("A({})-index(simple)", self.k())
    }

    fn block_count(&self) -> usize {
        SimpleAkIndex::block_count(self)
    }

    fn on_node_added(&mut self, g: &Graph, n: NodeId) {
        SimpleAkIndex::on_node_added(self, g, n);
    }

    fn on_node_removing(&mut self, g: &Graph, n: NodeId) {
        SimpleAkIndex::on_node_removing(self, g, n);
    }

    fn on_edge_inserted(&mut self, g: &Graph, u: NodeId, v: NodeId) -> UpdateStats {
        self.notify_edge_inserted(g, u, v)
    }

    fn on_edge_deleted(&mut self, g: &Graph, u: NodeId, v: NodeId) -> UpdateStats {
        self.notify_edge_deleted(g, u, v)
    }

    fn rebuild(&mut self, g: &Graph) {
        let memoize = self.memoize();
        *self = SimpleAkIndex::build(g, self.k()).with_memoization(memoize);
    }

    fn minimum_block_count(&self, g: &Graph) -> usize {
        AkIndex::build(g, self.k()).block_count()
    }

    fn check(&self, g: &Graph) -> Result<(), String> {
        self.check_consistency(g)
    }

    fn mem_report(&self) -> Option<MemReport> {
        Some(SimpleAkIndex::mem_report(self))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    // No query_view: the simple baseline maintains extents only, no
    // iedges — live queries must go through a rebuilt exact index. A
    // *freeze* is still possible: the snapshot derives the block graph
    // the class assignment induces (O(n + m), documented deviation from
    // the O(blocks) freeze of the iedge-bearing families).
    fn freeze(&self, g: &Graph) -> Option<IndexSnapshot> {
        Some(IndexSnapshot::from_simple_ak(g, self, self.describe()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsi_graph::{EdgeKind, GraphBuilder};

    fn host() -> Graph {
        let (g, _) = GraphBuilder::new()
            .nodes(&[(1, "site"), (2, "a"), (3, "a"), (4, "b")])
            .edges(&[(1, 2), (1, 3), (2, 4)])
            .root_to(1)
            .build_with_ids();
        g
    }

    /// All four implementations observe one mutation stream identically
    /// to their concrete mutators.
    #[test]
    fn trait_hooks_match_concrete_mutators() {
        let g0 = host();
        let mut indexes: Vec<Box<dyn StructuralIndex>> = vec![
            Box::new(OneIndex::build(&g0)),
            Box::new(PropagateOneIndex::build(&g0)),
            Box::new(AkIndex::build(&g0, 2)),
            Box::new(SimpleAkIndex::build(&g0, 2)),
        ];
        let mut g = g0.clone();
        let n = g.add_node("c", None);
        for idx in &mut indexes {
            idx.on_node_added(&g, n);
        }
        let anchor = g.nodes().find(|&x| g.label_name(x) == "b").unwrap();
        g.insert_edge(anchor, n, EdgeKind::Child).unwrap();
        for idx in &mut indexes {
            let stats = idx.on_edge_inserted(&g, anchor, n);
            // The split/merge indexes do real work for a brand-new iedge;
            // the simple baseline may legitimately report a no-op when the
            // BFS-repartition leaves its (singleton) blocks unchanged.
            if !idx.describe().contains("simple") {
                assert!(!stats.no_op, "{}: new iedge is not a no-op", idx.describe());
            }
            idx.check(&g)
                .unwrap_or_else(|e| panic!("{}: {e}", idx.describe()));
        }
        g.delete_edge(anchor, n).unwrap();
        for idx in &mut indexes {
            idx.on_edge_deleted(&g, anchor, n);
            idx.check(&g)
                .unwrap_or_else(|e| panic!("{}: {e}", idx.describe()));
        }
        for idx in &mut indexes {
            idx.on_node_removing(&g, n);
        }
        g.remove_node(n).unwrap();
        for idx in &mut indexes {
            idx.check(&g)
                .unwrap_or_else(|e| panic!("{}: {e}", idx.describe()));
        }
    }

    #[test]
    fn rebuild_restores_minimum_for_every_family() {
        let g = host();
        let mut indexes: Vec<Box<dyn StructuralIndex>> = vec![
            Box::new(OneIndex::build(&g)),
            Box::new(PropagateOneIndex::build(&g)),
            Box::new(AkIndex::build(&g, 2)),
            Box::new(SimpleAkIndex::build(&g, 2)),
        ];
        for idx in &mut indexes {
            idx.rebuild(&g);
            assert_eq!(
                idx.block_count(),
                idx.minimum_block_count(&g),
                "{}",
                idx.describe()
            );
            idx.check(&g).unwrap();
        }
    }

    #[test]
    fn query_views_exist_where_expected() {
        let g = host();
        let one = OneIndex::build(&g);
        let ak = AkIndex::build(&g, 2);
        let simple = SimpleAkIndex::build(&g, 2);
        assert!(StructuralIndex::query_view(&one, &g).is_some());
        assert!(StructuralIndex::query_view(&ak, &g).is_some());
        assert!(StructuralIndex::query_view(&simple, &g).is_none());
        let view = StructuralIndex::query_view(&one, &g).unwrap();
        assert_eq!(view.label_name(view.start_block()), "ROOT");
        assert!(view.precise_up_to().is_none());
        let akview = StructuralIndex::query_view(&ak, &g).unwrap();
        assert_eq!(akview.precise_up_to(), Some(2));
    }
}
