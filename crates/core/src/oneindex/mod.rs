//! The 1-index (Milo & Suciu): bisimulation-based structural index, with
//! Paige–Tarjan construction and the paper's split/merge incremental
//! maintenance.
//!
//! Module layout:
//! * [`mod@self`] — the [`OneIndex`] type, from-scratch construction, node
//!   add/remove, and read-only queries;
//! * [`maintain`] — edge insertion/deletion with split **and** merge
//!   phases (Figure 3; Lemma 3/Theorem 1 guarantees);
//! * [`propagate`] — the split-only *propagate* baseline of Kaushik et al.;
//! * [`subgraph`] — batched subgraph addition (Figure 6) and removal.

pub mod maintain;
pub mod propagate;
pub mod subgraph;

use crate::kernel;
use crate::partition::{BlockId, Partition};
use crate::stats::UpdateStats;
use std::collections::HashMap;
use xsi_graph::{Graph, Label, NodeId};

/// A 1-index over a [`Graph`].
///
/// The index does not own the graph; every mutating operation takes the
/// graph too and keeps the two in lock-step (the mutators below apply the
/// graph change themselves). Read queries (`extent`, `block_of`,
/// `isucc`, …) go through the embedded [`Partition`].
///
/// Constructed by [`OneIndex::build`] the index is the **minimum** 1-index;
/// maintained through [`OneIndex::insert_edge`] / [`OneIndex::delete_edge`]
/// / [`OneIndex::add_subgraph`] it stays **minimal** (minimum on acyclic
/// graphs — Theorem 1).
#[derive(Clone, Debug)]
pub struct OneIndex {
    pub(crate) p: Partition,
}

impl OneIndex {
    /// Builds the minimum 1-index of `g` by partition refinement: start
    /// from the label partition (A(0)) and split against every block's
    /// successor set until the partition is stable with respect to itself,
    /// re-queuing both halves of every split (Paige–Tarjan \[12\] worklist).
    pub fn build(g: &Graph) -> Self {
        let mut p = Partition::new(g);
        let mut by_label: HashMap<Label, BlockId> = HashMap::new();
        for n in g.nodes() {
            let b = *by_label
                .entry(g.label(n))
                .or_insert_with(|| p.new_block(g.label(n)));
            p.attach_node(n, b);
        }
        p.rebuild_counts(g);
        let mut idx = OneIndex { p };
        let seeds: Vec<BlockId> = idx.p.blocks().collect();
        idx.refine_blocks(g, &seeds);
        idx
    }

    /// Refines the partition to a self-stable fixpoint through the shared
    /// [`kernel`]: each seed block is scanned once, and every resulting
    /// split is propagated by compound-queue processing (both halves of a
    /// split are rescanned). Used by `build` over all blocks, and by
    /// subgraph addition over just the new blocks.
    pub(crate) fn refine_blocks(&mut self, g: &Graph, seeds: &[BlockId]) {
        let mut cq = kernel::CompoundQueue::new(1);
        let mut stats = UpdateStats::default();
        kernel::refine_to_fixpoint(self, g, seeds, 0, &mut cq, &mut stats);
    }

    /// Number of inodes.
    pub fn block_count(&self) -> usize {
        self.p.block_count()
    }

    /// The inode containing dnode `n` — the paper's `I[n]`.
    pub fn block_of(&self, n: NodeId) -> BlockId {
        self.p.block_of(n)
    }

    /// The extent of an inode.
    pub fn extent(&self, b: BlockId) -> &[NodeId] {
        self.p.extent(b)
    }

    /// The label shared by an inode's extent.
    pub fn label(&self, b: BlockId) -> Label {
        self.p.label(b)
    }

    /// Iterates over live inode ids.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.p.blocks()
    }

    /// Index successors `ISucc(b)`.
    pub fn isucc(&self, b: BlockId) -> impl Iterator<Item = BlockId> + '_ {
        self.p.children(b).map(|(c, _)| c)
    }

    /// Index parents of `b`.
    pub fn iparents(&self, b: BlockId) -> impl Iterator<Item = BlockId> + '_ {
        self.p.parents(b).map(|(c, _)| c)
    }

    /// Whether the iedge `from → to` exists.
    pub fn has_iedge(&self, from: BlockId, to: BlockId) -> bool {
        self.p.has_iedge(from, to)
    }

    /// Read access to the underlying partition (checkers, experiments).
    pub fn partition(&self) -> &Partition {
        &self.p
    }

    /// Canonical sorted extents, for partition-equality assertions.
    pub fn canonical(&self) -> Vec<Vec<NodeId>> {
        self.p.canonical()
    }

    /// Registers a freshly added node (which must not have any edges yet).
    /// The node gets its own inode, which is immediately merged with a
    /// label-equal parentless inode if one exists, preserving minimality.
    pub fn on_node_added(&mut self, g: &Graph, n: NodeId) {
        self.p.ensure_capacity(g);
        debug_assert_eq!(g.in_degree(n) + g.out_degree(n), 0);
        let b = self.p.new_block(g.label(n));
        self.p.attach_node(n, b);
        if let Some(partner) = self.p.find_merge_partner(b) {
            self.p.merge_blocks(partner, b);
        }
    }

    /// Unregisters a node about to be removed (all of its edges must have
    /// been deleted through [`OneIndex::delete_edge`] already). Call
    /// *before* `Graph::remove_node`.
    pub fn on_node_removing(&mut self, g: &Graph, n: NodeId) {
        debug_assert_eq!(g.in_degree(n) + g.out_degree(n), 0);
        let b = self.p.detach_node(n);
        if self.p.size(b) == 0 {
            self.p.release_block(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{is_minimal_1index, is_valid_1index, minimality_violation};
    use crate::reference;
    use xsi_graph::GraphBuilder;

    /// The Figure 2(a) data graph (without the dashed edge), reverse-
    /// engineered from the paper's narrative: index before update is
    /// {1},{2},{3,4},{5},{6,7},{8}.
    pub(crate) fn figure2_graph() -> (Graph, std::collections::BTreeMap<u64, NodeId>) {
        GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "B"), (3, "C"), (4, "C"), (5, "C")])
            .nodes(&[(6, "D"), (7, "D"), (8, "D")])
            .edges(&[
                (1, 2),
                (1, 5),
                (2, 3),
                (2, 4),
                (2, 5),
                (3, 6),
                (4, 7),
                (5, 8),
            ])
            .root_to(1)
            .build_with_ids()
    }

    #[test]
    fn build_matches_reference_on_figure2() {
        let (g, ids) = figure2_graph();
        let idx = OneIndex::build(&g);
        let classes = reference::bisim_classes(&g);
        assert_eq!(
            idx.canonical(),
            reference::canonical_partition(&g, &classes)
        );
        // Narrative check: {3,4} together, {5} apart, {6,7} together.
        assert_eq!(idx.block_of(ids[&3]), idx.block_of(ids[&4]));
        assert_ne!(idx.block_of(ids[&3]), idx.block_of(ids[&5]));
        assert_eq!(idx.block_of(ids[&6]), idx.block_of(ids[&7]));
        assert_ne!(idx.block_of(ids[&6]), idx.block_of(ids[&8]));
    }

    #[test]
    fn build_is_valid_and_minimal() {
        let (g, _) = figure2_graph();
        let idx = OneIndex::build(&g);
        assert!(is_valid_1index(&g, idx.partition()));
        assert!(
            is_minimal_1index(&g, idx.partition()),
            "{:?}",
            minimality_violation(&g, idx.partition())
        );
        idx.partition().check_consistency(&g).unwrap();
    }

    #[test]
    fn build_on_cyclic_graph_matches_reference() {
        let (g, _) = GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "B"), (3, "A"), (4, "B"), (5, "C")])
            .edges(&[(1, 2), (3, 4), (4, 5)])
            .idref_edges(&[(2, 1), (4, 3), (5, 1)])
            .root_to(1)
            .root_to(3)
            .build_with_ids();
        let idx = OneIndex::build(&g);
        let classes = reference::bisim_classes(&g);
        assert_eq!(
            idx.canonical(),
            reference::canonical_partition(&g, &classes)
        );
        idx.partition().check_consistency(&g).unwrap();
    }

    #[test]
    fn iedges_reflect_dedges() {
        let (g, ids) = figure2_graph();
        let idx = OneIndex::build(&g);
        let b1 = idx.block_of(ids[&1]);
        let b2 = idx.block_of(ids[&2]);
        let b34 = idx.block_of(ids[&3]);
        assert!(idx.has_iedge(b1, b2));
        assert!(idx.has_iedge(b2, b34));
        assert!(!idx.has_iedge(b34, b2));
        assert!(idx.isucc(b2).count() >= 2); // {3,4} and {5}
        assert!(idx.iparents(b2).any(|p| p == b1));
    }

    #[test]
    fn node_add_and_remove_round_trip() {
        let (mut g, _) = figure2_graph();
        let mut idx = OneIndex::build(&g);
        let before = idx.canonical();
        let n = g.add_node("E", None);
        idx.on_node_added(&g, n);
        assert_eq!(idx.block_count(), before.len() + 1);
        idx.partition().check_consistency(&g).unwrap();
        idx.on_node_removing(&g, n);
        g.remove_node(n).unwrap();
        assert_eq!(idx.canonical(), before);
        idx.partition().check_consistency(&g).unwrap();
    }

    #[test]
    fn added_node_merges_with_parentless_twin() {
        let (mut g, _) = figure2_graph();
        let mut idx = OneIndex::build(&g);
        let n1 = g.add_node("E", None);
        idx.on_node_added(&g, n1);
        let n2 = g.add_node("E", None);
        idx.on_node_added(&g, n2);
        assert_eq!(
            idx.block_of(n1),
            idx.block_of(n2),
            "two parentless E-nodes are bisimilar"
        );
        assert!(is_minimal_1index(&g, idx.partition()));
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::new();
        let idx = OneIndex::build(&g);
        assert_eq!(idx.block_count(), 1);
        assert!(is_valid_1index(&g, idx.partition()));
    }
}
