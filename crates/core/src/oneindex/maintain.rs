//! Incremental split/merge maintenance of the 1-index — the paper's core
//! contribution (Figure 3).
//!
//! Each edge update runs two phases:
//!
//! * the **split phase** restores correctness: if the updated node `v` is
//!   no longer bisimilar to the rest of its inode, it is singled out, and
//!   the split is propagated with Paige–Tarjan compound-block processing
//!   (stabilize against the small half `Succ(I)` and against the rest
//!   `Succ(𝓘 − {I})`);
//! * the **merge phase** restores minimality: starting from `I[v]`, merge
//!   any inode with a label-and-index-parent twin, then iteratively
//!   consider the index successors of freshly merged inodes.
//!
//! Lemma 3: if the index was minimal before the update, it is minimal
//! after. Combined with Lemma 4 this maintains the *minimum* 1-index on
//! acyclic data graphs (Theorem 1).
//!
//! ### Deletion guard
//!
//! The paper's printed deletion pseudocode returns early whenever *any*
//! dedge remains between `I[u]` and `I[v]`. Read literally that forfeits
//! both correctness (if `v` lost its last parent in `I[u]` while a sibling
//! kept one, `I[v]` is unstable w.r.t. `I[u]`) and minimality (if the
//! iedge vanished entirely, `I[v]`'s parent set changed and a merge may
//! have become possible). We implement the semantics the Lemma 3 proof
//! requires: return early only when `v` itself still has a parent in
//! `I[u]`; otherwise split `v` out iff the iedge survives through a
//! sibling, and always run the merge phase from `I[v]`.

use crate::kernel::{self, CompoundQueue, MergeDriver, SplitDriver};
use crate::obs::span::{SpanGuard, SpanKind};
use crate::partition::BlockId;
use crate::stats::UpdateStats;
use xsi_graph::{EdgeKind, Graph, GraphError, NodeId};

use super::OneIndex;

impl SplitDriver for OneIndex {
    type Block = BlockId;

    fn weight_of(&self, b: BlockId) -> usize {
        self.p.size(b)
    }

    fn scan_succ(&mut self, g: &Graph, roots: &[BlockId]) -> Vec<NodeId> {
        self.p.collect_succ(g, roots)
    }

    fn stabilize(
        &mut self,
        g: &Graph,
        marked: &[NodeId],
        _level: usize,
        cq: &mut CompoundQueue<BlockId>,
        stats: &mut UpdateStats,
    ) {
        for (old, new) in self.p.split_by_set(g, marked) {
            stats.splits += 1;
            cq.on_split(0, old, new);
        }
    }
}

impl MergeDriver for OneIndex {
    type Block = BlockId;
    /// (label, sorted index-parent set) — Lemma 3's merge equivalence.
    type GroupKey = (u32, Vec<BlockId>);

    fn merge_successors(&self, b: BlockId) -> Vec<BlockId> {
        self.p.children(b).map(|(c, _)| c).collect()
    }

    fn merge_key(&self, c: BlockId) -> (u32, Vec<BlockId>) {
        // `parents` iterates in sorted block order, so the key is
        // canonical without a sort.
        let parents: Vec<BlockId> = self.p.parents(c).map(|(p, _)| p).collect();
        (self.p.label(c).index() as u32, parents)
    }

    fn is_live(&self, b: BlockId) -> bool {
        self.p.is_live(b)
    }

    fn merge_group(&mut self, group: &[BlockId], stats: &mut UpdateStats) -> BlockId {
        let m = self.p.merge_group(group);
        stats.merges += group.len() - 1;
        m
    }

    fn requeue(&self, _survivor: BlockId) -> bool {
        true
    }
}

impl OneIndex {
    /// Inserts the dedge `(u, v)` into the graph and maintains the index
    /// (Figure 3). Returns per-update statistics.
    ///
    /// Both endpoints must already be indexed (see
    /// [`OneIndex::on_node_added`] for fresh nodes).
    // xsi-lint: allow(span-coverage, delegates to apply_insert, which opens the Split/Merge spans)
    pub fn insert_edge(
        &mut self,
        g: &mut Graph,
        u: NodeId,
        v: NodeId,
        kind: EdgeKind,
    ) -> Result<UpdateStats, GraphError> {
        g.insert_edge(u, v, kind)?;
        Ok(self.apply_insert(g, u, v, true))
    }

    /// Deletes the dedge `(u, v)` from the graph and maintains the index.
    /// Returns the removed edge's kind alongside the statistics.
    // xsi-lint: allow(span-coverage, delegates to apply_delete, which opens the Split/Merge spans)
    pub fn delete_edge(
        &mut self,
        g: &mut Graph,
        u: NodeId,
        v: NodeId,
    ) -> Result<(UpdateStats, EdgeKind), GraphError> {
        let kind = g.delete_edge(u, v)?;
        Ok((self.apply_delete(g, u, v, true), kind))
    }

    /// Deletes a node and all of its incident edges, maintaining the
    /// index throughout — node deletion "based on" edge deletion, as
    /// Section 1 prescribes. The node must not be the root.
    // xsi-lint: allow(span-coverage, delegates per incident edge to apply_delete, which opens the spans)
    pub fn delete_node(&mut self, g: &mut Graph, n: NodeId) -> Result<UpdateStats, GraphError> {
        let mut stats = UpdateStats {
            no_op: false,
            ..UpdateStats::default()
        };
        let parents: Vec<NodeId> = g.pred(n).collect();
        for p in parents {
            g.delete_edge(p, n)?;
            stats.absorb(&self.apply_delete(g, p, n, true));
        }
        let children: Vec<NodeId> = g.succ(n).collect();
        for c in children {
            g.delete_edge(n, c)?;
            stats.absorb(&self.apply_delete(g, n, c, true));
        }
        self.on_node_removing(g, n);
        g.remove_node(n)?;
        stats.final_blocks = self.p.block_count();
        Ok(stats)
    }

    /// Maintenance hook for an edge insertion already applied to `g` by
    /// the caller — for running several indexes over one graph (mutate
    /// the graph once, notify each index). Equivalent to
    /// [`OneIndex::insert_edge`] minus the graph mutation.
    // xsi-lint: allow(span-coverage, delegates to apply_insert, which opens the Split/Merge spans)
    pub fn notify_edge_inserted(&mut self, g: &Graph, u: NodeId, v: NodeId) -> UpdateStats {
        debug_assert!(g.has_edge(u, v), "notify before mutating the graph");
        self.apply_insert(g, u, v, true)
    }

    /// Maintenance hook for an edge deletion already applied to `g` by
    /// the caller; see [`OneIndex::notify_edge_inserted`].
    // xsi-lint: allow(span-coverage, delegates to apply_delete, which opens the Split/Merge spans)
    pub fn notify_edge_deleted(&mut self, g: &Graph, u: NodeId, v: NodeId) -> UpdateStats {
        debug_assert!(!g.has_edge(u, v), "notify after mutating the graph");
        self.apply_delete(g, u, v, true)
    }

    /// Index maintenance for an edge insertion already applied to `g`.
    /// `do_merge` distinguishes split/merge from the *propagate* baseline.
    pub(crate) fn apply_insert(
        &mut self,
        g: &Graph,
        u: NodeId,
        v: NodeId,
        do_merge: bool,
    ) -> UpdateStats {
        let bu = self.p.block_of(u);
        let bv = self.p.block_of(v);
        let had_iedge = self.p.has_iedge(bu, bv);
        self.p.on_edge_inserted(u, v);
        let mut stats = UpdateStats {
            intermediate_blocks: self.p.block_count(),
            final_blocks: self.p.block_count(),
            no_op: true,
            ..UpdateStats::default()
        };
        if had_iedge {
            // Every dnode of I[v] already had a parent in I[u]; v gaining
            // one more changes no index parent set.
            return stats;
        }
        stats.no_op = false;
        {
            // Span covers exactly the region timed into split_nanos.
            let sp = SpanGuard::enter(SpanKind::Split);
            let t = std::time::Instant::now();
            self.split_phase(g, v, &mut stats);
            stats.split_nanos = t.elapsed().as_nanos() as u64;
            sp.add_blocks(stats.splits as u64);
            sp.set_queue_depth(stats.queue_peak as u64);
        }
        stats.intermediate_blocks = self.p.block_count();
        if do_merge {
            let sp = SpanGuard::enter(SpanKind::Merge);
            let t = std::time::Instant::now();
            self.merge_phase(g, self.p.block_of(v), &mut stats);
            stats.merge_nanos = t.elapsed().as_nanos() as u64;
            sp.add_blocks(stats.merges as u64);
        }
        stats.final_blocks = self.p.block_count();
        stats
    }

    /// Index maintenance for an edge deletion already applied to `g`.
    pub(crate) fn apply_delete(
        &mut self,
        g: &Graph,
        u: NodeId,
        v: NodeId,
        do_merge: bool,
    ) -> UpdateStats {
        let bu = self.p.block_of(u);
        self.p.on_edge_deleted(u, v);
        let mut stats = UpdateStats {
            intermediate_blocks: self.p.block_count(),
            final_blocks: self.p.block_count(),
            no_op: true,
            ..UpdateStats::default()
        };
        if g.pred(v).any(|p| self.p.block_of(p) == bu) {
            // v keeps a parent in I[u]: no index parent set changed.
            return stats;
        }
        stats.no_op = false;
        let bv = self.p.block_of(v);
        if self.p.has_iedge(bu, bv) {
            // Some sibling of v still has a parent in I[u], so v is no
            // longer bisimilar to it: single v out and propagate.
            let sp = SpanGuard::enter(SpanKind::Split);
            let t = std::time::Instant::now();
            self.split_phase(g, v, &mut stats);
            stats.split_nanos = t.elapsed().as_nanos() as u64;
            sp.add_blocks(stats.splits as u64);
            sp.set_queue_depth(stats.queue_peak as u64);
        }
        // Either way I[v]'s parent set shrank — a merge may have opened up.
        stats.intermediate_blocks = self.p.block_count();
        if do_merge {
            let sp = SpanGuard::enter(SpanKind::Merge);
            let t = std::time::Instant::now();
            self.merge_phase(g, self.p.block_of(v), &mut stats);
            stats.merge_nanos = t.elapsed().as_nanos() as u64;
            sp.add_blocks(stats.merges as u64);
        }
        stats.final_blocks = self.p.block_count();
        stats
    }

    /// The split phase: single `v` out of its inode and run the shared
    /// [`kernel::process_compounds`] propagation loop.
    pub(crate) fn split_phase(&mut self, g: &Graph, v: NodeId, stats: &mut UpdateStats) {
        let bv = self.p.block_of(v);
        if self.p.size(bv) <= 1 {
            return;
        }
        // The initial single-out is the phase's first work item (it
        // seeds the compound queue); closed before process_compounds so
        // CompoundProcess spans never self-nest.
        let sp = SpanGuard::enter(SpanKind::CompoundProcess);
        let nb = self.p.new_block(self.p.label(bv));
        self.p.move_node(g, v, nb);
        stats.splits += 1;
        let mut cq = CompoundQueue::new(1);
        cq.push(0, vec![bv, nb]);
        sp.add_blocks(2);
        drop(sp);
        kernel::process_compounds(self, g, &mut cq, stats);
    }

    /// The merge phase: try to merge `start` with a twin, then fold
    /// merges iteratively among the index successors of every freshly
    /// merged inode ([`kernel::merge_fold`] over the (label, index-parent
    /// set) equivalence).
    pub(crate) fn merge_phase(&mut self, _g: &Graph, start: BlockId, stats: &mut UpdateStats) {
        // The seed twin-search is its own work item (the fold's served
        // blocks open their own CompoundProcess spans); closed before
        // merge_fold so CompoundProcess spans never self-nest.
        let sp = SpanGuard::enter(SpanKind::CompoundProcess);
        let Some(partner) = self.p.find_merge_partner(start) else {
            return;
        };
        let m = SpanGuard::enter(SpanKind::Merge);
        m.add_blocks(2);
        sp.add_blocks(2);
        let merged = self.p.merge_group(&[start, partner]);
        stats.merges += 1;
        drop(m);
        drop(sp);
        kernel::merge_fold(self, merged, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::figure2_graph;
    use super::*;
    use crate::check::{is_minimal_1index, minimality_violation};
    use crate::reference;

    fn assert_minimal(g: &Graph, idx: &OneIndex) {
        idx.partition().check_consistency(g).unwrap();
        assert!(
            is_minimal_1index(g, idx.partition()),
            "not minimal: {:?}\n{:?}",
            minimality_violation(g, idx.partition()),
            idx.partition()
        );
    }

    fn assert_matches_reference(g: &Graph, idx: &OneIndex) {
        let classes = reference::bisim_classes(g);
        assert_eq!(
            idx.canonical(),
            reference::canonical_partition(g, &classes),
            "index differs from the minimum 1-index"
        );
    }

    /// The paper's worked example (Figure 2): inserting the dashed edge
    /// (1, 4) splits {3,4} then {6,7}, and the merge phase produces
    /// {4,5} and {7,8}.
    #[test]
    fn figure2_example() {
        let (mut g, ids) = figure2_graph();
        let mut idx = OneIndex::build(&g);
        assert_eq!(idx.block_count(), 7); // ROOT,{1},{2},{3,4},{5},{6,7},{8}
        let stats = idx
            .insert_edge(&mut g, ids[&1], ids[&4], EdgeKind::IdRef)
            .unwrap();
        assert!(!stats.no_op);
        // Figure 2(f): ROOT,{1},{2},{3},{4,5},{6},{7,8}.
        assert_eq!(idx.block_count(), 7);
        assert_eq!(idx.block_of(ids[&4]), idx.block_of(ids[&5]));
        assert_ne!(idx.block_of(ids[&3]), idx.block_of(ids[&4]));
        assert_eq!(idx.block_of(ids[&7]), idx.block_of(ids[&8]));
        assert_ne!(idx.block_of(ids[&6]), idx.block_of(ids[&7]));
        // Both splits (c)-(d) and both merges (e)-(f) happened.
        assert_eq!(stats.splits, 2);
        assert_eq!(stats.merges, 2);
        assert_minimal(&g, &idx);
        assert_matches_reference(&g, &idx); // acyclic ⇒ minimum
    }

    #[test]
    fn figure2_delete_reverses_insert() {
        let (mut g, ids) = figure2_graph();
        let mut idx = OneIndex::build(&g);
        let before = idx.canonical();
        idx.insert_edge(&mut g, ids[&1], ids[&4], EdgeKind::IdRef)
            .unwrap();
        let (stats, kind) = idx.delete_edge(&mut g, ids[&1], ids[&4]).unwrap();
        assert_eq!(kind, EdgeKind::IdRef);
        assert!(!stats.no_op);
        assert_eq!(idx.canonical(), before, "delete must restore the minimum");
        assert_minimal(&g, &idx);
    }

    /// No-op scenarios for insertion and deletion: the iedge between the
    /// endpoint inodes is supported by more than one dedge.
    #[test]
    fn noop_cases() {
        // Graph: r → a1, a2 (both label A); a1 → b, a2 → b (label B).
        // I[A] = {a1,a2}, I[b] = {b}; iedge I[A]→I[b] supported twice.
        let (mut g, ids) = xsi_graph::GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "A"), (3, "B"), (4, "B")])
            .edges(&[(1, 3), (2, 3)])
            .root_to(1)
            .root_to(2)
            .build_with_ids();
        // Node 4 dangles off a1 and a2 too so it groups with... keep it
        // simple: give 4 the same parents as 3.
        g.insert_edge(ids[&1], ids[&4], EdgeKind::Child).unwrap();
        g.insert_edge(ids[&2], ids[&4], EdgeKind::Child).unwrap();
        let mut idx = OneIndex::build(&g);
        assert_eq!(idx.block_count(), 3); // ROOT, {a1,a2}, {b3,b4}
        let before = idx.canonical();

        // Deletion no-op: delete a1→b3; b3 still has parent a2 ∈ I[A].
        let (stats, _) = idx.delete_edge(&mut g, ids[&1], ids[&3]).unwrap();
        assert!(stats.no_op);
        assert_eq!(idx.canonical(), before);
        assert_minimal(&g, &idx);

        // Insertion no-op: re-insert a1→b3; iedge I[A]→I[B] already there.
        let stats = idx
            .insert_edge(&mut g, ids[&1], ids[&3], EdgeKind::Child)
            .unwrap();
        assert!(stats.no_op);
        assert_eq!(idx.canonical(), before);
        assert_minimal(&g, &idx);
    }

    /// Deletion where v loses its last parent in I[u] while a sibling
    /// keeps one — the case the paper's printed guard would miss.
    #[test]
    fn delete_splits_when_sibling_keeps_parent() {
        let (mut g, ids) = xsi_graph::GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "B"), (3, "B")])
            .edges(&[(1, 2), (1, 3)])
            .root_to(1)
            .root_to(2)
            .root_to(3)
            .build_with_ids();
        let mut idx = OneIndex::build(&g);
        assert_eq!(idx.block_of(ids[&2]), idx.block_of(ids[&3]));
        // Delete 1→3: 3's parents become {ROOT}, 2 keeps {ROOT, 1}.
        let (stats, _) = idx.delete_edge(&mut g, ids[&1], ids[&3]).unwrap();
        assert!(!stats.no_op);
        assert_ne!(idx.block_of(ids[&2]), idx.block_of(ids[&3]));
        assert_minimal(&g, &idx);
        assert_matches_reference(&g, &idx);
    }

    /// Deletion removing the whole iedge must still trigger merges.
    #[test]
    fn delete_enables_merge() {
        // r → a → b1; r → b2. b1 parents {a}, b2 parents {r}: separate.
        // Deleting a→b1 leaves b1 parentless... instead: give b1 parents
        // {r, a} so deletion of a→b1 equalizes with b2.
        let (mut g, ids) = xsi_graph::GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "B"), (3, "B")])
            .edges(&[(1, 2)])
            .root_to(1)
            .root_to(2)
            .root_to(3)
            .build_with_ids();
        let mut idx = OneIndex::build(&g);
        assert_ne!(idx.block_of(ids[&2]), idx.block_of(ids[&3]));
        let (stats, _) = idx.delete_edge(&mut g, ids[&1], ids[&2]).unwrap();
        assert!(!stats.no_op);
        assert_eq!(stats.merges, 1);
        assert_eq!(idx.block_of(ids[&2]), idx.block_of(ids[&3]));
        assert_minimal(&g, &idx);
        assert_matches_reference(&g, &idx);
    }

    /// A chain of updates on a DAG always equals the rebuilt minimum
    /// (Theorem 1).
    #[test]
    fn update_sequence_tracks_minimum_on_dag() {
        let (mut g, ids) = figure2_graph();
        let mut idx = OneIndex::build(&g);
        let updates: Vec<(u64, u64)> = vec![(1, 4), (1, 3), (2, 6), (3, 8), (1, 6)];
        for &(u, v) in &updates {
            idx.insert_edge(&mut g, ids[&u], ids[&v], EdgeKind::IdRef)
                .unwrap();
            assert_minimal(&g, &idx);
            assert_matches_reference(&g, &idx);
        }
        for &(u, v) in updates.iter().rev() {
            idx.delete_edge(&mut g, ids[&u], ids[&v]).unwrap();
            assert_minimal(&g, &idx);
            assert_matches_reference(&g, &idx);
        }
    }

    /// Updates on a cyclic graph keep the index minimal (Theorem 1's
    /// cyclic clause); this particular sequence also stays minimum.
    #[test]
    fn cyclic_updates_stay_minimal() {
        let (mut g, ids) = xsi_graph::GraphBuilder::new()
            .nodes(&[(1, "P"), (2, "O"), (3, "P"), (4, "O"), (5, "P"), (6, "O")])
            .edges(&[(1, 2), (3, 4), (5, 6)])
            .root_to(1)
            .root_to(3)
            .root_to(5)
            .build_with_ids();
        let mut idx = OneIndex::build(&g);
        // Create person→auction→person cycles one at a time.
        for &(u, v) in &[(2u64, 3u64), (4, 5), (6, 1)] {
            idx.insert_edge(&mut g, ids[&u], ids[&v], EdgeKind::IdRef)
                .unwrap();
            assert_minimal(&g, &idx);
        }
        for &(u, v) in &[(2u64, 3u64), (4, 5), (6, 1)] {
            idx.delete_edge(&mut g, ids[&u], ids[&v]).unwrap();
            assert_minimal(&g, &idx);
        }
        assert_matches_reference(&g, &idx);
    }
}

#[cfg(test)]
mod node_op_tests {
    use super::super::tests::figure2_graph;
    use crate::check::is_minimal_1index;
    use crate::reference;
    use crate::OneIndex;
    use xsi_graph::EdgeKind;

    #[test]
    fn delete_node_keeps_minimum_on_dag() {
        let (mut g, ids) = figure2_graph();
        let mut idx = OneIndex::build(&g);
        idx.delete_node(&mut g, ids[&4]).unwrap();
        idx.partition().check_consistency(&g).unwrap();
        assert!(is_minimal_1index(&g, idx.partition()));
        let classes = reference::bisim_classes(&g);
        assert_eq!(
            idx.canonical(),
            reference::canonical_partition(&g, &classes)
        );
        assert!(!g.is_alive(ids[&4]));
    }

    #[test]
    fn add_then_delete_node_round_trips() {
        let (mut g, ids) = figure2_graph();
        let mut idx = OneIndex::build(&g);
        let before = idx.canonical();
        let n = g.add_node("C", None);
        idx.on_node_added(&g, n);
        idx.insert_edge(&mut g, ids[&2], n, EdgeKind::Child)
            .unwrap();
        idx.insert_edge(&mut g, n, ids[&8], EdgeKind::IdRef)
            .unwrap();
        idx.delete_node(&mut g, n).unwrap();
        assert_eq!(idx.canonical(), before);
        idx.partition().check_consistency(&g).unwrap();
    }
}

#[cfg(test)]
mod worstcase_tests {
    use crate::OneIndex;
    use xsi_graph::{EdgeKind, Graph};

    /// Figure 5: twin chains shared in the old index are torn apart by
    /// the split phase (Ω(n) intermediate blow-up) and folded back by the
    /// merge phase onto a third, pre-separated chain.
    #[test]
    fn figure5_intermediate_blowup_and_recovery() {
        let d = 20;
        let mut g = Graph::new();
        let root = g.root();
        let w = g.add_node("w", None);
        g.insert_edge(root, w, EdgeKind::Child).unwrap();
        let chain = |g: &mut Graph, under_w: bool| {
            let top = g.add_node("t0", None);
            g.insert_edge(g.root(), top, EdgeKind::Child).unwrap();
            if under_w {
                g.insert_edge(w, top, EdgeKind::Child).unwrap();
            }
            let mut prev = top;
            for i in 1..d {
                let n = g.add_node(&format!("t{i}"), None);
                g.insert_edge(prev, n, EdgeKind::Child).unwrap();
                prev = n;
            }
            top
        };
        let t1 = chain(&mut g, false);
        let _t2 = chain(&mut g, false);
        let _t3 = chain(&mut g, true);

        let mut idx = OneIndex::build(&g);
        let old = idx.block_count();
        assert_eq!(old, 2 * d + 2); // root, w, shared chain, t3 chain
        let stats = idx.insert_edge(&mut g, w, t1, EdgeKind::IdRef).unwrap();
        assert_eq!(stats.intermediate_blocks, 3 * d + 2, "Ω(n) blow-up");
        assert_eq!(stats.final_blocks, old, "merge phase recovers fully");
        assert_eq!(stats.splits, d);
        assert_eq!(stats.merges, d);
        idx.partition().check_consistency(&g).unwrap();
        assert!(crate::check::is_minimal_1index(&g, idx.partition()));
    }
}
