//! The *propagate* baseline (Kaushik, Bohannon, Naughton, Shenoy —
//! VLDB'02), as characterized in Sections 2 and 7.1 of the paper: it runs
//! the same Paige–Tarjan split propagation as the split/merge algorithm
//! but **never merges**, so the index stays correct but drifts away from
//! minimal — by about 3–5 % after 500 updates in the original experiments,
//! degrading roughly linearly until an explicit reconstruction.
//!
//! Sharing the split phase with [`super::maintain`] makes the experimental
//! comparison exactly the one the paper ran: the only difference between
//! the two algorithms is the merge phase.

use crate::stats::UpdateStats;
use xsi_graph::{EdgeKind, Graph, GraphError, NodeId};

use super::OneIndex;

impl OneIndex {
    /// Inserts the dedge `(u, v)` maintaining the index with the
    /// *propagate* algorithm: split phase only, no merge phase.
    pub fn propagate_insert_edge(
        &mut self,
        g: &mut Graph,
        u: NodeId,
        v: NodeId,
        kind: EdgeKind,
    ) -> Result<UpdateStats, GraphError> {
        g.insert_edge(u, v, kind)?;
        Ok(self.apply_insert(g, u, v, false))
    }

    /// Deletes the dedge `(u, v)` maintaining the index with the
    /// *propagate* algorithm (split phase only).
    pub fn propagate_delete_edge(
        &mut self,
        g: &mut Graph,
        u: NodeId,
        v: NodeId,
    ) -> Result<(UpdateStats, EdgeKind), GraphError> {
        let kind = g.delete_edge(u, v)?;
        Ok((self.apply_delete(g, u, v, false), kind))
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::figure2_graph;
    use super::*;
    use crate::check::{is_minimal_1index, is_valid_1index};

    /// On Figure 2, propagate performs the splits but not the merges,
    /// leaving a valid but non-minimal index with two extra inodes.
    #[test]
    fn propagate_leaves_unmerged_blocks() {
        let (mut g, ids) = figure2_graph();
        let mut split_merge = OneIndex::build(&g);
        let mut propagate = split_merge.clone();

        let mut g2 = g.clone();
        let sm = split_merge
            .insert_edge(&mut g, ids[&1], ids[&4], EdgeKind::IdRef)
            .unwrap();
        let pr = propagate
            .propagate_insert_edge(&mut g2, ids[&1], ids[&4], EdgeKind::IdRef)
            .unwrap();

        assert_eq!(sm.splits, pr.splits, "identical split phases");
        assert_eq!(pr.merges, 0);
        assert_eq!(propagate.block_count(), split_merge.block_count() + 2);
        assert!(is_valid_1index(&g2, propagate.partition()));
        assert!(!is_minimal_1index(&g2, propagate.partition()));
        propagate.partition().check_consistency(&g2).unwrap();
    }

    /// Propagate deletions are also valid-but-possibly-non-minimal.
    #[test]
    fn propagate_delete_stays_valid() {
        let (mut g, ids) = figure2_graph();
        let mut idx = OneIndex::build(&g);
        idx.propagate_insert_edge(&mut g, ids[&1], ids[&4], EdgeKind::IdRef)
            .unwrap();
        idx.propagate_delete_edge(&mut g, ids[&1], ids[&4]).unwrap();
        assert!(is_valid_1index(&g, idx.partition()));
        idx.partition().check_consistency(&g).unwrap();
    }
}
