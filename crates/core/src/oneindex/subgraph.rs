//! Subgraph addition (Figure 6) and removal for the 1-index.
//!
//! Addition follows the paper's batched algorithm: build the 1-index of
//! the detached subgraph in isolation (its blocks are simply unioned into
//! the host index — no cross edges exist yet), insert *all* incoming
//! dedges to the subgraph root and run the merge phase just once, then
//! feed every remaining boundary edge through the ordinary edge-insertion
//! algorithm. Corollary 1: the result is minimal (minimum on DAGs).
//!
//! Removal is the inverse workload of Section 7.1's subgraph experiment:
//! boundary and internal edges are deleted through the maintained
//! edge-deletion algorithm and the isolated nodes are then detached, so
//! the index stays minimal throughout.

use crate::partition::BlockId;
use crate::stats::UpdateStats;
use std::collections::HashMap;
use xsi_graph::{DetachedSubgraph, Graph, GraphError, Label, NodeId};

use super::OneIndex;

impl OneIndex {
    /// Adds a detached subgraph: materializes its nodes and internal edges
    /// in `g`, extends the index minimally, and connects all boundary
    /// edges recorded in `sub.incoming` / `sub.outgoing` (host node ids
    /// must be alive in `g`). Returns the local→host node mapping and the
    /// accumulated statistics.
    pub fn add_subgraph(
        &mut self,
        g: &mut Graph,
        sub: &DetachedSubgraph,
    ) -> Result<(Vec<NodeId>, UpdateStats), GraphError> {
        self.add_subgraph_impl(g, sub, true)
    }

    /// The Figure 12 baseline variant: same batched subgraph addition but
    /// boundary edges are inserted with the *propagate* algorithm (no
    /// merge phases), so the index stays correct but drifts from minimal.
    pub fn propagate_add_subgraph(
        &mut self,
        g: &mut Graph,
        sub: &DetachedSubgraph,
    ) -> Result<(Vec<NodeId>, UpdateStats), GraphError> {
        self.add_subgraph_impl(g, sub, false)
    }

    fn add_subgraph_impl(
        &mut self,
        g: &mut Graph,
        sub: &DetachedSubgraph,
        do_merge: bool,
    ) -> Result<(Vec<NodeId>, UpdateStats), GraphError> {
        // Materialize nodes + internal edges in the host graph.
        let map = sub.instantiate(g)?;
        self.p.ensure_capacity(g);

        // Build the 1-index of the new subgraph in place: label-partition
        // its nodes into fresh blocks, register internal-edge counts, then
        // refine those blocks to a self-stable fixpoint. With no boundary
        // edges yet, splitter scans never leave the subgraph, so this is
        // exactly "build Φ'(G') and union it with Φ(G)".
        let mut by_label: HashMap<Label, BlockId> = HashMap::new();
        for &n in &map {
            let b = *by_label
                .entry(g.label(n))
                .or_insert_with(|| self.p.new_block(g.label(n)));
            self.p.attach_node(n, b);
        }
        for &(lu, lv, _) in sub.internal_edges() {
            self.p.on_edge_inserted(map[lu as usize], map[lv as usize]);
        }
        // Sort the fresh blocks before refining: worklist order decides
        // the order splits allocate new blocks, so it must not depend on
        // hash state for block IDs to be reproducible.
        let mut seeds: Vec<BlockId> = by_label.values().copied().collect();
        seeds.sort_unstable();
        self.refine_blocks(g, &seeds);

        let mut stats = UpdateStats {
            no_op: false,
            ..UpdateStats::default()
        };

        // Insert all incoming edges to the subgraph root, then merge once
        // (the optimization of Section 5.2: each of these insertions can
        // only require singling the root out, which happens on the first).
        let root = map[sub.root_local() as usize];
        for &(host, local, kind) in &sub.incoming {
            if map[local as usize] != root {
                continue; // handled below with full maintenance
            }
            g.insert_edge(host, root, kind)?;
            self.p.on_edge_inserted(host, root);
            if self.p.size(self.p.block_of(root)) > 1 {
                self.split_phase(g, root, &mut stats);
            }
        }
        if do_merge {
            self.merge_phase(g, self.p.block_of(root), &mut stats);
        }

        // Every other boundary edge goes through insert_1_index_edge.
        for &(host, local, kind) in &sub.incoming {
            if map[local as usize] == root {
                continue;
            }
            g.insert_edge(host, map[local as usize], kind)?;
            stats.absorb(&self.apply_insert(g, host, map[local as usize], do_merge));
        }
        for &(local, host, kind) in &sub.outgoing {
            g.insert_edge(map[local as usize], host, kind)?;
            stats.absorb(&self.apply_insert(g, map[local as usize], host, do_merge));
        }
        stats.final_blocks = self.p.block_count();
        Ok((map, stats))
    }

    /// Removes the given member nodes (e.g. a previously extracted
    /// subtree) from graph and index: all boundary and internal edges are
    /// deleted through maintained edge deletion, then the isolated nodes
    /// are detached and removed from `g`. `members` must be closed under
    /// ... nothing — any node set works, but removal severs every edge
    /// touching it.
    pub fn remove_subgraph(
        &mut self,
        g: &mut Graph,
        members: &[NodeId],
    ) -> Result<UpdateStats, GraphError> {
        let mut stats = UpdateStats {
            no_op: false,
            ..UpdateStats::default()
        };
        let member_set: std::collections::HashSet<NodeId> = members.iter().copied().collect();
        // Boundary edges first (they tie the members to the host index),
        // then internal edges, then the bare nodes.
        for &m in members {
            let in_edges: Vec<NodeId> = g.pred(m).filter(|p| !member_set.contains(p)).collect();
            for p in in_edges {
                g.delete_edge(p, m)?;
                stats.absorb(&self.apply_delete(g, p, m, true));
            }
            let out_edges: Vec<NodeId> = g.succ(m).filter(|c| !member_set.contains(c)).collect();
            for c in out_edges {
                g.delete_edge(m, c)?;
                stats.absorb(&self.apply_delete(g, m, c, true));
            }
        }
        for &m in members {
            let internal: Vec<NodeId> = g.succ(m).collect();
            for c in internal {
                g.delete_edge(m, c)?;
                stats.absorb(&self.apply_delete(g, m, c, true));
            }
        }
        for &m in members {
            self.on_node_removing(g, m);
            g.remove_node(m)?;
        }
        stats.final_blocks = self.p.block_count();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::figure2_graph;
    use super::*;
    use crate::check::{is_minimal_1index, minimality_violation};
    use crate::reference;
    use xsi_graph::{extract_subtree, EdgeKind};

    fn assert_minimum(g: &Graph, idx: &OneIndex) {
        idx.partition().check_consistency(g).unwrap();
        assert!(
            is_minimal_1index(g, idx.partition()),
            "{:?}",
            minimality_violation(g, idx.partition())
        );
        let classes = reference::bisim_classes(g);
        assert_eq!(idx.canonical(), reference::canonical_partition(g, &classes));
    }

    #[test]
    fn add_detached_tree() {
        let (mut g, ids) = figure2_graph();
        let mut idx = OneIndex::build(&g);
        // New subgraph: C -> D (mirrors the existing 5→8 shape) hung
        // under node 2 — after addition it should merge with {5} and {8}.
        let mut sub = DetachedSubgraph::new();
        let c = sub.add_node("C", None);
        let d = sub.add_node("D", None);
        sub.add_edge(c, d, EdgeKind::Child);
        sub.incoming.push((ids[&1], c, EdgeKind::Child));
        sub.incoming.push((ids[&2], c, EdgeKind::Child));
        let (map, stats) = idx.add_subgraph(&mut g, &sub).unwrap();
        assert!(!stats.no_op);
        // New C has parents {1, 2} just like 5.
        assert_eq!(idx.block_of(map[0]), idx.block_of(ids[&5]));
        assert_eq!(idx.block_of(map[1]), idx.block_of(ids[&8]));
        assert_minimum(&g, &idx);
    }

    #[test]
    fn extract_remove_re_add_round_trip() {
        let (mut g, ids) = figure2_graph();
        let mut idx = OneIndex::build(&g);
        let nodes_before = g.node_count();
        let canon_before = idx.canonical();

        let (sub, members) = extract_subtree(&g, ids[&2]);
        assert_eq!(sub.node_count(), 7); // 2,3,4,5 and leaves 6,7,8
        idx.remove_subgraph(&mut g, &members).unwrap();
        assert_minimum(&g, &idx);
        assert_eq!(g.node_count(), nodes_before - sub.node_count());

        let (map, _) = idx.add_subgraph(&mut g, &sub).unwrap();
        assert_eq!(g.node_count(), nodes_before);
        assert_minimum(&g, &idx);
        // The re-added index must have the same shape (sizes) as before.
        let mut sizes_before: Vec<usize> = canon_before.iter().map(|e| e.len()).collect();
        sizes_before.sort_unstable();
        let canon_after = idx.canonical();
        let mut sizes_after: Vec<usize> = canon_after.iter().map(|e| e.len()).collect();
        sizes_after.sort_unstable();
        assert_eq!(sizes_before, sizes_after);
        let _ = map;
    }

    #[test]
    fn add_subgraph_with_outgoing_idrefs() {
        let (mut g, ids) = figure2_graph();
        let mut idx = OneIndex::build(&g);
        let mut sub = DetachedSubgraph::new();
        let a = sub.add_node("auction", None);
        let i = sub.add_node("itemref", None);
        sub.add_edge(a, i, EdgeKind::Child);
        sub.incoming.push((g.root(), a, EdgeKind::Child));
        sub.outgoing.push((i, ids[&6], EdgeKind::IdRef));
        let (map, _) = idx.add_subgraph(&mut g, &sub).unwrap();
        assert!(g.has_edge(map[1], ids[&6]));
        assert_minimum(&g, &idx);
    }

    #[test]
    fn removing_everything_leaves_root_index() {
        let (mut g, ids) = figure2_graph();
        let mut idx = OneIndex::build(&g);
        let (_, members) = extract_subtree(&g, ids[&1]);
        assert_eq!(members.len(), 8);
        idx.remove_subgraph(&mut g, &members).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(idx.block_count(), 1);
        assert_minimum(&g, &idx);
    }
}
