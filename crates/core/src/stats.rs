//! Per-update statistics, used by the efficiency analysis of Section 5.1
//! ("the numbers of split and merge operations are |Φ₁| − |Φ₀| and
//! |Φ₁| − |Φ₂|") and by the Figure 5 worst-case experiment.

/// Counters describing what one incremental update did to an index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Number of block splits performed (|Φ₁(G₂)| − |Φ₀(G₀)|).
    pub splits: usize,
    /// Number of block merges performed (|Φ₁(G₂)| − |Φ₂(G₂)|).
    pub merges: usize,
    /// Index size after the split phase, before the merge phase — the
    /// intermediate index Φ₁ whose potential blow-up Figure 5 illustrates.
    pub intermediate_blocks: usize,
    /// Index size after the whole update (|Φ₂|).
    pub final_blocks: usize,
    /// Whether the update was a no-op for the index (the early-return cases
    /// of Figure 3: the iedge already existed / still exists).
    pub no_op: bool,
}

impl UpdateStats {
    /// Accumulates another update's counters into `self` (for workload
    /// totals). `intermediate_blocks`/`final_blocks` keep the maximum and
    /// last value respectively.
    pub fn absorb(&mut self, other: &UpdateStats) {
        self.splits += other.splits;
        self.merges += other.merges;
        self.intermediate_blocks = self.intermediate_blocks.max(other.intermediate_blocks);
        self.final_blocks = other.final_blocks;
        self.no_op &= other.no_op;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = UpdateStats {
            splits: 1,
            merges: 2,
            intermediate_blocks: 10,
            final_blocks: 8,
            no_op: true,
        };
        let b = UpdateStats {
            splits: 3,
            merges: 1,
            intermediate_blocks: 7,
            final_blocks: 9,
            no_op: false,
        };
        a.absorb(&b);
        assert_eq!(a.splits, 4);
        assert_eq!(a.merges, 3);
        assert_eq!(a.intermediate_blocks, 10);
        assert_eq!(a.final_blocks, 9);
        assert!(!a.no_op);
    }
}
