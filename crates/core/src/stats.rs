//! Per-update statistics, used by the efficiency analysis of Section 5.1
//! ("the numbers of split and merge operations are |Φ₁| − |Φ₀| and
//! |Φ₁| − |Φ₂|") and by the Figure 5 worst-case experiment.

/// Counters describing what one incremental update did to an index.
///
/// Besides the paper's split/merge counts, maintenance algorithms record
/// per-phase wall-clock time (`split_nanos`/`merge_nanos`), the peak
/// Paige–Tarjan work-queue size (`queue_peak`), and — for A(k) — how
/// many refinement-chain levels the update touched (`levels_touched`);
/// the observability layer ([`crate::obs`]) turns these into
/// `split-phase` / `merge-phase` / `rank-maintenance` events and metric
/// series.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Number of block splits performed (|Φ₁(G₂)| − |Φ₀(G₀)|).
    pub splits: usize,
    /// Number of block merges performed (|Φ₁(G₂)| − |Φ₂(G₂)|).
    pub merges: usize,
    /// Index size after the split phase, before the merge phase — the
    /// intermediate index Φ₁ whose potential blow-up Figure 5 illustrates.
    pub intermediate_blocks: usize,
    /// Index size after the whole update (|Φ₂|).
    pub final_blocks: usize,
    /// Whether the update was a no-op for the index (the early-return cases
    /// of Figure 3: the iedge already existed / still exists). On an
    /// aggregate built with [`UpdateStats::absorb`], this means *every*
    /// absorbed op was a no-op — accumulators must start from
    /// [`UpdateStats::identity`], not [`Default::default`], for the flag
    /// to mean anything (`Default` is a non-no-op leaf value).
    pub no_op: bool,
    /// Wall-clock nanoseconds inside the split phase (0 when the phase
    /// was skipped or timing is off).
    pub split_nanos: u64,
    /// Wall-clock nanoseconds inside the merge phase.
    pub merge_nanos: u64,
    /// Peak work-queue size during split propagation (blocks enqueued in
    /// compound slots). Aggregates keep the maximum.
    pub queue_peak: usize,
    /// Refinement-chain levels touched by an A(k) update (k − j₀ + 1; 0
    /// for non-chain indexes). Aggregates keep the maximum.
    pub levels_touched: usize,
}

impl UpdateStats {
    /// The identity element of [`UpdateStats::absorb`]: all counters
    /// zero and `no_op: true` (absorbing any `s` into it yields `s`'s
    /// semantics). Workload accumulators **must** start here — starting
    /// from `Default::default()` (`no_op: false`) would report a
    /// workload of pure no-ops as "did something", the bug this
    /// constructor fixed.
    pub fn identity() -> Self {
        UpdateStats {
            no_op: true,
            ..UpdateStats::default()
        }
    }

    /// Accumulates another update's counters into `self` (for workload
    /// totals): splits/merges/phase-times add, `intermediate_blocks` and
    /// `queue_peak`/`levels_touched` keep the maximum, `final_blocks`
    /// keeps the last value, and `no_op` stays `true` only while every
    /// absorbed op was a no-op (fold from [`UpdateStats::identity`]).
    pub fn absorb(&mut self, other: &UpdateStats) {
        self.splits += other.splits;
        self.merges += other.merges;
        self.intermediate_blocks = self.intermediate_blocks.max(other.intermediate_blocks);
        self.final_blocks = other.final_blocks;
        self.no_op &= other.no_op;
        self.split_nanos += other.split_nanos;
        self.merge_nanos += other.merge_nanos;
        self.queue_peak = self.queue_peak.max(other.queue_peak);
        self.levels_touched = self.levels_touched.max(other.levels_touched);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = UpdateStats {
            splits: 1,
            merges: 2,
            intermediate_blocks: 10,
            final_blocks: 8,
            no_op: true,
            split_nanos: 5,
            merge_nanos: 6,
            queue_peak: 2,
            levels_touched: 1,
        };
        let b = UpdateStats {
            splits: 3,
            merges: 1,
            intermediate_blocks: 7,
            final_blocks: 9,
            no_op: false,
            split_nanos: 10,
            merge_nanos: 1,
            queue_peak: 5,
            levels_touched: 3,
        };
        a.absorb(&b);
        assert_eq!(a.splits, 4);
        assert_eq!(a.merges, 3);
        assert_eq!(a.intermediate_blocks, 10);
        assert_eq!(a.final_blocks, 9);
        assert!(!a.no_op);
        assert_eq!(a.split_nanos, 15);
        assert_eq!(a.merge_nanos, 7);
        assert_eq!(a.queue_peak, 5);
        assert_eq!(a.levels_touched, 3);
    }

    /// The satellite-1 regression: folding only no-ops from the identity
    /// must report `no_op = true`; `Default` is *not* the identity.
    #[test]
    fn identity_preserves_all_no_op_workloads() {
        let noop = UpdateStats {
            final_blocks: 4,
            ..UpdateStats::identity()
        };
        let mut total = UpdateStats::identity();
        for _ in 0..3 {
            total.absorb(&noop);
        }
        assert!(total.no_op, "a workload of pure no-ops is a no-op");
        assert_eq!(total.final_blocks, 4);

        // One real op flips the aggregate and it stays flipped.
        let real = UpdateStats {
            splits: 1,
            ..UpdateStats::default()
        };
        total.absorb(&real);
        total.absorb(&noop);
        assert!(!total.no_op);

        // absorb(identity) is the identity operation on no_op.
        let mut x = UpdateStats::default();
        x.absorb(&UpdateStats::identity());
        assert!(!x.no_op);
    }
}
