//! The single-writer [`UpdateEngine`] — one mutation pipeline for a
//! graph and every structural index over it.
//!
//! The paper's algorithms are described per index, but a system keeps
//! *several* indexes over one document (a 1-index for long paths, an
//! A(k) for short ones, a baseline for comparison …). Before the engine,
//! each caller had to mutate the graph once and remember to notify each
//! index in the right order — easy to get wrong (mutate twice, notify
//! before mutating, forget an index). The engine makes the invariant
//! structural:
//!
//! * it **owns** the [`Graph`] — the only `&mut` path to it goes through
//!   [`UpdateEngine::apply`] and friends, so every mutation is applied
//!   exactly once;
//! * registered [`StructuralIndex`] trait objects are notified in
//!   registration order, after the graph change (the hook contract of
//!   [`crate::index`]);
//! * per-index cumulative [`UpdateStats`] and engine-wide
//!   [`EngineStats`] (ops, splits, merges, touched blocks, latency) are
//!   collected on every operation;
//! * an optional per-index [`RebuildPolicy`] triggers the paper's
//!   5 %-growth reconstruction through [`StructuralIndex::rebuild`],
//!   with the time booked separately — exactly the accounting the
//!   Section 7 experiments need.
//!
//! Node removal is decomposed the way Section 1 prescribes ("based on"
//! edge deletion): the engine deletes each incident edge through the
//! normal fan-out, then runs `on_node_removing` on every index, then
//! removes the node from the graph.
//!
//! With the `paranoid` cargo feature the engine additionally re-runs the
//! trait-level consistency checker ([`UpdateEngine::check`]) and the
//! graph's own invariant check after every mutation, panicking on the
//! first violation — the conformance lab's and test suite's safety net
//! (see `crates/conformance`). The checks are compiled out entirely in
//! default builds.

use crate::batch::{self, BatchError, BatchResult, UpdateOp};
use crate::index::StructuralIndex;
use crate::obs::event::{EventPayload, IndexFamily, OpKind};
use crate::obs::mem::{self, HeapUse};
use crate::obs::metrics::MetricKey;
use crate::obs::span::{SpanGuard, SpanKind};
use crate::obs::{clamp32, ObsHub};
use crate::rebuild::RebuildPolicy;
use crate::stats::UpdateStats;
use crate::view::IndexSnapshot;
use std::time::{Duration, Instant};
use xsi_graph::{EdgeKind, Graph, GraphError, NodeId};

/// Handle to an index registered with an [`UpdateEngine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexHandle(usize);

/// Engine-wide aggregate counters across all operations and indexes.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Graph mutations applied (an edge op counts 1; a node removal
    /// counts 1 plus one per incident edge deleted).
    pub ops: usize,
    /// Total block splits across all indexes.
    pub splits: usize,
    /// Total block merges across all indexes.
    pub merges: usize,
    /// Blocks touched by maintenance, summed over ops and indexes:
    /// every split and merge touches one block, plus the updated node's
    /// block for each non-no-op observation. (Derived from per-op
    /// [`UpdateStats`]; no-op fast paths touch nothing.)
    pub touched_blocks: usize,
    /// Wall-clock time inside index maintenance hooks.
    pub update_time: Duration,
    /// Wall-clock time inside policy-triggered reconstructions.
    pub rebuild_time: Duration,
    /// Number of policy-triggered reconstructions.
    pub rebuilds: usize,
}

impl EngineStats {
    fn absorb_op(&mut self, s: &UpdateStats) {
        self.splits += s.splits;
        self.merges += s.merges;
        self.touched_blocks += s.splits + s.merges + usize::from(!s.no_op);
    }

    /// The single instrumentation choke point for per-operation time
    /// bookkeeping (previously copy-pasted across `add_node`,
    /// `remove_node`, `apply_batch`, and the edge fan-out): books
    /// `elapsed` wall-clock time inside index-maintenance hooks and
    /// `ops` applied graph mutations.
    fn observe_op(&mut self, elapsed: Duration, ops: usize) {
        self.update_time += elapsed;
        self.ops += ops;
    }
}

struct Entry {
    index: Box<dyn StructuralIndex>,
    /// Cumulative stats since registration (absorbed per op).
    stats: UpdateStats,
    policy: Option<RebuildPolicy>,
    /// The index's [`IndexFamily`] handle in the engine's [`ObsHub`].
    family: IndexFamily,
}

/// Owns a [`Graph`] and fans every mutation out to its registered
/// indexes. See the module docs for the design rationale.
pub struct UpdateEngine {
    g: Graph,
    entries: Vec<Entry>,
    stats: EngineStats,
    /// The observability hub: flight recorder / JSONL tracing + metrics
    /// (disabled by default — see [`crate::obs`]).
    obs: ObsHub,
}

impl UpdateEngine {
    /// Wraps a graph. Indexes are registered afterwards so they can be
    /// built against `engine.graph()`.
    pub fn new(g: Graph) -> Self {
        UpdateEngine {
            g,
            entries: Vec::new(),
            stats: EngineStats::default(),
            obs: ObsHub::disabled(),
        }
    }

    /// Read access to the observability hub.
    pub fn obs(&self) -> &ObsHub {
        &self.obs
    }

    /// Mutable access to the observability hub — install a recorder
    /// ([`ObsHub::set_recorder`]) or enable metrics
    /// ([`ObsHub::enable_metrics`]) before applying updates.
    pub fn obs_mut(&mut self) -> &mut ObsHub {
        &mut self.obs
    }

    /// Registers an index (already built over this engine's graph).
    // xsi-lint: allow(obs-coverage, thin delegate; register_inner books the registration through the obs hub)
    pub fn register(&mut self, index: Box<dyn StructuralIndex>) -> IndexHandle {
        self.register_inner(index, None)
    }

    /// Registers an index together with the 5 %-growth reconstruction
    /// policy: after any operation that leaves the index more than the
    /// threshold above its last-rebuilt size, the engine calls
    /// [`StructuralIndex::rebuild`] and books the time separately.
    // xsi-lint: allow(obs-coverage, thin delegate; register_inner books the registration through the obs hub)
    pub fn register_with_policy(&mut self, index: Box<dyn StructuralIndex>) -> IndexHandle {
        let policy = RebuildPolicy::new(index.block_count());
        self.register_inner(index, Some(policy))
    }

    fn register_inner(
        &mut self,
        index: Box<dyn StructuralIndex>,
        policy: Option<RebuildPolicy>,
    ) -> IndexHandle {
        debug_assert!(
            index.check(&self.g).is_ok(),
            "registered index inconsistent with the engine's graph"
        );
        let family = self.obs.register_family(&index.describe());
        self.entries.push(Entry {
            index,
            // Cumulative per-index stats fold from the absorb identity so
            // `no_op` means "every op so far was a no-op" (satellite 1).
            stats: UpdateStats::identity(),
            policy,
            family,
        });
        IndexHandle(self.entries.len() - 1)
    }

    /// Read access to the graph. There is intentionally no `&mut Graph`
    /// accessor — mutations go through the engine.
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// Read access to a registered index.
    // `index(&self, handle)` is the natural name for handle-based lookup;
    // `std::ops::Index` cannot be implemented here because the return type
    // is an unsized trait object behind a `Box` we must not expose.
    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, h: IndexHandle) -> &dyn StructuralIndex {
        &*self.entries[h.0].index
    }

    /// Cumulative per-index statistics since registration.
    pub fn index_stats(&self, h: IndexHandle) -> &UpdateStats {
        &self.entries[h.0].stats
    }

    /// Engine-wide aggregate counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Number of registered indexes.
    pub fn index_count(&self) -> usize {
        self.entries.len()
    }

    /// Disassembles the engine, returning the graph and the indexes
    /// (registration order).
    pub fn into_parts(self) -> (Graph, Vec<Box<dyn StructuralIndex>>) {
        (self.g, self.entries.into_iter().map(|e| e.index).collect())
    }

    /// Adds a node and registers it with every index.
    pub fn add_node(&mut self, label: &str, value: Option<String>) -> NodeId {
        let n = self.g.add_node(label, value);
        self.obs.emit(EventPayload::OpReceived {
            op: OpKind::AddNode,
        });
        let op_span = SpanGuard::enter(SpanKind::Op);
        let t = Instant::now();
        for e in &mut self.entries {
            let dispatch = SpanGuard::enter_family(SpanKind::IndexDispatch, e.family);
            e.index.on_node_added(&self.g, n);
            drop(dispatch);
        }
        drop(op_span);
        self.stats.observe_op(t.elapsed(), 1);
        self.paranoid_check("add_node");
        n
    }

    /// Inserts an edge and fans the observation out. Returns the stats
    /// aggregated over all indexes for this one operation.
    pub fn insert_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        kind: EdgeKind,
    ) -> Result<UpdateStats, GraphError> {
        self.g.insert_edge(u, v, kind)?;
        Ok(self.observe_edge(u, v, true))
    }

    /// Deletes an edge and fans the observation out. Returns the removed
    /// edge's kind alongside the aggregated stats.
    pub fn delete_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
    ) -> Result<(UpdateStats, EdgeKind), GraphError> {
        let kind = self.g.delete_edge(u, v)?;
        Ok((self.observe_edge(u, v, false), kind))
    }

    /// Removes a node: deletes each incident edge through the normal
    /// fan-out (parents first, then children), notifies
    /// `on_node_removing`, then removes the node from the graph.
    pub fn remove_node(&mut self, n: NodeId) -> Result<UpdateStats, GraphError> {
        if !self.g.is_alive(n) {
            return Err(GraphError::DeadNode(n));
        }
        if n == self.g.root() {
            // Reject before touching anything: the graph would refuse the
            // final removal, and by then edges would already be gone.
            return Err(GraphError::RootViolation);
        }
        let mut total = UpdateStats {
            no_op: false,
            ..UpdateStats::default()
        };
        let parents: Vec<NodeId> = self.g.pred(n).collect();
        for p in parents {
            let (s, _) = self.delete_edge(p, n)?;
            total.absorb(&s);
        }
        let children: Vec<NodeId> = self.g.succ(n).collect();
        for c in children {
            let (s, _) = self.delete_edge(n, c)?;
            total.absorb(&s);
        }
        // The incident edge deletions above emitted their own op events
        // (matching `EngineStats::ops` accounting); this one is for the
        // removal itself.
        self.obs.emit(EventPayload::OpReceived {
            op: OpKind::RemoveNode,
        });
        let op_span = SpanGuard::enter(SpanKind::Op);
        let t = Instant::now();
        for e in &mut self.entries {
            let dispatch = SpanGuard::enter_family(SpanKind::IndexDispatch, e.family);
            e.index.on_node_removing(&self.g, n);
            drop(dispatch);
        }
        let elapsed = t.elapsed();
        drop(op_span);
        self.g.remove_node(n)?;
        self.stats.observe_op(elapsed, 1);
        self.paranoid_check("remove_node");
        Ok(total)
    }

    /// Applies one [`UpdateOp`]. `AddNode` ids are returned through the
    /// result's `created`; use [`UpdateEngine::apply_batch`] when ops
    /// reference each other's new nodes.
    // xsi-lint: allow(obs-coverage, one-op shim over apply_batch, which carries the full obs instrumentation)
    pub fn apply(&mut self, op: &UpdateOp) -> Result<BatchResult, BatchError> {
        self.apply_batch(std::slice::from_ref(op))
    }

    /// Applies a batch through the shared phase-ordered batch machinery
    /// (validate → add nodes → insert edges → delete edges → remove
    /// nodes), fanning every mutation out to all registered indexes.
    pub fn apply_batch(&mut self, ops: &[UpdateOp]) -> Result<BatchResult, BatchError> {
        // Split-borrow: the batch core needs &mut Graph plus the index
        // trait objects; reassemble the per-index stats afterwards.
        let t = Instant::now();
        let (result, per_index) = {
            let families: Vec<IndexFamily> = self.entries.iter().map(|e| e.family).collect();
            let mut views: Vec<&mut dyn StructuralIndex> = Vec::with_capacity(self.entries.len());
            for e in &mut self.entries {
                views.push(e.index.as_mut());
            }
            batch::apply_batch_traced_obs(&mut views, &families, &mut self.g, ops, &mut self.obs)?
        };
        self.stats.observe_op(t.elapsed(), result.ops_applied);
        for (e, s) in self.entries.iter_mut().zip(&per_index) {
            e.stats.absorb(s);
            self.stats.absorb_op(s);
        }
        self.run_policies();
        self.paranoid_check("apply_batch");
        Ok(result)
    }

    /// Publishes one `store-report` event per registered index that
    /// keeps dense iedge maps ([`StructuralIndex::store_report`]):
    /// inline vs spilled map populations, cumulative spill events, and
    /// probe lengths land in the metrics registry as `store_*` gauges
    /// plus the `store_probe_len` histogram. On-demand rather than
    /// per-op — the report walks every live block, so callers (bench
    /// drivers, exporters) sample it at export points. A no-op while
    /// the obs hub is inactive.
    pub fn publish_store_reports(&mut self) {
        if !self.obs.is_active() {
            return;
        }
        for e in &self.entries {
            if let Some(r) = e.index.store_report() {
                self.obs.emit(EventPayload::StoreReport {
                    family: e.family,
                    inline_maps: clamp32(r.inline_maps as usize),
                    spilled_maps: clamp32(r.spilled_maps as usize),
                    spill_events: clamp32(r.spill_events as usize),
                    entries: clamp32(r.entries as usize),
                    max_entries: clamp32(r.max_entries as usize),
                    probe_total: r.probe_total,
                });
            }
        }
    }

    /// Publishes one `mem-report` event per registered index with
    /// memory accounting ([`StructuralIndex::mem_report`]): deep byte
    /// categories and the quality telemetry (live blocks vs the
    /// rebuild-to-minimum oracle) land as `mem_*`/`quality_*` gauges,
    /// and the report's extent-length and inline-occupancy histograms
    /// are transplanted into the registry bucket-for-bucket. On-demand,
    /// like [`UpdateEngine::publish_store_reports`]: the report walks
    /// every slot, and `minimum_block_count` *rebuilds* the index — this
    /// is an export-point operation, never a per-op one. A no-op while
    /// the obs hub is inactive.
    pub fn publish_mem_reports(&mut self) {
        if !self.obs.is_active() {
            return;
        }
        for e in &self.entries {
            let Some(r) = e.index.mem_report() else {
                continue;
            };
            let family = e.family;
            let blocks = e.index.block_count();
            let minimum = e.index.minimum_block_count(&self.g);
            if let Some(m) = self.obs.metrics_mut() {
                for (b, &c) in r.extent_len_hist.iter().enumerate() {
                    m.observe_n(
                        MetricKey::named("mem_extent_len").family(family),
                        mem::pow2_bucket_floor(b),
                        c,
                    );
                }
                for (occ, &c) in r.inline_occupancy_hist.iter().enumerate() {
                    m.observe_n(
                        MetricKey::named("mem_iedge_inline_occupancy").family(family),
                        occ as u64,
                        c,
                    );
                }
            }
            self.obs.emit(EventPayload::MemReport {
                family,
                total_bytes: r.total_bytes(),
                extent_owned_bytes: r.extent_owned_bytes,
                extent_shared_bytes: r.extent_shared_bytes,
                iedge_spilled_bytes: r.iedge_spilled_bytes,
                inline_maps: clamp32(r.iedge_inline_maps as usize),
                spilled_maps: clamp32(r.iedge_spilled_maps as usize),
                shared_extents: clamp32(r.shared_extents as usize),
                blocks: clamp32(blocks),
                minimum_blocks: clamp32(minimum),
            });
        }
    }

    /// One-stop metrics export: publishes store and mem reports first
    /// (so the `store_probe_len`/spill telemetry the ROADMAP IedgeMap
    /// sweep needs — and the `mem_*`/`quality_*` attribution — is
    /// always current, not only when a caller remembered the publish
    /// calls), then renders the metrics registry as JSON. Returns
    /// `None` when metrics were never enabled.
    pub fn export_metrics_json(&mut self) -> Option<String> {
        self.obs.metrics()?;
        self.publish_store_reports();
        self.publish_mem_reports();
        Some(self.obs.metrics_json())
    }

    /// Freezes every registered index into an immutable
    /// [`IndexSnapshot`] (registration order; `None` for families that
    /// cannot freeze). O(blocks) per index: extent runs are
    /// `Arc`-shared, not copied — the writer's next mutation of a
    /// frozen block clones only that block's run. Emits one
    /// `snapshot-freeze` event per frozen index when the obs hub is
    /// active (→ `snapshots_total`, `snapshot_freeze_nanos`,
    /// `snapshot_cow_clones`); snapshots are returned either way.
    pub fn freeze(&mut self) -> Vec<Option<IndexSnapshot>> {
        let active = self.obs.is_active();
        let mut out = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            // Family-attributed wrapper; the view-level block walk opens
            // its own (nested) Freeze span carrying the block counter.
            let sp = SpanGuard::enter_family(SpanKind::Freeze, e.family);
            let t = if active { Some(Instant::now()) } else { None };
            let snap = e.index.freeze(&self.g);
            sp.add_cow_clones(e.index.cow_clones());
            if let Some(s) = snap.as_ref() {
                sp.add_blocks(s.block_count() as u64);
            }
            drop(sp);
            if let (Some(t), Some(s)) = (t, snap.as_ref()) {
                self.obs.emit(EventPayload::SnapshotFreeze {
                    family: e.family,
                    blocks: clamp32(s.block_count()),
                    cow_clones: e.index.cow_clones(),
                    nanos: t.elapsed().as_nanos() as u64,
                });
                // Snapshot retention is attributed to the snapshot side
                // (the live index's MemReport reports the same runs as
                // "shared"); the gauge tracks the latest freeze.
                let retained = s.heap_use();
                if let Some(m) = self.obs.metrics_mut() {
                    m.gauge_set(
                        MetricKey::named("snapshot_retained_bytes").family(e.family),
                        retained as f64,
                    );
                }
            }
            out.push(snap);
        }
        out
    }

    /// Consistency check of every registered index against the graph.
    pub fn check(&self) -> Result<(), String> {
        for e in &self.entries {
            e.index
                .check(&self.g)
                .map_err(|err| format!("{}: {err}", e.index.describe()))?;
        }
        Ok(())
    }

    /// Fan-out for an edge observation already applied to the graph.
    fn observe_edge(&mut self, u: NodeId, v: NodeId, inserted: bool) -> UpdateStats {
        let op = if inserted {
            OpKind::InsertEdge
        } else {
            OpKind::DeleteEdge
        };
        let active = self.obs.is_active();
        if active {
            self.obs.emit(EventPayload::OpReceived { op });
        }
        let op_span = SpanGuard::enter(SpanKind::Op);
        let t = Instant::now();
        // Fold from the absorb identity (satellite 1): the aggregate's
        // `no_op` is true iff every index took its no-op fast path.
        let mut total = UpdateStats::identity();
        for e in &mut self.entries {
            let t_idx = if active { Some(Instant::now()) } else { None };
            let dispatch = SpanGuard::enter_family(SpanKind::IndexDispatch, e.family);
            let s = if inserted {
                e.index.on_edge_inserted(&self.g, u, v)
            } else {
                e.index.on_edge_deleted(&self.g, u, v)
            };
            dispatch.add_blocks(s.splits as u64 + s.merges as u64);
            dispatch.set_queue_depth(s.queue_peak as u64);
            drop(dispatch);
            if let Some(t_idx) = t_idx {
                self.obs.observe_index_dispatch(
                    e.family,
                    op,
                    &s,
                    t_idx.elapsed().as_nanos() as u64,
                );
            }
            e.stats.absorb(&s);
            self.stats.absorb_op(&s);
            total.absorb(&s);
        }
        drop(op_span);
        self.stats.observe_op(t.elapsed(), 1);
        self.run_policies();
        self.paranoid_check("edge op");
        total
    }

    /// `paranoid` feature: full self-check after every mutation. Panics
    /// on the first violation so the failing operation is caught at the
    /// op that corrupted state, not at the end of a long sequence. A
    /// no-op (compiled out) without the feature.
    #[inline]
    fn paranoid_check(&self, _context: &str) {
        #[cfg(feature = "paranoid")]
        {
            if let Err(e) = self.g.check_consistency() {
                panic!("paranoid ({_context}): graph inconsistent: {e}");
            }
            if let Err(e) = self.check() {
                panic!("paranoid ({_context}): index check failed: {e}");
            }
        }
    }

    /// Triggers policy-driven reconstructions where the growth threshold
    /// is exceeded.
    fn run_policies(&mut self) {
        for e in &mut self.entries {
            if let Some(policy) = &mut e.policy {
                if policy.should_rebuild(e.index.block_count()) {
                    let before = e.index.block_count();
                    let sp = SpanGuard::enter_family(SpanKind::Rebuild, e.family);
                    sp.add_blocks(before as u64);
                    let t = Instant::now();
                    e.index.rebuild(&self.g);
                    let elapsed = t.elapsed();
                    drop(sp);
                    self.stats.rebuild_time += elapsed;
                    self.stats.rebuilds += 1;
                    let after = e.index.block_count();
                    policy.on_rebuilt(after);
                    self.obs.emit(EventPayload::RebuildTriggered {
                        family: e.family,
                        blocks_before: clamp32(before),
                        blocks_after: clamp32(after),
                        nanos: elapsed.as_nanos() as u64,
                    });
                }
            }
        }
    }
}

impl HeapUse for UpdateEngine {
    /// The registration-table shell plus each registered index's deep
    /// bytes (via its mem report). The graph, per-index stats and the
    /// obs hub itself are deliberately uncounted — see DESIGN.md §13.
    fn heap_use(&self) -> usize {
        mem::vec_cap_heap(&self.entries)
            + self
                .entries
                .iter()
                .filter_map(|e| e.index.mem_report())
                .map(|r| r.total_bytes() as usize)
                .sum::<usize>()
    }
}

impl std::fmt::Debug for UpdateEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdateEngine")
            .field("nodes", &self.g.node_count())
            .field("edges", &self.g.edge_count())
            .field(
                "indexes",
                &self
                    .entries
                    .iter()
                    .map(|e| e.index.describe())
                    .collect::<Vec<_>>(),
            )
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::is_minimal_1index;
    use crate::index::PropagateOneIndex;
    use crate::{AkIndex, OneIndex, SimpleAkIndex};
    use xsi_graph::GraphBuilder;

    fn host() -> (Graph, std::collections::BTreeMap<u64, NodeId>) {
        GraphBuilder::new()
            .nodes(&[(1, "site"), (2, "person"), (3, "person"), (4, "auction")])
            .edges(&[(1, 2), (1, 3), (1, 4)])
            .idref_edges(&[(4, 2)])
            .root_to(1)
            .build_with_ids()
    }

    #[test]
    fn engine_maintains_two_index_families_at_once() {
        let (g, ids) = host();
        let one = OneIndex::build(&g);
        let ak = AkIndex::build(&g, 2);
        let mut engine = UpdateEngine::new(g);
        let h1 = engine.register(Box::new(one));
        let h2 = engine.register(Box::new(ak));
        assert_eq!(engine.index_count(), 2);

        engine.delete_edge(ids[&4], ids[&2]).unwrap();
        engine
            .insert_edge(ids[&4], ids[&3], EdgeKind::IdRef)
            .unwrap();
        let n = engine.add_node("bid", None);
        engine.insert_edge(ids[&4], n, EdgeKind::Child).unwrap();
        engine.check().unwrap();

        // Both indexes land exactly on a from-scratch rebuild, and the
        // engine collected aggregate stats across both families.
        assert_eq!(
            engine.index(h1).block_count(),
            OneIndex::build(engine.graph()).block_count()
        );
        assert_eq!(
            engine.index(h2).block_count(),
            AkIndex::build(engine.graph(), 2).block_count()
        );
        assert_eq!(engine.stats().ops, 4);
        assert!(engine.stats().touched_blocks > 0);
    }

    #[test]
    fn engine_equals_sequential_per_index_maintenance() {
        let (g0, ids) = host();
        // Engine path.
        let mut engine = UpdateEngine::new(g0.clone());
        let h_one = engine.register(Box::new(OneIndex::build(&g0)));
        let h_ak = engine.register(Box::new(AkIndex::build(&g0, 2)));
        // Sequential path.
        let mut g = g0.clone();
        let mut one = OneIndex::build(&g);
        let mut ak = AkIndex::build(&g, 2);

        let steps = [(4u64, 3u64, true), (4, 2, false), (1, 2, false)];
        for &(a, b, insert) in &steps {
            if insert {
                engine
                    .insert_edge(ids[&a], ids[&b], EdgeKind::IdRef)
                    .unwrap();
                g.insert_edge(ids[&a], ids[&b], EdgeKind::IdRef).unwrap();
                one.notify_edge_inserted(&g, ids[&a], ids[&b]);
                ak.notify_edge_inserted(&g, ids[&a], ids[&b]);
            } else {
                engine.delete_edge(ids[&a], ids[&b]).unwrap();
                g.delete_edge(ids[&a], ids[&b]).unwrap();
                one.notify_edge_deleted(&g, ids[&a], ids[&b]);
                ak.notify_edge_deleted(&g, ids[&a], ids[&b]);
            }
        }
        engine.check().unwrap();
        assert_eq!(engine.index(h_one).block_count(), one.block_count());
        assert_eq!(engine.index(h_ak).block_count(), ak.block_count());
        assert!(is_minimal_1index(engine.graph(), one.partition()));
    }

    #[test]
    fn node_removal_decomposes_into_edge_deletions() {
        let (g, ids) = host();
        let edges_of_2 = g.in_degree(ids[&2]) + g.out_degree(ids[&2]);
        let mut engine = UpdateEngine::new(g);
        let h = engine.register(Box::new(OneIndex::build(engine.graph())));
        let ops_before = engine.stats().ops;
        engine.remove_node(ids[&2]).unwrap();
        // One op per incident edge + the removal itself.
        assert_eq!(engine.stats().ops - ops_before, edges_of_2 + 1);
        engine.check().unwrap();
        assert!(!engine.graph().is_alive(ids[&2]));
        assert_eq!(
            engine.index(h).block_count(),
            OneIndex::build(engine.graph()).block_count()
        );
    }

    #[test]
    fn policy_rebuild_bounds_baseline_drift() {
        let (g, ids) = host();
        let mut engine = UpdateEngine::new(g);
        let h = engine.register_with_policy(Box::new(PropagateOneIndex::build(engine.graph())));
        // Toggle edges until propagate drift would exceed 5 %.
        for _ in 0..6 {
            engine.delete_edge(ids[&4], ids[&2]).unwrap();
            engine
                .insert_edge(ids[&4], ids[&2], EdgeKind::IdRef)
                .unwrap();
        }
        let minimum = engine.index(h).minimum_block_count(engine.graph());
        let size = engine.index(h).block_count();
        assert!(
            (size as f64) <= (minimum as f64) * 1.05 + 1.0,
            "policy failed to bound drift: {size} vs minimum {minimum}"
        );
        engine.check().unwrap();
    }

    #[test]
    fn store_reports_land_in_metrics() {
        use crate::obs::event::IndexFamily;
        use crate::obs::MetricKey;
        let (g, ids) = host();
        let mut engine = UpdateEngine::new(g);
        engine.obs_mut().enable_metrics();
        let _h_one = engine.register(Box::new(OneIndex::build(engine.graph())));
        let _h_sim = engine.register(Box::new(SimpleAkIndex::build(engine.graph(), 2)));
        engine.delete_edge(ids[&4], ids[&2]).unwrap();
        engine.publish_store_reports();
        let m = engine.obs().metrics().unwrap();
        // The 1-index (family 0) keeps iedge maps and reports them.
        let one = IndexFamily(0);
        let inline = m
            .gauge_value(&MetricKey::named("store_inline_maps").family(one))
            .expect("1-index publishes a store report");
        assert!(inline > 0.0, "a tiny graph's maps are all inline");
        assert_eq!(
            m.gauge_value(&MetricKey::named("store_spilled_maps").family(one)),
            Some(0.0)
        );
        let probe = m
            .histogram(&MetricKey::named("store_probe_len").family(one))
            .expect("probe-length histogram recorded");
        assert_eq!(probe.count, 1);
        // The simple baseline keeps no iedge maps: no series for family 1.
        let sim = IndexFamily(1);
        assert_eq!(
            m.gauge_value(&MetricKey::named("store_inline_maps").family(sim)),
            None
        );
        // Publishing with the hub inactive is a no-op.
        let mut silent = UpdateEngine::new(host().0);
        silent.register(Box::new(OneIndex::build(silent.graph())));
        silent.publish_store_reports();
        assert_eq!(silent.obs().events_emitted(), 0);
    }

    #[test]
    fn mem_reports_land_in_metrics() {
        use crate::obs::event::IndexFamily;
        use crate::obs::MetricKey;
        let (g, ids) = host();
        let mut engine = UpdateEngine::new(g);
        engine.obs_mut().enable_metrics();
        engine.register(Box::new(OneIndex::build(engine.graph())));
        engine.register(Box::new(SimpleAkIndex::build(engine.graph(), 2)));
        engine.delete_edge(ids[&4], ids[&2]).unwrap();
        engine.publish_mem_reports();
        let m = engine.obs().metrics().unwrap();
        for fam in [IndexFamily(0), IndexFamily(1)] {
            let total = m
                .gauge_value(&MetricKey::named("mem_total_bytes").family(fam))
                .expect("every registered family publishes a mem report");
            assert!(total > 0.0);
            let blocks = m
                .gauge_value(&MetricKey::named("mem_blocks").family(fam))
                .unwrap();
            let minimum = m
                .gauge_value(&MetricKey::named("quality_minimum_blocks").family(fam))
                .unwrap();
            let over = m
                .gauge_value(&MetricKey::named("quality_blocks_over_minimum").family(fam))
                .unwrap();
            assert!(minimum > 0.0);
            assert_eq!(over, (blocks - minimum).max(0.0));
            let hist = m
                .histogram(&MetricKey::named("mem_extent_len").family(fam))
                .expect("extent-length histogram transplanted");
            assert_eq!(hist.count, blocks as u64, "one sample per live block");
        }
        // Only the 1-index keeps iedge maps; its inline-occupancy
        // histogram has one sample per live map (2 maps per block).
        let one = IndexFamily(0);
        let occ = m
            .histogram(&MetricKey::named("mem_iedge_inline_occupancy").family(one))
            .unwrap();
        let inline = m
            .gauge_value(&MetricKey::named("mem_iedge_inline_maps").family(one))
            .unwrap();
        assert_eq!(occ.count, inline as u64);
        assert!(m
            .gauge_value(&MetricKey::named("mem_iedge_inline_occupancy").family(IndexFamily(1)))
            .is_none());
        // Engine-level accounting sums the per-index totals.
        let t0 = m
            .gauge_value(&MetricKey::named("mem_total_bytes").family(IndexFamily(0)))
            .unwrap();
        let t1 = m
            .gauge_value(&MetricKey::named("mem_total_bytes").family(IndexFamily(1)))
            .unwrap();
        assert_eq!(
            engine.heap_use(),
            mem::vec_cap_heap(&engine.entries) + t0 as usize + t1 as usize
        );
        // Publishing with the hub inactive is a no-op.
        let mut silent = UpdateEngine::new(host().0);
        silent.register(Box::new(OneIndex::build(silent.graph())));
        silent.publish_mem_reports();
        assert_eq!(silent.obs().events_emitted(), 0);
    }

    #[test]
    fn freeze_returns_snapshots_and_lands_in_metrics() {
        use crate::obs::event::IndexFamily;
        use crate::obs::MetricKey;
        let (g, ids) = host();
        let mut engine = UpdateEngine::new(g);
        engine.obs_mut().enable_metrics();
        engine.register(Box::new(OneIndex::build(engine.graph())));
        engine.register(Box::new(AkIndex::build(engine.graph(), 2)));
        let snaps = engine.freeze();
        assert_eq!(snaps.len(), 2);
        for (snap, expected) in snaps.iter().zip(["1-index", "A(2)-index"]) {
            let snap = snap.as_ref().expect("both families freeze");
            assert_eq!(snap.family(), expected);
            assert!(snap.block_count() > 0);
        }
        // The frozen 1-index view answers while the writer churns.
        use crate::index::IndexQueryView;
        let frozen = snaps[0].as_ref().unwrap();
        let root_extent: Vec<NodeId> = frozen.extent(frozen.start_block()).to_vec();
        engine.delete_edge(ids[&4], ids[&2]).unwrap();
        assert_eq!(frozen.extent(frozen.start_block()), &root_extent[..]);

        let m = engine.obs().metrics().unwrap();
        for fam in [IndexFamily(0), IndexFamily(1)] {
            assert_eq!(
                m.counter_value(&MetricKey::named("snapshots_total").family(fam)),
                1
            );
            let h = m
                .histogram(&MetricKey::named("snapshot_freeze_nanos").family(fam))
                .expect("freeze timing histogram recorded");
            assert_eq!(h.count, 1);
            assert_eq!(
                m.gauge_value(&MetricKey::named("snapshot_cow_clones").family(fam)),
                Some(0.0),
                "freeze copies no extent runs up front"
            );
            let retained = m
                .gauge_value(&MetricKey::named("snapshot_retained_bytes").family(fam))
                .expect("snapshot retention gauge recorded");
            assert!(retained > 0.0);
        }
        // Freezing with the hub inactive still returns snapshots but
        // emits nothing.
        let mut silent = UpdateEngine::new(host().0);
        silent.register(Box::new(OneIndex::build(silent.graph())));
        let snaps = silent.freeze();
        assert!(snaps[0].is_some());
        assert_eq!(silent.obs().events_emitted(), 0);
    }

    #[test]
    fn stats_accumulate_across_indexes() {
        let (g, ids) = host();
        let mut engine = UpdateEngine::new(g);
        let h_one = engine.register(Box::new(OneIndex::build(engine.graph())));
        let _h_sim = engine.register(Box::new(SimpleAkIndex::build(engine.graph(), 2)));
        engine.delete_edge(ids[&4], ids[&2]).unwrap();
        engine
            .insert_edge(ids[&4], ids[&3], EdgeKind::IdRef)
            .unwrap();
        assert_eq!(engine.stats().ops, 2);
        assert!(engine.stats().update_time > Duration::ZERO);
        // Per-index stats recorded (the 1-index split on the asymmetric
        // IDREF change).
        assert!(engine.index_stats(h_one).splits + engine.index_stats(h_one).merges > 0);
        assert!(engine.stats().touched_blocks > 0);
    }
}
