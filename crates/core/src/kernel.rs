//! The shared refinement kernel (DESIGN.md §10.3): one implementation of
//! the Paige–Tarjan compound-queue split propagation and of the iterative
//! merge fold, driven by both index families.
//!
//! Before this module, `oneindex/maintain.rs` and `akindex/maintain.rs`
//! each carried a private compound queue, a private copy of the
//! "extract smallest member, re-enqueue the rest, stabilize against both
//! splitter scans" loop, and a private copy of the "group successors by
//! merge key, fold each group, requeue survivors" loop. The mechanics
//! were line-for-line parallel; only the primitive operations differed
//! (flat partition vs refinement tree). The kernel factors the mechanics
//! into two small traits:
//!
//! * [`SplitDriver`] — weights, splitter scans, and the family-specific
//!   stabilization primitive (`split_by_set` for the 1-index,
//!   `split_levels_by` for the A(k) chain). [`process_compounds`] runs
//!   the propagation loop over a [`CompoundQueue`]; [`refine_to_fixpoint`]
//!   layers from-scratch refinement (construction, rebuild) on the same
//!   loop by seeding it with one scan per initial block.
//! * [`MergeDriver`] — successor enumeration, the merge-equivalence key,
//!   and the family-specific group merge. [`merge_fold`] runs the
//!   worklist.
//!
//! Everything here iterates in sorted or explicitly-queued order —
//! `CompoundQueue` tracks membership in a `BTreeMap`, `merge_fold`
//! groups in a `BTreeMap` — so the kernel adds no hash-order
//! nondeterminism on top of the drivers.

use crate::obs::span::{SpanGuard, SpanKind};
use crate::stats::UpdateStats;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Debug;
use xsi_graph::{Graph, NodeId};

/// The Paige–Tarjan compound-block queue, level-tagged: groups of blocks
/// that resulted from splitting what used to be a single block, against
/// whose *union* the rest of the partition is still known to be stable.
/// `pop_lowest` serves the compound with the smallest level first (the
/// Figure 7 requirement); the 1-index instantiates it with a single
/// level, which degenerates to plain FIFO order.
///
/// A block belongs to at most one compound. When a member splits, its
/// new half joins the same compound ("replace K in 𝓙 with the inodes in
/// 𝓚"); when a block splits outside any compound, a fresh two-member
/// compound is enqueued.
#[derive(Debug)]
pub struct CompoundQueue<K: Copy + Ord + Debug> {
    slots: Vec<Option<(usize, Vec<K>)>>,
    by_level: Vec<VecDeque<usize>>,
    member: BTreeMap<K, usize>,
}

impl<K: Copy + Ord + Debug> CompoundQueue<K> {
    /// A queue over `levels` levels (use 1 for un-leveled families).
    pub fn new(levels: usize) -> Self {
        CompoundQueue {
            slots: Vec::new(),
            by_level: (0..levels.max(1)).map(|_| VecDeque::new()).collect(),
            member: BTreeMap::new(),
        }
    }

    /// Enqueues a compound of (≥2) blocks at `level`.
    pub fn push(&mut self, level: usize, compound: Vec<K>) {
        debug_assert!(compound.len() >= 2);
        let slot = self.slots.len();
        for &b in &compound {
            let prev = self.member.insert(b, slot);
            debug_assert!(prev.is_none(), "{b:?} already in a compound");
        }
        self.slots.push(Some((level, compound)));
        self.by_level[level].push_back(slot); // xsi-lint: allow(slice-index, push levels are bounded by the by_level vec built in new)
    }

    /// Current work-queue size: blocks enqueued in live compounds (peak
    /// recorded into [`UpdateStats::queue_peak`]).
    pub fn work_size(&self) -> usize {
        self.member.len()
    }

    /// True when no compound is queued.
    pub fn is_empty(&self) -> bool {
        self.member.is_empty()
    }

    /// Dequeues the lowest-level compound (FIFO within a level),
    /// unregistering its members.
    pub fn pop_lowest(&mut self) -> Option<(usize, Vec<K>)> {
        for level in 0..self.by_level.len() {
            // xsi-lint: allow(slice-index, level iterates 0..by_level.len)
            while let Some(slot) = self.by_level[level].pop_front() {
                // xsi-lint: allow(slice-index, queued slot indexes a pushed slots entry)
                if let Some((l, compound)) = self.slots[slot].take() {
                    debug_assert_eq!(l, level);
                    for b in &compound {
                        self.member.remove(b);
                    }
                    return Some((level, compound));
                }
            }
        }
        None
    }

    /// A real split of `old` produced `new` at `level`: grow `old`'s
    /// compound or open a fresh one.
    pub fn on_split(&mut self, level: usize, old: K, new: K) {
        match self.member.get(&old) {
            Some(&slot) => {
                self.slots[slot] // xsi-lint: allow(slice-index, member values index pushed slots entries)
                    .as_mut()
                    .expect("invariant: member lists only name occupied queue slots")
                    .1
                    .push(new);
                self.member.insert(new, slot);
            }
            None => self.push(level, vec![old, new]),
        }
    }

    /// `old` was wholly replaced by `new` (it is about to be released):
    /// swap the id inside its compound, if any.
    pub fn replace(&mut self, old: K, new: K) {
        if let Some(slot) = self.member.remove(&old) {
            let compound = &mut self.slots[slot] // xsi-lint: allow(slice-index, member values index pushed slots entries)
                .as_mut()
                .expect("invariant: member lists only name occupied queue slots")
                .1;
            let pos = compound
                .iter()
                .position(|&b| b == old)
                .expect("invariant: compound and member list stay in lockstep");
            compound[pos] = new; // xsi-lint: allow(slice-index, pos comes from position over the same compound)
            self.member.insert(new, slot);
        }
    }
}

/// The primitive operations [`process_compounds`] needs from an index
/// family. `stabilize` is the family's partition-splitting primitive: it
/// must split every block with a proper intersection against `marked`
/// and report the resulting splits back into the queue (`on_split` for a
/// partial split, `replace` when the original dies).
pub trait SplitDriver {
    /// The family's block handle.
    type Block: Copy + Ord + Debug;
    /// Number of dnodes under `b` (extent size or subtree weight).
    fn weight_of(&self, b: Self::Block) -> usize;
    /// The deduplicated dnode successors of the extents under `roots` —
    /// the splitter set `Succ(·)`.
    fn scan_succ(&mut self, g: &Graph, roots: &[Self::Block]) -> Vec<NodeId>;
    /// Stabilizes the partition against `marked`, where `level` is the
    /// splitter's level (un-leveled families ignore it).
    fn stabilize(
        &mut self,
        g: &Graph,
        marked: &[NodeId],
        level: usize,
        cq: &mut CompoundQueue<Self::Block>,
        stats: &mut UpdateStats,
    );
}

/// The Paige–Tarjan propagation loop: repeatedly extract the
/// lowest-level compound, remove a small member `I`, re-enqueue the rest
/// if still compound, and stabilize the partition against `Succ(I)` and
/// `Succ(rest)`.
///
/// The loop invariant — every block is stable w.r.t. the *union* of each
/// queued compound — means blocks outside `ISucc(I)` are entirely inside
/// or outside both splitter sets, so the two stabilization scans touch
/// exactly the blocks the paper's three-way split (K₁₁/K₁₂/K₂) does.
pub fn process_compounds<D: SplitDriver>(
    d: &mut D,
    g: &Graph,
    cq: &mut CompoundQueue<D::Block>,
    stats: &mut UpdateStats,
) {
    stats.queue_peak = stats.queue_peak.max(cq.work_size());
    while let Some((level, mut compound)) = cq.pop_lowest() {
        // One CompoundProcess span per Fig. 7 iteration: the whole
        // extract/re-enqueue/double-scan body is in-span so the span
        // sum accounts for (nearly) the whole split phase.
        let sp = SpanGuard::enter(SpanKind::CompoundProcess);
        sp.add_blocks(compound.len() as u64);
        sp.set_queue_depth(cq.work_size() as u64);
        // Pick I with |I| ≤ ½ Σ|J| — the smallest member qualifies.
        let (min_pos, _) = compound
            .iter()
            .enumerate()
            .min_by_key(|&(_, &b)| d.weight_of(b))
            .expect("invariant: compound splitters contain at least one block");
        let small = compound.swap_remove(min_pos);
        let rest = compound;
        if rest.len() >= 2 {
            cq.push(level, rest.clone());
        }
        {
            let scan = SpanGuard::enter(SpanKind::KernelScan);
            let splitter = d.scan_succ(g, &[small]);
            scan.add_blocks(1);
            scan.add_elems(splitter.len() as u64);
            sp.add_elems(splitter.len() as u64);
            d.stabilize(g, &splitter, level, cq, stats);
        }
        {
            let scan = SpanGuard::enter(SpanKind::KernelScan);
            let splitter = d.scan_succ(g, &rest);
            scan.add_blocks(rest.len() as u64);
            scan.add_elems(splitter.len() as u64);
            sp.add_elems(splitter.len() as u64);
            d.stabilize(g, &splitter, level, cq, stats);
        }
        stats.queue_peak = stats.queue_peak.max(cq.work_size());
    }
}

/// From-scratch refinement: a plain worklist that scans one block per
/// iteration and requeues both halves of every split, to the coarsest
/// refinement of the seed partition stable w.r.t. itself. Used by
/// 1-index construction and subgraph addition; `level` tags the seeds'
/// level.
///
/// This deliberately does NOT go through [`process_compounds`]: the
/// compound loop's double scan (`Succ(I)` and `Succ(rest)`) is the
/// right move for *maintenance*, where the queue invariant — stability
/// w.r.t. each compound's union — holds and keeps `rest` scans cheap.
/// From scratch no such invariant exists, a fragmenting seed block
/// accretes all of its pieces into one compound, and every pop rescans
/// the whole remainder: quadratic in the fragment count of a seed
/// (measured 2.2× on `1index_build` at xmark scale 0.05). Single-block
/// scans keep construction at one scan per queued block. Splits the
/// driver reports into `cq` are drained back into the worklist after
/// every stabilization, so `cq` leaves empty.
pub fn refine_to_fixpoint<D: SplitDriver>(
    d: &mut D,
    g: &Graph,
    seeds: &[D::Block],
    level: usize,
    cq: &mut CompoundQueue<D::Block>,
    stats: &mut UpdateStats,
) {
    // One aggregate KernelScan span for the whole fixpoint run: builds
    // scan thousands of blocks, so per-block spans would dominate the
    // collection; the counters carry the volume instead.
    let span = SpanGuard::enter(SpanKind::KernelScan);
    let mut work: VecDeque<D::Block> = seeds.iter().copied().collect();
    while let Some(b) = work.pop_front() {
        if d.weight_of(b) == 0 {
            continue;
        }
        let splitter = d.scan_succ(g, &[b]);
        span.add_blocks(1);
        span.add_elems(splitter.len() as u64);
        d.stabilize(g, &splitter, level, cq, stats);
        stats.queue_peak = stats.queue_peak.max(work.len() + cq.work_size());
        // Pure splitting never retires a block id (the remainder keeps
        // the old handle), so flattening compounds into the FIFO is
        // sound: every member is live and just needs its own scan.
        while let Some((_, compound)) = cq.pop_lowest() {
            work.extend(compound);
        }
    }
}

/// The primitive operations [`merge_fold`] needs from an index family.
pub trait MergeDriver {
    /// The family's block handle.
    type Block: Copy + Ord + Debug;
    /// Merge-equivalence key: two successors merge iff their keys are
    /// equal (label + index-parent set for the 1-index; tree parent +
    /// cross-parent set for the A(k) chain).
    type GroupKey: Ord;
    /// The index successors of `b` to consider for merging.
    fn merge_successors(&self, b: Self::Block) -> Vec<Self::Block>;
    /// The merge-equivalence key of `b`.
    fn merge_key(&self, b: Self::Block) -> Self::GroupKey;
    /// Whether `b` is still a live, current handle (queued blocks can be
    /// merged away before they are served).
    fn is_live(&self, b: Self::Block) -> bool;
    /// Merges a group of (≥2, sorted) equivalent blocks, returning the
    /// survivor and accounting the merges in `stats`.
    fn merge_group(&mut self, group: &[Self::Block], stats: &mut UpdateStats) -> Self::Block;
    /// Whether the survivor's own successors should be reconsidered.
    fn requeue(&self, survivor: Self::Block) -> bool;
}

/// The iterative merge fold: starting from `seed`, group each served
/// block's successors by merge key, fold every group of ≥2 into one
/// survivor, and requeue survivors whose successors may now merge in
/// turn. Grouping is a `BTreeMap`, so merge order — and therefore
/// surviving block ids — is deterministic.
pub fn merge_fold<D: MergeDriver>(d: &mut D, seed: D::Block, stats: &mut UpdateStats) {
    let mut queue: VecDeque<D::Block> = VecDeque::new();
    let mut queued: BTreeSet<D::Block> = BTreeSet::new();
    queue.push_back(seed);
    queued.insert(seed);
    while let Some(i) = queue.pop_front() {
        queued.remove(&i);
        if !d.is_live(i) {
            continue; // merged away after being enqueued
        }
        // One CompoundProcess span per served work item (the merge-side
        // analogue of the split loop's compound iteration), with one
        // Merge child per folded group.
        let sp = SpanGuard::enter(SpanKind::CompoundProcess);
        sp.set_queue_depth(queue.len() as u64 + 1);
        let mut groups: BTreeMap<D::GroupKey, Vec<D::Block>> = BTreeMap::new();
        for c in d.merge_successors(i) {
            groups.entry(d.merge_key(c)).or_default().push(c);
        }
        for (_, mut group) in groups {
            if group.len() < 2 {
                continue;
            }
            group.sort_unstable();
            let m = SpanGuard::enter(SpanKind::Merge);
            m.add_blocks(group.len() as u64);
            sp.add_blocks(group.len() as u64);
            let survivor = d.merge_group(&group, stats);
            drop(m);
            if d.requeue(survivor) && queued.insert(survivor) {
                queue.push_back(survivor);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compound_queue_grow_and_replace_semantics() {
        let mut cq: CompoundQueue<u32> = CompoundQueue::new(1);
        cq.push(0, vec![1, 2]);
        cq.on_split(0, 1, 3); // 1 in a compound → same compound grows
        cq.on_split(0, 4, 5); // 4 not in a compound → new compound
        assert_eq!(cq.work_size(), 5);
        let (_, first) = cq.pop_lowest().unwrap();
        assert_eq!(first, vec![1, 2, 3]);
        cq.replace(4, 9); // 4 dies, 9 takes its place in the compound
        let (_, second) = cq.pop_lowest().unwrap();
        assert_eq!(second, vec![9, 5]);
        assert!(cq.pop_lowest().is_none());
        assert!(cq.is_empty());
    }

    #[test]
    fn pop_lowest_serves_levels_ascending_fifo_within() {
        let mut cq: CompoundQueue<u32> = CompoundQueue::new(3);
        cq.push(2, vec![10, 11]);
        cq.push(0, vec![1, 2]);
        cq.push(2, vec![20, 21]);
        cq.push(1, vec![5, 6]);
        let order: Vec<usize> = std::iter::from_fn(|| cq.pop_lowest().map(|(l, _)| l)).collect();
        assert_eq!(order, vec![0, 1, 2, 2]);
    }

    #[test]
    fn replace_outside_any_compound_is_a_noop() {
        let mut cq: CompoundQueue<u32> = CompoundQueue::new(1);
        cq.replace(7, 8);
        assert!(cq.is_empty());
    }
}
