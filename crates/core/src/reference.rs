//! Reference (oracle) implementations of bisimulation partitioning.
//!
//! These compute the *minimum* 1-index and A(k)-index chains by naive
//! fixpoint signature refinement — no incrementality, no cleverness, just
//! the definitions. The property-based tests pit the production algorithms
//! against these oracles on thousands of random graphs; the experiment
//! harness uses them to compute the paper's quality metric
//! (`#inodes / #inodes-in-minimum − 1`, Section 3).
//!
//! The 1-index partitions dnodes by (backward) *bisimilarity*: `u ~ v` iff
//! they share a label and their parent classes coincide, taken to fixpoint.
//! The A(k)-index stops after `k` rounds (`k`-bisimilarity), so the chain
//! `A(0), …, A(k)` is exactly the successive refinement sequence.

use std::collections::HashMap;
use xsi_graph::{Graph, NodeId};

/// Class assignment: `classes[node.index()]` is the class of each live
/// node; dead slots hold `u32::MAX`.
pub type ClassAssignment = Vec<u32>;

const DEAD: u32 = u32::MAX;

/// Assigns each live node its label class — the A(0)-index partition.
pub fn label_classes(g: &Graph) -> ClassAssignment {
    let mut classes = vec![DEAD; g.capacity()];
    for n in g.nodes() {
        classes[n.index()] = g.label(n).index() as u32;
    }
    renumber(g, classes)
}

/// One refinement round: the new class of `n` is determined by its current
/// class plus the set of current classes of its parents.
pub fn refine_once(g: &Graph, classes: &ClassAssignment) -> ClassAssignment {
    let mut sig_ids: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
    let mut next = vec![DEAD; g.capacity()];
    for n in g.nodes() {
        let mut parents: Vec<u32> = g.pred(n).map(|p| classes[p.index()]).collect();
        parents.sort_unstable();
        parents.dedup();
        let sig = (classes[n.index()], parents);
        let id = sig_ids.len() as u32;
        next[n.index()] = *sig_ids.entry(sig).or_insert(id);
    }
    next
}

fn class_count(g: &Graph, classes: &ClassAssignment) -> usize {
    let mut seen: Vec<u32> = g.nodes().map(|n| classes[n.index()]).collect();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Renumbers classes densely (stable with respect to class content) so
/// that assignments can be compared structurally.
fn renumber(g: &Graph, classes: ClassAssignment) -> ClassAssignment {
    let mut map: HashMap<u32, u32> = HashMap::new();
    let mut out = vec![DEAD; classes.len()];
    for n in g.nodes() {
        let c = classes[n.index()];
        let id = map.len() as u32;
        out[n.index()] = *map.entry(c).or_insert(id);
    }
    out
}

/// The full bisimulation partition — the **minimum 1-index** (Lemma 1
/// guarantees it is unique). Runs refinement to fixpoint.
pub fn bisim_classes(g: &Graph) -> ClassAssignment {
    let mut classes = label_classes(g);
    let mut count = class_count(g, &classes);
    loop {
        let next = refine_once(g, &classes);
        let next_count = class_count(g, &next);
        if next_count == count {
            return classes;
        }
        classes = renumber(g, next);
        count = next_count;
    }
}

/// The `A(0) … A(k)` chain of **minimum A(i)-index** partitions (Lemma 2
/// guarantees each is unique). `result[i]` is the A(i) partition;
/// `result.len() == k + 1`.
pub fn k_bisim_chain(g: &Graph, k: usize) -> Vec<ClassAssignment> {
    let mut chain = Vec::with_capacity(k + 1);
    chain.push(label_classes(g));
    for _ in 0..k {
        let prev = chain
            .last()
            .expect("invariant: every node keeps a non-empty chain");
        let next = renumber(g, refine_once(g, prev));
        chain.push(next);
    }
    chain
}

/// Converts an assignment into the canonical sorted-extent form used for
/// partition equality tests.
pub fn canonical_partition(g: &Graph, classes: &ClassAssignment) -> Vec<Vec<NodeId>> {
    let mut by_class: HashMap<u32, Vec<NodeId>> = HashMap::new();
    for n in g.nodes() {
        by_class.entry(classes[n.index()]).or_default().push(n);
    }
    let mut out: Vec<Vec<NodeId>> = by_class.into_values().collect();
    for extent in &mut out {
        extent.sort_unstable();
    }
    out.sort();
    out
}

/// Number of classes in an assignment — the size of the minimum index,
/// the denominator of the paper's quality metric.
pub fn partition_size(g: &Graph, classes: &ClassAssignment) -> usize {
    class_count(g, classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsi_graph::GraphBuilder;

    #[test]
    fn bisim_on_figure2_before_insert() {
        // Figure 2(a) without the dashed edge; Figure 2(b) shows the
        // 1-index: {1}, {2}, {3,4,5}... actually {3,4} and {5}? The figure
        // shows A{1}, B{2}, C{3,4} with parents... Transcribing 2(a):
        // 1:A -> 2:B, 1 -> 3:C ; 2 -> 4:C, 2 -> 5:C ; 3 -> 6:D, 4 -> 7:D,
        // 5 -> 8:D. 1-index (b): {1},{2},{3},{4,5},{6},{7,8}.
        let (g, ids) = GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "B"), (3, "C"), (4, "C"), (5, "C")])
            .nodes(&[(6, "D"), (7, "D"), (8, "D")])
            .edges(&[(1, 2), (1, 3), (2, 4), (2, 5), (3, 6), (4, 7), (5, 8)])
            .root_to(1)
            .build_with_ids();
        let classes = bisim_classes(&g);
        let canon = canonical_partition(&g, &classes);
        // ROOT, {1}, {2}, {3}, {4,5}, {6}, {7,8}
        assert_eq!(canon.len(), 7);
        assert_eq!(
            classes[ids[&4].index()],
            classes[ids[&5].index()],
            "4 and 5 both have the single parent class {{2}}"
        );
        assert_ne!(
            classes[ids[&3].index()],
            classes[ids[&4].index()],
            "3's parent is 1, 4's parent is 2"
        );
        assert_eq!(classes[ids[&7].index()], classes[ids[&8].index()]);
        assert_ne!(classes[ids[&6].index()], classes[ids[&7].index()]);
    }

    #[test]
    fn k_bisim_chain_is_monotone_refinement() {
        let (g, _) = GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "B"), (3, "C"), (4, "C"), (5, "C")])
            .nodes(&[(6, "D"), (7, "D"), (8, "D")])
            .edges(&[(1, 2), (1, 3), (2, 4), (2, 5), (3, 6), (4, 7), (5, 8)])
            .root_to(1)
            .build_with_ids();
        let chain = k_bisim_chain(&g, 4);
        assert_eq!(chain.len(), 5);
        for i in 1..chain.len() {
            // Refinement: same class at level i implies same class at i−1.
            let mut level_to_prev: HashMap<u32, u32> = HashMap::new();
            for n in g.nodes() {
                let c = chain[i][n.index()];
                let p = chain[i - 1][n.index()];
                let entry = level_to_prev.entry(c).or_insert(p);
                assert_eq!(*entry, p, "A({i}) does not refine A({})", i - 1);
            }
            assert!(partition_size(&g, &chain[i]) >= partition_size(&g, &chain[i - 1]));
        }
    }

    #[test]
    fn chain_converges_to_bisim_on_shallow_graph() {
        let (g, _) = GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "B"), (3, "B")])
            .edges(&[(1, 2), (1, 3)])
            .root_to(1)
            .build_with_ids();
        // Depth 2 graph: A(3) is already the full bisimulation.
        let chain = k_bisim_chain(&g, 3);
        let full = bisim_classes(&g);
        assert_eq!(
            canonical_partition(&g, &chain[3]),
            canonical_partition(&g, &full)
        );
    }

    #[test]
    fn cyclic_graph_reaches_fixpoint() {
        // a -> b -> a cycle plus root entry.
        let (g, ids) = GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "B"), (3, "A"), (4, "B")])
            .edges(&[(1, 2), (2, 3), (3, 4), (4, 1)])
            .root_to(1)
            .build_with_ids();
        let classes = bisim_classes(&g);
        // 1 has parents {ROOT, 4}, 3 has parents {2}: different classes.
        assert_ne!(classes[ids[&1].index()], classes[ids[&3].index()]);
    }

    #[test]
    fn label_classes_group_by_label_only() {
        let (g, ids) = GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "B"), (3, "B")])
            .edges(&[(1, 2), (1, 3)])
            .root_to(1)
            .build_with_ids();
        let classes = label_classes(&g);
        assert_eq!(classes[ids[&2].index()], classes[ids[&3].index()]);
        assert_ne!(classes[ids[&1].index()], classes[ids[&2].index()]);
    }
}
