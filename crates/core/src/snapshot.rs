//! Binary snapshots of structural indexes.
//!
//! Reconstruction is the expensive operation this whole paper exists to
//! avoid — so a system restart should not pay it either. A snapshot
//! stores the partition content (and, for the A(k)-index, the refinement
//! tree shape); on load, the derived structures (extents' position
//! tables, iedge multiplicity maps, weights) are rebuilt from the graph
//! in one O((n + m)·k) pass, which is still far cheaper than partition
//! refinement and — unlike reconstruction — preserves the exact block
//! structure, including a *minimal-but-not-minimum* state that captures
//! in-flight drift.
//!
//! Format: a little-endian, length-prefixed encoding with a magic header
//! and an integrity check on counts. Not designed for cross-version
//! compatibility — version-stamped and rejected on mismatch.
//!
//! Not to be confused with [`crate::view`]: that module's
//! [`crate::view::IndexSnapshot`] is an *in-memory read view* frozen in
//! O(blocks) via copy-on-write extent sharing, never serialized. This
//! module is *binary persistence* — bytes on disk, rebuilt on load. See
//! DESIGN.md §11 for the naming rationale.

use crate::akindex::AkIndex;
use crate::oneindex::OneIndex;
use crate::partition::Partition;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use xsi_graph::{Graph, NodeId};

const MAGIC_1INDEX: &[u8; 8] = b"XSI1IDX\x01";
const MAGIC_AKINDEX: &[u8; 8] = b"XSIAKIX\x01";

/// Errors from snapshot decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The header magic or version did not match.
    BadMagic,
    /// The byte stream ended early or had trailing garbage.
    Truncated,
    /// The snapshot disagrees with the graph (node sets differ, a node id
    /// is out of range, labels mismatch, …). The payload explains.
    GraphMismatch(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not an xsi index snapshot (bad magic)"),
            SnapshotError::Truncated => write!(f, "snapshot truncated or malformed"),
            SnapshotError::GraphMismatch(why) => {
                write!(f, "snapshot does not match the graph: {why}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(magic: &[u8; 8]) -> Self {
        Writer {
            buf: magic.to_vec(),
        }
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], magic: &[u8; 8]) -> Result<Self, SnapshotError> {
        if bytes.len() < 8 || &bytes[..8] != magic {
            return Err(SnapshotError::BadMagic);
        }
        Ok(Reader { bytes, pos: 8 })
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(slice.try_into().expect(
            "checked: the slice was length-tested just above (4 bytes)",
        )))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let end = self.pos + 8;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(slice.try_into().expect(
            "checked: the slice was length-tested just above (8 bytes)",
        )))
    }

    fn finish(self) -> Result<(), SnapshotError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(SnapshotError::Truncated)
        }
    }
}

impl OneIndex {
    /// Serializes the index's partition: one extent per block.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new(MAGIC_1INDEX);
        let blocks: Vec<_> = self.blocks().collect();
        w.u64(blocks.len() as u64);
        for b in blocks {
            let extent = self.extent(b);
            w.u64(extent.len() as u64);
            for &n in extent {
                w.u32(n.0);
            }
        }
        w.buf
    }

    /// Restores an index over `g` from a snapshot, rebuilding the derived
    /// structures. The snapshot's extents must exactly partition `g`'s
    /// live nodes (label-homogeneously); otherwise the load is rejected —
    /// a stale snapshot never silently corrupts an index.
    pub fn from_snapshot(g: &Graph, bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader::new(bytes, MAGIC_1INDEX)?;
        let block_count = r.u64()? as usize;
        let mut p = Partition::new(g);
        let mut assigned = 0usize;
        for _ in 0..block_count {
            let len = r.u64()? as usize;
            if len == 0 {
                return Err(SnapshotError::GraphMismatch("empty block".into()));
            }
            let mut block = None;
            for _ in 0..len {
                let raw = r.u32()?;
                let n = NodeId(raw);
                if !g.is_alive(n) {
                    return Err(SnapshotError::GraphMismatch(format!(
                        "node {raw} is not alive"
                    )));
                }
                if p.is_indexed(n) {
                    return Err(SnapshotError::GraphMismatch(format!(
                        "node {raw} appears twice"
                    )));
                }
                let b = *block.get_or_insert_with(|| p.new_block(g.label(n)));
                if p.label(b) != g.label(n) {
                    return Err(SnapshotError::GraphMismatch(format!(
                        "block mixes labels at node {raw}"
                    )));
                }
                p.attach_node(n, b);
                assigned += 1;
            }
        }
        r.finish()?;
        if assigned != g.node_count() {
            return Err(SnapshotError::GraphMismatch(format!(
                "snapshot covers {assigned} nodes, graph has {}",
                g.node_count()
            )));
        }
        p.rebuild_counts(g);
        Ok(OneIndex { p })
    }
}

impl AkIndex {
    /// Serializes the refinement tree: per level, each block's members —
    /// dnodes at level k, child block positions at interior levels.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new(MAGIC_AKINDEX);
        w.u32(self.k() as u32);
        // Stable per-level enumeration; children reference the next
        // level's position in this enumeration. Sorted map keyed by the
        // block handle: deterministic, and exempt from the
        // `dense-side-table` lint by construction.
        let mut position: BTreeMap<crate::akindex::ABlockId, u32> = BTreeMap::new();
        for level in (0..=self.k()).rev() {
            for (i, b) in self.blocks_at(level).enumerate() {
                position.insert(b, i as u32);
            }
            // (positions of deeper levels were recorded in earlier iterations)
            let blocks: Vec<_> = self.blocks_at(level).collect();
            w.u64(blocks.len() as u64);
            for b in blocks {
                if level == self.k() {
                    let extent = self.extent(b);
                    w.u64(extent.len() as u64);
                    for &n in extent {
                        w.u32(n.0);
                    }
                } else {
                    let kids: Vec<u32> = self.tree_children(b).map(|c| position[&c]).collect();
                    w.u64(kids.len() as u64);
                    for k in kids {
                        w.u32(k);
                    }
                }
            }
        }
        w.buf
    }

    /// Restores an A(k)-index over `g` from a snapshot, recomputing the
    /// per-level class assignments and rebuilding every derived count via
    /// the same machinery as construction.
    pub fn from_snapshot(g: &Graph, bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader::new(bytes, MAGIC_AKINDEX)?;
        let k = r.u32()? as usize;
        if k > 64 {
            return Err(SnapshotError::GraphMismatch(format!("implausible k = {k}")));
        }
        // Read levels k down to 0; assign class ids per level.
        let mut levels_rev: Vec<Vec<u32>> = Vec::with_capacity(k + 1);
        // For level k: classes directly from extents. For interior levels:
        // classes via child positions into the previous (deeper) level.
        let mut prev_block_of_node: Vec<u32> = Vec::new();
        for depth in 0..=k {
            let level = k - depth;
            let block_count = r.u64()? as usize;
            let mut assignment = vec![u32::MAX; g.capacity()];
            if level == k {
                for class in 0..block_count {
                    let len = r.u64()? as usize;
                    for _ in 0..len {
                        let raw = r.u32()?;
                        let n = NodeId(raw);
                        if !g.is_alive(n) {
                            return Err(SnapshotError::GraphMismatch(format!(
                                "node {raw} is not alive"
                            )));
                        }
                        if assignment[n.index()] != u32::MAX {
                            return Err(SnapshotError::GraphMismatch(format!(
                                "node {raw} appears twice"
                            )));
                        }
                        assignment[n.index()] = class as u32;
                    }
                }
                if g.nodes().any(|n| assignment[n.index()] == u32::MAX) {
                    return Err(SnapshotError::GraphMismatch(
                        "snapshot does not cover all live nodes".into(),
                    ));
                }
            } else {
                // Class of node = class of the block whose child (at the
                // deeper level) contains it.
                let mut child_to_class: HashMap<u32, u32> = HashMap::new();
                for class in 0..block_count {
                    let len = r.u64()? as usize;
                    for _ in 0..len {
                        let child_pos = r.u32()?;
                        if child_to_class.insert(child_pos, class as u32).is_some() {
                            return Err(SnapshotError::GraphMismatch(
                                "refinement-tree child claimed twice".into(),
                            ));
                        }
                    }
                }
                for n in g.nodes() {
                    let deep = prev_block_of_node[n.index()];
                    let class = child_to_class.get(&deep).ok_or_else(|| {
                        SnapshotError::GraphMismatch("orphan refinement-tree block".into())
                    })?;
                    assignment[n.index()] = *class;
                }
            }
            prev_block_of_node = assignment.clone();
            levels_rev.push(assignment);
        }
        r.finish()?;
        levels_rev.reverse();
        // Validate labels per level-0 class (from_assignments assumes
        // label homogeneity).
        let mut label_of = HashMap::new();
        for n in g.nodes() {
            let c = levels_rev[0][n.index()];
            if *label_of.entry(c).or_insert_with(|| g.label(n)) != g.label(n) {
                return Err(SnapshotError::GraphMismatch(
                    "level-0 class mixes labels".into(),
                ));
            }
        }
        Ok(AkIndex::from_assignments(g, k, &levels_rev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsi_graph::EdgeKind;
    use xsi_workload::{generate_xmark, XmarkParams};

    fn dataset() -> Graph {
        generate_xmark(&XmarkParams::new(0.01, 1.0, 13))
    }

    #[test]
    fn one_index_round_trip() {
        let g = dataset();
        let idx = OneIndex::build(&g);
        let bytes = idx.to_snapshot();
        let restored = OneIndex::from_snapshot(&g, &bytes).unwrap();
        assert_eq!(restored.canonical(), idx.canonical());
        restored.partition().check_consistency(&g).unwrap();
    }

    #[test]
    fn one_index_snapshot_preserves_drift() {
        // A propagate-drifted (non-minimum) index must round-trip exactly
        // — snapshots capture state, not an idealized rebuild.
        let mut g = dataset();
        let mut idx = OneIndex::build(&g);
        let edges: Vec<_> = g
            .edges()
            .filter(|&(_, _, k)| k == EdgeKind::IdRef)
            .take(20)
            .map(|(u, v, _)| (u, v))
            .collect();
        for &(u, v) in &edges {
            idx.propagate_delete_edge(&mut g, u, v).unwrap();
        }
        let bytes = idx.to_snapshot();
        let restored = OneIndex::from_snapshot(&g, &bytes).unwrap();
        assert_eq!(restored.canonical(), idx.canonical());
    }

    #[test]
    fn ak_index_round_trip() {
        let g = dataset();
        for k in [0usize, 2, 4] {
            let idx = AkIndex::build(&g, k);
            let bytes = idx.to_snapshot();
            let restored = AkIndex::from_snapshot(&g, &bytes).unwrap();
            restored.check_consistency(&g).unwrap();
            assert_eq!(restored.canonical(), idx.canonical());
            for level in 0..=k {
                assert_eq!(restored.level_count(level), idx.level_count(level));
            }
        }
    }

    #[test]
    fn restored_indexes_stay_maintainable() {
        let mut g = dataset();
        let idx = AkIndex::build(&g, 2);
        let mut restored = AkIndex::from_snapshot(&g, &idx.to_snapshot()).unwrap();
        // Updates after a load must behave exactly like before the save.
        let (u, v) = g
            .edges()
            .find(|&(_, _, k)| k == EdgeKind::IdRef)
            .map(|(u, v, _)| (u, v))
            .unwrap();
        restored.delete_edge(&mut g, u, v).unwrap();
        restored.check_consistency(&g).unwrap();
        assert_eq!(restored.canonical(), AkIndex::build(&g, 2).canonical());
    }

    #[test]
    fn rejects_wrong_magic_and_truncation() {
        let g = dataset();
        let idx = OneIndex::build(&g);
        let bytes = idx.to_snapshot();
        assert_eq!(
            OneIndex::from_snapshot(&g, b"garbage!").unwrap_err(),
            SnapshotError::BadMagic
        );
        assert_eq!(
            OneIndex::from_snapshot(&g, &bytes[..bytes.len() - 3]).unwrap_err(),
            SnapshotError::Truncated
        );
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            OneIndex::from_snapshot(&g, &padded).unwrap_err(),
            SnapshotError::Truncated
        );
        // Cross-type confusion is caught by magic.
        let ak = AkIndex::build(&g, 2);
        assert_eq!(
            OneIndex::from_snapshot(&g, &ak.to_snapshot()).unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn rejects_stale_snapshot() {
        let mut g = dataset();
        let idx = OneIndex::build(&g);
        let bytes = idx.to_snapshot();
        // Mutate the graph: add a node the snapshot has never seen.
        let n = g.add_node("intruder", None);
        let site = g.succ(g.root()).next().unwrap();
        g.insert_edge(site, n, EdgeKind::Child).unwrap();
        match OneIndex::from_snapshot(&g, &bytes) {
            Err(SnapshotError::GraphMismatch(_)) => {}
            other => panic!("stale snapshot must be rejected, got {other:?}"),
        }
    }
}
