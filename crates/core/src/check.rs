//! Validity and minimality checkers for structural indexes.
//!
//! These verify, from first principles, the two properties the paper's
//! algorithms guarantee:
//!
//! * **validity** (Definition 2): label-homogeneous and stable with respect
//!   to itself — every inode `I` and `J` satisfy `I ⊆ Succ(J)` or
//!   `I ∩ Succ(J) = ∅`;
//! * **minimality** (Definition 5): no two inodes can be merged without
//!   breaking stability — equivalently (remark after Definition 5), no two
//!   inodes have the same label and the same set of index parents.
//!
//! Both run in O(n + m) and are used pervasively by the test suite.

use crate::partition::Partition;
use std::collections::{HashMap, HashSet};
use xsi_graph::{Graph, NodeId};

/// Internal: dense block assignment for checking, extracted once.
fn assignment(g: &Graph, p: &Partition) -> Vec<u32> {
    let mut a = vec![u32::MAX; g.capacity()];
    for b in p.blocks() {
        for &n in p.extent(b) {
            a[n.index()] = b.raw();
        }
    }
    a
}

/// Checks Definition 2: every live node is indexed, inodes are
/// label-homogeneous, and the partition is stable with respect to itself.
pub fn is_valid_1index(g: &Graph, p: &Partition) -> bool {
    validity_violation(g, p).is_none()
}

/// Like [`is_valid_1index`] but reports the first violation found, for
/// debugging failing tests.
pub fn validity_violation(g: &Graph, p: &Partition) -> Option<String> {
    for n in g.nodes() {
        if !p.is_indexed(n) {
            return Some(format!("node {n:?} not indexed"));
        }
    }
    let assign = assignment(g, p);
    // Label homogeneity.
    for b in p.blocks() {
        let label = p.label(b);
        for &n in p.extent(b) {
            if g.label(n) != label {
                return Some(format!("block {b:?} mixes labels at {n:?}"));
            }
        }
    }
    // Stability: for each splitter block J, Succ(J) must contain each block
    // entirely or not at all.
    for j in p.blocks() {
        let mut succ: HashSet<NodeId> = HashSet::new();
        for &u in p.extent(j) {
            succ.extend(g.succ(u));
        }
        let mut counts: HashMap<u32, usize> = HashMap::new();
        // xsi-lint: allow(hash-iter, stability oracle: commutative counting, order cannot change the verdict)
        for &v in &succ {
            *counts.entry(assign[v.index()]).or_insert(0) += 1;
        }
        // xsi-lint: allow(hash-iter, stability oracle: every class is checked, pass/fail is order-free)
        for (&b, &c) in &counts {
            let size = p.size(p.handle(b));
            if c < size {
                return Some(format!(
                    "block B{b} unstable wrt {j:?}: {c} of {size} nodes in Succ"
                ));
            }
        }
    }
    None
}

/// Checks Definition 5 minimality: the index is valid **and** no two
/// inodes share both label and index-parent set.
pub fn is_minimal_1index(g: &Graph, p: &Partition) -> bool {
    minimality_violation(g, p).is_none()
}

/// Like [`is_minimal_1index`] but reports the first violation found.
pub fn minimality_violation(g: &Graph, p: &Partition) -> Option<String> {
    if let Some(v) = validity_violation(g, p) {
        return Some(v);
    }
    // Recompute parent sets from the graph (not trusting the partition's
    // own maps — this is a checker).
    let assign = assignment(g, p);
    let mut parent_sets: HashMap<u32, HashSet<u32>> = HashMap::new();
    for b in p.blocks() {
        parent_sets.entry(b.raw()).or_default();
    }
    for u in g.nodes() {
        for v in g.succ(u) {
            parent_sets
                .entry(assign[v.index()])
                .or_default()
                .insert(assign[u.index()]);
        }
    }
    let mut seen: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
    for b in p.blocks() {
        let mut ps: Vec<u32> = parent_sets[&b.raw()].iter().copied().collect();
        ps.sort_unstable();
        let key = (p.label(b).index() as u32, ps);
        if let Some(&other) = seen.get(&key) {
            return Some(format!(
                "blocks B{other} and {b:?} share label and parent set — mergeable"
            ));
        }
        seen.insert(key, b.raw());
    }
    None
}

/// Checks that `chain[0..=k]` is a valid A(i)-index chain (Definition 4):
/// `chain[0]` is the label partition, and each `chain[i]` refines
/// `chain[i-1]` and is stable with respect to it. Assignments use the
/// [`crate::reference::ClassAssignment`] convention.
pub fn is_valid_ak_chain(g: &Graph, chain: &[Vec<u32>]) -> bool {
    ak_chain_violation(g, chain).is_none()
}

/// Like [`is_valid_ak_chain`] but reports the first violation found.
pub fn ak_chain_violation(g: &Graph, chain: &[Vec<u32>]) -> Option<String> {
    if chain.is_empty() {
        return Some("empty chain".into());
    }
    // Level 0 must group exactly by label.
    let mut label_of_class: HashMap<u32, xsi_graph::Label> = HashMap::new();
    let mut class_of_label: HashMap<xsi_graph::Label, u32> = HashMap::new();
    for n in g.nodes() {
        let c = chain[0][n.index()];
        let l = g.label(n);
        if *label_of_class.entry(c).or_insert(l) != l {
            return Some(format!("A(0) class {c} mixes labels"));
        }
        if *class_of_label.entry(l).or_insert(c) != c {
            return Some(format!("A(0) splits label {l:?} across classes"));
        }
    }
    for i in 1..chain.len() {
        let (prev, cur) = (&chain[i - 1], &chain[i]);
        // Refinement.
        let mut up: HashMap<u32, u32> = HashMap::new();
        for n in g.nodes() {
            let c = cur[n.index()];
            let p = prev[n.index()];
            if *up.entry(c).or_insert(p) != p {
                return Some(format!("A({i}) class {c} spans two A({}) classes", i - 1));
            }
        }
        // Stability of cur w.r.t. prev: group Succ of each prev class.
        let mut succ_of_prev: HashMap<u32, HashSet<NodeId>> = HashMap::new();
        for u in g.nodes() {
            for v in g.succ(u) {
                succ_of_prev.entry(prev[u.index()]).or_default().insert(v);
            }
        }
        let mut cur_sizes: HashMap<u32, usize> = HashMap::new();
        for n in g.nodes() {
            *cur_sizes.entry(cur[n.index()]).or_insert(0) += 1;
        }
        // xsi-lint: allow(hash-iter, stability oracle: every class is checked, pass/fail is order-free)
        for (pc, succ) in &succ_of_prev {
            let mut counts: HashMap<u32, usize> = HashMap::new();
            // xsi-lint: allow(hash-iter, stability oracle: commutative counting, order cannot change the verdict)
            for v in succ {
                *counts.entry(cur[v.index()]).or_insert(0) += 1;
            }
            // xsi-lint: allow(hash-iter, stability oracle: every class is checked, pass/fail is order-free)
            for (c, cnt) in counts {
                if cnt < cur_sizes[&c] {
                    return Some(format!(
                        "A({i}) class {c} unstable wrt A({}) class {pc}",
                        i - 1
                    ));
                }
            }
        }
    }
    None
}

/// The paper's quality metric (Section 3):
/// `#inodes / #inodes-in-minimum − 1`, which the algorithms aim to keep at
/// zero.
pub fn quality(index_size: usize, minimum_size: usize) -> f64 {
    assert!(minimum_size > 0, "minimum index cannot be empty");
    index_size as f64 / minimum_size as f64 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partition;
    use crate::reference;
    use xsi_graph::GraphBuilder;

    fn partition_from_classes(g: &Graph, classes: &[u32]) -> Partition {
        let mut p = Partition::new(g);
        let mut blocks: HashMap<u32, crate::partition::BlockId> = HashMap::new();
        for n in g.nodes() {
            let c = classes[n.index()];
            let b = *blocks.entry(c).or_insert_with(|| p.new_block(g.label(n)));
            p.attach_node(n, b);
        }
        p.rebuild_counts(g);
        p
    }

    /// Figure 4(a): root -> a1, a2 where a1 -> b1 -> a1 back-cycle and
    /// a2 -> b2 -> a2 back-cycle (two parallel 2-cycles).
    fn figure4_graph() -> (Graph, std::collections::BTreeMap<u64, NodeId>) {
        GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "B"), (3, "A"), (4, "B")])
            .edges(&[(1, 2), (3, 4)])
            .idref_edges(&[(2, 1), (4, 3)])
            .root_to(1)
            .root_to(3)
            .build_with_ids()
    }

    #[test]
    fn bisim_partition_is_valid_and_minimal() {
        let (g, _) = figure4_graph();
        let classes = reference::bisim_classes(&g);
        let p = partition_from_classes(&g, &classes);
        assert!(is_valid_1index(&g, &p), "{:?}", validity_violation(&g, &p));
        assert!(
            is_minimal_1index(&g, &p),
            "{:?}",
            minimality_violation(&g, &p)
        );
    }

    #[test]
    fn figure4_minimal_not_minimum() {
        // Figure 4(c): split each cycle into its own pair of inodes.
        // {1},{2},{3},{4} is minimal (1 and 3 have different index parents:
        // {ROOT, B1} vs {ROOT, B2}) yet not minimum ({1,3},{2,4} is valid).
        let (g, ids) = figure4_graph();
        let mut classes = vec![u32::MAX; g.capacity()];
        classes[g.root().index()] = 0;
        classes[ids[&1].index()] = 1;
        classes[ids[&2].index()] = 2;
        classes[ids[&3].index()] = 3;
        classes[ids[&4].index()] = 4;
        let p = partition_from_classes(&g, &classes);
        assert!(is_valid_1index(&g, &p));
        assert!(
            is_minimal_1index(&g, &p),
            "{:?}",
            minimality_violation(&g, &p)
        );
        // ... but the minimum has 3 inodes, so this minimal index is not
        // minimum: quality = 5/3 − 1 > 0.
        let min = reference::partition_size(&g, &reference::bisim_classes(&g));
        assert_eq!(min, 3);
        assert!(quality(p.block_count(), min) > 0.0);
    }

    #[test]
    fn label_partition_of_cyclic_graph_is_invalid() {
        let (g, _) = figure4_graph();
        let classes = reference::label_classes(&g);
        let p = partition_from_classes(&g, &classes);
        // {a1,a2} vs {b1,b2} here IS stable; add asymmetry to break it.
        // (This specific graph's label partition is the minimum index.)
        assert!(is_valid_1index(&g, &p));

        // Asymmetric graph: root -> a1 -> b, root -> a2 (no b child).
        let (g2, _) = GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "A"), (3, "B"), (4, "B")])
            .edges(&[(1, 3)])
            .root_to(1)
            .root_to(2)
            .root_to(4)
            .build_with_ids();
        let classes2 = reference::label_classes(&g2);
        let p2 = partition_from_classes(&g2, &classes2);
        assert!(
            !is_valid_1index(&g2, &p2),
            "{{b-with-parent-a, b-with-parent-root}} must be unstable"
        );
    }

    #[test]
    fn singleton_partition_valid_but_not_minimal() {
        // Putting every node in its own block is always a valid 1-index
        // ("the worst is the data graph itself") but rarely minimal.
        let (g, _) = GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "B"), (3, "B")])
            .edges(&[(1, 2), (1, 3)])
            .root_to(1)
            .build_with_ids();
        let mut classes = vec![u32::MAX; g.capacity()];
        for (i, n) in g.nodes().enumerate() {
            classes[n.index()] = i as u32;
        }
        let p = partition_from_classes(&g, &classes);
        assert!(is_valid_1index(&g, &p));
        assert!(!is_minimal_1index(&g, &p), "{{2}} and {{3}} are mergeable");
    }

    #[test]
    fn reference_chain_passes_ak_checker() {
        let (g, _) = figure4_graph();
        let chain = reference::k_bisim_chain(&g, 3);
        assert!(
            is_valid_ak_chain(&g, &chain),
            "{:?}",
            ak_chain_violation(&g, &chain)
        );
    }

    #[test]
    fn ak_checker_rejects_non_refinement() {
        let (g, _) = figure4_graph();
        let mut chain = reference::k_bisim_chain(&g, 2);
        // Corrupt level 2: collapse everything into one class — not a
        // refinement of level 1.
        for n in g.nodes() {
            chain[2][n.index()] = 0;
        }
        assert!(!is_valid_ak_chain(&g, &chain));
    }

    #[test]
    fn quality_metric() {
        assert_eq!(quality(100, 100), 0.0);
        assert!((quality(105, 100) - 0.05).abs() < 1e-12);
    }
}
