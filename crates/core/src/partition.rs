//! The partition engine: dnode blocks (inode extents) with O(1) node moves
//! and iedge multiplicity maps.
//!
//! Every structural index in this crate is "completely determined by its
//! partition of the dnodes" (Section 3 of the paper), so this module owns
//! the mechanics shared by construction and maintenance:
//!
//! * **extents** — each block stores its dnodes in a `Vec`, with a global
//!   position table enabling O(1) swap-remove moves (the inner loop of
//!   Paige–Tarjan refinement and of the incremental split phase);
//! * **iedge multiplicity maps** — each block counts, per neighbor block,
//!   the number of dedges between the extents, in an adaptive
//!   [`IedgeMap`] (inline sorted array for the common low-degree case,
//!   sorted-map spill above the threshold — see `core::store`). An iedge
//!   exists iff its count is positive; the maps answer the two questions
//!   maintenance asks constantly: "is there an iedge from `I[u]` to
//!   `I[v]`?" and "do these two inodes have the same set of index
//!   parents?" (the minimality test of Definition 5);
//! * **split/merge primitives** — [`Partition::split_by_set`] implements
//!   the stabilize-against-a-splitter step (splitting *all* touched blocks
//!   in one scan of the splitter's successor set, the implementation note
//!   at the end of Section 5.1), and [`Partition::merge_blocks`] folds one
//!   block into another, rewriting neighbor maps.
//!
//! Blocks live in a generation-checked [`SlotMap`]: recycled ids get a
//! fresh generation, so a handle held across [`Partition::release_block`]
//! is caught by the debug-build generation checks instead of silently
//! aliasing the block that reused the slot.

use crate::obs::mem::{btree_set_heap, vec_cap_heap, HeapUse, MemReport};
use crate::store::{CowVec, IedgeMap, ScratchTable, SlotKey, SlotMap, StoreReport};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use xsi_graph::{Graph, Label, NodeId};

/// Identifier of a block (an inode's extent): a dense slot index plus
/// the generation it was minted with. Ids are recycled after
/// [`Partition::release_block`] with a bumped generation, so stale
/// handles never compare equal to the slot's new tenant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId {
    idx: u32,
    generation: u32,
}

impl BlockId {
    const INVALID: BlockId = BlockId {
        idx: u32::MAX,
        generation: u32::MAX,
    };

    /// Dense index for array-backed side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.idx as usize
    }

    /// The raw slot index, for serialization and raw-`u32` query views.
    /// Reconstruct a live handle with [`Partition::handle`].
    #[inline]
    pub fn raw(self) -> u32 {
        self.idx
    }
}

impl Default for BlockId {
    fn default() -> Self {
        BlockId::INVALID
    }
}

impl SlotKey for BlockId {
    fn from_raw_parts(idx: u32, generation: u32) -> Self {
        BlockId { idx, generation }
    }
    fn idx(self) -> u32 {
        self.idx
    }
    fn gen(self) -> u32 {
        self.generation
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.idx)
    }
}

#[derive(Clone, Debug)]
struct Block {
    label: Label,
    /// The extent run, `Arc`-shared with frozen snapshots
    /// (`core::view`): reads deref to a slice, writes go through
    /// `CowVec::make_mut` and clone only when a snapshot holds the run.
    extent: CowVec<NodeId>,
    /// `parents[P]` = number of dedges (u, v) with `u ∈ P`, `v ∈ self`.
    parents: IedgeMap<BlockId>,
    /// `children[C]` = number of dedges (u, v) with `u ∈ self`, `v ∈ C`.
    children: IedgeMap<BlockId>,
}

impl Default for Block {
    fn default() -> Self {
        Block {
            label: Label::from_index(0),
            extent: CowVec::new(),
            parents: IedgeMap::new(),
            children: IedgeMap::new(),
        }
    }
}

impl HeapUse for Block {
    /// The block's heap payload: the extent run plus both iedge maps.
    /// The `Block` struct itself lives inside the slot arena and is
    /// charged to the slab shell.
    fn heap_use(&self) -> usize {
        self.extent.heap_bytes() + self.parents.heap_use() + self.children.heap_use()
    }
}

/// A partition of (a subset of) a graph's dnodes into labeled blocks, with
/// iedge multiplicity maps kept consistent under node moves, edge updates,
/// splits and merges.
#[derive(Clone, Default)]
pub struct Partition {
    blocks: SlotMap<BlockId, Block>,
    /// dnode → block, `BlockId::INVALID` when the node is not indexed.
    node_block: Vec<BlockId>,
    /// dnode → position inside its block's extent.
    node_pos: Vec<u32>,
    /// Live blocks whose parent map is empty (candidates for merging with
    /// other parentless blocks; normally just the root block). Sorted, so
    /// partner probes iterate deterministically.
    orphans: BTreeSet<BlockId>,
    /// Scratch marks for dedup scans, versioned by epoch so clearing is O(1).
    mark: Vec<u32>,
    epoch: u32,
    /// Per-split scratch: |K ∩ marked| by block slot index.
    split_counts: ScratchTable<u32>,
    /// Per-split scratch: the frozen "this block properly intersects"
    /// decision by block slot index.
    split_flag: ScratchTable<bool>,
    /// Per-split scratch: partner block by split block slot index.
    split_partner: ScratchTable<BlockId>,
    /// Cumulative count of extent runs cloned because a frozen snapshot
    /// still shared them (exported as `snapshot_cow_clones`).
    cow_clones: u64,
}

impl Partition {
    /// Creates an empty partition sized for `g`.
    pub fn new(g: &Graph) -> Self {
        let cap = g.capacity();
        Partition {
            blocks: SlotMap::new(),
            node_block: vec![BlockId::INVALID; cap],
            node_pos: vec![0; cap],
            orphans: BTreeSet::new(),
            mark: vec![0; cap],
            epoch: 0,
            split_counts: ScratchTable::new(),
            split_flag: ScratchTable::new(),
            split_partner: ScratchTable::new(),
            cow_clones: 0,
        }
    }

    /// Grows per-node side tables to cover node ids up to `g.capacity()`.
    /// Call after adding nodes to the graph.
    pub fn ensure_capacity(&mut self, g: &Graph) {
        let cap = g.capacity();
        if cap > self.node_block.len() {
            self.node_block.resize(cap, BlockId::INVALID);
            self.node_pos.resize(cap, 0);
            self.mark.resize(cap, 0);
        }
    }

    /// Number of live blocks — the paper's "number of inodes in the index".
    #[inline]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Whether `n` is assigned to a block.
    #[inline]
    pub fn is_indexed(&self, n: NodeId) -> bool {
        self.node_block
            .get(n.index())
            .is_some_and(|&b| b != BlockId::INVALID)
    }

    /// The block containing dnode `n` — the paper's `I[n]`.
    ///
    /// # Panics
    /// Panics if `n` is not indexed.
    #[inline]
    pub fn block_of(&self, n: NodeId) -> BlockId {
        let b = self.node_block[n.index()];
        debug_assert!(b != BlockId::INVALID, "node {n:?} is not indexed");
        b
    }

    /// Whether `b` refers to a live, current-generation block.
    #[inline]
    pub fn is_live(&self, b: BlockId) -> bool {
        self.blocks.is_current(b)
    }

    /// The live handle for raw slot index `idx` (from a query view or a
    /// snapshot).
    ///
    /// # Panics
    /// Panics if the slot is dead or out of range.
    #[inline]
    pub fn handle(&self, idx: u32) -> BlockId {
        self.blocks
            .handle_at(idx)
            .unwrap_or_else(|| panic!("no live block at slot {idx}"))
    }

    /// The extent of block `b`.
    #[inline]
    pub fn extent(&self, b: BlockId) -> &[NodeId] {
        &self.blocks[b].extent
    }

    /// Shares block `b`'s extent run with a frozen snapshot: O(1), no
    /// node ids copied. The writer's next mutation of `b` clones the
    /// run (counted in [`Partition::cow_clone_count`]); the snapshot
    /// keeps this version.
    #[inline]
    pub fn share_extent(&self, b: BlockId) -> Arc<Vec<NodeId>> {
        self.blocks[b].extent.share() // xsi-lint: allow(slice-index, caller passes a live block handle)
    }

    /// Cumulative count of extent runs cloned because a frozen snapshot
    /// still shared them. Starts at 0 and stays 0 until a mutation
    /// actually lands on a frozen block.
    #[inline]
    pub fn cow_clone_count(&self) -> u64 {
        self.cow_clones
    }

    /// `|b|`: the number of dnodes in block `b`.
    #[inline]
    pub fn size(&self, b: BlockId) -> usize {
        self.blocks[b].extent.len()
    }

    /// The label shared by all dnodes of block `b`.
    #[inline]
    pub fn label(&self, b: BlockId) -> Label {
        self.blocks[b].label
    }

    /// Iterates over live block ids in slot order.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks.keys()
    }

    /// Index parents of `b` with dedge multiplicities, in ascending
    /// block-id order (both `IedgeMap` representations are sorted).
    pub fn parents(&self, b: BlockId) -> impl Iterator<Item = (BlockId, u32)> + '_ {
        self.blocks[b].parents.iter()
    }

    /// Index successors `ISucc(b)` with dedge multiplicities, in
    /// ascending block-id order.
    pub fn children(&self, b: BlockId) -> impl Iterator<Item = (BlockId, u32)> + '_ {
        self.blocks[b].children.iter()
    }

    /// Number of distinct index parents of `b`.
    pub fn parent_count(&self, b: BlockId) -> usize {
        self.blocks[b].parents.len()
    }

    /// Number of distinct iedges out of `b`.
    pub fn child_count(&self, b: BlockId) -> usize {
        self.blocks[b].children.len()
    }

    /// Whether the iedge `from → to` exists (≥1 supporting dedge).
    pub fn has_iedge(&self, from: BlockId, to: BlockId) -> bool {
        self.blocks[from].children.contains_key(to)
    }

    /// Whether `a` and `b` have exactly the same set of index parents —
    /// together with label equality, the merge-legality test that makes an
    /// index minimal (Definition 5 and the remark following it). Both key
    /// sequences are sorted, so this is one linear pass.
    pub fn same_parent_set(&self, a: BlockId, b: BlockId) -> bool {
        let pa = &self.blocks[a].parents;
        let pb = &self.blocks[b].parents;
        pa.len() == pb.len() && pa.keys().eq(pb.keys())
    }

    /// Allocates a fresh, empty, live block with the given label.
    /// Recycles released slots (with a bumped generation) and reuses
    /// their extent/map allocations.
    pub fn new_block(&mut self, label: Label) -> BlockId {
        let (id, blk) = self.blocks.alloc();
        blk.label = label;
        debug_assert!(blk.extent.is_empty(), "recycled slot kept its extent");
        // Normalize recycled maps back to the inline representation
        // (they are empty per the release contract, but a spilled map
        // stays spilled until cleared).
        blk.parents.clear();
        blk.children.clear();
        self.orphans.insert(id); // no parents yet
        id
    }

    /// Releases an **empty** block (no extent; neighbor maps must already
    /// be clear, which follows from emptiness when counts are consistent).
    /// The id — every copy of it — becomes stale.
    pub fn release_block(&mut self, b: BlockId) {
        // Hot path: debug_assert keeps the checks out of release builds;
        // the release-debug-asserts CI job still exercises them compiled in.
        debug_assert!(
            self.blocks[b].extent.is_empty(),
            "releasing non-empty block {b:?}"
        );
        debug_assert!(
            self.blocks[b].parents.is_empty(),
            "released block has parent iedges"
        );
        debug_assert!(
            self.blocks[b].children.is_empty(),
            "released block has child iedges"
        );
        self.orphans.remove(&b);
        self.blocks.release(b);
    }

    /// Places an unindexed node into a block **without** touching iedge
    /// counts. Sound when the node has no edges yet (incremental node
    /// addition) or when the caller finishes with [`Partition::rebuild_counts`]
    /// (bulk construction).
    pub fn attach_node(&mut self, n: NodeId, b: BlockId) {
        debug_assert!(!self.is_indexed(n), "attach of already-indexed {n:?}");
        let blk = &mut self.blocks[b];
        self.node_block[n.index()] = b;
        self.node_pos[n.index()] = blk.extent.len() as u32;
        blk.extent.make_mut(&mut self.cow_clones).push(n);
    }

    /// Removes a node from its block **without** touching iedge counts —
    /// the counterpart of [`Partition::attach_node`], for deleting a node
    /// that has no remaining edges. Returns the block it was removed from.
    pub fn detach_node(&mut self, n: NodeId) -> BlockId {
        let b = self.block_of(n);
        self.remove_from_extent(n, b);
        self.node_block[n.index()] = BlockId::INVALID;
        b
    }

    fn remove_from_extent(&mut self, n: NodeId, b: BlockId) {
        let pos = self.node_pos[n.index()] as usize;
        let extent = self.blocks[b].extent.make_mut(&mut self.cow_clones);
        debug_assert_eq!(extent[pos], n);
        extent.swap_remove(pos);
        if let Some(&moved) = extent.get(pos) {
            self.node_pos[moved.index()] = pos as u32;
        }
    }

    /// Moves node `n` from its current block to `to`, keeping all iedge
    /// counts consistent. O(deg(n)).
    pub fn move_node(&mut self, g: &Graph, n: NodeId, to: BlockId) {
        let from = self.block_of(n);
        if from == to {
            return;
        }
        self.remove_from_extent(n, from);
        let blk = &mut self.blocks[to];
        self.node_block[n.index()] = to;
        self.node_pos[n.index()] = blk.extent.len() as u32;
        blk.extent.make_mut(&mut self.cow_clones).push(n);
        // Re-home the counts of every dedge incident to n. Other endpoints
        // are stationary, and self-loops are impossible, so their blocks
        // are well-defined throughout.
        for p in g.pred(n) {
            let bp = self.block_of(p);
            self.dec_edge(bp, from);
            self.inc_edge(bp, to);
        }
        for c in g.succ(n) {
            let bc = self.block_of(c);
            self.dec_edge(from, bc);
            self.inc_edge(to, bc);
        }
    }

    /// Registers the dedge `(u, v)` after it was inserted into the graph.
    pub fn on_edge_inserted(&mut self, u: NodeId, v: NodeId) {
        let (bu, bv) = (self.block_of(u), self.block_of(v));
        self.inc_edge(bu, bv);
    }

    /// Unregisters the dedge `(u, v)` after it was deleted from the graph.
    /// `u` and `v` must still be in their pre-deletion blocks.
    pub fn on_edge_deleted(&mut self, u: NodeId, v: NodeId) {
        let (bu, bv) = (self.block_of(u), self.block_of(v));
        self.dec_edge(bu, bv);
    }

    fn inc_edge(&mut self, from: BlockId, to: BlockId) {
        self.blocks[from].children.add(to, 1);
        let parents = &mut self.blocks[to].parents;
        if parents.is_empty() {
            self.orphans.remove(&to);
        }
        parents.add(from, 1);
    }

    fn dec_edge(&mut self, from: BlockId, to: BlockId) {
        // `IedgeMap::sub` debug-asserts the entry exists (dec_edge only
        // removes iedges inc_edge recorded) and drops it at zero.
        self.blocks[from].children.sub(to, 1);
        let parents = &mut self.blocks[to].parents;
        parents.sub(from, 1);
        if parents.is_empty() && self.blocks.is_current(to) {
            self.orphans.insert(to);
        }
    }

    /// Collects `Succ(blocks)` — the deduplicated dnode successors of the
    /// given blocks' extents — in one scan, as required by the splitter
    /// steps of both construction and incremental maintenance.
    pub fn collect_succ(&mut self, g: &Graph, blocks: &[BlockId]) -> Vec<NodeId> {
        self.epoch += 1;
        let epoch = self.epoch;
        let mut out = Vec::new();
        for &b in blocks {
            for i in 0..self.blocks[b].extent.len() {
                let u = self.blocks[b].extent[i];
                for v in g.succ(u) {
                    if self.mark[v.index()] != epoch {
                        self.mark[v.index()] = epoch;
                        out.push(v);
                    }
                }
            }
        }
        out
    }

    /// Stabilizes the whole partition against the node set `marked`
    /// (typically `Succ` of a splitter): every block is split into its
    /// intersection with `marked` and the remainder; blocks entirely inside
    /// or entirely outside are untouched.
    ///
    /// `marked` must be duplicate-free and contain only indexed nodes.
    /// Returns the `(remainder, intersection)` block-id pairs of every
    /// block actually split. Cost: two scans of `marked` plus O(deg) per
    /// moved node — independent of the number of untouched blocks, with
    /// no per-call allocation (epoch-stamped scratch tables).
    pub fn split_by_set(&mut self, g: &Graph, marked: &[NodeId]) -> Vec<(BlockId, BlockId)> {
        // Pass 1: count |K ∩ marked| per touched block and freeze the
        // decision against the block's *current* size (moves in pass 2
        // shrink extents, so deciding lazily would mis-detect full blocks).
        self.split_counts.begin();
        for &w in marked {
            let b = self.block_of(w);
            self.split_counts.update(b.idx(), |c| *c += 1);
        }
        self.split_flag.begin();
        let mut any = false;
        for ti in 0..self.split_counts.touched_len() {
            let idx = self.split_counts.touched()[ti];
            let b = self.handle(idx);
            let c = self.split_counts.get(idx).unwrap_or(0);
            if (c as usize) < self.size(b) {
                self.split_flag.set(idx, true);
                any = true;
            }
        }
        if !any {
            return Vec::new();
        }
        // Pass 2: move marked nodes of properly-intersected blocks into
        // fresh partner blocks. Partner slots can only come from dead
        // slots (never touched above) or fresh ones, so the scratch
        // tables cannot confuse a partner with a splitting block.
        self.split_partner.begin();
        let mut pairs: Vec<(BlockId, BlockId)> = Vec::new();
        for &w in marked {
            // `w` has not moved yet (each marked node is visited once), so
            // `block_of` still names its original block.
            let b = self.block_of(w);
            if self.split_flag.get(b.idx()) != Some(true) {
                continue;
            }
            let partner = match self.split_partner.get(b.idx()) {
                Some(p) => p,
                None => {
                    let p = self.new_block(self.label(b));
                    self.split_partner.set(b.idx(), p);
                    pairs.push((b, p));
                    p
                }
            };
            self.move_node(g, w, partner);
        }
        // Return the split pairs in sorted order: callers feed them into
        // counter-queues and traces, so the order must stay canonical
        // regardless of the order `marked` visits blocks.
        pairs.sort_unstable();
        pairs
    }

    /// Merges block `src` into block `dst` (Definition 5's merge
    /// operation): extents are concatenated and all iedge counts are
    /// re-keyed from `src` to `dst`. `src` is released (its id goes
    /// stale).
    ///
    /// Cost: O(|src extent| + iedges incident to src). Callers should pass
    /// the smaller block as `src`.
    pub fn merge_blocks(&mut self, dst: BlockId, src: BlockId) {
        // A self-merge would silently destroy the extent via the drain
        // below, so this guard must survive into release builds.
        // xsi-lint: allow(hot-assert, self-merge corrupts the extent irrecoverably; cost is one compare per merge)
        assert_ne!(dst, src, "merging a block with itself");
        debug_assert_eq!(self.label(dst), self.label(src), "label mismatch in merge");
        // Extent transfer.
        // xsi-lint: allow(cow-discipline, take swaps in a fresh empty run; the taken handle still shares with any snapshot reading it)
        let src_extent = std::mem::take(&mut self.blocks[src].extent);
        for &n in src_extent.iter() {
            let blk = &mut self.blocks[dst];
            self.node_block[n.index()] = dst;
            self.node_pos[n.index()] = blk.extent.len() as u32;
            blk.extent.make_mut(&mut self.cow_clones).push(n);
        }
        // Reuse the drained run's allocation for src's next life — unless
        // a frozen snapshot still shares it, in which case the snapshot
        // keeps the nodes and src starts from the fresh empty run that
        // `take` left behind.
        if let Some(mut recycled) = src_extent.take_unique() {
            recycled.clear();
            // xsi-lint: allow(cow-discipline, take_unique proved the run unshared; no snapshot can observe the swap)
            self.blocks[src].extent = recycled.into();
        }
        // Count transfer. Drain src's maps (sorted, keeping their spill
        // history in the slot), remove the src↔src self entry (it appears
        // in both maps but describes the same dedges), then replay every
        // count onto dst with src re-keyed to dst.
        let mut src_parents = self.blocks[src].parents.drain_sorted();
        let mut src_children = self.blocks[src].children.drain_sorted();
        let self_cnt = src_parents
            .iter()
            .position(|&(p, _)| p == src)
            .map(|i| src_parents.remove(i).1)
            .unwrap_or(0);
        let self_cnt2 = src_children
            .iter()
            .position(|&(c, _)| c == src)
            .map(|i| src_children.remove(i).1)
            .unwrap_or(0);
        debug_assert_eq!(self_cnt, self_cnt2, "src self-iedge maps disagree");
        // Drop src from every neighbor's map (re-added under dst below).
        for &(p, _) in &src_parents {
            self.blocks[p].children.remove(src);
        }
        for &(c, _) in &src_children {
            self.blocks[c].parents.remove(src);
        }
        for (p, cnt) in src_parents {
            let p = if p == src { dst } else { p };
            self.add_edge_count(p, dst, cnt);
        }
        for (c, cnt) in src_children {
            let c = if c == src { dst } else { c };
            self.add_edge_count(dst, c, cnt);
        }
        if self_cnt > 0 {
            self.add_edge_count(dst, dst, self_cnt);
        }
        // Neighbors whose parent map temporarily lost src still have dst,
        // so orphan status can only change for dst itself.
        if self.blocks[dst].parents.is_empty() {
            self.orphans.insert(dst);
        } else {
            self.orphans.remove(&dst);
        }
        self.release_block(src);
    }

    fn add_edge_count(&mut self, from: BlockId, to: BlockId, cnt: u32) {
        if cnt == 0 {
            return;
        }
        self.blocks[from].children.add(to, cnt);
        let parents = &mut self.blocks[to].parents;
        if parents.is_empty() {
            self.orphans.remove(&to);
        }
        parents.add(from, cnt);
    }

    /// Merges every block of `group` into its largest member, returning the
    /// survivor. All members must be live, label-equal and distinct.
    pub fn merge_group(&mut self, group: &[BlockId]) -> BlockId {
        debug_assert!(group.len() >= 2);
        let dst = *group
            .iter()
            .max_by_key(|&&b| self.size(b))
            .expect("checked: merge_group callers pass at least two blocks");
        for &b in group {
            if b != dst {
                self.merge_blocks(dst, b);
            }
        }
        dst
    }

    /// Looks for a live block that could legally merge with `b`: same
    /// label, same set of index parents (the merge-phase probe of
    /// Figure 3). Searches only `b`'s siblings (blocks sharing an index
    /// parent), or other orphan blocks when `b` has no parents.
    pub fn find_merge_partner(&self, b: BlockId) -> Option<BlockId> {
        let label = self.label(b);
        let blk = &self.blocks[b];
        // Any index parent works as the sibling anchor (all legal partners
        // share *every* parent of `b`), but both the anchor and the partner
        // are chosen by `min` so the merge twin — and hence the surviving
        // block id — is canonical.
        let anchor = blk.parents.keys().min();
        if let Some(p) = anchor {
            self.blocks[p]
                .children
                .keys()
                .filter(|&cand| {
                    cand != b
                        && self.is_live(cand)
                        && self.label(cand) == label
                        && self.same_parent_set(cand, b)
                })
                .min()
        } else {
            self.orphans
                .iter()
                .copied()
                .filter(|&cand| cand != b && self.label(cand) == label)
                .min()
        }
    }

    /// Recomputes every iedge count from the graph. Used after bulk
    /// [`Partition::attach_node`] loops during construction.
    pub fn rebuild_counts(&mut self, g: &Graph) {
        let live: Vec<BlockId> = self.blocks().collect();
        for &b in &live {
            self.blocks[b].parents.clear();
            self.blocks[b].children.clear();
        }
        self.orphans.clear();
        self.orphans.extend(live);
        for u in g.nodes() {
            if !self.is_indexed(u) {
                continue;
            }
            for v in g.succ(u) {
                if self.is_indexed(v) {
                    self.on_edge_inserted(u, v);
                }
            }
        }
    }

    /// A point-in-time summary of iedge-map representation state across
    /// live blocks (plus spill history retained in recycled slots), for
    /// the obs layer. One pass over the block table.
    pub fn store_report(&self) -> StoreReport {
        let mut r = StoreReport::default();
        for (_, blk) in self.blocks.iter() {
            r.absorb(&blk.parents);
            r.absorb(&blk.children);
            r.blocks += 1;
        }
        for blk in self.blocks.iter_all_slots() {
            r.spill_events += blk.parents.spill_count() as u64 + blk.children.spill_count() as u64;
        }
        r
    }

    /// Deep heap bytes owned by the partition (capacity-based); the
    /// decomposed view is [`Partition::mem_report`].
    pub fn heap_use(&self) -> usize {
        self.blocks.heap_use()
            + vec_cap_heap(&self.node_block)
            + vec_cap_heap(&self.node_pos)
            + vec_cap_heap(&self.mark)
            + btree_set_heap::<BlockId>(self.orphans.len())
            + self.split_counts.heap_use()
            + self.split_flag.heap_use()
            + self.split_partner.heap_use()
    }

    /// A point-in-time deep-memory attribution of the partition, per the
    /// accounting contract in DESIGN.md §13. One pass over the block
    /// table; [`MemReport::total_bytes`] equals this partition's
    /// [`HeapUse::heap_use`] exactly (the walker-oracle test pins it).
    pub fn mem_report(&self) -> MemReport {
        let mut r = MemReport::default();
        let mut live_payload = 0usize;
        for (_, blk) in self.blocks.iter() {
            r.blocks += 1;
            r.record_extent(
                blk.extent.len(),
                blk.extent.heap_bytes(),
                blk.extent.is_shared(),
            );
            for m in [&blk.parents, &blk.children] {
                match m.inline_occupancy() {
                    Some(occ) => r.record_inline_map(occ),
                    None => r.record_spilled_map(m.heap_use()),
                }
            }
            live_payload += blk.heap_use();
        }
        let all_payload: usize = self.blocks.iter_all_slots().map(Block::heap_use).sum();
        r.dead_retained_bytes = (all_payload - live_payload) as u64;
        r.slab_bytes = self.blocks.shell_bytes() as u64;
        r.side_table_bytes = (vec_cap_heap(&self.node_block)
            + vec_cap_heap(&self.node_pos)
            + vec_cap_heap(&self.mark)
            + btree_set_heap::<BlockId>(self.orphans.len())) as u64;
        r.scratch_bytes = (self.split_counts.heap_use()
            + self.split_flag.heap_use()
            + self.split_partner.heap_use()) as u64;
        r
    }

    /// The partition as a canonical sorted list of sorted extents — the
    /// right form for comparing two partitions for set equality in tests.
    pub fn canonical(&self) -> Vec<Vec<NodeId>> {
        let mut out: Vec<Vec<NodeId>> = self
            .blocks()
            .map(|b| {
                let mut e = self.extent(b).to_vec();
                e.sort_unstable();
                e
            })
            .collect();
        out.sort();
        out
    }

    /// Exhaustive structural verification: extents are disjoint and agree
    /// with the node→block map, labels are homogeneous, iedge counts match
    /// a recount from the graph, and the orphan set is exact. Intended for
    /// tests; O(n + m).
    pub fn check_consistency(&self, g: &Graph) -> Result<(), String> {
        let mut seen_nodes = 0usize;
        let mut live = 0usize;
        for (b, blk) in self.blocks.iter() {
            live += 1;
            if blk.extent.is_empty() {
                return Err(format!("live block {b:?} has empty extent"));
            }
            for (pos, &n) in blk.extent.iter().enumerate() {
                if self.node_block[n.index()] != b {
                    return Err(format!(
                        "node {n:?} in extent of {b:?} but mapped elsewhere"
                    ));
                }
                if self.node_pos[n.index()] as usize != pos {
                    return Err(format!("node {n:?} position table out of sync"));
                }
                if g.label(n) != blk.label {
                    return Err(format!("label mismatch in block {b:?} at node {n:?}"));
                }
                seen_nodes += 1;
            }
            if self.orphans.contains(&b) != blk.parents.is_empty() {
                return Err(format!("orphan set wrong for {b:?}"));
            }
        }
        if live != self.blocks.len() {
            return Err(format!(
                "live block counter {} != actual {live}",
                self.blocks.len()
            ));
        }
        let indexed = g.nodes().filter(|&n| self.is_indexed(n)).count();
        if indexed != seen_nodes {
            return Err(format!(
                "{indexed} indexed nodes but {seen_nodes} across extents"
            ));
        }
        // Recount iedges.
        let mut recount: std::collections::BTreeMap<(BlockId, BlockId), u32> =
            std::collections::BTreeMap::new();
        for u in g.nodes() {
            if !self.is_indexed(u) {
                continue;
            }
            for v in g.succ(u) {
                if self.is_indexed(v) {
                    *recount
                        .entry((self.block_of(u), self.block_of(v)))
                        .or_insert(0) += 1;
                }
            }
        }
        let mut stored = 0usize;
        for (b, blk) in self.blocks.iter() {
            for (c, cnt) in blk.children.iter() {
                if recount.get(&(b, c)) != Some(&cnt) {
                    return Err(format!(
                        "child count ({b:?}→{c:?})={cnt} disagrees with recount {:?}",
                        recount.get(&(b, c))
                    ));
                }
                stored += 1;
                // xsi-lint: allow(slice-index, c is a key of a live block map entry)
                if self.blocks[c].parents.get(b) != Some(cnt) {
                    return Err(format!("parent map of {c:?} out of sync with {b:?}"));
                }
            }
            for p in blk.parents.keys() {
                // xsi-lint: allow(slice-index, p is a key of a live block map entry)
                if !self.blocks[p].children.contains_key(b) {
                    return Err(format!("parent entry {p:?} of {b:?} not mirrored"));
                }
            }
        }
        if stored != recount.len() {
            return Err(format!(
                "{stored} stored iedges but recount has {}",
                recount.len()
            ));
        }
        Ok(())
    }
}

impl fmt::Debug for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Partition {{ {} blocks", self.blocks.len())?;
        for b in self.blocks() {
            let ps: Vec<BlockId> = self.blocks[b].parents.keys().collect(); // xsi-lint: allow(slice-index, b comes from the live-blocks iterator)
            writeln!(f, "  {:?}: {:?} parents={:?}", b, self.extent(b), ps)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsi_graph::{EdgeKind, GraphBuilder};

    /// root -> a -> {b1, b2}; returns partition {root} {a} {b1,b2}.
    fn small() -> (Graph, Partition, BlockId, BlockId, BlockId) {
        let (g, ids) = GraphBuilder::new()
            .nodes(&[(1, "a"), (2, "b"), (3, "b")])
            .edges(&[(1, 2), (1, 3)])
            .root_to(1)
            .build_with_ids();
        let mut p = Partition::new(&g);
        let broot = p.new_block(g.label(g.root()));
        p.attach_node(g.root(), broot);
        let ba = p.new_block(g.label(ids[&1]));
        p.attach_node(ids[&1], ba);
        let bb = p.new_block(g.label(ids[&2]));
        p.attach_node(ids[&2], bb);
        p.attach_node(ids[&3], bb);
        p.rebuild_counts(&g);
        (g, p, broot, ba, bb)
    }

    #[test]
    fn build_and_counts() {
        let (g, p, broot, ba, bb) = small();
        assert_eq!(p.block_count(), 3);
        assert!(p.has_iedge(broot, ba));
        assert!(p.has_iedge(ba, bb));
        assert!(!p.has_iedge(bb, ba));
        assert_eq!(
            p.children(ba).collect::<Vec<_>>(),
            vec![(bb, 2)],
            "two dedges support the a→b iedge"
        );
        p.check_consistency(&g).unwrap();
    }

    #[test]
    fn move_node_updates_counts() {
        let (g, mut p, _, ba, bb) = small();
        let b2 = g.nodes().find(|&n| g.label_name(n) == "b").unwrap();
        let fresh = p.new_block(g.label(b2));
        p.move_node(&g, b2, fresh);
        assert_eq!(p.size(bb), 1);
        assert_eq!(p.size(fresh), 1);
        assert!(p.has_iedge(ba, fresh));
        assert!(p.has_iedge(ba, bb));
        p.check_consistency(&g).unwrap();
    }

    #[test]
    fn split_by_set_splits_proper_intersections() {
        let (g, mut p, _, _, bb) = small();
        // Mark only b1: bb properly intersects → splits.
        let b1 = p.extent(bb)[0];
        let pairs = p.split_by_set(&g, &[b1]);
        assert_eq!(pairs.len(), 1);
        let (old, new) = pairs[0];
        assert_eq!(old, bb);
        assert_eq!(p.extent(new), &[b1]);
        assert_eq!(p.size(old), 1);
        p.check_consistency(&g).unwrap();
    }

    #[test]
    fn split_by_set_ignores_full_and_disjoint_blocks() {
        let (g, mut p, _, _, bb) = small();
        // Mark the whole extent of bb: no proper intersection anywhere.
        let marked: Vec<NodeId> = p.extent(bb).to_vec();
        assert!(p.split_by_set(&g, &marked).is_empty());
        assert_eq!(p.block_count(), 3);
        p.check_consistency(&g).unwrap();
    }

    #[test]
    fn merge_reverses_split() {
        let (g, mut p, _, _, bb) = small();
        let before = p.canonical();
        let b1 = p.extent(bb)[0];
        let pairs = p.split_by_set(&g, &[b1]);
        let (old, new) = pairs[0];
        p.merge_blocks(old, new);
        assert_eq!(p.canonical(), before);
        p.check_consistency(&g).unwrap();
    }

    #[test]
    fn merge_with_self_iedges() {
        // a1 -> a2 inside one block: the block has a self iedge; splitting
        // and re-merging must keep counts consistent.
        let (g, ids) = GraphBuilder::new()
            .nodes(&[(1, "a"), (2, "a")])
            .edges(&[(1, 2)])
            .root_to(1)
            .build_with_ids();
        let mut p = Partition::new(&g);
        let br = p.new_block(g.label(g.root()));
        p.attach_node(g.root(), br);
        let ba = p.new_block(g.label(ids[&1]));
        p.attach_node(ids[&1], ba);
        p.attach_node(ids[&2], ba);
        p.rebuild_counts(&g);
        assert!(p.has_iedge(ba, ba));
        let pairs = p.split_by_set(&g, &[ids[&2]]);
        assert_eq!(pairs.len(), 1);
        let (old, new) = pairs[0];
        assert!(p.has_iedge(old, new));
        p.check_consistency(&g).unwrap();
        p.merge_blocks(old, new);
        assert!(p.has_iedge(old, old));
        p.check_consistency(&g).unwrap();
    }

    #[test]
    fn edge_insert_delete_hooks() {
        let (mut g, mut p, broot, _, bb) = small();
        let b1 = p.extent(bb)[0];
        g.insert_edge(g.root(), b1, EdgeKind::IdRef).unwrap();
        p.on_edge_inserted(g.root(), b1);
        assert!(p.has_iedge(broot, bb));
        p.check_consistency(&g).unwrap();
        g.delete_edge(g.root(), b1).unwrap();
        p.on_edge_deleted(g.root(), b1);
        assert!(!p.has_iedge(broot, bb));
        p.check_consistency(&g).unwrap();
    }

    #[test]
    fn orphan_tracking() {
        let (mut g, mut p, broot, ba, _) = small();
        assert!(p.find_merge_partner(broot).is_none(), "root is lone orphan");
        // Cut a's only incoming edge: ba becomes an orphan.
        let a = p.extent(ba)[0];
        g.delete_edge(g.root(), a).unwrap();
        p.on_edge_deleted(g.root(), a);
        // ba now parentless; the only other orphan is root with a different
        // label, so still no partner.
        assert!(p.find_merge_partner(ba).is_none());
        p.check_consistency(&g).unwrap();
    }

    #[test]
    fn find_merge_partner_same_parents() {
        // root -> {a1}, root -> {a2}: split apart, they are partners.
        let (g, ids) = GraphBuilder::new()
            .nodes(&[(1, "a"), (2, "a")])
            .root_to(1)
            .root_to(2)
            .build_with_ids();
        let mut p = Partition::new(&g);
        let br = p.new_block(g.label(g.root()));
        p.attach_node(g.root(), br);
        let b1 = p.new_block(g.label(ids[&1]));
        p.attach_node(ids[&1], b1);
        let b2 = p.new_block(g.label(ids[&2]));
        p.attach_node(ids[&2], b2);
        p.rebuild_counts(&g);
        assert_eq!(p.find_merge_partner(b1), Some(b2));
        assert_eq!(p.find_merge_partner(b2), Some(b1));
    }

    #[test]
    fn detach_and_release() {
        let (g, mut p, _, _, bb) = small();
        // Detach both b-nodes (pretend their edges were removed first —
        // counts go stale, so rebuild afterwards).
        let nodes: Vec<NodeId> = p.extent(bb).to_vec();
        for n in nodes {
            p.detach_node(n);
        }
        assert_eq!(p.size(bb), 0);
        p.rebuild_counts(&g);
        p.release_block(bb);
        assert_eq!(p.block_count(), 2);
        assert!(!p.is_live(bb));
    }

    #[test]
    fn canonical_is_stable_under_block_renaming() {
        let (_, p1, ..) = small();
        let (_, p2, ..) = small();
        assert_eq!(p1.canonical(), p2.canonical());
    }

    #[test]
    fn released_id_goes_stale_and_recycles_with_new_generation() {
        let (g, mut p, _, _, bb) = small();
        let nodes: Vec<NodeId> = p.extent(bb).to_vec();
        for n in nodes {
            p.detach_node(n);
        }
        p.rebuild_counts(&g);
        p.release_block(bb);
        assert!(!p.is_live(bb));
        // The slot is recycled with a fresh generation: the old handle
        // stays stale, the new one is live, and they are not equal.
        let fresh = p.new_block(g.label(g.root()));
        assert_eq!(fresh.raw(), bb.raw(), "LIFO slot reuse");
        assert_ne!(fresh, bb, "generation distinguishes the tenants");
        assert!(p.is_live(fresh));
        assert!(!p.is_live(bb));
        assert_eq!(p.handle(bb.raw()), fresh);
    }

    #[test]
    fn cow_clones_count_only_mutations_of_shared_runs() {
        let (g, mut p, _, _, bb) = small();
        assert_eq!(p.cow_clone_count(), 0);
        let snap = p.share_extent(bb);
        assert_eq!(p.cow_clone_count(), 0, "sharing alone never clones");
        // Unshared blocks keep mutating in place.
        let b1 = p.extent(bb)[0];
        let pairs = p.split_by_set(&g, &[b1]);
        assert_eq!(pairs.len(), 1);
        assert!(
            p.cow_clone_count() >= 1,
            "mutating a frozen block must clone its run"
        );
        assert_eq!(snap.len(), 2, "the frozen run keeps its pre-split content");
        assert_eq!(p.size(bb), 1, "the live block moved on");
    }

    #[test]
    fn store_report_counts_maps_and_spills() {
        let (_, p, ..) = small();
        let r = p.store_report();
        assert_eq!(r.blocks, 3);
        assert_eq!(r.inline_maps + r.spilled_maps, 6, "two maps per block");
        assert_eq!(r.spilled_maps, 0, "tiny partition stays inline");
        assert_eq!(r.spill_events, 0);
        assert!(r.entries >= 4, "root→a, a→b on both sides");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use xsi_graph::GraphBuilder;

    /// Diamond: root -> a -> {b1, b2} -> c (both b's point at c).
    fn diamond() -> (Graph, Partition, Vec<BlockId>) {
        let (g, ids) = GraphBuilder::new()
            .nodes(&[(1, "a"), (2, "b"), (3, "b"), (4, "c")])
            .edges(&[(1, 2), (1, 3), (2, 4), (3, 4)])
            .root_to(1)
            .build_with_ids();
        let mut p = Partition::new(&g);
        let mut blocks = Vec::new();
        for key in [0u64, 1, 2, 3, 4] {
            let n = if key == 0 { g.root() } else { ids[&key] };
            let b = p.new_block(g.label(n));
            p.attach_node(n, b);
            blocks.push(b);
        }
        p.rebuild_counts(&g);
        (g, p, blocks)
    }

    #[test]
    fn merge_group_picks_largest_survivor() {
        let (g, mut p, blocks) = diamond();
        // Merge the two singleton b-blocks; then grow one and merge again
        // to observe survivor selection.
        let survivor = p.merge_group(&[blocks[2], blocks[3]]);
        assert!(p.is_live(survivor));
        assert_eq!(p.size(survivor), 2);
        p.check_consistency(&g).unwrap();
        // The c block now has exactly one parent (the merged b block).
        assert_eq!(p.parent_count(blocks[4]), 1);
        assert!(p.has_iedge(survivor, blocks[4]));
    }

    #[test]
    fn collect_succ_deduplicates() {
        let (g, mut p, blocks) = diamond();
        let merged = p.merge_group(&[blocks[2], blocks[3]]);
        // Succ of the merged b-block = {c} exactly once, despite two
        // supporting dedges.
        let succ = p.collect_succ(&g, &[merged]);
        assert_eq!(succ.len(), 1);
        // Succ over multiple blocks dedups across them too.
        let succ = p.collect_succ(&g, &[blocks[1], merged]);
        assert_eq!(succ.len(), 3); // b1, b2 (from a), c (from merged)
    }

    #[test]
    fn multiplicity_counts_track_supporting_edges() {
        let (g, mut p, blocks) = diamond();
        let merged = p.merge_group(&[blocks[2], blocks[3]]);
        let (_, count) = p.children(merged).next().unwrap();
        assert_eq!(count, 2, "two dedges support the merged→c iedge");
        let _ = g;
    }

    #[test]
    fn same_parent_set_respects_content_not_counts() {
        let (g, mut p, blocks) = diamond();
        // b1 and b2 both have exactly {a} as parent set.
        assert!(p.same_parent_set(blocks[2], blocks[3]));
        // c's parent set is {b1, b2} — different from b1's {a}.
        assert!(!p.same_parent_set(blocks[4], blocks[2]));
        let merged = p.merge_group(&[blocks[2], blocks[3]]);
        // After the merge, c has parent set {merged}.
        let parents: Vec<BlockId> = p.parents(blocks[4]).map(|(x, _)| x).collect();
        assert_eq!(parents, vec![merged]);
        let _ = g;
    }
}
