//! # xsi-core — structural indexes and their incremental maintenance
//!
//! A from-scratch Rust implementation of *Incremental Maintenance of XML
//! Structural Indexes* (Yi, He, Stanoi, Yang — SIGMOD 2004).
//!
//! A **structural index** for a data graph partitions the dnodes into
//! equivalence classes ("inodes"); an iedge connects inode `I` to inode `J`
//! when some dnode in `I` has a dedge to some dnode in `J`. This crate
//! provides:
//!
//! * [`OneIndex`] — the 1-index (Milo & Suciu), partitioning by
//!   bisimilarity, constructed by Paige–Tarjan partition refinement and
//!   maintained incrementally by the paper's **split/merge** algorithm
//!   (Figure 3: edge insertion/deletion; Figure 6: subgraph addition), which
//!   keeps the index *minimal* at all times and *minimum* on acyclic graphs
//!   (Theorem 1);
//! * [`AkIndex`] — the A(k)-index (Kaushik et al.), partitioning by
//!   k-bisimilarity, maintained by the refinement-tree split/merge algorithm
//!   of Figure 7, which keeps the whole A(0)..A(k) chain *minimum* on any
//!   graph (Theorem 2);
//! * the baselines the paper compares against: the split-only
//!   [`propagate`](OneIndex::propagate_insert_edge) algorithm of Kaushik et
//!   al. (VLDB'02) and the [`simple`](SimpleAkIndex) BFS-repartitioning
//!   A(k) updater of Qun et al. (SIGMOD'03), plus the periodic
//!   [`rebuild`]-on-5 %-growth heuristic both baselines rely on;
//! * [`mod@reference`] oracles (naive fixpoint (k-)bisimulation) and
//!   [`check`]ers (validity, minimality) used by the test suite and the
//!   experiment harness;
//! * the [`StructuralIndex`] trait — one object-safe maintenance interface
//!   implemented by every index family above (plus the
//!   [`PropagateOneIndex`] baseline wrapper), with post-mutation observer
//!   hooks, a uniform [`rebuild`](StructuralIndex::rebuild) entry point,
//!   optional [`IndexQueryView`] for index-assisted query evaluation, and a
//!   trait-level consistency [`check`](StructuralIndex::check);
//! * the single-writer [`UpdateEngine`] — owns the [`Graph`](xsi_graph::Graph),
//!   applies each [`UpdateOp`] exactly once, and fans the notification out
//!   to all registered indexes, so several index families stay maintained
//!   over the same graph simultaneously with per-index [`UpdateStats`] and
//!   aggregate [`EngineStats`], plus policy-driven rebuilds.
//!
//! ```
//! use xsi_graph::{Graph, EdgeKind};
//! use xsi_core::OneIndex;
//!
//! let mut g = Graph::new();
//! let a = g.add_node("a", None);
//! let b1 = g.add_node("b", None);
//! let b2 = g.add_node("b", None);
//! let r = g.root();
//! g.insert_edge(r, a, EdgeKind::Child).unwrap();
//! g.insert_edge(a, b1, EdgeKind::Child).unwrap();
//! g.insert_edge(a, b2, EdgeKind::Child).unwrap();
//!
//! let mut idx = OneIndex::build(&g);
//! assert_eq!(idx.block_count(), 3); // {ROOT}, {a}, {b1,b2}
//!
//! // Incremental update: b1 gains a second parent, so it is no longer
//! // bisimilar to b2 — the index splits, minimally.
//! let c = g.add_node("c", None);
//! idx.on_node_added(&g, c);
//! idx.insert_edge(&mut g, r, c, EdgeKind::Child).unwrap();
//! idx.insert_edge(&mut g, c, b1, EdgeKind::IdRef).unwrap();
//! assert_eq!(idx.block_count(), 5); // ROOT, {a}, {c}, {b1}, {b2}
//! ```

#![forbid(unsafe_code)]

pub mod akindex;
pub mod batch;
pub mod check;
pub mod engine;
pub mod index;
pub mod kernel;
pub mod obs;
pub mod oneindex;
pub mod partition;
pub mod rebuild;
pub mod reference;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod view;

pub use akindex::{AkIndex, SimpleAkIndex};
pub use batch::{
    apply_batch, apply_batch_1index, apply_batch_ak, apply_batch_traced, BatchError, BatchResult,
    NodeRef, UpdateOp,
};
pub use check::{is_minimal_1index, is_valid_1index, is_valid_ak_chain};
pub use engine::{EngineStats, IndexHandle, UpdateEngine};
pub use index::{IndexQueryView, PropagateOneIndex, StructuralIndex};
pub use obs::{
    FlightRecorder, JsonlWriter, MetricsRegistry, NullRecorder, ObsHub, Recorder, SpanGuard,
    SpanKind, SpanTree,
};
pub use oneindex::OneIndex;
pub use partition::{BlockId, Partition};
pub use stats::UpdateStats;
pub use view::{FrozenBlock, IndexSnapshot};
