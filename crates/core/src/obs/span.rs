//! Hierarchical causal spans over the update pipeline.
//!
//! The flight recorder (PR 3) answers *what happened* — flat events with
//! aggregate phase nanos. It cannot answer *which compound block inside
//! a `process_compounds` run ate the time*, which is the visibility the
//! ROADMAP perf items (extent sharding, SIMD splitter scans, batch fast
//! path) need. This module adds that missing axis: RAII [`SpanGuard`]s
//! with parent ids and typed [`SpanKind`]s, forming a proper tree
//! (`Op` → `IndexDispatch` → `Split` → `CompoundProcess` →
//! `KernelScan`, …) with close-time attached [`SpanCounters`].
//!
//! # Single-writer span stack
//!
//! The pipeline's write side is single-writer by design (one
//! `UpdateEngine` owns the graph), so span collection is a *thread
//! local* stack: `begin_collection` arms the current thread,
//! [`SpanGuard::enter`] pushes, `Drop` pops, `end_collection` hands the
//! finished [`SpanTree`] back. Thread locality is what lets the kernel's
//! free functions ([`crate::kernel::process_compounds`] and friends) and
//! the maintainers open spans without threading an `&mut ObsHub` through
//! every signature — the hub stays the event/metrics sink, the span
//! stack is ambient.
//!
//! # Self-overhead contract (the `NullRecorder` fast path, extended)
//!
//! Exactly like event emission gated on `ObsHub::is_active`, a span
//! callsite with collection disabled must cost *one thread-local flag
//! read and a branch* — no clock read, no allocation, no record
//! construction. [`SpanGuard::enter`] checks the flag first and returns
//! an inert guard (`id == 0`) whose `Drop` and counter methods are
//! no-ops. `benches/obs_overhead.rs` holds this to "within noise".
//!
//! # Panic balance
//!
//! Guards close in `Drop`, so unwinding through an instrumented region
//! still closes every open span (durations are stamped at unwind time).
//! A guard that is dropped out of open order (stashed in a struct,
//! leaked child) closes every span opened after it as well, so the
//! stack can never wedge. `end_collection` with guards still open
//! simply detaches them: a stale guard holds a generation tag and will
//! not touch a newer collection.
//!
//! # Overflow policy
//!
//! Collections are capped (default [`DEFAULT_CAP`]). When full,
//! `enter` counts the span as dropped and returns an inert guard —
//! drop-*newest*, so every recorded parent id stays valid and the open
//! stack stays balanced. [`SpanTree::dropped`] reports the loss.

use std::cell::{Cell, RefCell};
use std::time::Instant;

use super::event::IndexFamily;

/// Typed span kinds, one per causal layer of the update pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// One update operation entering the engine.
    Op,
    /// One registered index observing a mutation (per-family).
    IndexDispatch,
    /// One compound-block iteration of the paper's Fig. 7 loop
    /// (`process_compounds`), or one served work item of a merge fold.
    CompoundProcess,
    /// One splitter scan over `Succ(extent)` (or a whole
    /// `refine_to_fixpoint` run during builds).
    KernelScan,
    /// The split phase of one index's maintenance (wraps exactly the
    /// region timed into `UpdateStats::split_nanos`).
    Split,
    /// The merge phase of one index's maintenance (wraps exactly the
    /// region timed into `UpdateStats::merge_nanos`), and each
    /// individual block-group merge inside it.
    Merge,
    /// One phase segment of a batch application.
    BatchSegment,
    /// A policy-triggered index rebuild.
    Rebuild,
    /// An index being frozen into an in-memory snapshot.
    Freeze,
}

impl SpanKind {
    /// Stable name (Chrome-trace `name` field, folded-stack frame).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Op => "Op",
            SpanKind::IndexDispatch => "IndexDispatch",
            SpanKind::CompoundProcess => "CompoundProcess",
            SpanKind::KernelScan => "KernelScan",
            SpanKind::Split => "Split",
            SpanKind::Merge => "Merge",
            SpanKind::BatchSegment => "BatchSegment",
            SpanKind::Rebuild => "Rebuild",
            SpanKind::Freeze => "Freeze",
        }
    }
}

/// Counters attached to a span at close time. All additive; zero means
/// "not applicable to this kind".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanCounters {
    /// Blocks touched (compound members, merge-group sizes, frozen
    /// blocks).
    pub blocks: u64,
    /// Extent elements scanned (splitter-scan result sizes).
    pub elems: u64,
    /// Compound work-queue depth observed at the span's open (peak over
    /// `set_queue_depth` calls).
    pub queue_depth: u64,
    /// Copy-on-write extent clones attributed to the span.
    pub cow_clones: u64,
}

impl SpanCounters {
    /// Elementwise sum (`queue_depth` takes the max — it is a level,
    /// not a volume).
    pub fn absorb(&mut self, other: &SpanCounters) {
        self.blocks += other.blocks;
        self.elems += other.elems;
        self.queue_depth = self.queue_depth.max(other.queue_depth);
        self.cow_clones += other.cow_clones;
    }
}

/// One closed span. Ids are 1-based in open order; `parent == 0` marks
/// a root. Children always appear after their parent in
/// [`SpanTree::spans`], and close before it (RAII), so `dur_nanos` of a
/// parent always covers the sum of its children.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// 1-based id in open order.
    pub id: u32,
    /// Parent id, or 0 for a root span.
    pub parent: u32,
    /// What layer of the pipeline this span covers.
    pub kind: SpanKind,
    /// Index family, or [`IndexFamily::NONE`] for engine/kernel-level
    /// spans (which inherit the family of their nearest ancestor).
    pub family: IndexFamily,
    /// Open time, nanos since the collection began.
    pub ts_nanos: u64,
    /// Close − open, nanos (≥ 1 once closed; 0 only if never closed).
    pub dur_nanos: u64,
    /// Close-time attached counters.
    pub counters: SpanCounters,
}

/// A finished collection: the span forest plus the overflow count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanTree {
    /// All spans in open order (parents before children).
    pub spans: Vec<SpanRecord>,
    /// Spans not recorded because the collection cap was hit.
    pub dropped: u64,
}

impl SpanTree {
    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The span with the given 1-based id.
    pub fn get(&self, id: u32) -> Option<&SpanRecord> {
        if id == 0 {
            return None;
        }
        self.spans.get((id - 1) as usize)
    }

    /// How many spans of `kind` were recorded.
    pub fn kind_count(&self, kind: SpanKind) -> usize {
        self.spans.iter().filter(|s| s.kind == kind).count()
    }

    /// Total duration (self + children, since parents cover children)
    /// over all spans of `kind`. Note nested same-kind spans are each
    /// counted, so only compare against kinds that do not self-nest.
    pub fn kind_nanos(&self, kind: SpanKind) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.dur_nanos)
            .sum()
    }

    /// Counter totals over all spans of `kind`.
    pub fn kind_counters(&self, kind: SpanKind) -> SpanCounters {
        let mut acc = SpanCounters::default();
        for s in self.spans.iter().filter(|s| s.kind == kind) {
            acc.absorb(&s.counters);
        }
        acc
    }

    /// The direct children of span `id` (0 = the roots).
    pub fn children_of(&self, id: u32) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.parent == id)
    }

    /// The family in effect for span `id`: its own, or the nearest
    /// ancestor's (kernel spans are opened below the per-family
    /// `IndexDispatch` span and carry `NONE` themselves).
    pub fn effective_family(&self, id: u32) -> IndexFamily {
        let mut cur = id;
        // Parents have strictly smaller ids, so this walk terminates.
        while let Some(s) = self.get(cur) {
            if s.family != IndexFamily::NONE {
                return s.family;
            }
            cur = s.parent;
        }
        IndexFamily::NONE
    }

    /// True iff every span closed (nonzero duration) and every parent
    /// link points at an earlier span.
    pub fn is_well_formed(&self) -> bool {
        self.spans
            .iter()
            .enumerate()
            .all(|(i, s)| s.id == (i + 1) as u32 && s.parent < s.id && s.dur_nanos > 0)
    }
}

/// Default collection cap: ~64 MiB of span records, far above any
/// single benchmark run while still bounding a runaway loop.
pub const DEFAULT_CAP: usize = 1 << 20;

struct Collector {
    epoch: Instant,
    generation: u32,
    spans: Vec<SpanRecord>,
    stack: Vec<u32>,
    cap: usize,
    dropped: u64,
}

thread_local! {
    /// Hot-path gate: one read + branch when collection is off.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
    static GENERATION: Cell<u32> = const { Cell::new(0) };
}

/// Arm span collection on the current thread (default cap).
pub fn begin_collection() {
    begin_collection_with_cap(DEFAULT_CAP)
}

/// Arm span collection on the current thread with an explicit span cap
/// (drop-newest past the cap). Replaces any in-progress collection;
/// guards from the replaced collection become inert.
pub fn begin_collection_with_cap(cap: usize) {
    let generation = GENERATION.with(|g| {
        let next = g.get().wrapping_add(1);
        g.set(next);
        next
    });
    COLLECTOR.with(|c| {
        *c.borrow_mut() = Some(Collector {
            epoch: Instant::now(),
            generation,
            spans: Vec::new(),
            stack: Vec::new(),
            cap: cap.max(1),
            dropped: 0,
        });
    });
    ACTIVE.with(|a| a.set(true));
}

/// Disarm collection and hand back the finished tree. Returns an empty
/// tree when no collection was active.
pub fn end_collection() -> SpanTree {
    ACTIVE.with(|a| a.set(false));
    COLLECTOR
        .with(|c| c.borrow_mut().take())
        .map(|col| SpanTree {
            spans: col.spans,
            dropped: col.dropped,
        })
        .unwrap_or_default()
}

/// True while the current thread is collecting spans.
#[inline]
pub fn is_collecting() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Number of currently-open spans (test hook for panic-balance checks).
pub fn open_depth() -> usize {
    COLLECTOR.with(|c| c.borrow().as_ref().map_or(0, |col| col.stack.len()))
}

/// The currently-open span stack, outermost first, rendered as stable
/// `Kind` / `Kind[family-id]` frames. Empty when collection is off.
///
/// This is the postmortem hook's view: a panic hook runs *before*
/// unwinding drops the open [`SpanGuard`]s, so calling this from a
/// `std::panic` hook captures exactly where in the pipeline the panic
/// fired (see [`crate::obs::postmortem`]).
pub fn open_spans() -> Vec<String> {
    COLLECTOR.with(|c| {
        let borrow = c.borrow();
        let Some(col) = borrow.as_ref() else {
            return Vec::new();
        };
        col.stack
            .iter()
            .filter_map(|&id| col.spans.get((id - 1) as usize))
            .map(|s| {
                if s.family == IndexFamily::NONE {
                    s.kind.name().to_string()
                } else {
                    format!("{}[{}]", s.kind.name(), s.family.0)
                }
            })
            .collect()
    })
}

/// RAII handle to one open span. Obtained from [`SpanGuard::enter`];
/// the span closes (duration stamped, stack popped) when the guard
/// drops. Inert (all methods no-ops) when collection is off.
#[must_use = "a span closes when its guard drops"]
pub struct SpanGuard {
    /// 0 = inert (collection off, cap hit, or stale generation).
    id: u32,
    generation: u32,
}

impl SpanGuard {
    /// Open a span with no family attribution. One flag read + branch
    /// when collection is off — no clock read, no allocation.
    #[inline]
    pub fn enter(kind: SpanKind) -> SpanGuard {
        if !is_collecting() {
            return SpanGuard {
                id: 0,
                generation: 0,
            };
        }
        Self::enter_slow(kind, IndexFamily::NONE)
    }

    /// Open a span attributed to an index family.
    #[inline]
    pub fn enter_family(kind: SpanKind, family: IndexFamily) -> SpanGuard {
        if !is_collecting() {
            return SpanGuard {
                id: 0,
                generation: 0,
            };
        }
        Self::enter_slow(kind, family)
    }

    #[cold]
    fn enter_slow(kind: SpanKind, family: IndexFamily) -> SpanGuard {
        COLLECTOR.with(|c| {
            let mut slot = c.borrow_mut();
            let Some(col) = slot.as_mut() else {
                return SpanGuard {
                    id: 0,
                    generation: 0,
                };
            };
            if col.spans.len() >= col.cap {
                col.dropped += 1;
                return SpanGuard {
                    id: 0,
                    generation: 0,
                };
            }
            let id = clamp_id(col.spans.len() + 1);
            let parent = col.stack.last().copied().unwrap_or(0);
            let ts_nanos = nanos_since(col.epoch);
            col.spans.push(SpanRecord {
                id,
                parent,
                kind,
                family,
                ts_nanos,
                dur_nanos: 0,
                counters: SpanCounters::default(),
            });
            col.stack.push(id);
            SpanGuard {
                id,
                generation: col.generation,
            }
        })
    }

    /// True when this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.id != 0
    }

    /// Add to the blocks-touched counter.
    #[inline]
    pub fn add_blocks(&self, n: u64) {
        self.update(|c| c.blocks += n);
    }

    /// Add to the extent-elements-scanned counter.
    #[inline]
    pub fn add_elems(&self, n: u64) {
        self.update(|c| c.elems += n);
    }

    /// Record the compound work-queue depth (peak is kept).
    #[inline]
    pub fn set_queue_depth(&self, depth: u64) {
        self.update(|c| c.queue_depth = c.queue_depth.max(depth));
    }

    /// Add to the copy-on-write clone counter.
    #[inline]
    pub fn add_cow_clones(&self, n: u64) {
        self.update(|c| c.cow_clones += n);
    }

    fn update(&self, f: impl FnOnce(&mut SpanCounters)) {
        if self.id == 0 {
            return;
        }
        COLLECTOR.with(|c| {
            if let Some(col) = c.borrow_mut().as_mut() {
                if col.generation != self.generation {
                    return;
                }
                if let Some(rec) = col.spans.get_mut((self.id - 1) as usize) {
                    f(&mut rec.counters);
                }
            }
        });
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        // try_with: a guard dropped during thread teardown must not
        // re-initialize (or panic on) a destroyed thread local.
        let _ = COLLECTOR.try_with(|c| {
            let mut slot = c.borrow_mut();
            let Some(col) = slot.as_mut() else { return };
            if col.generation != self.generation {
                return; // stale guard from a replaced collection
            }
            if !col.stack.contains(&self.id) {
                return; // already closed by an out-of-order ancestor drop
            }
            let now = nanos_since(col.epoch);
            // Close everything opened after us too (leaked children,
            // unwind in odd orders): the stack stays balanced.
            while let Some(top) = col.stack.pop() {
                if let Some(rec) = col.spans.get_mut((top - 1) as usize) {
                    if rec.dur_nanos == 0 {
                        rec.dur_nanos = now.saturating_sub(rec.ts_nanos).max(1);
                    }
                }
                if top == self.id {
                    break;
                }
            }
        });
    }
}

#[inline]
fn nanos_since(epoch: Instant) -> u64 {
    let n = epoch.elapsed().as_nanos();
    if n > u64::MAX as u128 {
        u64::MAX
    } else {
        n as u64
    }
}

#[inline]
fn clamp_id(n: usize) -> u32 {
    // The cap (≤ DEFAULT_CAP by construction in practice, and at most
    // the collector's configured cap) keeps ids far below u32::MAX;
    // saturate defensively rather than truncate.
    if n > u32::MAX as usize {
        u32::MAX
    } else {
        n as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_enter_is_inert() {
        assert!(!is_collecting());
        let g = SpanGuard::enter(SpanKind::Op);
        assert!(!g.is_recording());
        g.add_blocks(5);
        drop(g);
        assert_eq!(end_collection(), SpanTree::default());
    }

    #[test]
    fn nesting_records_parent_links() {
        begin_collection();
        {
            let op = SpanGuard::enter(SpanKind::Op);
            assert!(op.is_recording());
            {
                let d = SpanGuard::enter_family(SpanKind::IndexDispatch, IndexFamily(2));
                let s = SpanGuard::enter(SpanKind::Split);
                s.add_blocks(3);
                s.add_elems(7);
                drop(s);
                drop(d);
            }
        }
        let tree = end_collection();
        assert!(tree.is_well_formed());
        assert_eq!(tree.len(), 3);
        let op = &tree.spans[0];
        let disp = &tree.spans[1];
        let split = &tree.spans[2];
        assert_eq!((op.kind, op.parent), (SpanKind::Op, 0));
        assert_eq!((disp.kind, disp.parent), (SpanKind::IndexDispatch, op.id));
        assert_eq!((split.kind, split.parent), (SpanKind::Split, disp.id));
        assert_eq!(split.counters.blocks, 3);
        assert_eq!(split.counters.elems, 7);
        assert_eq!(tree.effective_family(split.id), IndexFamily(2));
        assert_eq!(tree.effective_family(op.id), IndexFamily::NONE);
        // RAII: children closed no later than their parent's close.
        assert!(split.ts_nanos >= disp.ts_nanos);
        assert!(split.ts_nanos + split.dur_nanos <= disp.ts_nanos + disp.dur_nanos);
    }

    #[test]
    fn panic_unwinding_closes_open_spans() {
        begin_collection();
        let caught = std::panic::catch_unwind(|| {
            let _op = SpanGuard::enter(SpanKind::Op);
            let _scan = SpanGuard::enter(SpanKind::KernelScan);
            panic!("boom");
        });
        assert!(caught.is_err());
        assert_eq!(open_depth(), 0, "unwind must pop every open span");
        let tree = end_collection();
        assert!(tree.is_well_formed(), "unwound spans still get durations");
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn cap_drops_newest_and_counts() {
        begin_collection_with_cap(2);
        let a = SpanGuard::enter(SpanKind::Op);
        let b = SpanGuard::enter(SpanKind::Split);
        let c = SpanGuard::enter(SpanKind::Merge);
        assert!(a.is_recording() && b.is_recording());
        assert!(!c.is_recording());
        drop(c);
        drop(b);
        drop(a);
        let tree = end_collection();
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.dropped, 1);
        assert!(tree.is_well_formed());
    }

    #[test]
    fn stale_guard_from_replaced_collection_is_ignored() {
        begin_collection();
        let stale = SpanGuard::enter(SpanKind::Op);
        begin_collection(); // replaces the collection mid-span
        let fresh = SpanGuard::enter(SpanKind::Rebuild);
        stale.add_blocks(99); // must not touch the fresh collection
        drop(stale);
        drop(fresh);
        let tree = end_collection();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.spans[0].kind, SpanKind::Rebuild);
        assert_eq!(tree.spans[0].counters.blocks, 0);
    }

    #[test]
    fn out_of_order_drop_closes_descendants() {
        begin_collection();
        let outer = SpanGuard::enter(SpanKind::Op);
        let inner = SpanGuard::enter(SpanKind::KernelScan);
        drop(outer); // closes inner too
        assert_eq!(open_depth(), 0);
        drop(inner); // no-op: already closed
        let tree = end_collection();
        assert_eq!(tree.len(), 2);
        assert!(tree.is_well_formed());
    }

    #[test]
    fn queue_depth_keeps_peak() {
        begin_collection();
        let g = SpanGuard::enter(SpanKind::CompoundProcess);
        g.set_queue_depth(3);
        g.set_queue_depth(1);
        drop(g);
        let tree = end_collection();
        assert_eq!(tree.spans[0].counters.queue_depth, 3);
    }
}
