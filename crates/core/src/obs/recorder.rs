//! Event sinks for the observability layer.
//!
//! A [`Recorder`] is where instrumented code hands off [`Event`]s. Three
//! implementations live here:
//!
//! * [`NullRecorder`] — discards everything; the hub additionally skips
//!   event construction entirely when this is installed, so the
//!   instrumented fast path stays within noise of the uninstrumented
//!   engine (verified by `benches/obs_overhead.rs` in `xsi-bench`).
//! * [`FlightRecorder`] — a fixed-capacity single-writer ring buffer
//!   that overwrites the oldest entries. The conformance lab snapshots
//!   it into every reproducer so a shrunken repro carries the engine's
//!   own account of the failing op.
//! * [`JsonlWriter`] — streams one JSON object per line to any
//!   `io::Write`, using the hand-rolled serializer in
//!   [`Event::to_jsonl`].

use std::io;

use super::event::{Event, IndexFamily};

/// An event sink. Single-writer by design: the [`ObsHub`](super::ObsHub)
/// owns exactly one recorder and all engine mutations flow through one
/// `&mut` engine, so no interior mutability or locking is needed.
pub trait Recorder {
    /// Consumes one event.
    fn record(&mut self, ev: &Event);

    /// Flushes buffered output (no-op for in-memory recorders).
    fn flush(&mut self) {}

    /// A chronological snapshot of retained events. Recorders that do
    /// not retain events return an empty vec.
    fn events(&self) -> Vec<Event> {
        Vec::new()
    }

    /// Short human-readable name for diagnostics.
    fn describe(&self) -> &'static str;
}

/// Discards every event. The hub special-cases this via
/// [`ObsHub::is_active`](super::ObsHub::is_active) so callers skip
/// payload construction and clock reads altogether.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline]
    fn record(&mut self, _ev: &Event) {}

    fn describe(&self) -> &'static str {
        "null"
    }
}

/// Fixed-capacity ring buffer that keeps the most recent events,
/// overwriting the oldest once full ("flight recorder" semantics).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<Event>,
    /// Next write position (wraps at `cap`).
    head: usize,
    /// Total events ever recorded (monotonic, does not wrap).
    total: u64,
    cap: usize,
}

impl FlightRecorder {
    /// Creates a recorder retaining the last `cap` events (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        FlightRecorder {
            buf: Vec::with_capacity(cap),
            head: 0,
            total: 0,
            cap,
        }
    }

    /// Capacity (maximum retained events).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events recorded over the recorder's lifetime, including
    /// those already overwritten.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Chronological (oldest → newest) snapshot of retained events.
    pub fn snapshot(&self) -> Vec<Event> {
        if self.buf.len() < self.cap {
            // Not yet wrapped: buffer is already in order.
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
    }
}

impl Recorder for FlightRecorder {
    #[inline]
    fn record(&mut self, ev: &Event) {
        if self.buf.len() < self.cap {
            self.buf.push(*ev);
        } else {
            self.buf[self.head] = *ev;
        }
        self.head = (self.head + 1) % self.cap;
        self.total += 1;
    }

    fn events(&self) -> Vec<Event> {
        self.snapshot()
    }

    fn describe(&self) -> &'static str {
        "flight"
    }
}

/// Streams events as JSON Lines to an arbitrary writer. Family handles
/// are resolved to names at write time via the table captured in
/// [`JsonlWriter::new`] — the hub refreshes it on registration.
pub struct JsonlWriter<W: io::Write> {
    out: W,
    families: Vec<String>,
    /// First I/O error encountered, if any (subsequent writes are
    /// skipped; tracing must never panic the engine).
    error: Option<io::Error>,
}

impl<W: io::Write> JsonlWriter<W> {
    /// Wraps `out`; `families` maps [`IndexFamily`] handles to names.
    pub fn new(out: W, families: Vec<String>) -> Self {
        JsonlWriter {
            out,
            families,
            error: None,
        }
    }

    /// The first write error, if any occurred.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Consumes the writer, returning the inner sink.
    pub fn into_inner(self) -> W {
        self.out
    }

    fn family_name(families: &[String], f: IndexFamily) -> String {
        if f == IndexFamily::NONE {
            String::new()
        } else {
            families
                .get(f.0 as usize)
                .cloned()
                .unwrap_or_else(|| format!("family-{}", f.0))
        }
    }
}

impl<W: io::Write> Recorder for JsonlWriter<W> {
    fn record(&mut self, ev: &Event) {
        if self.error.is_some() {
            return;
        }
        let families = &self.families;
        let line = ev.to_jsonl(|f| Self::family_name(families, f));
        if let Err(e) = self
            .out
            .write_all(line.as_bytes())
            .and_then(|_| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }

    fn describe(&self) -> &'static str {
        "jsonl"
    }
}

#[cfg(test)]
mod tests {
    use super::super::event::{callsite, EventPayload, OpKind};
    use super::super::json::Json;
    use super::*;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            ts_nanos: seq * 10,
            callsite: callsite::OP_RECEIVED,
            payload: EventPayload::OpReceived {
                op: OpKind::InsertEdge,
            },
        }
    }

    #[test]
    fn null_recorder_retains_nothing() {
        let mut r = NullRecorder;
        r.record(&ev(1));
        assert!(r.events().is_empty());
    }

    #[test]
    fn flight_recorder_before_wrap_is_in_order() {
        let mut r = FlightRecorder::new(8);
        for i in 0..5 {
            r.record(&ev(i));
        }
        let seqs: Vec<u64> = r.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.total_recorded(), 5);
    }

    #[test]
    fn flight_recorder_wraparound_keeps_newest_in_order() {
        let mut r = FlightRecorder::new(4);
        for i in 0..11 {
            r.record(&ev(i));
        }
        // 11 events through a 4-slot ring: the last 4 survive, oldest
        // first.
        let seqs: Vec<u64> = r.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10]);
        assert_eq!(r.total_recorded(), 11);
        assert_eq!(r.capacity(), 4);
    }

    #[test]
    fn flight_recorder_exact_fill_boundary() {
        let mut r = FlightRecorder::new(3);
        for i in 0..3 {
            r.record(&ev(i));
        }
        let seqs: Vec<u64> = r.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        // One more overwrites the oldest.
        r.record(&ev(3));
        let seqs: Vec<u64> = r.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn flight_recorder_zero_cap_clamps_to_one() {
        let mut r = FlightRecorder::new(0);
        r.record(&ev(1));
        r.record(&ev(2));
        let seqs: Vec<u64> = r.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2]);
    }

    #[test]
    fn jsonl_writer_emits_one_parseable_object_per_line() {
        let mut w = JsonlWriter::new(Vec::new(), vec!["1-index".into()]);
        w.record(&ev(0));
        w.record(&ev(1));
        w.flush();
        assert!(w.error().is_none());
        let text = String::from_utf8(w.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let v = Json::parse(line).expect("valid JSON line");
            assert_eq!(v.get("seq").and_then(Json::as_u64), Some(i as u64));
            assert_eq!(v.get("kind").and_then(Json::as_str), Some("op-received"));
            assert_eq!(v.get("callsite").and_then(Json::as_u64), Some(1));
        }
    }
}
