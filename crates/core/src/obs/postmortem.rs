//! # `obs::postmortem` — the panic black box
//!
//! A long fuzz soak or benchmark run that dies with a panic loses the
//! most valuable evidence: *where in the pipeline* the panic fired and
//! *what the engine looked like* just before. This module is the
//! flight-recorder black box for that case, in two halves:
//!
//! 1. **Capture** ([`arm`]): a `std::panic` hook that runs *before*
//!    unwinding destroys the open [`crate::obs::span::SpanGuard`]s, so
//!    it can snapshot the panic message, location, thread, and the open
//!    span stack ([`crate::obs::span::open_spans`]) into a process-wide
//!    slot. The hook is deliberately tiny and allocation-light; it
//!    never touches the engine (which may be mid-mutation).
//! 2. **Dump** ([`write_blackbox`]): the driver wraps its workload in
//!    `catch_unwind`; on `Err` it combines the capture with whatever it
//!    can still read — the obs hub's flight-recorder tail and the last
//!    `mem-report` — and writes one JSONL black-box file. Each line is
//!    a self-describing `{"kind": ...}` record so partial files are
//!    still parseable line by line.
//!
//! Repeated panics (a fuzz shrink loop triggers hundreds) each
//! overwrite the slot: the black box always describes the *last* one.
//! `arm(false)` doubles as the conformance lab's panic silencer — it
//! replaces the default printing hook, so expected panics stay quiet
//! while still being captured.

use crate::obs::json::quote;
use crate::obs::span;
use std::io::Write;
use std::sync::Mutex;

/// What the panic hook snapshots before the stack unwinds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PanicCapture {
    /// The panic payload rendered to a string (`&str`/`String`
    /// payloads; anything else becomes `"<non-string panic payload>"`).
    pub message: String,
    /// `file:line` of the panic site, when the runtime provides it.
    pub location: String,
    /// Name of the panicking thread.
    pub thread: String,
    /// The open span stack at panic time, outermost first.
    pub open_spans: Vec<String>,
}

static LAST_PANIC: Mutex<Option<PanicCapture>> = Mutex::new(None);

/// Installs the capture hook. `echo = true` additionally prints a
/// one-line notice to stderr per panic; `echo = false` is fully silent
/// (the conformance lab's mode — shrink loops panic on purpose).
/// Calling it again just replaces the hook; the capture slot is shared.
pub fn arm(echo: bool) {
    std::panic::set_hook(Box::new(move |info| {
        let message = if let Some(s) = info.payload().downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = info.payload().downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        let location = info
            .location()
            .map(|l| format!("{}:{}", l.file(), l.line()))
            .unwrap_or_default();
        let thread = std::thread::current()
            .name()
            .unwrap_or("<unnamed>")
            .to_string();
        let capture = PanicCapture {
            message,
            location,
            thread,
            open_spans: span::open_spans(),
        };
        if echo {
            eprintln!(
                "postmortem: panic at {} ({} open spans) — black box will be written on unwind",
                capture.location,
                capture.open_spans.len()
            );
        }
        if let Ok(mut slot) = LAST_PANIC.lock() {
            *slot = Some(capture);
        }
    }));
}

/// The most recent capture, if any panic fired since [`arm`].
pub fn last_capture() -> Option<PanicCapture> {
    LAST_PANIC.lock().ok().and_then(|slot| slot.clone())
}

/// Clears the capture slot (test isolation).
pub fn clear() {
    if let Ok(mut slot) = LAST_PANIC.lock() {
        *slot = None;
    }
}

/// Renders the black-box JSONL content: one `panic` line (from the
/// capture, or a placeholder if the hook never fired), one `trace` line
/// per flight-recorder tail entry, and one `mem-report` line when the
/// driver still has one. Pure function of its inputs — the writing
/// wrapper and the selftest share it.
pub fn blackbox_jsonl(
    capture: Option<&PanicCapture>,
    flight_tail: &[String],
    mem_report_json: Option<&str>,
) -> String {
    let mut out = String::new();
    let placeholder = PanicCapture {
        message: "<no capture: postmortem hook not armed>".to_string(),
        ..PanicCapture::default()
    };
    let cap = capture.unwrap_or(&placeholder);
    let spans: Vec<String> = cap.open_spans.iter().map(|s| quote(s)).collect();
    out.push_str(&format!(
        "{{\"kind\":\"panic\",\"message\":{},\"location\":{},\"thread\":{},\"open_spans\":[{}]}}\n",
        quote(&cap.message),
        quote(&cap.location),
        quote(&cap.thread),
        spans.join(",")
    ));
    for line in flight_tail {
        out.push_str(&format!(
            "{{\"kind\":\"trace\",\"line\":{}}}\n",
            quote(line)
        ));
    }
    if let Some(mem) = mem_report_json {
        // The mem report is already a JSON object; wrap it verbatim.
        out.push_str("{\"kind\":\"mem-report\",\"report\":");
        out.push_str(mem);
        out.push_str("}\n");
    }
    out
}

/// Writes the black box to `path` (truncating). Returns the number of
/// JSONL lines written.
pub fn write_blackbox(
    path: &std::path::Path,
    capture: Option<&PanicCapture>,
    flight_tail: &[String],
    mem_report_json: Option<&str>,
) -> std::io::Result<usize> {
    let content = blackbox_jsonl(capture, flight_tail, mem_report_json);
    let mut f = std::fs::File::create(path)?;
    f.write_all(content.as_bytes())?;
    f.flush()?;
    Ok(content.lines().count())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackbox_renders_parseable_lines() {
        let cap = PanicCapture {
            message: "boom \"quoted\"".to_string(),
            location: "src/x.rs:42".to_string(),
            thread: "main".to_string(),
            open_spans: vec!["Op".to_string(), "Split[0]".to_string()],
        };
        let tail = vec!["{\"event\":\"op-received\"}".to_string()];
        let text = blackbox_jsonl(Some(&cap), &tail, Some("{\"total\":1}"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"panic\""));
        assert!(lines[0].contains("src/x.rs:42"));
        assert!(lines[0].contains("Split[0]"));
        assert!(lines[1].contains("\"kind\":\"trace\""));
        assert!(lines[2].starts_with("{\"kind\":\"mem-report\""));
        assert!(lines[2].contains("\"total\":1"));
    }

    #[test]
    fn missing_capture_still_yields_a_panic_line() {
        let text = blackbox_jsonl(None, &[], None);
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("not armed"));
    }
}
