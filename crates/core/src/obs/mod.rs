//! `core::obs` — the dependency-free observability layer for the update
//! pipeline: a flight-recorder event stream plus a metrics registry,
//! fed from the same instrumentation points (see DESIGN.md §8).
//!
//! The paper's empirical argument (§5.1, Figs. 5/7/8) is about
//! *counting what an update did* — splits, merges, the intermediate
//! blow-up |Φ₁|, affected blocks. This module makes those counts (and
//! per-phase wall-clock time) observable without adding any registry
//! dependency: the JSON writer, the Prometheus exporter, and the JSONL
//! trace format are all hand-rolled ([`json`]), keeping tier-1 fully
//! offline per the PR-1 policy.
//!
//! Structure:
//!
//! * [`event`] — the typed event model ([`Event`], [`EventPayload`],
//!   static [`CallsiteId`]s, compact [`IndexFamily`] handles);
//! * [`recorder`] — pluggable sinks: [`NullRecorder`],
//!   [`FlightRecorder`] (ring buffer, overwrite-oldest),
//!   [`JsonlWriter`];
//! * [`metrics`] — [`MetricsRegistry`]: counters / gauges / power-of-two
//!   bucket histograms keyed by `(name, family, op, phase)`;
//! * [`ObsHub`] (here) — what the [`crate::engine::UpdateEngine`] owns:
//!   one recorder + one optional registry + the family table + the
//!   sequence counter and monotonic epoch.
//!
//! The hub is **disabled by default** ([`ObsHub::disabled`]): no
//! recorder, no metrics, and [`ObsHub::is_active`] is `false`, so
//! instrumented code skips payload construction and clock reads
//! entirely. `benches/obs_overhead.rs` in `xsi-bench` verifies the
//! disabled path is within noise of the pre-instrumentation engine.

pub mod event;
pub mod export;
pub mod json;
pub mod mem;
pub mod metrics;
pub mod postmortem;
pub mod recorder;
pub mod span;

pub use event::{callsite, BatchSegment, CallsiteId, Event, EventPayload, IndexFamily, OpKind};
pub use export::{chrome_trace_json, folded_stacks, FoldWeight};
pub use mem::{HeapUse, MemReport};
pub use metrics::{Histogram, MetricKey, MetricsRegistry};
pub use recorder::{FlightRecorder, JsonlWriter, NullRecorder, Recorder};
pub use span::{SpanCounters, SpanGuard, SpanKind, SpanRecord, SpanTree};

use crate::stats::UpdateStats;
use std::time::Instant;

/// Saturating `usize` → `u32` for event counters (an individual op
/// never realistically exceeds `u32`, but never silently wrap).
#[inline]
pub(crate) fn clamp32(v: usize) -> u32 {
    v.min(u32::MAX as usize) as u32
}

/// The observability hub an [`crate::engine::UpdateEngine`] owns: one
/// pluggable [`Recorder`], an optional [`MetricsRegistry`], the index
/// family table, and the event sequence counter / time epoch.
///
/// Single-writer like the engine itself — no locks, no channels; the
/// "lock-free-ish" flight recorder is a plain ring buffer reached only
/// through the engine's `&mut self` methods.
pub struct ObsHub {
    /// `None` means tracing disabled (cheaper than a boxed
    /// [`NullRecorder`]: the hub can skip event construction).
    recorder: Option<Box<dyn Recorder>>,
    /// Cached at [`ObsHub::set_recorder`] time: the installed recorder
    /// is a [`NullRecorder`] (`describe() == "null"`), so event
    /// construction can be skipped exactly as if no recorder were
    /// installed — keeping the documented ~zero-cost promise without a
    /// virtual call per candidate event.
    recorder_is_null: bool,
    metrics: Option<MetricsRegistry>,
    families: Vec<String>,
    seq: u64,
    epoch: Instant,
}

impl Default for ObsHub {
    fn default() -> Self {
        Self::disabled()
    }
}

impl std::fmt::Debug for ObsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHub")
            .field(
                "recorder",
                &self
                    .recorder
                    .as_ref()
                    .map(|r| r.describe())
                    .unwrap_or("off"),
            )
            .field("metrics", &self.metrics.is_some())
            .field("families", &self.families)
            .field("seq", &self.seq)
            .finish()
    }
}

impl ObsHub {
    /// A fully inactive hub: no recorder, no metrics. Instrumented code
    /// checks [`ObsHub::is_active`] and skips everything.
    pub fn disabled() -> Self {
        ObsHub {
            recorder: None,
            recorder_is_null: false,
            metrics: None,
            families: Vec::new(),
            seq: 0,
            epoch: Instant::now(),
        }
    }

    /// Whether any sink wants events. Instrumentation points gate their
    /// payload construction *and their clock reads* on this, so the
    /// disabled hub costs one branch per callsite. An installed
    /// [`NullRecorder`] counts as inactive (it would discard every
    /// event anyway), keeping the instrumented fast path within noise
    /// of the uninstrumented engine.
    #[inline]
    pub fn is_active(&self) -> bool {
        (self.recorder.is_some() && !self.recorder_is_null) || self.metrics.is_some()
    }

    /// Installs a recorder (replacing any previous one, which is
    /// returned after a final flush).
    pub fn set_recorder(&mut self, r: Box<dyn Recorder>) -> Option<Box<dyn Recorder>> {
        self.recorder_is_null = r.describe() == "null";
        let mut old = self.recorder.replace(r);
        if let Some(prev) = old.as_mut() {
            prev.flush();
        }
        old
    }

    /// Removes the recorder (after a final flush), returning it.
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.recorder_is_null = false;
        let mut old = self.recorder.take();
        if let Some(prev) = old.as_mut() {
            prev.flush();
        }
        old
    }

    /// Read access to the installed recorder.
    pub fn recorder(&self) -> Option<&dyn Recorder> {
        self.recorder.as_deref()
    }

    /// Turns the metrics registry on (idempotent).
    pub fn enable_metrics(&mut self) {
        if self.metrics.is_none() {
            self.metrics = Some(MetricsRegistry::new());
        }
    }

    /// The metrics registry, if enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    /// Mutable access to the metrics registry, for publishers that feed
    /// whole distributions (e.g. the mem-report's extent-length and
    /// inline-occupancy histograms) rather than single event payloads.
    pub fn metrics_mut(&mut self) -> Option<&mut MetricsRegistry> {
        self.metrics.as_mut()
    }

    /// Registers an index family name, returning its compact handle.
    /// Re-registering an existing name returns the existing handle.
    pub fn register_family(&mut self, name: &str) -> IndexFamily {
        if let Some(i) = self.families.iter().position(|f| f == name) {
            return IndexFamily(i as u16);
        }
        assert!(
            self.families.len() < u16::MAX as usize,
            "too many index families"
        );
        self.families.push(name.to_string());
        IndexFamily((self.families.len() - 1) as u16)
    }

    /// The registered family names, handle order.
    pub fn families(&self) -> &[String] {
        &self.families
    }

    /// Resolves a family handle to its name (empty for
    /// [`IndexFamily::NONE`]).
    pub fn family_name(&self, f: IndexFamily) -> String {
        if f == IndexFamily::NONE {
            String::new()
        } else {
            self.families
                .get(f.0 as usize)
                .cloned()
                .unwrap_or_else(|| format!("family-{}", f.0))
        }
    }

    /// Total events emitted so far (the next event's sequence number).
    pub fn events_emitted(&self) -> u64 {
        self.seq
    }

    /// Emits one event to the active sinks. No-op when inactive, but
    /// callers on hot paths should gate on [`ObsHub::is_active`] to
    /// also skip building the payload.
    #[inline]
    pub fn emit(&mut self, payload: EventPayload) {
        if !self.is_active() {
            return;
        }
        self.emit_slow(payload);
    }

    fn emit_slow(&mut self, payload: EventPayload) {
        let ev = Event {
            seq: self.seq,
            ts_nanos: self.epoch.elapsed().as_nanos() as u64,
            callsite: payload.callsite(),
            payload,
        };
        self.seq += 1;
        if let Some(r) = self.recorder.as_mut() {
            r.record(&ev);
        }
        if let Some(m) = self.metrics.as_mut() {
            m.observe_event(&ev);
        }
    }

    /// The standard per-index fan-out instrumentation: one
    /// `index-dispatch` summary event, plus (for non-no-ops) the
    /// `split-phase` / `merge-phase` breakdown and, when the index
    /// reported refinement-chain work, a `rank-maintenance` event —
    /// all derived from the phase counters the maintenance algorithms
    /// record into [`UpdateStats`].
    pub fn observe_index_dispatch(
        &mut self,
        family: IndexFamily,
        op: OpKind,
        s: &UpdateStats,
        nanos: u64,
    ) {
        if !self.is_active() {
            return;
        }
        self.emit(EventPayload::IndexDispatch {
            family,
            op,
            splits: clamp32(s.splits),
            merges: clamp32(s.merges),
            no_op: s.no_op,
            nanos,
        });
        if s.no_op {
            return;
        }
        self.emit(EventPayload::SplitPhase {
            family,
            splits: clamp32(s.splits),
            intermediate_blocks: clamp32(s.intermediate_blocks),
            queue_peak: clamp32(s.queue_peak),
            nanos: s.split_nanos,
        });
        self.emit(EventPayload::MergePhase {
            family,
            merges: clamp32(s.merges),
            final_blocks: clamp32(s.final_blocks),
            nanos: s.merge_nanos,
        });
        if s.levels_touched > 0 {
            self.emit(EventPayload::RankMaintenance {
                family,
                levels_touched: clamp32(s.levels_touched),
            });
        }
    }

    /// Flushes the recorder (e.g. before reading an output file).
    pub fn flush(&mut self) {
        if let Some(r) = self.recorder.as_mut() {
            r.flush();
        }
    }

    /// Snapshot of the recorder's retained events (empty when tracing
    /// is off or the recorder does not retain).
    pub fn flight_events(&self) -> Vec<Event> {
        self.recorder
            .as_ref()
            .map(|r| r.events())
            .unwrap_or_default()
    }

    /// The retained events rendered through [`Event::stable_line`]:
    /// the deterministic projection (no timestamps/durations) that
    /// conformance reproducers embed and replay compares.
    pub fn stable_trace(&self) -> Vec<String> {
        self.flight_events()
            .iter()
            .map(|e| e.stable_line(|f| self.family_name(f)))
            .collect()
    }

    /// Metrics as JSON (`{}`-shaped empty document when disabled).
    pub fn metrics_json(&self) -> String {
        match &self.metrics {
            Some(m) => m.to_json(&self.families),
            None => MetricsRegistry::new().to_json(&self.families),
        }
    }

    /// The deterministic metrics projection (timing histograms
    /// excluded) — identical across identically seeded runs.
    pub fn metrics_deterministic_json(&self) -> String {
        match &self.metrics {
            Some(m) => m.to_deterministic_json(&self.families),
            None => MetricsRegistry::new().to_deterministic_json(&self.families),
        }
    }

    /// Metrics in Prometheus text exposition format.
    pub fn metrics_prometheus(&self) -> String {
        match &self.metrics {
            Some(m) => m.to_prometheus(&self.families),
            None => String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hub_is_inert() {
        let mut hub = ObsHub::disabled();
        assert!(!hub.is_active());
        hub.emit(EventPayload::OpReceived {
            op: OpKind::InsertEdge,
        });
        assert_eq!(hub.events_emitted(), 0);
        assert!(hub.flight_events().is_empty());
        assert!(hub.metrics().is_none());
    }

    #[test]
    fn family_registration_dedupes_and_resolves() {
        let mut hub = ObsHub::disabled();
        let a = hub.register_family("1-index");
        let b = hub.register_family("A(2)-index");
        let a2 = hub.register_family("1-index");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(hub.family_name(a), "1-index");
        assert_eq!(hub.family_name(IndexFamily::NONE), "");
    }

    #[test]
    fn emit_feeds_both_sinks_with_monotonic_seq() {
        let mut hub = ObsHub::disabled();
        hub.set_recorder(Box::new(FlightRecorder::new(16)));
        hub.enable_metrics();
        let fam = hub.register_family("1-index");
        hub.emit(EventPayload::OpReceived {
            op: OpKind::DeleteEdge,
        });
        let stats = UpdateStats {
            splits: 2,
            merges: 1,
            intermediate_blocks: 12,
            final_blocks: 11,
            no_op: false,
            split_nanos: 40,
            merge_nanos: 50,
            queue_peak: 3,
            levels_touched: 2,
        };
        hub.observe_index_dispatch(fam, OpKind::DeleteEdge, &stats, 123);

        // op-received + dispatch + split + merge + rank = 5 events.
        let evs = hub.flight_events();
        assert_eq!(evs.len(), 5);
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(evs[2].callsite, callsite::SPLIT_PHASE);
        assert_eq!(evs[4].callsite, callsite::RANK_MAINTENANCE);

        // Metrics saw the same events.
        let m = hub.metrics().unwrap();
        assert_eq!(
            m.counter_value(&MetricKey::named("ops_total").op("delete-edge")),
            1
        );
        assert_eq!(
            m.counter_value(
                &MetricKey::named("splits_total")
                    .family(fam)
                    .op("delete-edge")
            ),
            2
        );
        let qp = m
            .histogram(&MetricKey::named("queue_peak").family(fam).phase("split"))
            .unwrap();
        assert_eq!(qp.max, 3);

        // The stable trace renders family names and no timestamps.
        let trace = hub.stable_trace();
        assert_eq!(trace.len(), 5);
        assert!(trace[1].contains("family=1-index"));
        assert!(!trace[1].contains("nanos"));
    }

    #[test]
    fn no_op_dispatch_emits_only_the_summary() {
        let mut hub = ObsHub::disabled();
        hub.set_recorder(Box::new(FlightRecorder::new(8)));
        let fam = hub.register_family("1-index");
        let stats = UpdateStats {
            no_op: true,
            ..UpdateStats::identity()
        };
        hub.observe_index_dispatch(fam, OpKind::InsertEdge, &stats, 7);
        let evs = hub.flight_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].callsite, callsite::INDEX_DISPATCH);
    }
}
