//! # `obs::mem` — deep heap accounting and the `mem-report` (DESIGN.md §13)
//!
//! The paper's central claim is that incrementally maintained indexes
//! stay *small*; this module makes "small" observable without allocator
//! hooks or unsafe code. [`HeapUse`] is a capacity-based deep-byte
//! estimate: every structure sums the heap its own fields *reserve*
//! (`Vec::capacity`, not `len`), plus documented per-entry estimates
//! for the node-based containers (`BTreeMap`/`BTreeSet`/`HashMap`)
//! whose real layout the standard library does not expose. The
//! estimates are deterministic functions of `len`/`capacity`, so an
//! independent walker recomputing them from the same fields must agree
//! *exactly* — that equality is a test oracle, not an approximation
//! bound.
//!
//! [`MemReport`] is the attribution side: one pass over an index's
//! block table splits the same total into categories the sizing
//! decisions need — owned vs `Arc`-shared extent bytes (a shared run is
//! counted once per `Arc`, on the index that references it), spilled
//! iedge-map bytes, side tables, scratch, slab shell, and bytes
//! retained in recycled (dead) slots — plus two distributions: a
//! power-of-two extent-length histogram and an inline-map occupancy
//! histogram (the datum the ROADMAP `INLINE_CAP` sweep needs).
//! `MemReport::total_bytes()` must equal the structure's `heap_use()`;
//! both index families assert that in tests.
//!
//! ## What is deliberately uncounted
//!
//! * allocator metadata and malloc bucket rounding;
//! * the `Graph` itself (it is not index storage);
//! * transient per-update structures (`SignatureMemo`, queue buffers)
//!   that do not survive an operation;
//! * stack-inline storage (an inline `IedgeMap` representation costs 0
//!   heap bytes by construction — that is the point of it).

use std::mem::size_of;

/// Deep heap bytes reserved by a structure, capacity-based. See the
/// module docs for the accounting contract.
pub trait HeapUse {
    /// Total heap bytes reachable from (and owned by) `self`, excluding
    /// `size_of::<Self>()` itself.
    fn heap_use(&self) -> usize;
}

/// Heap bytes reserved by a `Vec`'s buffer (capacity, not length).
#[inline]
pub fn vec_cap_heap<T>(v: &Vec<T>) -> usize {
    v.capacity() * size_of::<T>()
}

/// Documented per-entry estimate for `BTreeMap`/`BTreeSet` nodes: key +
/// value payload plus a fixed per-entry share of node headers and edge
/// pointers. The standard library does not expose its B-tree layout, so
/// this is a *defined constant of the accounting contract*, not a
/// measurement — the walker oracle uses the same formula.
pub const BTREE_ENTRY_OVERHEAD: usize = 16;

/// Estimated heap bytes of a `BTreeMap<K, V>` with `len` entries.
#[inline]
pub fn btree_map_heap<K, V>(len: usize) -> usize {
    len * (size_of::<K>() + size_of::<V>() + BTREE_ENTRY_OVERHEAD)
}

/// Estimated heap bytes of a `BTreeSet<T>` with `len` entries.
#[inline]
pub fn btree_set_heap<T>(len: usize) -> usize {
    len * (size_of::<T>() + BTREE_ENTRY_OVERHEAD)
}

/// Estimated heap bytes of a `std::collections::HashMap<K, V>` table
/// with the given capacity: one `(K, V)` slot plus one control byte per
/// bucket (the hashbrown layout, capacity-based like everything else).
#[inline]
pub fn hash_map_heap<K, V>(capacity: usize) -> usize {
    capacity * (size_of::<(K, V)>() + 1)
}

/// Header bytes of an `Arc<Vec<T>>` allocation: two reference counts
/// plus the inline `Vec` triple. The element buffer is accounted
/// separately from the vector's capacity.
pub const ARC_VEC_HEADER: usize = 5 * size_of::<usize>();

/// Estimated heap bytes of an `Arc<Vec<T>>`: header allocation plus the
/// element buffer.
#[inline]
pub fn arc_vec_heap<T>(v: &std::sync::Arc<Vec<T>>) -> usize {
    ARC_VEC_HEADER + v.capacity() * size_of::<T>()
}

/// Power-of-two buckets for extent lengths: bucket 0 holds `{0}`,
/// bucket `i` holds `[2^(i-1), 2^i)` — the same law as the metrics
/// registry's histograms, so re-observing a bucket's lower bound lands
/// the count back in the same bucket.
pub const EXTENT_BUCKETS: usize = 33;

/// Inline-map occupancy buckets: one per occupancy `0..=64` (the
/// configurable `INLINE_CAP` is clamped to 64).
pub const OCCUPANCY_BUCKETS: usize = 65;

/// The bucket index for a value under the power-of-two law.
#[inline]
pub fn pow2_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(EXTENT_BUCKETS - 1)
    }
}

/// The representative (lower-bound) value of a power-of-two bucket —
/// what the engine re-observes into the metrics registry so the
/// distribution survives the aggregate hand-off.
#[inline]
pub fn pow2_bucket_floor(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

/// A point-in-time deep-memory attribution of one index structure. All
/// byte categories are disjoint; [`MemReport::total_bytes`] is their
/// sum and must equal the structure's [`HeapUse::heap_use`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemReport {
    /// Live blocks scanned (all levels, for the A(k) refinement tree).
    pub blocks: u64,
    /// Extent-run bytes whose `Arc` is held only by the live index.
    pub extent_owned_bytes: u64,
    /// Extent-run bytes co-held by at least one frozen snapshot.
    /// Counted **once per `Arc`** — within one index every run belongs
    /// to exactly one block, so this sum never double counts.
    pub extent_shared_bytes: u64,
    /// Extent runs currently shared with a snapshot.
    pub shared_extents: u64,
    /// Extent runs owned solely by the live index.
    pub owned_extents: u64,
    /// Live iedge maps in the inline (zero-heap) representation.
    pub iedge_inline_maps: u64,
    /// Live iedge maps spilled to the sorted-map representation.
    pub iedge_spilled_maps: u64,
    /// Estimated heap bytes of the spilled maps.
    pub iedge_spilled_bytes: u64,
    /// Per-node side tables (assignment, position, mark) and small
    /// bookkeeping sets (orphans, level counts, tree-child sets).
    pub side_table_bytes: u64,
    /// Epoch-stamped scratch tables retained between operations.
    pub scratch_bytes: u64,
    /// The slot arena's shell: slot array capacity plus the free list.
    pub slab_bytes: u64,
    /// Heap retained inside dead (recycled) slots — extent capacity and
    /// map allocations kept for the slot's next tenant.
    pub dead_retained_bytes: u64,
    /// Anything else the structure owns (e.g. the simple baseline's
    /// extent hash map shell).
    pub other_bytes: u64,
    /// Power-of-two histogram of live extent lengths (extent-bearing
    /// blocks only; the A(k) tree's interior blocks are excluded).
    pub extent_len_hist: [u64; EXTENT_BUCKETS],
    /// Histogram of inline-map occupancies (entry count per live inline
    /// map) — the `INLINE_CAP` sizing datum.
    pub inline_occupancy_hist: [u64; OCCUPANCY_BUCKETS],
}

impl Default for MemReport {
    fn default() -> Self {
        MemReport {
            blocks: 0,
            extent_owned_bytes: 0,
            extent_shared_bytes: 0,
            shared_extents: 0,
            owned_extents: 0,
            iedge_inline_maps: 0,
            iedge_spilled_maps: 0,
            iedge_spilled_bytes: 0,
            side_table_bytes: 0,
            scratch_bytes: 0,
            slab_bytes: 0,
            dead_retained_bytes: 0,
            other_bytes: 0,
            extent_len_hist: [0; EXTENT_BUCKETS],
            inline_occupancy_hist: [0; OCCUPANCY_BUCKETS],
        }
    }
}

impl MemReport {
    /// A zeroed report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one live, extent-bearing block's run: length lands in
    /// the extent histogram, bytes in the owned or shared category.
    pub fn record_extent(&mut self, len: usize, heap_bytes: usize, shared: bool) {
        self.extent_len_hist[pow2_bucket(len as u64)] += 1;
        self.add_extent_bytes(heap_bytes, shared);
    }

    /// Attributes extent-run bytes without a histogram entry (interior
    /// refinement-tree blocks, whose extents are empty placeholders).
    pub fn add_extent_bytes(&mut self, heap_bytes: usize, shared: bool) {
        if shared {
            self.extent_shared_bytes += heap_bytes as u64;
            self.shared_extents += 1;
        } else {
            self.extent_owned_bytes += heap_bytes as u64;
            self.owned_extents += 1;
        }
    }

    /// Records one live inline iedge map's occupancy.
    pub fn record_inline_map(&mut self, occupancy: usize) {
        self.iedge_inline_maps += 1;
        self.inline_occupancy_hist[occupancy.min(OCCUPANCY_BUCKETS - 1)] += 1;
    }

    /// Records one live spilled iedge map and its estimated bytes.
    pub fn record_spilled_map(&mut self, heap_bytes: usize) {
        self.iedge_spilled_maps += 1;
        self.iedge_spilled_bytes += heap_bytes as u64;
    }

    /// Sharing ratio: shared extent bytes over all extent bytes, in
    /// `[0, 1]`; `0.0` when there are no extent bytes at all.
    pub fn sharing_ratio(&self) -> f64 {
        let total = self.extent_owned_bytes + self.extent_shared_bytes;
        if total == 0 {
            0.0
        } else {
            self.extent_shared_bytes as f64 / total as f64
        }
    }

    /// The sum of every byte category — the contract requires this to
    /// equal the structure's [`HeapUse::heap_use`].
    pub fn total_bytes(&self) -> u64 {
        self.extent_owned_bytes
            + self.extent_shared_bytes
            + self.iedge_spilled_bytes
            + self.side_table_bytes
            + self.scratch_bytes
            + self.slab_bytes
            + self.dead_retained_bytes
            + self.other_bytes
    }

    /// Merges another report (per-level or per-shard accumulation).
    pub fn merge(&mut self, other: &MemReport) {
        self.blocks += other.blocks;
        self.extent_owned_bytes += other.extent_owned_bytes;
        self.extent_shared_bytes += other.extent_shared_bytes;
        self.shared_extents += other.shared_extents;
        self.owned_extents += other.owned_extents;
        self.iedge_inline_maps += other.iedge_inline_maps;
        self.iedge_spilled_maps += other.iedge_spilled_maps;
        self.iedge_spilled_bytes += other.iedge_spilled_bytes;
        self.side_table_bytes += other.side_table_bytes;
        self.scratch_bytes += other.scratch_bytes;
        self.slab_bytes += other.slab_bytes;
        self.dead_retained_bytes += other.dead_retained_bytes;
        self.other_bytes += other.other_bytes;
        for i in 0..EXTENT_BUCKETS {
            self.extent_len_hist[i] += other.extent_len_hist[i];
        }
        for i in 0..OCCUPANCY_BUCKETS {
            self.inline_occupancy_hist[i] += other.inline_occupancy_hist[i];
        }
    }
}

// Blanket impls for the plain containers the indexes compose.

impl<T> HeapUse for Vec<T> {
    fn heap_use(&self) -> usize {
        vec_cap_heap(self)
    }
}

impl HeapUse for String {
    fn heap_use(&self) -> usize {
        self.capacity()
    }
}

impl<T> HeapUse for std::collections::BTreeSet<T> {
    fn heap_use(&self) -> usize {
        btree_set_heap::<T>(self.len())
    }
}

impl<K, V> HeapUse for std::collections::BTreeMap<K, V> {
    fn heap_use(&self) -> usize {
        btree_map_heap::<K, V>(self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_buckets_follow_the_metrics_law() {
        assert_eq!(pow2_bucket(0), 0);
        assert_eq!(pow2_bucket(1), 1);
        assert_eq!(pow2_bucket(2), 2);
        assert_eq!(pow2_bucket(3), 2);
        assert_eq!(pow2_bucket(4), 3);
        assert_eq!(pow2_bucket(1 << 20), 21);
        // The representative re-lands in its own bucket.
        for b in 0..EXTENT_BUCKETS {
            assert_eq!(pow2_bucket(pow2_bucket_floor(b)), b, "bucket {b}");
        }
    }

    #[test]
    fn report_total_is_category_sum() {
        let mut r = MemReport::new();
        r.record_extent(4, 100, false);
        r.record_extent(8, 50, true);
        r.record_inline_map(3);
        r.record_spilled_map(200);
        r.side_table_bytes = 10;
        r.scratch_bytes = 20;
        r.slab_bytes = 30;
        r.dead_retained_bytes = 5;
        r.other_bytes = 7;
        assert_eq!(r.total_bytes(), 100 + 50 + 200 + 10 + 20 + 30 + 5 + 7);
        assert_eq!(r.shared_extents, 1);
        assert_eq!(r.owned_extents, 1);
        assert!((r.sharing_ratio() - 50.0 / 150.0).abs() < 1e-12);
        assert_eq!(r.extent_len_hist[pow2_bucket(4)], 1);
        assert_eq!(r.inline_occupancy_hist[3], 1);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = MemReport::new();
        a.record_extent(2, 16, false);
        let mut b = MemReport::new();
        b.record_extent(2, 16, true);
        b.record_inline_map(1);
        a.merge(&b);
        assert_eq!(a.extent_len_hist[pow2_bucket(2)], 2);
        assert_eq!(a.shared_extents, 1);
        assert_eq!(a.owned_extents, 1);
        assert_eq!(a.iedge_inline_maps, 1);
        assert_eq!(a.total_bytes(), 32);
    }

    #[test]
    fn container_impls_are_capacity_based() {
        let mut v: Vec<u64> = Vec::with_capacity(10);
        v.push(1);
        assert_eq!(v.heap_use(), 10 * 8);
        let s = String::with_capacity(7);
        assert_eq!(s.heap_use(), 7);
        let mut m: std::collections::BTreeMap<u32, u32> = Default::default();
        m.insert(1, 2);
        assert_eq!(m.heap_use(), 8 + BTREE_ENTRY_OVERHEAD);
    }
}
