//! The structured event model of the flight recorder: what happened,
//! where in the pipeline, and when.
//!
//! Events are small `Copy` values — a monotonic sequence number, a
//! timestamp relative to the [`crate::obs::ObsHub`] epoch, a static
//! [`CallsiteId`] naming the instrumentation point, and a typed
//! [`EventPayload`] carrying the numbers the paper's Section 5.1
//! analysis counts (splits, merges, |Φ₁|, work-queue sizes). Index
//! families are referenced by a compact [`IndexFamily`] handle into the
//! hub's registration table, so no event ever allocates.
//!
//! Two renderings exist:
//!
//! * [`Event::to_jsonl`] — the full record (timestamps included), one
//!   JSON object per line, for the [`crate::obs::JsonlWriter`];
//! * [`Event::stable_line`] — the *deterministic* projection
//!   (timestamps and durations excluded), used by the conformance lab's
//!   reproducers so that replaying a reproducer regenerates an
//!   equivalent trace bit-for-bit.

use crate::obs::json::escape_into;

/// A static identifier for one instrumentation point. The `id` is
/// stable across runs (it is part of the JSONL schema); the `name` is
/// the human-readable form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallsiteId {
    /// Stable numeric id (part of the trace schema).
    pub id: u16,
    /// Human-readable callsite name (kebab-case).
    pub name: &'static str,
}

/// The pipeline's static callsites, one per interesting moment.
pub mod callsite {
    use super::CallsiteId;

    /// An update operation entered the engine.
    pub const OP_RECEIVED: CallsiteId = CallsiteId {
        id: 1,
        name: "op-received",
    };
    /// One registered index observed the mutation.
    pub const INDEX_DISPATCH: CallsiteId = CallsiteId {
        id: 2,
        name: "index-dispatch",
    };
    /// The split phase of one index's maintenance.
    pub const SPLIT_PHASE: CallsiteId = CallsiteId {
        id: 3,
        name: "split-phase",
    };
    /// The merge phase of one index's maintenance.
    pub const MERGE_PHASE: CallsiteId = CallsiteId {
        id: 4,
        name: "merge-phase",
    };
    /// A(k) refinement-chain (rank) maintenance touched levels j₀..k.
    pub const RANK_MAINTENANCE: CallsiteId = CallsiteId {
        id: 5,
        name: "rank-maintenance",
    };
    /// A rebuild policy fired and the index was reconstructed.
    pub const REBUILD: CallsiteId = CallsiteId {
        id: 6,
        name: "rebuild-triggered",
    };
    /// One phase segment of a batch application.
    pub const BATCH_SEGMENT: CallsiteId = CallsiteId {
        id: 7,
        name: "batch-segment",
    };
    /// The conformance lab ran its oracle battery after an op.
    pub const ORACLE_CHECK: CallsiteId = CallsiteId {
        id: 8,
        name: "oracle-check",
    };
    /// One index published a dense-store representation report.
    pub const STORE_REPORT: CallsiteId = CallsiteId {
        id: 9,
        name: "store-report",
    };
    /// One index was frozen into an in-memory [`crate::view::IndexSnapshot`].
    pub const SNAPSHOT_FREEZE: CallsiteId = CallsiteId {
        id: 10,
        name: "snapshot-freeze",
    };
    /// One index published a deep-memory attribution report.
    pub const MEM_REPORT: CallsiteId = CallsiteId {
        id: 11,
        name: "mem-report",
    };
}

/// Compact handle to a registered index family (slot order of
/// [`crate::obs::ObsHub::register_family`]). `NONE` marks events that
/// are not about any particular index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct IndexFamily(pub u16);

impl IndexFamily {
    /// "No family": engine-level events.
    pub const NONE: IndexFamily = IndexFamily(u16::MAX);
}

/// The kind of update operation flowing through the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// A node addition.
    AddNode,
    /// An edge insertion.
    InsertEdge,
    /// An edge deletion.
    DeleteEdge,
    /// A node removal (decomposes into edge deletions).
    RemoveNode,
    /// A whole batch (its primitive ops emit their own events).
    Batch,
}

impl OpKind {
    /// Stable kebab-case label (metrics `op` label, trace field).
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::AddNode => "add-node",
            OpKind::InsertEdge => "insert-edge",
            OpKind::DeleteEdge => "delete-edge",
            OpKind::RemoveNode => "remove-node",
            OpKind::Batch => "batch",
        }
    }
}

/// One phase segment of [`crate::batch::apply_batch_traced`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSegment {
    /// Phase 1: node additions.
    AddNodes,
    /// Phase 2: edge insertions.
    InsertEdges,
    /// Phase 3: explicit edge deletions.
    DeleteEdges,
    /// Phase 4: node removals (incl. implicit edge sweeps).
    RemoveNodes,
}

impl BatchSegment {
    /// Stable kebab-case label.
    pub fn as_str(self) -> &'static str {
        match self {
            BatchSegment::AddNodes => "add-nodes",
            BatchSegment::InsertEdges => "insert-edges",
            BatchSegment::DeleteEdges => "delete-edges",
            BatchSegment::RemoveNodes => "remove-nodes",
        }
    }
}

/// The typed payload of one event. Counters are `u32` — an individual
/// operation never splits/merges more blocks than there are nodes, and
/// keeping the payload at two words makes the ring buffer cheap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventPayload {
    /// An operation entered the engine.
    OpReceived {
        /// What kind of operation.
        op: OpKind,
    },
    /// One index observed one mutation (summary over both phases).
    IndexDispatch {
        /// Which registered index.
        family: IndexFamily,
        /// The observed operation.
        op: OpKind,
        /// Block splits this op caused in this index.
        splits: u32,
        /// Block merges this op caused in this index.
        merges: u32,
        /// Whether the index took its no-op fast path.
        no_op: bool,
        /// Wall-clock nanoseconds inside the index's hook.
        nanos: u64,
    },
    /// The split phase of one index's maintenance (only for non-no-ops).
    SplitPhase {
        /// Which registered index.
        family: IndexFamily,
        /// Splits performed.
        splits: u32,
        /// |Φ₁|: index size after splitting, before merging.
        intermediate_blocks: u32,
        /// Peak Paige–Tarjan work-queue size (blocks in queued compounds).
        queue_peak: u32,
        /// Wall-clock nanoseconds inside the split phase.
        nanos: u64,
    },
    /// The merge phase of one index's maintenance (only for non-no-ops).
    MergePhase {
        /// Which registered index.
        family: IndexFamily,
        /// Merges performed.
        merges: u32,
        /// |Φ₂|: index size after the whole update.
        final_blocks: u32,
        /// Wall-clock nanoseconds inside the merge phase.
        nanos: u64,
    },
    /// A(k) refinement-chain maintenance touched `levels_touched` ranks
    /// (levels j₀..=k of the chain).
    RankMaintenance {
        /// Which registered index.
        family: IndexFamily,
        /// Number of chain levels the update touched (k − j₀ + 1).
        levels_touched: u32,
    },
    /// A [`crate::rebuild::RebuildPolicy`] fired.
    RebuildTriggered {
        /// Which registered index.
        family: IndexFamily,
        /// Block count before reconstruction.
        blocks_before: u32,
        /// Block count after reconstruction.
        blocks_after: u32,
        /// Wall-clock nanoseconds inside the reconstruction.
        nanos: u64,
    },
    /// One phase segment of a batch finished.
    BatchSegment {
        /// Which segment.
        segment: BatchSegment,
        /// Primitive graph mutations the segment applied.
        ops: u32,
    },
    /// The conformance lab ran its oracle battery after an op.
    OracleCheck {
        /// Oracle checks that passed.
        checks: u32,
        /// Whether a check failed (the run is being convicted).
        failed: bool,
    },
    /// A point-in-time [`crate::store::StoreReport`] snapshot of one
    /// index's iedge-map representation state (emitted on demand by
    /// [`crate::engine::UpdateEngine::publish_store_reports`]).
    StoreReport {
        /// Which registered index.
        family: IndexFamily,
        /// Live maps currently in the inline representation.
        inline_maps: u32,
        /// Live maps currently spilled to the sorted-map representation.
        spilled_maps: u32,
        /// Cumulative inline→spilled transitions since construction.
        spill_events: u32,
        /// Total (block, neighbor) entries across live maps.
        entries: u32,
        /// Largest live map.
        max_entries: u32,
        /// Sum of worst-case per-lookup comparison counts over live maps;
        /// divide by `inline_maps + spilled_maps` for a mean probe length.
        probe_total: u64,
    },
    /// One index was frozen into an in-memory
    /// [`crate::view::IndexSnapshot`] (emitted by
    /// [`crate::engine::UpdateEngine::freeze`]).
    SnapshotFreeze {
        /// Which registered index.
        family: IndexFamily,
        /// Blocks captured in the frozen view.
        blocks: u32,
        /// The index's cumulative CoW clone count *after* this freeze —
        /// extent runs the writer had to copy because an earlier
        /// snapshot still shared them.
        cow_clones: u64,
        /// Wall-clock nanoseconds inside the freeze.
        nanos: u64,
    },
    /// The scalar aggregates of one index's point-in-time
    /// [`crate::obs::mem::MemReport`] (emitted on demand by
    /// [`crate::engine::UpdateEngine::publish_mem_reports`]; the
    /// histograms ride the metrics registry instead — the payload stays
    /// two-words-ish `Copy`).
    MemReport {
        /// Which registered index.
        family: IndexFamily,
        /// Sum of every byte category; equals the structure's deep
        /// `heap_use()` per the DESIGN.md §13 contract.
        total_bytes: u64,
        /// Extent-run bytes owned solely by the live index.
        extent_owned_bytes: u64,
        /// Extent-run bytes co-held by frozen snapshots (counted once
        /// per run).
        extent_shared_bytes: u64,
        /// Estimated bytes in spilled iedge maps.
        iedge_spilled_bytes: u64,
        /// Live iedge maps in the inline (zero-heap) representation.
        inline_maps: u32,
        /// Live iedge maps spilled to the sorted-map representation.
        spilled_maps: u32,
        /// Extent runs currently shared with a snapshot.
        shared_extents: u32,
        /// Live blocks scanned.
        blocks: u32,
        /// Size of the freshly rebuilt minimum index (the quality
        /// denominator); `blocks - minimum_blocks` is the excess.
        minimum_blocks: u32,
    },
}

impl EventPayload {
    /// The static callsite this payload belongs to.
    pub fn callsite(&self) -> CallsiteId {
        match self {
            EventPayload::OpReceived { .. } => callsite::OP_RECEIVED,
            EventPayload::IndexDispatch { .. } => callsite::INDEX_DISPATCH,
            EventPayload::SplitPhase { .. } => callsite::SPLIT_PHASE,
            EventPayload::MergePhase { .. } => callsite::MERGE_PHASE,
            EventPayload::RankMaintenance { .. } => callsite::RANK_MAINTENANCE,
            EventPayload::RebuildTriggered { .. } => callsite::REBUILD,
            EventPayload::BatchSegment { .. } => callsite::BATCH_SEGMENT,
            EventPayload::OracleCheck { .. } => callsite::ORACLE_CHECK,
            EventPayload::StoreReport { .. } => callsite::STORE_REPORT,
            EventPayload::SnapshotFreeze { .. } => callsite::SNAPSHOT_FREEZE,
            EventPayload::MemReport { .. } => callsite::MEM_REPORT,
        }
    }
}

/// One recorded event. `Copy` so the flight recorder's ring buffer is a
/// plain slot array with no per-event allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonic per-hub sequence number (0-based).
    pub seq: u64,
    /// Nanoseconds since the hub's epoch (monotonic clock).
    pub ts_nanos: u64,
    /// Where this event was emitted.
    pub callsite: CallsiteId,
    /// What happened.
    pub payload: EventPayload,
}

impl Event {
    /// Renders the event as one JSON object (no trailing newline),
    /// resolving family handles through `family_name`. Hand-rolled —
    /// tier-1 stays dependency-free.
    pub fn to_jsonl(&self, family_name: impl Fn(IndexFamily) -> String) -> String {
        let mut out = String::with_capacity(128);
        out.push_str(&format!(
            "{{\"seq\":{},\"ts_ns\":{},\"callsite\":{},\"kind\":\"{}\"",
            self.seq, self.ts_nanos, self.callsite.id, self.callsite.name
        ));
        let field_str = |out: &mut String, k: &str, v: &str| {
            out.push_str(&format!(",\"{k}\":\""));
            escape_into(v, out);
            out.push('"');
        };
        let field_num = |out: &mut String, k: &str, v: u64| {
            out.push_str(&format!(",\"{k}\":{v}"));
        };
        let field_bool = |out: &mut String, k: &str, v: bool| {
            out.push_str(&format!(",\"{k}\":{v}"));
        };
        match self.payload {
            EventPayload::OpReceived { op } => {
                field_str(&mut out, "op", op.as_str());
            }
            EventPayload::IndexDispatch {
                family,
                op,
                splits,
                merges,
                no_op,
                nanos,
            } => {
                field_str(&mut out, "family", &family_name(family));
                field_str(&mut out, "op", op.as_str());
                field_num(&mut out, "splits", splits.into());
                field_num(&mut out, "merges", merges.into());
                field_bool(&mut out, "no_op", no_op);
                field_num(&mut out, "nanos", nanos);
            }
            EventPayload::SplitPhase {
                family,
                splits,
                intermediate_blocks,
                queue_peak,
                nanos,
            } => {
                field_str(&mut out, "family", &family_name(family));
                field_num(&mut out, "splits", splits.into());
                field_num(&mut out, "intermediate_blocks", intermediate_blocks.into());
                field_num(&mut out, "queue_peak", queue_peak.into());
                field_num(&mut out, "nanos", nanos);
            }
            EventPayload::MergePhase {
                family,
                merges,
                final_blocks,
                nanos,
            } => {
                field_str(&mut out, "family", &family_name(family));
                field_num(&mut out, "merges", merges.into());
                field_num(&mut out, "final_blocks", final_blocks.into());
                field_num(&mut out, "nanos", nanos);
            }
            EventPayload::RankMaintenance {
                family,
                levels_touched,
            } => {
                field_str(&mut out, "family", &family_name(family));
                field_num(&mut out, "levels_touched", levels_touched.into());
            }
            EventPayload::RebuildTriggered {
                family,
                blocks_before,
                blocks_after,
                nanos,
            } => {
                field_str(&mut out, "family", &family_name(family));
                field_num(&mut out, "blocks_before", blocks_before.into());
                field_num(&mut out, "blocks_after", blocks_after.into());
                field_num(&mut out, "nanos", nanos);
            }
            EventPayload::BatchSegment { segment, ops } => {
                field_str(&mut out, "segment", segment.as_str());
                field_num(&mut out, "ops", ops.into());
            }
            EventPayload::OracleCheck { checks, failed } => {
                field_num(&mut out, "checks", checks.into());
                field_bool(&mut out, "failed", failed);
            }
            EventPayload::StoreReport {
                family,
                inline_maps,
                spilled_maps,
                spill_events,
                entries,
                max_entries,
                probe_total,
            } => {
                field_str(&mut out, "family", &family_name(family));
                field_num(&mut out, "inline_maps", inline_maps.into());
                field_num(&mut out, "spilled_maps", spilled_maps.into());
                field_num(&mut out, "spill_events", spill_events.into());
                field_num(&mut out, "entries", entries.into());
                field_num(&mut out, "max_entries", max_entries.into());
                field_num(&mut out, "probe_total", probe_total);
            }
            EventPayload::SnapshotFreeze {
                family,
                blocks,
                cow_clones,
                nanos,
            } => {
                field_str(&mut out, "family", &family_name(family));
                field_num(&mut out, "blocks", blocks.into());
                field_num(&mut out, "cow_clones", cow_clones);
                field_num(&mut out, "nanos", nanos);
            }
            EventPayload::MemReport {
                family,
                total_bytes,
                extent_owned_bytes,
                extent_shared_bytes,
                iedge_spilled_bytes,
                inline_maps,
                spilled_maps,
                shared_extents,
                blocks,
                minimum_blocks,
            } => {
                field_str(&mut out, "family", &family_name(family));
                field_num(&mut out, "total_bytes", total_bytes);
                field_num(&mut out, "extent_owned_bytes", extent_owned_bytes);
                field_num(&mut out, "extent_shared_bytes", extent_shared_bytes);
                field_num(&mut out, "iedge_spilled_bytes", iedge_spilled_bytes);
                field_num(&mut out, "inline_maps", inline_maps.into());
                field_num(&mut out, "spilled_maps", spilled_maps.into());
                field_num(&mut out, "shared_extents", shared_extents.into());
                field_num(&mut out, "blocks", blocks.into());
                field_num(&mut out, "minimum_blocks", minimum_blocks.into());
            }
        }
        out.push('}');
        out
    }

    /// Renders the *deterministic* projection of the event: sequence
    /// number, callsite and counters — timestamps and durations
    /// excluded — so two identical seeded runs produce identical lines.
    /// This is what conformance reproducers embed.
    pub fn stable_line(&self, family_name: impl Fn(IndexFamily) -> String) -> String {
        let mut s = format!("{} {}", self.seq, self.callsite.name);
        match self.payload {
            EventPayload::OpReceived { op } => {
                s.push_str(&format!(" op={}", op.as_str()));
            }
            EventPayload::IndexDispatch {
                family,
                op,
                splits,
                merges,
                no_op,
                ..
            } => {
                s.push_str(&format!(
                    " family={} op={} splits={splits} merges={merges} no_op={no_op}",
                    family_name(family),
                    op.as_str()
                ));
            }
            EventPayload::SplitPhase {
                family,
                splits,
                intermediate_blocks,
                queue_peak,
                ..
            } => {
                s.push_str(&format!(
                    " family={} splits={splits} intermediate={intermediate_blocks} queue_peak={queue_peak}",
                    family_name(family)
                ));
            }
            EventPayload::MergePhase {
                family,
                merges,
                final_blocks,
                ..
            } => {
                s.push_str(&format!(
                    " family={} merges={merges} final={final_blocks}",
                    family_name(family)
                ));
            }
            EventPayload::RankMaintenance {
                family,
                levels_touched,
            } => {
                s.push_str(&format!(
                    " family={} levels={levels_touched}",
                    family_name(family)
                ));
            }
            EventPayload::RebuildTriggered {
                family,
                blocks_before,
                blocks_after,
                ..
            } => {
                s.push_str(&format!(
                    " family={} before={blocks_before} after={blocks_after}",
                    family_name(family)
                ));
            }
            EventPayload::BatchSegment { segment, ops } => {
                s.push_str(&format!(" segment={} ops={ops}", segment.as_str()));
            }
            EventPayload::OracleCheck { checks, failed } => {
                s.push_str(&format!(" checks={checks} failed={failed}"));
            }
            EventPayload::StoreReport {
                family,
                inline_maps,
                spilled_maps,
                spill_events,
                entries,
                max_entries,
                probe_total,
            } => {
                s.push_str(&format!(
                    " family={} inline={inline_maps} spilled={spilled_maps} \
                     spill_events={spill_events} entries={entries} \
                     max_entries={max_entries} probe_total={probe_total}",
                    family_name(family)
                ));
            }
            EventPayload::SnapshotFreeze {
                family,
                blocks,
                cow_clones,
                ..
            } => {
                s.push_str(&format!(
                    " family={} blocks={blocks} cow_clones={cow_clones}",
                    family_name(family)
                ));
            }
            EventPayload::MemReport {
                family,
                total_bytes,
                extent_owned_bytes,
                extent_shared_bytes,
                iedge_spilled_bytes,
                inline_maps,
                spilled_maps,
                shared_extents,
                blocks,
                minimum_blocks,
            } => {
                s.push_str(&format!(
                    " family={} total={total_bytes} owned={extent_owned_bytes}                      shared={extent_shared_bytes} spilled_bytes={iedge_spilled_bytes}                      inline={inline_maps} spilled={spilled_maps}                      shared_extents={shared_extents} blocks={blocks}                      minimum={minimum_blocks}",
                    family_name(family)
                ));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::json::Json;

    fn fam(f: IndexFamily) -> String {
        if f == IndexFamily::NONE {
            String::new()
        } else {
            format!("family-{}", f.0)
        }
    }

    #[test]
    fn callsites_are_distinct() {
        let all = [
            callsite::OP_RECEIVED,
            callsite::INDEX_DISPATCH,
            callsite::SPLIT_PHASE,
            callsite::MERGE_PHASE,
            callsite::RANK_MAINTENANCE,
            callsite::REBUILD,
            callsite::BATCH_SEGMENT,
            callsite::ORACLE_CHECK,
            callsite::STORE_REPORT,
            callsite::SNAPSHOT_FREEZE,
            callsite::MEM_REPORT,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.id, b.id);
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn jsonl_parses_and_carries_fields() {
        let ev = Event {
            seq: 7,
            ts_nanos: 123,
            callsite: callsite::SPLIT_PHASE,
            payload: EventPayload::SplitPhase {
                family: IndexFamily(1),
                splits: 3,
                intermediate_blocks: 40,
                queue_peak: 5,
                nanos: 999,
            },
        };
        let line = ev.to_jsonl(fam);
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("seq").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("split-phase"));
        assert_eq!(v.get("family").and_then(Json::as_str), Some("family-1"));
        assert_eq!(v.get("queue_peak").and_then(Json::as_u64), Some(5));
        assert_eq!(v.get("nanos").and_then(Json::as_u64), Some(999));
    }

    #[test]
    fn stable_line_excludes_time() {
        let mk = |ts, nanos| Event {
            seq: 0,
            ts_nanos: ts,
            callsite: callsite::MERGE_PHASE,
            payload: EventPayload::MergePhase {
                family: IndexFamily(0),
                merges: 1,
                final_blocks: 9,
                nanos,
            },
        };
        assert_eq!(mk(1, 10).stable_line(fam), mk(999, 77).stable_line(fam));
        assert!(mk(1, 10).stable_line(fam).contains("merge-phase"));
    }
}
