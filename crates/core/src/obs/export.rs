//! Span-tree exporters: Chrome trace-event JSON and collapsed-stack
//! folded lines.
//!
//! Both render a finished [`SpanTree`] (see [`crate::obs::span`]) for
//! external tools:
//!
//! * [`chrome_trace_json`] — the Trace Event Format's complete-event
//!   (`"ph":"X"`) flavor, loadable in Perfetto (`ui.perfetto.dev`) or
//!   `chrome://tracing`. `ts`/`dur` are microseconds with nanosecond
//!   decimals, rendered from integers (no float formatting) so output
//!   is deterministic for a fixed tree. Exact nano values plus the
//!   span/parent ids ride along in `args` so `xsi_metrics_check` can
//!   verify the tree shape (monotonic `ts`, parent `dur` covering the
//!   children) without reparsing microseconds.
//! * [`folded_stacks`] — one `frame;frame;frame weight` line per
//!   distinct stack, the input format of flamegraph tooling. Weights
//!   are *self* time ([`FoldWeight::SelfNanos`], the flamegraph
//!   convention: children are separate lines, so parent weights must
//!   exclude them) or span counts ([`FoldWeight::Count`], fully
//!   deterministic for seed-pinned replay comparison — wall-clock never
//!   enters the output). Lines are sorted; aggregation is a `BTreeMap`.
//!
//! Frame names are `Kind` or `Kind(family)` when the span carries a
//! family attribution; kernel spans inherit the dispatch family via
//! [`SpanTree::effective_family`] only in the *trace* `args` (folded
//! frames keep the span's own attribution so stacks stay compact).

use std::collections::BTreeMap;

use super::event::IndexFamily;
use super::json::escape_into;
use super::span::{SpanRecord, SpanTree};

/// Render `family` through the hub's registration table (slot order of
/// `ObsHub::register_family`); out-of-table handles get a stable
/// placeholder so exports never panic.
fn family_label(family: IndexFamily, families: &[String]) -> Option<String> {
    if family == IndexFamily::NONE {
        return None;
    }
    Some(
        families
            .get(family.0 as usize)
            .cloned()
            .unwrap_or_else(|| format!("family-{}", family.0)),
    )
}

/// `nanos` as microseconds with 3 decimals, from integer arithmetic
/// (deterministic, exact: 1234 → "1.234").
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1000, nanos % 1000)
}

/// Serialize the tree as Chrome trace-event JSON (complete events, one
/// per span, in open order). `families` is the hub's registration
/// table for family-name resolution.
pub fn chrome_trace_json(tree: &SpanTree, families: &[String]) -> String {
    let mut out = String::with_capacity(tree.spans.len() * 160 + 128);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"otherData\":{\"format\":\"xsi-chrome-trace-v1\",\"dropped\":");
    out.push_str(&tree.dropped.to_string());
    out.push_str("},\"traceEvents\":[");
    for (i, s) in tree.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        out.push_str(s.kind.name());
        out.push_str("\",\"cat\":\"xsi\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":");
        out.push_str(&micros(s.ts_nanos));
        out.push_str(",\"dur\":");
        out.push_str(&micros(s.dur_nanos));
        out.push_str(",\"args\":{\"id\":");
        out.push_str(&s.id.to_string());
        out.push_str(",\"parent\":");
        out.push_str(&s.parent.to_string());
        out.push_str(",\"ts_ns\":");
        out.push_str(&s.ts_nanos.to_string());
        out.push_str(",\"dur_ns\":");
        out.push_str(&s.dur_nanos.to_string());
        if let Some(fam) = family_label(tree.effective_family(s.id), families) {
            out.push_str(",\"family\":\"");
            escape_into(&fam, &mut out);
            out.push('"');
        }
        out.push_str(",\"blocks\":");
        out.push_str(&s.counters.blocks.to_string());
        out.push_str(",\"elems\":");
        out.push_str(&s.counters.elems.to_string());
        out.push_str(",\"queue_depth\":");
        out.push_str(&s.counters.queue_depth.to_string());
        out.push_str(",\"cow_clones\":");
        out.push_str(&s.counters.cow_clones.to_string());
        out.push_str("}}");
    }
    out.push_str("]}\n");
    out
}

/// What the folded-stack weight column measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FoldWeight {
    /// Self nanos (duration minus direct children): flamegraph
    /// semantics, the `--folded-out` default.
    SelfNanos,
    /// Span count: wall-clock never enters the output, so two replays
    /// of the same seed-pinned workload fold byte-identically.
    Count,
}

fn frame_name(s: &SpanRecord, families: &[String]) -> String {
    match family_label(s.family, families) {
        Some(fam) => format!("{}({fam})", s.kind.name()),
        None => s.kind.name().to_string(),
    }
}

/// Serialize the tree as collapsed-stack folded lines (sorted;
/// zero-weight stacks are dropped, as flamegraph tools expect).
pub fn folded_stacks(tree: &SpanTree, families: &[String], weight: FoldWeight) -> String {
    // Self time = dur − Σ direct children's dur.
    let mut child_nanos = vec![0u64; tree.spans.len() + 1];
    if weight == FoldWeight::SelfNanos {
        for s in &tree.spans {
            if let Some(slot) = child_nanos.get_mut(s.parent as usize) {
                *slot += s.dur_nanos;
            }
        }
    }
    // Stack prefix per span id; parents precede children in open order,
    // so one forward pass suffices.
    let mut stacks: Vec<String> = Vec::with_capacity(tree.spans.len() + 1);
    stacks.push("xsi".to_string()); // id 0: the shared root frame
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for s in &tree.spans {
        let parent_stack = stacks
            .get(s.parent as usize)
            .cloned()
            .unwrap_or_else(|| "xsi".to_string());
        let stack = format!("{parent_stack};{}", frame_name(s, families));
        let w = match weight {
            FoldWeight::Count => 1,
            FoldWeight::SelfNanos => s
                .dur_nanos
                .saturating_sub(child_nanos.get(s.id as usize).copied().unwrap_or(0)),
        };
        if w > 0 {
            *agg.entry(stack.clone()).or_insert(0) += w;
        }
        stacks.push(stack);
    }
    let mut out = String::new();
    for (stack, w) in &agg {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&w.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::json::Json;
    use crate::obs::span::{SpanCounters, SpanKind};

    fn rec(
        id: u32,
        parent: u32,
        kind: SpanKind,
        family: IndexFamily,
        ts: u64,
        dur: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            kind,
            family,
            ts_nanos: ts,
            dur_nanos: dur,
            counters: SpanCounters {
                blocks: id as u64,
                elems: 0,
                queue_depth: 0,
                cow_clones: 0,
            },
        }
    }

    fn sample() -> SpanTree {
        SpanTree {
            spans: vec![
                rec(1, 0, SpanKind::Op, IndexFamily::NONE, 0, 1000),
                rec(2, 1, SpanKind::IndexDispatch, IndexFamily(0), 100, 800),
                rec(3, 2, SpanKind::Split, IndexFamily::NONE, 150, 400),
                rec(4, 2, SpanKind::Merge, IndexFamily::NONE, 600, 200),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn chrome_trace_parses_and_links() {
        let fams = vec!["1-index".to_string()];
        let out = chrome_trace_json(&sample(), &fams);
        let parsed = Json::parse(out.trim()).expect("invariant: exporter emits valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("invariant: traceEvents is an array");
        assert_eq!(events.len(), 4);
        let split = &events[2];
        assert_eq!(split.get("name").and_then(|v| v.as_str()), Some("Split"));
        assert_eq!(split.get("ph").and_then(|v| v.as_str()), Some("X"));
        let args = split.get("args").expect("invariant: args present");
        assert_eq!(args.get("parent").and_then(|v| v.as_u64()), Some(2));
        // Kernel-level span inherits the dispatch family in the trace.
        assert_eq!(args.get("family").and_then(|v| v.as_str()), Some("1-index"));
        // µs rendering is exact: 150 ns = 0.150 µs.
        assert_eq!(split.get("ts").and_then(|v| v.as_f64()), Some(0.150));
    }

    #[test]
    fn folded_count_is_deterministic_and_sorted() {
        let fams = vec!["1-index".to_string()];
        let a = folded_stacks(&sample(), &fams, FoldWeight::Count);
        let b = folded_stacks(&sample(), &fams, FoldWeight::Count);
        assert_eq!(a, b);
        assert_eq!(
            a,
            "xsi;Op 1\n\
             xsi;Op;IndexDispatch(1-index) 1\n\
             xsi;Op;IndexDispatch(1-index);Merge 1\n\
             xsi;Op;IndexDispatch(1-index);Split 1\n"
        );
    }

    #[test]
    fn folded_self_nanos_excludes_children() {
        let fams = vec!["1-index".to_string()];
        let out = folded_stacks(&sample(), &fams, FoldWeight::SelfNanos);
        // Op: 1000 − 800 = 200; dispatch: 800 − 600 = 200; leaves keep
        // their full durations.
        assert!(out.contains("xsi;Op 200\n"));
        assert!(out.contains("xsi;Op;IndexDispatch(1-index) 200\n"));
        assert!(out.contains("xsi;Op;IndexDispatch(1-index);Split 400\n"));
        assert!(out.contains("xsi;Op;IndexDispatch(1-index);Merge 200\n"));
        // Total weight equals total root duration: nothing double-counted.
        let total: u64 = out
            .lines()
            .filter_map(|l| l.rsplit(' ').next())
            .filter_map(|w| w.parse::<u64>().ok())
            .sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn unknown_family_gets_placeholder() {
        let tree = SpanTree {
            spans: vec![rec(1, 0, SpanKind::Freeze, IndexFamily(7), 0, 10)],
            dropped: 0,
        };
        let out = folded_stacks(&tree, &[], FoldWeight::Count);
        assert_eq!(out, "xsi;Freeze(family-7) 1\n");
    }
}
