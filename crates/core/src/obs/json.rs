//! A tiny hand-rolled JSON writer/parser for the observability layer.
//!
//! Tier-1 verification runs fully offline with zero registry
//! dependencies (see the workspace manifest), so serde is off the
//! table. The obs layer needs exactly two things: correct string
//! escaping for JSONL/metrics export, and a small recursive-descent
//! parser so the schema-check binary and the tests can *validate* what
//! the exporters wrote without eyeballing strings. Numbers are parsed
//! as `f64` (plus the original text for exact `u64` round-trips), which
//! is all the schema checks need.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends `s` to `out` with JSON string escaping (quotes, backslash,
/// control characters as `\u00XX`, and the standard short escapes).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Escapes `s` into a fresh quoted JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(s, &mut out);
    out.push('"');
    out
}

/// A parsed JSON value. Object keys are kept in a [`BTreeMap`] — the
/// schema checks look fields up by name and never care about source
/// order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (original text retained for exact integer reads).
    Num(f64, String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n, _) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64` (exact, from the source text).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(_, raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    let n: f64 = raw
        .parse()
        .map_err(|_| format!("bad number {raw:?} at byte {start}"))?;
    Ok(Json::Num(n, raw.to_string()))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        // Surrogate pairs are not needed by our own
                        // writers; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the whole run of plain bytes up to the next
                // quote or escape, validating UTF-8 once per run — a
                // per-character `from_utf8(&b[pos..])` re-scans the
                // entire tail and turns parsing quadratic on MB-sized
                // traces.
                let start = *pos;
                while let Some(&c) = b.get(*pos) {
                    if c == b'"' || c == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                let run = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
                out.push_str(run);
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parser() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "line\nbreak\ttab\rcr",
            "ctrl \u{1} \u{1f} unicode é λ",
            "",
        ] {
            let quoted = quote(s);
            let back = Json::parse(&quoted).unwrap();
            assert_eq!(back.as_str(), Some(s), "round-trip of {s:?}");
        }
    }

    #[test]
    fn parses_nested_document() {
        let v =
            Json::parse(r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(
            v.get("b").unwrap().get("c").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn exact_u64_preserved() {
        let v = Json::parse("9007199254740993").unwrap(); // 2^53 + 1
        assert_eq!(v.as_u64(), Some(9007199254740993));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
