//! The metrics registry: counters, gauges, and fixed-bucket histograms
//! keyed by `(metric name, index family, op kind, phase)`.
//!
//! Populated from the same instrumentation events the flight recorder
//! sees ([`MetricsRegistry::observe_event`]), and exportable two ways:
//!
//! * [`MetricsRegistry::to_json`] — machine-readable, the payload of
//!   the bench driver's `--metrics-out` / `BENCH_*.json` summaries;
//! * [`MetricsRegistry::to_prometheus`] — Prometheus text exposition
//!   format (counters/gauges as-is, histograms as summaries with
//!   `quantile` labels), for scraping a long-running process.
//!
//! Histograms use fixed power-of-two buckets (`0`, `[2ⁱ⁻¹, 2ⁱ)`), so a
//! single scheme covers both nanosecond latencies and block-count
//! sizes; quantiles (p50/p90/p99) are bucket-upper-bound estimates,
//! `max` is exact. Everything lives in `BTreeMap`s, so export order is
//! deterministic — the conformance determinism test compares the
//! [`MetricsRegistry::to_deterministic_json`] projection (timing
//! histograms excluded) across identically seeded runs.

use crate::obs::event::{Event, EventPayload, IndexFamily};
use crate::obs::json::quote;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i`
/// (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

/// A fixed-bucket histogram over `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    /// Total samples observed.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Exact maximum sample (0 when empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// The bucket index a value falls into.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Records `count` identical samples at `v`. Buckets, count, sum
    /// and max update exactly as `count` calls of [`Histogram::observe`]
    /// would.
    pub fn observe_n(&mut self, v: u64, count: u64) {
        if count == 0 {
            return;
        }
        self.counts[bucket_index(v)] += count;
        self.count += count;
        self.sum = self.sum.saturating_add(v.saturating_mul(count));
        self.max = self.max.max(v);
    }

    /// Estimated quantile `q` ∈ [0, 1]: the upper bound of the first
    /// bucket whose cumulative count reaches `q · count`, clamped to
    /// the exact maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Raw bucket counts (test/inspection aid).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

/// The full key of one metric series. Unused label dimensions are the
/// empty string / [`IndexFamily::NONE`] and are omitted from exports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (`snake_case`; `*_total` counters, `*_nanos`
    /// latency histograms).
    pub name: &'static str,
    /// Which index family the series is about.
    pub family: IndexFamily,
    /// Which op kind the series is about.
    pub op: &'static str,
    /// Which pipeline phase the series is about.
    pub phase: &'static str,
}

impl MetricKey {
    /// A key with only the metric name set.
    pub fn named(name: &'static str) -> Self {
        MetricKey {
            name,
            family: IndexFamily::NONE,
            op: "",
            phase: "",
        }
    }

    /// Sets the family label.
    pub fn family(mut self, family: IndexFamily) -> Self {
        self.family = family;
        self
    }

    /// Sets the op label.
    pub fn op(mut self, op: &'static str) -> Self {
        self.op = op;
        self
    }

    /// Sets the phase label.
    pub fn phase(mut self, phase: &'static str) -> Self {
        self.phase = phase;
        self
    }
}

/// Counters, gauges, and histograms for the update pipeline.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds to a counter (created at 0 on first use).
    pub fn counter_add(&mut self, key: MetricKey, v: u64) {
        *self.counters.entry(key).or_insert(0) += v;
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, key: MetricKey, v: f64) {
        self.gauges.insert(key, v);
    }

    /// Records a histogram sample.
    pub fn observe(&mut self, key: MetricKey, v: u64) {
        self.histograms.entry(key).or_default().observe(v);
    }

    /// Current counter value (0 if the series does not exist).
    pub fn counter_value(&self, key: &MetricKey) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Current gauge value.
    pub fn gauge_value(&self, key: &MetricKey) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// The histogram for a key, if any samples were recorded.
    pub fn histogram(&self, key: &MetricKey) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Number of distinct series across all metric types.
    pub fn series_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Files one instrumentation event into the registry. This is the
    /// single mapping from the event taxonomy to metric series — the
    /// hub calls it for every emitted event when metrics are enabled.
    pub fn observe_event(&mut self, ev: &Event) {
        match ev.payload {
            EventPayload::OpReceived { op } => {
                self.counter_add(MetricKey::named("ops_total").op(op.as_str()), 1);
            }
            EventPayload::IndexDispatch {
                family,
                op,
                splits,
                merges,
                no_op,
                nanos,
            } => {
                let base = MetricKey::named("").family(family).op(op.as_str());
                self.counter_add(
                    MetricKey {
                        name: "splits_total",
                        ..base
                    },
                    splits.into(),
                );
                self.counter_add(
                    MetricKey {
                        name: "merges_total",
                        ..base
                    },
                    merges.into(),
                );
                if no_op {
                    self.counter_add(
                        MetricKey {
                            name: "no_ops_total",
                            ..base
                        },
                        1,
                    );
                }
                self.observe(
                    MetricKey {
                        name: "dispatch_nanos",
                        ..base
                    },
                    nanos,
                );
            }
            EventPayload::SplitPhase {
                family,
                splits: _,
                intermediate_blocks,
                queue_peak,
                nanos,
            } => {
                let base = MetricKey::named("").family(family).phase("split");
                self.observe(
                    MetricKey {
                        name: "phase_nanos",
                        ..base
                    },
                    nanos,
                );
                self.observe(
                    MetricKey {
                        name: "intermediate_blocks",
                        ..base
                    },
                    intermediate_blocks.into(),
                );
                self.observe(
                    MetricKey {
                        name: "queue_peak",
                        ..base
                    },
                    queue_peak.into(),
                );
            }
            EventPayload::MergePhase {
                family,
                merges: _,
                final_blocks,
                nanos,
            } => {
                let base = MetricKey::named("").family(family).phase("merge");
                self.observe(
                    MetricKey {
                        name: "phase_nanos",
                        ..base
                    },
                    nanos,
                );
                self.gauge_set(
                    MetricKey::named("final_blocks").family(family),
                    final_blocks.into(),
                );
            }
            EventPayload::RankMaintenance {
                family,
                levels_touched,
            } => {
                self.observe(
                    MetricKey::named("rank_levels_touched").family(family),
                    levels_touched.into(),
                );
            }
            EventPayload::RebuildTriggered {
                family,
                blocks_before: _,
                blocks_after,
                nanos,
            } => {
                self.counter_add(MetricKey::named("rebuilds_total").family(family), 1);
                self.observe(MetricKey::named("rebuild_nanos").family(family), nanos);
                self.gauge_set(
                    MetricKey::named("final_blocks").family(family),
                    blocks_after.into(),
                );
            }
            EventPayload::BatchSegment { segment, ops } => {
                let base = MetricKey::named("").phase(segment.as_str());
                self.counter_add(
                    MetricKey {
                        name: "batch_segments_total",
                        ..base
                    },
                    1,
                );
                self.counter_add(
                    MetricKey {
                        name: "batch_ops_total",
                        ..base
                    },
                    ops.into(),
                );
            }
            EventPayload::OracleCheck { checks, failed } => {
                self.counter_add(MetricKey::named("oracle_checks_total"), checks.into());
                if failed {
                    self.counter_add(MetricKey::named("oracle_failures_total"), 1);
                }
            }
            EventPayload::StoreReport {
                family,
                inline_maps,
                spilled_maps,
                spill_events,
                entries,
                max_entries,
                probe_total,
            } => {
                let g = |name| MetricKey::named(name).family(family);
                self.gauge_set(g("store_inline_maps"), inline_maps.into());
                self.gauge_set(g("store_spilled_maps"), spilled_maps.into());
                self.gauge_set(g("store_spill_events"), spill_events.into());
                self.gauge_set(g("store_entries"), entries.into());
                self.gauge_set(g("store_max_entries"), max_entries.into());
                // One histogram sample per published report: the mean
                // worst-case probe length across the index's live maps.
                let maps = u64::from(inline_maps) + u64::from(spilled_maps);
                if let Some(mean) = probe_total.checked_div(maps) {
                    self.observe(g("store_probe_len"), mean);
                }
            }
            EventPayload::SnapshotFreeze {
                family,
                blocks,
                cow_clones,
                nanos,
            } => {
                let k = |name| MetricKey::named(name).family(family);
                self.counter_add(k("snapshots_total"), 1);
                // `_nanos` histograms are excluded from the deterministic
                // JSON projection automatically.
                self.observe(k("snapshot_freeze_nanos"), nanos);
                self.observe(k("snapshot_blocks"), blocks.into());
                self.gauge_set(k("snapshot_cow_clones"), cow_clones as f64);
            }
            EventPayload::MemReport {
                family,
                total_bytes,
                extent_owned_bytes,
                extent_shared_bytes,
                iedge_spilled_bytes,
                inline_maps,
                spilled_maps,
                shared_extents,
                blocks,
                minimum_blocks,
            } => {
                let g = |name| MetricKey::named(name).family(family);
                self.gauge_set(g("mem_total_bytes"), total_bytes as f64);
                self.gauge_set(g("mem_extent_owned_bytes"), extent_owned_bytes as f64);
                self.gauge_set(g("mem_extent_shared_bytes"), extent_shared_bytes as f64);
                self.gauge_set(g("mem_iedge_spilled_bytes"), iedge_spilled_bytes as f64);
                self.gauge_set(g("mem_iedge_inline_maps"), inline_maps.into());
                self.gauge_set(g("mem_iedge_spilled_maps"), spilled_maps.into());
                self.gauge_set(g("mem_shared_extents"), shared_extents.into());
                self.gauge_set(g("mem_blocks"), blocks.into());
                let extent_total = extent_owned_bytes + extent_shared_bytes;
                if extent_total > 0 {
                    self.gauge_set(
                        g("mem_sharing_ratio"),
                        extent_shared_bytes as f64 / extent_total as f64,
                    );
                }
                // Quality telemetry: the rebuild-to-minimum oracle's
                // denominator and the excess over it (0 = minimum).
                self.gauge_set(g("quality_minimum_blocks"), minimum_blocks.into());
                self.gauge_set(
                    g("quality_blocks_over_minimum"),
                    blocks.saturating_sub(minimum_blocks).into(),
                );
            }
        }
    }

    /// Records `count` identical histogram samples at `v` in one call —
    /// how `publish_mem_reports` transplants a whole pre-bucketed
    /// distribution (extent lengths, inline occupancies) into the
    /// registry without replaying every individual sample.
    pub fn observe_n(&mut self, key: MetricKey, v: u64, count: u64) {
        self.histograms.entry(key).or_default().observe_n(v, count);
    }

    fn labels_json(key: &MetricKey, families: &[String]) -> String {
        let mut parts: Vec<String> = Vec::new();
        if key.family != IndexFamily::NONE {
            let name = families
                .get(key.family.0 as usize)
                .map(String::as_str)
                .unwrap_or("?");
            parts.push(format!("\"family\":{}", quote(name)));
        }
        if !key.op.is_empty() {
            parts.push(format!("\"op\":{}", quote(key.op)));
        }
        if !key.phase.is_empty() {
            parts.push(format!("\"phase\":{}", quote(key.phase)));
        }
        format!("{{{}}}", parts.join(","))
    }

    /// Exports every series as one JSON document (see DESIGN.md §8 for
    /// the schema). `families` resolves [`IndexFamily`] handles.
    pub fn to_json(&self, families: &[String]) -> String {
        self.to_json_inner(families, false)
    }

    /// The deterministic projection: identical for two identically
    /// seeded runs. Timing histograms (`*_nanos`) carry wall-clock
    /// measurements and are excluded; everything else — counters,
    /// block-count gauges, size histograms — is replay-stable.
    pub fn to_deterministic_json(&self, families: &[String]) -> String {
        self.to_json_inner(families, true)
    }

    fn to_json_inner(&self, families: &[String], deterministic: bool) -> String {
        let mut out = String::from("{\"format\":\"xsi-metrics-v1\"");
        out.push_str(",\"counters\":[");
        let mut first = true;
        for (key, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":{},\"labels\":{},\"value\":{v}}}",
                quote(key.name),
                Self::labels_json(key, families)
            );
        }
        out.push_str("],\"gauges\":[");
        let mut first = true;
        for (key, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":{},\"labels\":{},\"value\":{v}}}",
                quote(key.name),
                Self::labels_json(key, families)
            );
        }
        out.push_str("],\"histograms\":[");
        let mut first = true;
        for (key, h) in &self.histograms {
            if deterministic && key.name.ends_with("_nanos") {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":{},\"labels\":{},\"count\":{},\"sum\":{},\"max\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{}}}",
                quote(key.name),
                Self::labels_json(key, families),
                h.count,
                h.sum,
                h.max,
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            );
        }
        out.push_str("]}");
        out
    }

    fn labels_prom(key: &MetricKey, families: &[String], extra: Option<(&str, &str)>) -> String {
        let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut parts: Vec<String> = Vec::new();
        if key.family != IndexFamily::NONE {
            let name = families
                .get(key.family.0 as usize)
                .map(String::as_str)
                .unwrap_or("?");
            parts.push(format!("family=\"{}\"", escape(name)));
        }
        if !key.op.is_empty() {
            parts.push(format!("op=\"{}\"", escape(key.op)));
        }
        if !key.phase.is_empty() {
            parts.push(format!("phase=\"{}\"", escape(key.phase)));
        }
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{}\"", escape(v)));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }

    /// Exports every series in the Prometheus text exposition format.
    /// Counters and gauges map directly; histograms are exposed as
    /// summaries (`quantile` labels plus `_sum`/`_count`/`_max`). All
    /// metric names carry the `xsi_` prefix.
    pub fn to_prometheus(&self, families: &[String]) -> String {
        let mut out = String::new();
        let mut last_type: Option<(&'static str, &'static str)> = None;
        let mut type_line = |out: &mut String, name: &'static str, ty: &'static str| {
            if last_type != Some((name, ty)) {
                let _ = writeln!(out, "# TYPE xsi_{name} {ty}");
                last_type = Some((name, ty));
            }
        };
        for (key, v) in &self.counters {
            type_line(&mut out, key.name, "counter");
            let _ = writeln!(
                out,
                "xsi_{}{} {v}",
                key.name,
                Self::labels_prom(key, families, None)
            );
        }
        for (key, v) in &self.gauges {
            type_line(&mut out, key.name, "gauge");
            let _ = writeln!(
                out,
                "xsi_{}{} {v}",
                key.name,
                Self::labels_prom(key, families, None)
            );
        }
        for (key, h) in &self.histograms {
            type_line(&mut out, key.name, "summary");
            for (q, label) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
                let _ = writeln!(
                    out,
                    "xsi_{}{} {}",
                    key.name,
                    Self::labels_prom(key, families, Some(("quantile", label))),
                    h.quantile(q)
                );
            }
            let plain = Self::labels_prom(key, families, None);
            let _ = writeln!(out, "xsi_{}_sum{plain} {}", key.name, h.sum);
            let _ = writeln!(out, "xsi_{}_count{plain} {}", key.name, h.count);
            let _ = writeln!(out, "xsi_{}_max{plain} {}", key.name, h.max);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::json::Json;

    #[test]
    fn bucket_boundaries() {
        // Bucket 0 is exactly {0}; bucket i is [2^(i-1), 2^i).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value lands in a bucket whose range contains it.
        for v in [0u64, 1, 2, 7, 100, 4096, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i), "{v} above bucket {i} upper");
            if i > 0 {
                assert!(
                    v > bucket_upper(i - 1),
                    "{v} not above bucket {} upper",
                    i - 1
                );
            }
        }
    }

    #[test]
    fn quantile_estimates_and_exact_max() {
        let mut h = Histogram::default();
        // 90 fast samples (≤ 127), 10 slow (≤ 1023 with max 900).
        for _ in 0..90 {
            h.observe(100);
        }
        for _ in 0..9 {
            h.observe(800);
        }
        h.observe(900);
        assert_eq!(h.count, 100);
        assert_eq!(h.max, 900);
        // p50 and p90 land in the 100s bucket [64, 127].
        assert_eq!(h.quantile(0.50), 127);
        assert_eq!(h.quantile(0.90), 127);
        // p99 lands in the 800s bucket [512, 1023], clamped to max.
        assert_eq!(h.quantile(0.99), 900);
        assert_eq!(h.quantile(1.0), 900);
        // Empty histogram reports zeros.
        assert_eq!(Histogram::default().quantile(0.5), 0);
    }

    #[test]
    fn json_export_parses_and_filters_timing() {
        let mut r = MetricsRegistry::new();
        let fam = IndexFamily(0);
        r.counter_add(
            MetricKey::named("splits_total")
                .family(fam)
                .op("insert-edge"),
            3,
        );
        r.observe(
            MetricKey::named("phase_nanos").family(fam).phase("split"),
            250,
        );
        r.observe(MetricKey::named("queue_peak").family(fam).phase("split"), 4);
        r.gauge_set(MetricKey::named("final_blocks").family(fam), 17.0);
        let families = vec!["1-index".to_string()];

        let v = Json::parse(&r.to_json(&families)).unwrap();
        assert_eq!(
            v.get("format").and_then(Json::as_str),
            Some("xsi-metrics-v1")
        );
        let counters = v.get("counters").unwrap().as_arr().unwrap();
        assert_eq!(
            counters[0].get("name").and_then(Json::as_str),
            Some("splits_total")
        );
        assert_eq!(
            counters[0]
                .get("labels")
                .unwrap()
                .get("family")
                .and_then(Json::as_str),
            Some("1-index")
        );
        assert_eq!(counters[0].get("value").and_then(Json::as_u64), Some(3));
        let hists = v.get("histograms").unwrap().as_arr().unwrap();
        assert_eq!(hists.len(), 2);
        for h in hists {
            for k in ["count", "sum", "max", "p50", "p90", "p99"] {
                assert!(h.get(k).is_some(), "histogram missing {k}");
            }
        }

        // The deterministic projection drops the *_nanos histogram only.
        let det = Json::parse(&r.to_deterministic_json(&families)).unwrap();
        let det_hists = det.get("histograms").unwrap().as_arr().unwrap();
        assert_eq!(det_hists.len(), 1);
        assert_eq!(
            det_hists[0].get("name").and_then(Json::as_str),
            Some("queue_peak")
        );
        assert_eq!(det.get("counters").unwrap().as_arr().unwrap().len(), 1);
    }

    /// Golden test for the Prometheus text exposition format.
    #[test]
    fn prometheus_golden() {
        let mut r = MetricsRegistry::new();
        let fam = IndexFamily(0);
        r.counter_add(MetricKey::named("ops_total").op("insert-edge"), 2);
        r.counter_add(
            MetricKey::named("splits_total")
                .family(fam)
                .op("insert-edge"),
            5,
        );
        r.gauge_set(MetricKey::named("final_blocks").family(fam), 17.0);
        let mut key = MetricKey::named("phase_nanos").family(fam).phase("split");
        key.op = "";
        for v in [100u64, 100, 100, 900] {
            r.observe(key, v);
        }
        let families = vec![r#"A(2)-"quoted""#.to_string()];
        let got = r.to_prometheus(&families);
        let want = concat!(
            "# TYPE xsi_ops_total counter\n",
            "xsi_ops_total{op=\"insert-edge\"} 2\n",
            "# TYPE xsi_splits_total counter\n",
            "xsi_splits_total{family=\"A(2)-\\\"quoted\\\"\",op=\"insert-edge\"} 5\n",
            "# TYPE xsi_final_blocks gauge\n",
            "xsi_final_blocks{family=\"A(2)-\\\"quoted\\\"\"} 17\n",
            "# TYPE xsi_phase_nanos summary\n",
            "xsi_phase_nanos{family=\"A(2)-\\\"quoted\\\"\",phase=\"split\",quantile=\"0.5\"} 127\n",
            "xsi_phase_nanos{family=\"A(2)-\\\"quoted\\\"\",phase=\"split\",quantile=\"0.9\"} 900\n",
            "xsi_phase_nanos{family=\"A(2)-\\\"quoted\\\"\",phase=\"split\",quantile=\"0.99\"} 900\n",
            "xsi_phase_nanos_sum{family=\"A(2)-\\\"quoted\\\"\",phase=\"split\"} 1200\n",
            "xsi_phase_nanos_count{family=\"A(2)-\\\"quoted\\\"\",phase=\"split\"} 4\n",
            "xsi_phase_nanos_max{family=\"A(2)-\\\"quoted\\\"\",phase=\"split\"} 900\n",
        );
        assert_eq!(got, want);
    }
}
