//! Index reconstruction — the fallback that baseline algorithms need
//! periodically (Section 7.1).
//!
//! The paper adopts the "index reconstruction" idea of Kaushik et al.:
//! *run the construction algorithm on top of the index graph (treating it
//! as a data graph), and then blow up each inode of the new index by
//! replacing each inode of the old index with its extent of dnodes.* This
//! is valid because the current index is always a refinement of the
//! minimum (Lemma 1), and it is much cheaper than reconstructing from the
//! data graph when the index is small.
//!
//! [`RebuildPolicy`] implements the triggering heuristic used in the
//! experiments: *remember the size of the index when it was last
//! reconstructed, and reconstruct whenever the current index is more than
//! 5 % larger than that.*

use crate::oneindex::OneIndex;
use crate::partition::{BlockId, Partition};
use std::collections::BTreeMap;
use xsi_graph::{EdgeKind, Graph, NodeId};

/// Reconstructs the minimum 1-index from a (valid) current index by
/// building an index over the index graph and expanding extents.
pub fn reconstruct_1index(g: &Graph, current: &OneIndex) -> OneIndex {
    // A block whose extent has internal dedges carries a self-loop
    // iedge — possible only on cyclic data (e.g. two mutually-referencing
    // bisimilar nodes sharing a block). [`Graph`] cannot represent
    // self-loops (Section 5.1 assumes self-cycle-free *data*, and the
    // index graph here is recycled as a data graph), so the
    // index-of-index shortcut is unavailable; reconstruct from the data
    // graph instead. Found by the conformance lab (xsi-fuzz seed 0x32):
    // the old code panicked on `insert_edge(..) == Err(SelfLoop)`.
    if current.blocks().any(|b| current.has_iedge(b, b)) {
        return OneIndex::build(g);
    }
    // Materialize the index graph: one node per inode, labels preserved,
    // one edge per iedge.
    let mut ig = Graph::new();
    let mut inode_of_block: BTreeMap<BlockId, NodeId> = BTreeMap::new();
    for b in current.blocks() {
        let name = g.labels().name(current.label(b)).to_string();
        let n = ig.add_node(&name, None);
        inode_of_block.insert(b, n);
    }
    for b in current.blocks() {
        for c in current.isucc(b) {
            ig.insert_edge(inode_of_block[&b], inode_of_block[&c], EdgeKind::Child)
                .expect("invariant: the rebuilt index has simple iedges");
        }
    }
    // Index the index graph. Its ROOT meta-node is isolated and harmless:
    // the real ROOT inode keeps its distinguished label.
    let meta = OneIndex::build(&ig);

    // Blow up: two old inodes land in the same new inode iff their meta
    // nodes share a meta block.
    let mut p = Partition::new(g);
    let mut new_block_of_meta: BTreeMap<BlockId, BlockId> = BTreeMap::new();
    for b in current.blocks() {
        let meta_block = meta.block_of(inode_of_block[&b]);
        let nb = *new_block_of_meta
            .entry(meta_block)
            .or_insert_with(|| p.new_block(current.label(b)));
        for &n in current.extent(b) {
            p.attach_node(n, nb);
        }
    }
    p.rebuild_counts(g);
    OneIndex { p }
}

/// The 5 %-growth reconstruction trigger used by the experiments for both
/// the *propagate* 1-index baseline and the *simple* A(k) baseline.
#[derive(Clone, Copy, Debug)]
pub struct RebuildPolicy {
    /// Index size right after the last reconstruction.
    pub last_rebuilt_size: usize,
    /// Growth factor that triggers reconstruction (paper: 0.05).
    pub threshold: f64,
    /// Number of reconstructions triggered so far.
    pub rebuild_count: usize,
}

impl RebuildPolicy {
    /// Creates a policy with the paper's 5 % threshold.
    pub fn new(initial_size: usize) -> Self {
        RebuildPolicy {
            last_rebuilt_size: initial_size,
            threshold: 0.05,
            rebuild_count: 0,
        }
    }

    /// Whether the current size exceeds the last rebuilt size by more than
    /// the threshold.
    pub fn should_rebuild(&self, current_size: usize) -> bool {
        current_size as f64 > self.last_rebuilt_size as f64 * (1.0 + self.threshold)
    }

    /// Records that a reconstruction happened, yielding `new_size` inodes.
    pub fn on_rebuilt(&mut self, new_size: usize) {
        self.last_rebuilt_size = new_size;
        self.rebuild_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::is_minimal_1index;
    use crate::reference;
    use xsi_graph::GraphBuilder;

    #[test]
    fn reconstruct_collapses_propagate_drift() {
        // Figure 2 graph; drive propagate updates until non-minimal, then
        // reconstruct and compare against the reference minimum.
        let (mut g, ids) = GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "B"), (3, "C"), (4, "C"), (5, "C")])
            .nodes(&[(6, "D"), (7, "D"), (8, "D")])
            .edges(&[
                (1, 2),
                (1, 5),
                (2, 3),
                (2, 4),
                (2, 5),
                (3, 6),
                (4, 7),
                (5, 8),
            ])
            .root_to(1)
            .build_with_ids();
        let mut idx = OneIndex::build(&g);
        idx.propagate_insert_edge(&mut g, ids[&1], ids[&4], EdgeKind::IdRef)
            .unwrap();
        assert!(!is_minimal_1index(&g, idx.partition()));

        let rebuilt = reconstruct_1index(&g, &idx);
        rebuilt.partition().check_consistency(&g).unwrap();
        let classes = reference::bisim_classes(&g);
        assert_eq!(
            rebuilt.canonical(),
            reference::canonical_partition(&g, &classes)
        );
    }

    #[test]
    fn reconstruct_of_minimum_is_identity() {
        let (g, _) = GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "B"), (3, "B")])
            .edges(&[(1, 2), (1, 3)])
            .root_to(1)
            .build_with_ids();
        let idx = OneIndex::build(&g);
        let rebuilt = reconstruct_1index(&g, &idx);
        assert_eq!(rebuilt.canonical(), idx.canonical());
    }

    #[test]
    fn policy_triggers_at_5_percent() {
        let mut policy = RebuildPolicy::new(1000);
        assert!(!policy.should_rebuild(1000));
        assert!(!policy.should_rebuild(1050));
        assert!(policy.should_rebuild(1051));
        policy.on_rebuilt(1100);
        assert_eq!(policy.rebuild_count, 1);
        assert!(!policy.should_rebuild(1150));
        assert!(policy.should_rebuild(1156));
    }
}

#[cfg(test)]
mod cyclic_tests {
    use super::*;
    use crate::reference;
    use xsi_graph::{EdgeKind, GraphBuilder};

    /// Reconstruction via the index graph also lands on the minimum for
    /// cyclic data: the index-of-index collapse is idempotent on any
    /// valid (refinement-of-minimum) index.
    #[test]
    fn reconstruct_cyclic_drifted_index() {
        let (mut g, ids) = GraphBuilder::new()
            .nodes(&[(1, "P"), (2, "O"), (3, "P"), (4, "O"), (5, "P"), (6, "O")])
            .edges(&[(1, 2), (3, 4), (5, 6)])
            .idref_edges(&[(2, 1), (4, 3), (6, 5)])
            .root_to(1)
            .root_to(3)
            .root_to(5)
            .build_with_ids();
        let mut idx = OneIndex::build(&g);
        // Drift with propagate: cut and restore a cycle edge.
        idx.propagate_delete_edge(&mut g, ids[&2], ids[&1]).unwrap();
        idx.propagate_insert_edge(&mut g, ids[&2], ids[&1], EdgeKind::IdRef)
            .unwrap();
        let min = reference::partition_size(&g, &reference::bisim_classes(&g));
        assert!(idx.block_count() > min, "propagate should have drifted");
        let rebuilt = reconstruct_1index(&g, &idx);
        assert_eq!(rebuilt.block_count(), min);
        rebuilt.partition().check_consistency(&g).unwrap();
    }

    /// Regression (found by the conformance lab, xsi-fuzz seed 0x32):
    /// two mutually-referencing bisimilar nodes share a block, giving
    /// the minimum index a self-loop iedge. Reconstruction used to
    /// panic materializing it (`Graph` forbids self-loops); it must
    /// fall back to a data-graph build instead.
    #[test]
    fn reconstruct_handles_self_loop_iedges() {
        let (g, _) = GraphBuilder::new()
            .nodes(&[(1, "c"), (2, "c")])
            .edges(&[(1, 2)])
            .idref_edges(&[(2, 1)])
            .root_to(1)
            .root_to(2)
            .build_with_ids();
        let idx = OneIndex::build(&g);
        // The two "c" nodes are bisimilar ⇒ one block with a self-loop.
        assert_eq!(idx.block_count(), 2);
        let b = idx.blocks().find(|&b| idx.extent(b).len() == 2).unwrap();
        assert!(idx.has_iedge(b, b), "precondition: self-loop iedge");
        let rebuilt = reconstruct_1index(&g, &idx);
        rebuilt.partition().check_consistency(&g).unwrap();
        assert_eq!(rebuilt.canonical(), idx.canonical());
    }
}
