//! Batched update application.
//!
//! Applications rarely see one edge at a time — an XML document change
//! arrives as a group of node and edge operations. [`UpdateOp`] describes
//! one operation; [`apply_batch`] applies a group through incremental
//! maintenance in dependency-safe order (node additions first, then edge
//! insertions, then edge deletions, then node removals), validating that
//! the batch is internally consistent before touching anything.
//!
//! Each operation still runs through the split/merge machinery, so the
//! minimality/minimum guarantees hold at every intermediate step; the
//! batch layer adds ordering, atomic pre-validation, and aggregate
//! statistics. (True batching that defers the merge phase across a group
//! is what Figure 6 does for subgraphs — use
//! [`crate::OneIndex::add_subgraph`] for that case.)
//!
//! Since the [`StructuralIndex`] refactor there is exactly **one**
//! application path: [`apply_batch_traced`] drives any set of trait-object
//! indexes over one graph (this is what [`crate::UpdateEngine`] calls),
//! and [`apply_batch`] / [`apply_batch_1index`] / [`apply_batch_ak`] are
//! thin single-index wrappers over it. The per-index-type macro that used
//! to stamp out parallel copies of this logic is gone.

use crate::akindex::AkIndex;
use crate::index::StructuralIndex;
use crate::obs::event::{BatchSegment, EventPayload, IndexFamily, OpKind};
use crate::obs::span::{SpanGuard, SpanKind};
use crate::obs::ObsHub;
use crate::oneindex::OneIndex;
use crate::stats::UpdateStats;
use std::collections::HashSet;
use xsi_graph::{EdgeKind, Graph, GraphError, NodeId};

/// One update in a batch. Node handles for `AddNode` results are
/// positional: the i-th `AddNode` of the batch is referred to by
/// [`NodeRef::New`]`(i)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpdateOp {
    /// Create a node with this label.
    AddNode { label: String },
    /// Insert a dedge.
    InsertEdge {
        from: NodeRef,
        to: NodeRef,
        kind: EdgeKind,
    },
    /// Delete a dedge (between existing nodes).
    DeleteEdge { from: NodeId, to: NodeId },
    /// Remove a node and all of its remaining edges.
    RemoveNode { node: NodeId },
}

/// A node reference inside a batch: either an existing node or the
/// result of the batch's i-th `AddNode`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRef {
    /// An existing node in the graph.
    Existing(NodeId),
    /// The i-th `AddNode` of this batch (0-based).
    New(usize),
}

/// Errors from batch validation and application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// A `NodeRef::New(i)` referred to a non-existent `AddNode`.
    BadNewRef(usize),
    /// A node operation referenced a node that is not alive.
    DeadNode(NodeId),
    /// The underlying graph rejected an operation (duplicate edge, …).
    Graph(GraphError),
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::BadNewRef(i) => write!(f, "NodeRef::New({i}) out of range"),
            BatchError::DeadNode(n) => write!(f, "node {n} is not alive"),
            BatchError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for BatchError {}

impl From<GraphError> for BatchError {
    fn from(e: GraphError) -> Self {
        BatchError::Graph(e)
    }
}

/// The result of a batch: created node ids (in `AddNode` order) and
/// aggregate statistics.
#[derive(Clone, Debug, Default)]
pub struct BatchResult {
    /// Host ids of the batch's `AddNode`s, in order.
    pub created: Vec<NodeId>,
    /// Aggregate per-operation statistics (absorbed across every applied
    /// operation and every index).
    pub stats: UpdateStats,
    /// Number of primitive graph mutations applied: one per node added,
    /// edge inserted, edge explicitly deleted, plus — for each node
    /// removal — one per incident edge implicitly deleted and one for the
    /// removal itself.
    pub ops_applied: usize,
}

fn validate(g: &Graph, batch: &[UpdateOp]) -> Result<(), BatchError> {
    let new_count = batch
        .iter()
        .filter(|op| matches!(op, UpdateOp::AddNode { .. }))
        .count();
    let check_ref = |r: &NodeRef| match r {
        NodeRef::New(i) if *i >= new_count => Err(BatchError::BadNewRef(*i)),
        NodeRef::Existing(n) if !g.is_alive(*n) => Err(BatchError::DeadNode(*n)),
        _ => Ok(()),
    };
    let mut removed: HashSet<NodeId> = HashSet::new();
    for op in batch {
        match op {
            UpdateOp::AddNode { .. } => {}
            UpdateOp::InsertEdge { from, to, .. } => {
                check_ref(from)?;
                check_ref(to)?;
            }
            UpdateOp::DeleteEdge { from, to } => {
                if !g.is_alive(*from) {
                    return Err(BatchError::DeadNode(*from));
                }
                if !g.is_alive(*to) {
                    return Err(BatchError::DeadNode(*to));
                }
            }
            UpdateOp::RemoveNode { node } => {
                if !g.is_alive(*node) || !removed.insert(*node) {
                    return Err(BatchError::DeadNode(*node));
                }
                if *node == g.root() {
                    // Reject up front: the graph would refuse the removal
                    // in phase 4, after the node's edges were already
                    // swept — breaking the leave-untouched contract.
                    return Err(BatchError::Graph(GraphError::RootViolation));
                }
            }
        }
    }
    Ok(())
}

/// The single batch-application core: applies a batch to `g` and fans
/// every mutation out to all `indexes`, returning the combined
/// [`BatchResult`] plus the per-index aggregate [`UpdateStats`] (same
/// order as `indexes`).
///
/// Operations are applied in phase order (add-node → insert-edge →
/// delete-edge → remove-node); within a phase, batch order is preserved.
/// A node removal first deletes the node's *remaining* incident edges
/// (incoming first, then outgoing) through the regular edge-deletion
/// fan-out — so a batch may freely mix explicit `DeleteEdge`s on a node's
/// edges with a `RemoveNode` of that node — then notifies
/// [`StructuralIndex::on_node_removing`], then removes the node from the
/// graph.
///
/// The batch is validated up front — a structurally invalid batch leaves
/// graph and indexes untouched. Graph-level failures mid-application
/// (e.g. duplicate edge inserts) abort with the error; operations already
/// applied remain applied, and every index is consistent with the graph
/// at every step.
pub fn apply_batch_traced(
    indexes: &mut [&mut dyn StructuralIndex],
    g: &mut Graph,
    batch: &[UpdateOp],
) -> Result<(BatchResult, Vec<UpdateStats>), BatchError> {
    let mut obs = ObsHub::disabled();
    apply_batch_traced_obs(indexes, &[], g, batch, &mut obs)
}

/// Per-edge-mutation fan-out: every index observes the (already applied)
/// mutation; when the hub is active each observation is timed and
/// emitted as an `index-dispatch` event (plus the split/merge phase
/// breakdown, see [`ObsHub::observe_index_dispatch`]).
#[allow(clippy::too_many_arguments)]
fn observe_edge_fanout(
    g: &Graph,
    u: NodeId,
    v: NodeId,
    inserted: bool,
    indexes: &mut [&mut dyn StructuralIndex],
    families: &[IndexFamily],
    result: &mut BatchResult,
    per_index: &mut [UpdateStats],
    obs: &mut ObsHub,
) {
    let op = if inserted {
        OpKind::InsertEdge
    } else {
        OpKind::DeleteEdge
    };
    let active = obs.is_active();
    if active {
        obs.emit(EventPayload::OpReceived { op });
    }
    let op_span = SpanGuard::enter(SpanKind::Op);
    for (i, (idx, acc)) in indexes.iter_mut().zip(per_index.iter_mut()).enumerate() {
        let family = families.get(i).copied().unwrap_or(IndexFamily::NONE);
        let t = if active {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let dispatch = SpanGuard::enter_family(SpanKind::IndexDispatch, family);
        let s = if inserted {
            idx.on_edge_inserted(g, u, v)
        } else {
            idx.on_edge_deleted(g, u, v)
        };
        dispatch.add_blocks(s.splits as u64 + s.merges as u64);
        dispatch.set_queue_depth(s.queue_peak as u64);
        drop(dispatch);
        if let Some(t) = t {
            obs.observe_index_dispatch(family, op, &s, t.elapsed().as_nanos() as u64);
        }
        acc.absorb(&s);
        result.stats.absorb(&s);
    }
    drop(op_span);
    result.ops_applied += 1;
}

/// [`apply_batch_traced`] with observability: the same phase-ordered
/// core, additionally emitting `op-received` / `index-dispatch` /
/// `batch-segment` events (and per-phase metrics) into `obs`. This is
/// the instrumented path the [`crate::UpdateEngine`] calls; `families`
/// gives each index's [`IndexFamily`] handle in `indexes` order (may be
/// empty when tracing is off).
pub fn apply_batch_traced_obs(
    indexes: &mut [&mut dyn StructuralIndex],
    families: &[IndexFamily],
    g: &mut Graph,
    batch: &[UpdateOp],
    obs: &mut ObsHub,
) -> Result<(BatchResult, Vec<UpdateStats>), BatchError> {
    validate(g, batch)?;
    debug_assert!(families.is_empty() || families.len() == indexes.len());
    // Accumulators fold from the absorb identity (`no_op: true`), so a
    // batch of pure no-ops reports `no_op = true` — the satellite-1 fix.
    let mut result = BatchResult {
        stats: UpdateStats::identity(),
        ..BatchResult::default()
    };
    let mut per_index = vec![UpdateStats::identity(); indexes.len()];
    let active = obs.is_active();
    let segment = |obs: &mut ObsHub, seg: BatchSegment, ops: usize| {
        if ops > 0 {
            obs.emit(EventPayload::BatchSegment {
                segment: seg,
                ops: ops.min(u32::MAX as usize) as u32,
            });
        }
    };

    // Phase 1: node additions.
    let seg_span = SpanGuard::enter(SpanKind::BatchSegment);
    let mut seg_ops = 0usize;
    for op in batch {
        if let UpdateOp::AddNode { label } = op {
            if active {
                obs.emit(EventPayload::OpReceived {
                    op: OpKind::AddNode,
                });
            }
            let n = g.add_node(label, None);
            for idx in indexes.iter_mut() {
                idx.on_node_added(g, n);
            }
            result.created.push(n);
            result.ops_applied += 1;
            seg_ops += 1;
        }
    }
    seg_span.add_elems(seg_ops as u64);
    drop(seg_span);
    if active {
        segment(obs, BatchSegment::AddNodes, seg_ops);
    }
    let resolve = |r: &NodeRef, created: &[NodeId]| match r {
        NodeRef::Existing(n) => *n,
        NodeRef::New(i) => created[*i],
    };
    // Phase 2: edge insertions.
    let seg_span = SpanGuard::enter(SpanKind::BatchSegment);
    let mut seg_ops = 0usize;
    for op in batch {
        if let UpdateOp::InsertEdge { from, to, kind } = op {
            let (u, v) = (resolve(from, &result.created), resolve(to, &result.created));
            g.insert_edge(u, v, *kind)?;
            observe_edge_fanout(
                g,
                u,
                v,
                true,
                indexes,
                families,
                &mut result,
                &mut per_index,
                obs,
            );
            seg_ops += 1;
        }
    }
    seg_span.add_elems(seg_ops as u64);
    drop(seg_span);
    if active {
        segment(obs, BatchSegment::InsertEdges, seg_ops);
    }
    // Phase 3: edge deletions.
    let seg_span = SpanGuard::enter(SpanKind::BatchSegment);
    let mut seg_ops = 0usize;
    for op in batch {
        if let UpdateOp::DeleteEdge { from, to } = op {
            g.delete_edge(*from, *to)?;
            observe_edge_fanout(
                g,
                *from,
                *to,
                false,
                indexes,
                families,
                &mut result,
                &mut per_index,
                obs,
            );
            seg_ops += 1;
        }
    }
    seg_span.add_elems(seg_ops as u64);
    drop(seg_span);
    if active {
        segment(obs, BatchSegment::DeleteEdges, seg_ops);
    }
    // Phase 4: node removals (after explicit edge deletions, so edges
    // already deleted in phase 3 are not double-processed; any edges the
    // node still has are deleted here through the same fan-out).
    let seg_span = SpanGuard::enter(SpanKind::BatchSegment);
    let mut seg_ops = 0usize;
    for op in batch {
        if let UpdateOp::RemoveNode { node } = op {
            if active {
                obs.emit(EventPayload::OpReceived {
                    op: OpKind::RemoveNode,
                });
            }
            let parents: Vec<NodeId> = g.pred(*node).collect();
            for p in parents {
                g.delete_edge(p, *node)?;
                observe_edge_fanout(
                    g,
                    p,
                    *node,
                    false,
                    indexes,
                    families,
                    &mut result,
                    &mut per_index,
                    obs,
                );
                seg_ops += 1;
            }
            let children: Vec<NodeId> = g.succ(*node).collect();
            for c in children {
                g.delete_edge(*node, c)?;
                observe_edge_fanout(
                    g,
                    *node,
                    c,
                    false,
                    indexes,
                    families,
                    &mut result,
                    &mut per_index,
                    obs,
                );
                seg_ops += 1;
            }
            for idx in indexes.iter_mut() {
                idx.on_node_removing(g, *node);
            }
            g.remove_node(*node)?;
            result.ops_applied += 1;
            seg_ops += 1;
        }
    }
    seg_span.add_elems(seg_ops as u64);
    drop(seg_span);
    if active {
        segment(obs, BatchSegment::RemoveNodes, seg_ops);
    }
    Ok((result, per_index))
}

/// Applies a batch of updates through any [`StructuralIndex`]'s
/// incremental maintenance. See [`apply_batch_traced`] for ordering and
/// failure semantics.
pub fn apply_batch(
    idx: &mut dyn StructuralIndex,
    g: &mut Graph,
    batch: &[UpdateOp],
) -> Result<BatchResult, BatchError> {
    let mut views: [&mut dyn StructuralIndex; 1] = [idx];
    apply_batch_traced(&mut views, g, batch).map(|(result, _)| result)
}

/// Applies a batch of updates through 1-index split/merge maintenance.
/// (Thin wrapper over [`apply_batch`], kept for source compatibility.)
pub fn apply_batch_1index(
    idx: &mut OneIndex,
    g: &mut Graph,
    batch: &[UpdateOp],
) -> Result<BatchResult, BatchError> {
    apply_batch(idx, g, batch)
}

/// Applies a batch of updates through A(k) split/merge maintenance.
/// (Thin wrapper over [`apply_batch`], kept for source compatibility.)
pub fn apply_batch_ak(
    idx: &mut AkIndex,
    g: &mut Graph,
    batch: &[UpdateOp],
) -> Result<BatchResult, BatchError> {
    apply_batch(idx, g, batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::is_minimal_1index;
    use xsi_graph::GraphBuilder;

    fn host() -> (Graph, std::collections::BTreeMap<u64, NodeId>) {
        GraphBuilder::new()
            .nodes(&[(1, "site"), (2, "person"), (3, "auction")])
            .edges(&[(1, 2), (1, 3)])
            .root_to(1)
            .build_with_ids()
    }

    #[test]
    fn batch_with_new_nodes_and_edges() {
        let (mut g, ids) = host();
        let mut idx = OneIndex::build(&g);
        let batch = vec![
            UpdateOp::AddNode {
                label: "person".into(),
            },
            UpdateOp::AddNode {
                label: "watch".into(),
            },
            UpdateOp::InsertEdge {
                from: NodeRef::Existing(ids[&1]),
                to: NodeRef::New(0),
                kind: EdgeKind::Child,
            },
            UpdateOp::InsertEdge {
                from: NodeRef::New(0),
                to: NodeRef::New(1),
                kind: EdgeKind::Child,
            },
            UpdateOp::InsertEdge {
                from: NodeRef::New(1),
                to: NodeRef::Existing(ids[&3]),
                kind: EdgeKind::IdRef,
            },
        ];
        let result = apply_batch_1index(&mut idx, &mut g, &batch).unwrap();
        assert_eq!(result.created.len(), 2);
        assert_eq!(result.ops_applied, 5);
        idx.partition().check_consistency(&g).unwrap();
        assert!(is_minimal_1index(&g, idx.partition()));
        assert_eq!(idx.block_count(), OneIndex::build(&g).block_count());
    }

    #[test]
    fn batch_round_trip_removal() {
        let (mut g, ids) = host();
        let mut idx = OneIndex::build(&g);
        let before = idx.canonical();
        let add = vec![
            UpdateOp::AddNode {
                label: "note".into(),
            },
            UpdateOp::InsertEdge {
                from: NodeRef::Existing(ids[&2]),
                to: NodeRef::New(0),
                kind: EdgeKind::Child,
            },
        ];
        let result = apply_batch_1index(&mut idx, &mut g, &add).unwrap();
        let remove = vec![UpdateOp::RemoveNode {
            node: result.created[0],
        }];
        let rr = apply_batch_1index(&mut idx, &mut g, &remove).unwrap();
        // One implicit edge deletion + the node removal itself.
        assert_eq!(rr.ops_applied, 2);
        assert_eq!(idx.canonical(), before);
    }

    #[test]
    fn invalid_batch_leaves_state_untouched() {
        let (mut g, _) = host();
        let mut idx = OneIndex::build(&g);
        let before = idx.canonical();
        let nodes_before = g.node_count();
        let bad = vec![
            UpdateOp::AddNode { label: "x".into() },
            UpdateOp::InsertEdge {
                from: NodeRef::New(0),
                to: NodeRef::New(7), // out of range
                kind: EdgeKind::Child,
            },
        ];
        assert_eq!(
            apply_batch_1index(&mut idx, &mut g, &bad).unwrap_err(),
            BatchError::BadNewRef(7)
        );
        assert_eq!(g.node_count(), nodes_before);
        assert_eq!(idx.canonical(), before);
    }

    #[test]
    fn ak_batch_maintains_minimum_chain() {
        let (mut g, ids) = host();
        let mut idx = AkIndex::build(&g, 2);
        let batch = vec![
            UpdateOp::AddNode {
                label: "person".into(),
            },
            UpdateOp::InsertEdge {
                from: NodeRef::Existing(ids[&1]),
                to: NodeRef::New(0),
                kind: EdgeKind::Child,
            },
            UpdateOp::DeleteEdge {
                from: ids[&1],
                to: ids[&2],
            },
        ];
        apply_batch_ak(&mut idx, &mut g, &batch).unwrap();
        idx.check_consistency(&g).unwrap();
        assert_eq!(idx.canonical(), AkIndex::build(&g, 2).canonical());
    }

    #[test]
    fn duplicate_remove_rejected() {
        let (mut g, ids) = host();
        let mut idx = OneIndex::build(&g);
        let bad = vec![
            UpdateOp::RemoveNode { node: ids[&2] },
            UpdateOp::RemoveNode { node: ids[&2] },
        ];
        assert_eq!(
            apply_batch_1index(&mut idx, &mut g, &bad).unwrap_err(),
            BatchError::DeadNode(ids[&2])
        );
    }

    /// Regression (satellite 6): a batch that removes a node *and*
    /// explicitly deletes that node's edges must apply the explicit
    /// deletions first (phase 3), then remove the node without
    /// double-deleting — previously a risk because `RemoveNode` eagerly
    /// swept all incident edges.
    #[test]
    fn remove_node_after_explicit_edge_deletions_in_same_batch() {
        let (mut g, ids) = host();
        // Give node 2 a second incident edge so the removal still has
        // work to do after the explicit deletion.
        let extra = g.add_node("watch", None);
        g.insert_edge(ids[&2], extra, EdgeKind::Child).unwrap();
        let mut idx = OneIndex::build(&g);
        let batch = vec![
            UpdateOp::DeleteEdge {
                from: ids[&1],
                to: ids[&2],
            },
            UpdateOp::RemoveNode { node: ids[&2] },
        ];
        let result = apply_batch_1index(&mut idx, &mut g, &batch).unwrap();
        // Explicit deletion (1) + implicit deletion of (2, extra) (1) +
        // node removal (1).
        assert_eq!(result.ops_applied, 3);
        assert!(!g.is_alive(ids[&2]));
        idx.partition().check_consistency(&g).unwrap();
        assert!(is_minimal_1index(&g, idx.partition()));
        assert_eq!(idx.canonical(), OneIndex::build(&g).canonical());
    }

    /// The traced core drives several indexes over one graph in lockstep
    /// and reports per-index stats in registration order.
    #[test]
    fn traced_core_fans_out_to_multiple_indexes() {
        let (mut g, ids) = host();
        let mut one = OneIndex::build(&g);
        let mut ak = AkIndex::build(&g, 2);
        let batch = vec![
            UpdateOp::AddNode {
                label: "person".into(),
            },
            UpdateOp::InsertEdge {
                from: NodeRef::Existing(ids[&1]),
                to: NodeRef::New(0),
                kind: EdgeKind::Child,
            },
            UpdateOp::InsertEdge {
                from: NodeRef::New(0),
                to: NodeRef::Existing(ids[&3]),
                kind: EdgeKind::IdRef,
            },
        ];
        let per_index = {
            let mut views: [&mut dyn StructuralIndex; 2] = [&mut one, &mut ak];
            let (_, per_index) = apply_batch_traced(&mut views, &mut g, &batch).unwrap();
            per_index
        };
        assert_eq!(per_index.len(), 2);
        assert_eq!(one.canonical(), OneIndex::build(&g).canonical());
        assert_eq!(ak.canonical(), AkIndex::build(&g, 2).canonical());
    }
}
