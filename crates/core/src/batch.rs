//! Batched update application.
//!
//! Applications rarely see one edge at a time — an XML document change
//! arrives as a group of node and edge operations. [`UpdateOp`] describes
//! one operation; [`apply_batch_1index`] / [`apply_batch_ak`] apply a
//! group through incremental maintenance in dependency-safe order
//! (node additions first, then edge insertions, then edge deletions,
//! then node removals), validating that the batch is internally
//! consistent before touching anything.
//!
//! Each operation still runs through the split/merge machinery, so the
//! minimality/minimum guarantees hold at every intermediate step; the
//! batch layer adds ordering, atomic pre-validation, and aggregate
//! statistics. (True batching that defers the merge phase across a group
//! is what Figure 6 does for subgraphs — use
//! [`crate::OneIndex::add_subgraph`] for that case.)

use crate::akindex::AkIndex;
use crate::oneindex::OneIndex;
use crate::stats::UpdateStats;
use std::collections::HashSet;
use xsi_graph::{EdgeKind, Graph, GraphError, NodeId};

/// One update in a batch. Node handles for `AddNode` results are
/// positional: the i-th `AddNode` of the batch is referred to by
/// [`NodeRef::New`]`(i)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpdateOp {
    /// Create a node with this label.
    AddNode { label: String },
    /// Insert a dedge.
    InsertEdge {
        from: NodeRef,
        to: NodeRef,
        kind: EdgeKind,
    },
    /// Delete a dedge (between existing nodes).
    DeleteEdge { from: NodeId, to: NodeId },
    /// Remove a node and all of its remaining edges.
    RemoveNode { node: NodeId },
}

/// A node reference inside a batch: either an existing node or the
/// result of the batch's i-th `AddNode`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRef {
    /// An existing node in the graph.
    Existing(NodeId),
    /// The i-th `AddNode` of this batch (0-based).
    New(usize),
}

/// Errors from batch validation and application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// A `NodeRef::New(i)` referred to a non-existent `AddNode`.
    BadNewRef(usize),
    /// A node operation referenced a node that is not alive.
    DeadNode(NodeId),
    /// The underlying graph rejected an operation (duplicate edge, …).
    Graph(GraphError),
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::BadNewRef(i) => write!(f, "NodeRef::New({i}) out of range"),
            BatchError::DeadNode(n) => write!(f, "node {n} is not alive"),
            BatchError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for BatchError {}

impl From<GraphError> for BatchError {
    fn from(e: GraphError) -> Self {
        BatchError::Graph(e)
    }
}

/// The result of a batch: created node ids (in `AddNode` order) and
/// aggregate statistics.
#[derive(Clone, Debug, Default)]
pub struct BatchResult {
    /// Host ids of the batch's `AddNode`s, in order.
    pub created: Vec<NodeId>,
    /// Aggregate per-operation statistics.
    pub stats: UpdateStats,
}

fn validate(g: &Graph, batch: &[UpdateOp]) -> Result<(), BatchError> {
    let new_count = batch
        .iter()
        .filter(|op| matches!(op, UpdateOp::AddNode { .. }))
        .count();
    let check_ref = |r: &NodeRef| match r {
        NodeRef::New(i) if *i >= new_count => Err(BatchError::BadNewRef(*i)),
        NodeRef::Existing(n) if !g.is_alive(*n) => Err(BatchError::DeadNode(*n)),
        _ => Ok(()),
    };
    let mut removed: HashSet<NodeId> = HashSet::new();
    for op in batch {
        match op {
            UpdateOp::AddNode { .. } => {}
            UpdateOp::InsertEdge { from, to, .. } => {
                check_ref(from)?;
                check_ref(to)?;
            }
            UpdateOp::DeleteEdge { from, to } => {
                if !g.is_alive(*from) {
                    return Err(BatchError::DeadNode(*from));
                }
                if !g.is_alive(*to) {
                    return Err(BatchError::DeadNode(*to));
                }
            }
            UpdateOp::RemoveNode { node } => {
                if !g.is_alive(*node) || !removed.insert(*node) {
                    return Err(BatchError::DeadNode(*node));
                }
            }
        }
    }
    Ok(())
}

macro_rules! impl_apply_batch {
    ($fn_name:ident, $index:ty, $doc:literal) => {
        #[doc = $doc]
        ///
        /// Operations are applied in phase order (add-node → insert-edge →
        /// delete-edge → remove-node); within a phase, batch order is
        /// preserved. The batch is validated up front — a structurally
        /// invalid batch leaves graph and index untouched. Graph-level
        /// failures mid-application (e.g. duplicate edge inserts) abort
        /// with the error; operations already applied remain applied, and
        /// the index is consistent with the graph at every step.
        pub fn $fn_name(
            idx: &mut $index,
            g: &mut Graph,
            batch: &[UpdateOp],
        ) -> Result<BatchResult, BatchError> {
            validate(g, batch)?;
            let mut result = BatchResult::default();
            // Phase 1: node additions.
            for op in batch {
                if let UpdateOp::AddNode { label } = op {
                    let n = g.add_node(label, None);
                    idx.on_node_added(g, n);
                    result.created.push(n);
                }
            }
            let resolve = |r: &NodeRef, created: &[NodeId]| match r {
                NodeRef::Existing(n) => *n,
                NodeRef::New(i) => created[*i],
            };
            // Phase 2: edge insertions.
            for op in batch {
                if let UpdateOp::InsertEdge { from, to, kind } = op {
                    let (u, v) = (resolve(from, &result.created), resolve(to, &result.created));
                    g.insert_edge(u, v, *kind)?;
                    result.stats.absorb(&idx.notify_edge_inserted(g, u, v));
                }
            }
            // Phase 3: edge deletions.
            for op in batch {
                if let UpdateOp::DeleteEdge { from, to } = op {
                    g.delete_edge(*from, *to)?;
                    result.stats.absorb(&idx.notify_edge_deleted(g, *from, *to));
                }
            }
            // Phase 4: node removals (including incident edges).
            for op in batch {
                if let UpdateOp::RemoveNode { node } = op {
                    result.stats.absorb(&idx.delete_node(g, *node)?);
                }
            }
            Ok(result)
        }
    };
}

impl_apply_batch!(
    apply_batch_1index,
    OneIndex,
    "Applies a batch of updates through 1-index split/merge maintenance."
);
impl_apply_batch!(
    apply_batch_ak,
    AkIndex,
    "Applies a batch of updates through A(k) split/merge maintenance."
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::is_minimal_1index;
    use xsi_graph::GraphBuilder;

    fn host() -> (Graph, std::collections::HashMap<u64, NodeId>) {
        GraphBuilder::new()
            .nodes(&[(1, "site"), (2, "person"), (3, "auction")])
            .edges(&[(1, 2), (1, 3)])
            .root_to(1)
            .build_with_ids()
    }

    #[test]
    fn batch_with_new_nodes_and_edges() {
        let (mut g, ids) = host();
        let mut idx = OneIndex::build(&g);
        let batch = vec![
            UpdateOp::AddNode {
                label: "person".into(),
            },
            UpdateOp::AddNode {
                label: "watch".into(),
            },
            UpdateOp::InsertEdge {
                from: NodeRef::Existing(ids[&1]),
                to: NodeRef::New(0),
                kind: EdgeKind::Child,
            },
            UpdateOp::InsertEdge {
                from: NodeRef::New(0),
                to: NodeRef::New(1),
                kind: EdgeKind::Child,
            },
            UpdateOp::InsertEdge {
                from: NodeRef::New(1),
                to: NodeRef::Existing(ids[&3]),
                kind: EdgeKind::IdRef,
            },
        ];
        let result = apply_batch_1index(&mut idx, &mut g, &batch).unwrap();
        assert_eq!(result.created.len(), 2);
        idx.partition().check_consistency(&g).unwrap();
        assert!(is_minimal_1index(&g, idx.partition()));
        assert_eq!(idx.block_count(), OneIndex::build(&g).block_count());
    }

    #[test]
    fn batch_round_trip_removal() {
        let (mut g, ids) = host();
        let mut idx = OneIndex::build(&g);
        let before = idx.canonical();
        let add = vec![
            UpdateOp::AddNode {
                label: "note".into(),
            },
            UpdateOp::InsertEdge {
                from: NodeRef::Existing(ids[&2]),
                to: NodeRef::New(0),
                kind: EdgeKind::Child,
            },
        ];
        let result = apply_batch_1index(&mut idx, &mut g, &add).unwrap();
        let remove = vec![UpdateOp::RemoveNode {
            node: result.created[0],
        }];
        apply_batch_1index(&mut idx, &mut g, &remove).unwrap();
        assert_eq!(idx.canonical(), before);
    }

    #[test]
    fn invalid_batch_leaves_state_untouched() {
        let (mut g, _) = host();
        let mut idx = OneIndex::build(&g);
        let before = idx.canonical();
        let nodes_before = g.node_count();
        let bad = vec![
            UpdateOp::AddNode { label: "x".into() },
            UpdateOp::InsertEdge {
                from: NodeRef::New(0),
                to: NodeRef::New(7), // out of range
                kind: EdgeKind::Child,
            },
        ];
        assert_eq!(
            apply_batch_1index(&mut idx, &mut g, &bad).unwrap_err(),
            BatchError::BadNewRef(7)
        );
        assert_eq!(g.node_count(), nodes_before);
        assert_eq!(idx.canonical(), before);
    }

    #[test]
    fn ak_batch_maintains_minimum_chain() {
        let (mut g, ids) = host();
        let mut idx = AkIndex::build(&g, 2);
        let batch = vec![
            UpdateOp::AddNode {
                label: "person".into(),
            },
            UpdateOp::InsertEdge {
                from: NodeRef::Existing(ids[&1]),
                to: NodeRef::New(0),
                kind: EdgeKind::Child,
            },
            UpdateOp::DeleteEdge {
                from: ids[&1],
                to: ids[&2],
            },
        ];
        apply_batch_ak(&mut idx, &mut g, &batch).unwrap();
        idx.check_consistency(&g).unwrap();
        assert_eq!(idx.canonical(), AkIndex::build(&g, 2).canonical());
    }

    #[test]
    fn duplicate_remove_rejected() {
        let (mut g, ids) = host();
        let mut idx = OneIndex::build(&g);
        let bad = vec![
            UpdateOp::RemoveNode { node: ids[&2] },
            UpdateOp::RemoveNode { node: ids[&2] },
        ];
        assert_eq!(
            apply_batch_1index(&mut idx, &mut g, &bad).unwrap_err(),
            BatchError::DeadNode(ids[&2])
        );
    }
}
