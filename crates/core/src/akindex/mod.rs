//! The A(k)-index (Kaushik et al., ICDE'02): a structural index based on
//! k-bisimilarity, maintained incrementally per Section 6 of the paper.
//!
//! Following the paper's implementation strategy, the whole chain
//! `A(0), A(1), …, A(k)` is kept in one **refinement tree**:
//!
//! * level-`k` blocks own dnode extents and the intra-level iedges used
//!   for query evaluation;
//! * levels `0..k` are interior tree nodes whose extents are implied by
//!   their descendant leaves (each `A(i)` block links to the `A(i+1)`
//!   blocks it contains);
//! * between consecutive levels we keep the "inter-iedges" the maintenance
//!   algorithm needs: `E_i(S@i → T@i+1)` counts the dedges `(u, v)` with
//!   `u ∈ S` and `v ∈ T`, stored on both endpoints (`succ_cross` /
//!   `pred_cross`). The A(i)-index parents of an A(i+1) block — the
//!   minimality test of Definition 6 — are exactly its `pred_cross` keys.
//!
//! Storage lives on the dense data plane of [`crate::store`] (DESIGN.md
//! §10): blocks sit in a generation-checked [`SlotMap`] (stale
//! [`ABlockId`]s held across a release are caught by `debug_assert`),
//! every count map is an adaptive [`IedgeMap`] whose iteration is sorted
//! in both representations, and tree children are a `BTreeSet` — so no
//! iteration order anywhere in this module depends on hash state.
//!
//! Module layout: this file defines the tree and its primitive mutations
//! (count registration, chain moves, block merges); [`maintain`]
//! implements the Figure 7 split/merge update algorithm; [`simple`]
//! implements the baseline updater the paper compares against.

pub mod maintain;
pub mod simple;
pub mod storage;
pub mod subgraph;

pub use simple::SimpleAkIndex;
pub use storage::StorageReport;

use crate::obs::mem::{btree_set_heap, vec_cap_heap, HeapUse, MemReport};
use crate::store::{CowVec, IedgeMap, ScratchTable, SlotKey, SlotMap, StoreReport};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;
use xsi_graph::{Graph, Label, NodeId};

/// Identifier of a block at any level of the refinement tree: a slot
/// index plus the generation it was minted with (see [`SlotKey`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ABlockId {
    idx: u32,
    generation: u32,
}

impl ABlockId {
    const INVALID: ABlockId = ABlockId {
        idx: u32::MAX,
        generation: u32::MAX,
    };

    /// Dense index for side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.idx as usize
    }

    /// The raw slot index — the stable `u32` form used by query views,
    /// snapshots, and class assignments. Rehydrate with
    /// [`AkIndex::handle`].
    #[inline]
    pub fn raw(self) -> u32 {
        self.idx
    }
}

impl SlotKey for ABlockId {
    fn from_raw_parts(idx: u32, gen: u32) -> Self {
        ABlockId {
            idx,
            generation: gen,
        }
    }
    fn idx(self) -> u32 {
        self.idx
    }
    fn gen(self) -> u32 {
        self.generation
    }
}

impl Default for ABlockId {
    fn default() -> Self {
        Self::INVALID
    }
}

impl fmt::Debug for ABlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.idx)
    }
}

#[derive(Clone, Debug)]
struct ABlock {
    level: u8,
    label: Label,
    /// Number of dnodes in the (implied) extent — maintained at every
    /// level so split decisions never need to materialize extents.
    weight: u32,
    /// Refinement-tree parent (level−1); INVALID at level 0.
    tree_parent: ABlockId,
    /// Refinement-tree children (level+1); empty at level k. Sorted, so
    /// tree traversals are deterministic without per-visit sorting.
    tree_children: BTreeSet<ABlockId>,
    /// Extent; populated only at level k. `Arc`-shared with frozen
    /// snapshots (`core::view`): writes go through `CowVec::make_mut`
    /// and clone only when a snapshot holds the run.
    extent: CowVec<NodeId>,
    /// `E_{level−1}` reversed: dedge counts from level−1 blocks into self.
    pred_cross: IedgeMap<ABlockId>,
    /// `E_level`: dedge counts from self into level+1 blocks (level < k).
    succ_cross: IedgeMap<ABlockId>,
    /// Intra-level-k iedges (query structure); level k only.
    succ_intra: IedgeMap<ABlockId>,
    pred_intra: IedgeMap<ABlockId>,
}

impl Default for ABlock {
    fn default() -> Self {
        ABlock {
            level: 0,
            label: Label::from_index(0),
            weight: 0,
            tree_parent: ABlockId::INVALID,
            tree_children: BTreeSet::new(),
            extent: CowVec::new(),
            pred_cross: IedgeMap::new(),
            succ_cross: IedgeMap::new(),
            succ_intra: IedgeMap::new(),
            pred_intra: IedgeMap::new(),
        }
    }
}

impl HeapUse for ABlock {
    /// The block's heap payload: extent run, all four iedge maps, and
    /// the refinement-tree child set. The struct itself is slab-resident.
    fn heap_use(&self) -> usize {
        self.extent.heap_bytes()
            + self.pred_cross.heap_use()
            + self.succ_cross.heap_use()
            + self.pred_intra.heap_use()
            + self.succ_intra.heap_use()
            + btree_set_heap::<ABlockId>(self.tree_children.len())
    }
}

/// The A(k)-index with its full A(0)..A(k) refinement tree.
///
/// Built by [`AkIndex::build`] this is the minimum chain; maintained via
/// [`AkIndex::insert_edge`] / [`AkIndex::delete_edge`] it stays the
/// **minimum** chain on any data graph (Theorem 2).
#[derive(Clone)]
pub struct AkIndex {
    k: usize,
    blocks: SlotMap<ABlockId, ABlock>,
    /// Live block count per level (index = level).
    level_counts: Vec<usize>,
    /// dnode → level-k block.
    node_block: Vec<ABlockId>,
    node_pos: Vec<u32>,
    /// Scratch marks for dedup scans.
    mark: Vec<u32>,
    epoch: u32,
    /// Split-pass scratch (indexed by block slot), reused across updates
    /// so the hot `split_levels_by` path allocates nothing per call.
    split_counts: ScratchTable<u32>,
    split_full: ScratchTable<bool>,
    split_partner: ScratchTable<ABlockId>,
    /// Cumulative count of extent runs cloned because a frozen snapshot
    /// still shared them (exported as `snapshot_cow_clones`).
    cow_clones: u64,
}

impl AkIndex {
    /// Builds the minimum A(k)-index chain: level 0 groups by label, and
    /// each level `i` refines level `i−1` by the set of level-`i−1`
    /// classes of a node's parents (k-bisimilarity), as in the O(km)
    /// construction of Kaushik et al.
    pub fn build(g: &Graph, k: usize) -> Self {
        assert!(k < u8::MAX as usize, "k too large");
        // Compute class assignments per level.
        let mut levels: Vec<Vec<u32>> = Vec::with_capacity(k + 1);
        {
            let mut classes = vec![u32::MAX; g.capacity()];
            let mut ids: HashMap<Label, u32> = HashMap::new();
            for n in g.nodes() {
                let next = ids.len() as u32;
                classes[n.index()] = *ids.entry(g.label(n)).or_insert(next);
            }
            levels.push(classes);
        }
        for _ in 1..=k {
            let prev = levels
                .last()
                .expect("invariant: construction always creates level 0");
            let mut ids: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
            let mut classes = vec![u32::MAX; g.capacity()];
            for n in g.nodes() {
                let mut parents: Vec<u32> = g.pred(n).map(|p| prev[p.index()]).collect();
                parents.sort_unstable();
                parents.dedup();
                let next = ids.len() as u32;
                classes[n.index()] = *ids.entry((prev[n.index()], parents)).or_insert(next);
            }
            levels.push(classes);
        }
        Self::from_assignments(g, k, &levels)
    }

    /// Materializes an index from per-level class assignments (each level
    /// must refine the previous). Used by `build` and by tests.
    pub(crate) fn from_assignments(g: &Graph, k: usize, levels: &[Vec<u32>]) -> Self {
        let mut idx = AkIndex {
            k,
            blocks: SlotMap::new(),
            level_counts: vec![0; k + 1],
            node_block: vec![ABlockId::INVALID; g.capacity()],
            node_pos: vec![0; g.capacity()],
            mark: vec![0; g.capacity()],
            epoch: 0,
            split_counts: ScratchTable::new(),
            split_full: ScratchTable::new(),
            split_partner: ScratchTable::new(),
            cow_clones: 0,
        };
        // Create blocks per (level, class) and link the tree.
        let mut block_of_class: Vec<HashMap<u32, ABlockId>> = vec![HashMap::new(); k + 1];
        for n in g.nodes() {
            let mut parent = ABlockId::INVALID;
            for (level, assignment) in levels.iter().enumerate() {
                let class = assignment[n.index()];
                let b = match block_of_class[level].get(&class) {
                    Some(&b) => b,
                    None => {
                        let b = idx.new_block(level as u8, g.label(n));
                        block_of_class[level].insert(class, b);
                        if parent != ABlockId::INVALID {
                            idx.link_tree(parent, b);
                        }
                        b
                    }
                };
                idx.blocks[b].weight += 1;
                if level == k {
                    idx.node_block[n.index()] = b;
                    idx.node_pos[n.index()] = idx.blocks[b].extent.len() as u32;
                    idx.blocks[b].extent.make_mut(&mut idx.cow_clones).push(n);
                }
                parent = b;
            }
        }
        // Register every dedge at every level pair.
        for u in g.nodes() {
            for v in g.succ(u) {
                idx.register_edge(u, v);
            }
        }
        idx
    }

    /// The `k` of this A(k)-index.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of inodes in the A(level)-index.
    pub fn level_count(&self, level: usize) -> usize {
        self.level_counts[level]
    }

    /// Number of inodes in the A(k)-index proper (the level-k partition).
    pub fn block_count(&self) -> usize {
        self.level_counts[self.k]
    }

    /// Total blocks across all levels (refinement-tree size).
    pub fn total_blocks(&self) -> usize {
        self.level_counts.iter().sum()
    }

    /// The level-k inode containing `n`.
    pub fn block_of(&self, n: NodeId) -> ABlockId {
        let b = self.node_block[n.index()];
        debug_assert!(b != ABlockId::INVALID, "node {n:?} not indexed");
        b
    }

    /// The level-`level` inode containing `n` (walks the refinement tree).
    pub fn block_of_at(&self, n: NodeId, level: usize) -> ABlockId {
        let mut b = self.block_of(n);
        for _ in level..self.k {
            b = self.blocks[b].tree_parent;
        }
        b
    }

    /// The extent of a level-k inode.
    pub fn extent(&self, b: ABlockId) -> &[NodeId] {
        debug_assert_eq!(self.blocks[b].level as usize, self.k);
        &self.blocks[b].extent
    }

    /// Mutable extent access for the maintainer modules, routed through
    /// the copy-on-write gate: a run still shared with a frozen
    /// snapshot is cloned before the `&mut` is handed out.
    fn extent_mut(&mut self, b: ABlockId) -> &mut Vec<NodeId> {
        debug_assert_eq!(self.blocks[b].level as usize, self.k);
        self.blocks[b].extent.make_mut(&mut self.cow_clones)
    }

    /// Shares a level-k inode's extent run with a frozen snapshot:
    /// O(1), no node ids copied. The writer's next mutation of `b`
    /// clones the run (counted in [`AkIndex::cow_clone_count`]).
    pub fn share_extent(&self, b: ABlockId) -> Arc<Vec<NodeId>> {
        debug_assert_eq!(self.blocks[b].level as usize, self.k); // xsi-lint: allow(slice-index, caller passes a live level-k handle)
        self.blocks[b].extent.share() // xsi-lint: allow(slice-index, caller passes a live level-k handle)
    }

    /// Cumulative count of extent runs cloned because a frozen snapshot
    /// still shared them.
    pub fn cow_clone_count(&self) -> u64 {
        self.cow_clones
    }

    /// Label of a block.
    pub fn label(&self, b: ABlockId) -> Label {
        self.blocks[b].label
    }

    /// Level of a block.
    pub fn level(&self, b: ABlockId) -> usize {
        self.blocks[b].level as usize
    }

    /// Number of dnodes under a block (at any level).
    pub fn weight(&self, b: ABlockId) -> usize {
        self.blocks[b].weight as usize
    }

    /// Whether `b` is a live, current-generation handle.
    pub fn is_live(&self, b: ABlockId) -> bool {
        self.blocks.is_current(b)
    }

    /// The live handle for slot `idx` — for rehydrating the raw `u32`
    /// ids that query views, snapshots, and assignments carry.
    ///
    /// # Panics
    /// If the slot is dead or out of range.
    pub fn handle(&self, idx: u32) -> ABlockId {
        self.blocks
            .handle_at(idx)
            .unwrap_or_else(|| panic!("no live A-block at slot {idx}"))
    }

    /// Refinement-tree parent (the A(level−1) block containing this one).
    pub fn tree_parent(&self, b: ABlockId) -> Option<ABlockId> {
        let p = self.blocks[b].tree_parent;
        (p != ABlockId::INVALID).then_some(p)
    }

    /// Refinement-tree children, in ascending id order.
    pub fn tree_children(&self, b: ABlockId) -> impl Iterator<Item = ABlockId> + '_ {
        self.blocks[b].tree_children.iter().copied()
    }

    /// Live blocks at a level, in slot order.
    pub fn blocks_at(&self, level: usize) -> impl Iterator<Item = ABlockId> + '_ {
        self.blocks
            .iter()
            .filter(move |(_, blk)| blk.level as usize == level)
            .map(|(b, _)| b)
    }

    /// Intra-level-k index successors of a level-k block (the iedges used
    /// by query evaluation), in ascending id order.
    pub fn isucc(&self, b: ABlockId) -> impl Iterator<Item = ABlockId> + '_ {
        debug_assert_eq!(self.blocks[b].level as usize, self.k);
        self.blocks[b].succ_intra.keys()
    }

    /// Intra-level-k index parents of a level-k block, in ascending id
    /// order.
    pub fn ipred(&self, b: ABlockId) -> impl Iterator<Item = ABlockId> + '_ {
        debug_assert_eq!(self.blocks[b].level as usize, self.k);
        self.blocks[b].pred_intra.keys()
    }

    /// The A(level−1)-index parents of a block (keys of `pred_cross`) —
    /// the Definition 6 merge test compares these sets. Ascending id
    /// order.
    pub fn cross_parents(&self, b: ABlockId) -> impl Iterator<Item = ABlockId> + '_ {
        self.blocks[b].pred_cross.keys()
    }

    /// Whether two same-level blocks have identical A(level−1)-index
    /// parent sets. Both key iterations are sorted, so this is one
    /// linear sweep.
    pub fn same_cross_parents(&self, a: ABlockId, b: ABlockId) -> bool {
        let pa = &self.blocks[a].pred_cross;
        let pb = &self.blocks[b].pred_cross;
        pa.len() == pb.len() && pa.keys().eq(pb.keys())
    }

    /// The class assignment of the A(level)-index, in
    /// [`crate::reference::ClassAssignment`] form (block raw ids as class
    /// ids, `u32::MAX` for unindexed slots).
    pub fn assignment(&self, g: &Graph, level: usize) -> Vec<u32> {
        let mut out = vec![u32::MAX; g.capacity()];
        for n in g.nodes() {
            out[n.index()] = self.block_of_at(n, level).raw();
        }
        out
    }

    /// All per-level assignments — the chain handed to
    /// [`crate::check::is_valid_ak_chain`].
    pub fn chain_assignments(&self, g: &Graph) -> Vec<Vec<u32>> {
        (0..=self.k).map(|l| self.assignment(g, l)).collect()
    }

    /// Canonical sorted extents of the level-k partition.
    pub fn canonical(&self) -> Vec<Vec<NodeId>> {
        let mut out: Vec<Vec<NodeId>> = self
            .blocks_at(self.k)
            .map(|b| {
                let mut e = self.extent(b).to_vec();
                e.sort_unstable();
                e
            })
            .collect();
        out.sort();
        out
    }

    /// Summarizes the representation state of every [`IedgeMap`] in the
    /// refinement tree for the obs layer.
    pub fn store_report(&self) -> StoreReport {
        let mut r = StoreReport::default();
        for (_, blk) in self.blocks.iter() {
            r.absorb(&blk.pred_cross);
            r.absorb(&blk.succ_cross);
            r.absorb(&blk.pred_intra);
            r.absorb(&blk.succ_intra);
            r.blocks += 1;
        }
        for blk in self.blocks.iter_all_slots() {
            r.spill_events += u64::from(blk.pred_cross.spill_count())
                + u64::from(blk.succ_cross.spill_count())
                + u64::from(blk.pred_intra.spill_count())
                + u64::from(blk.succ_intra.spill_count());
        }
        r
    }

    /// Deep heap bytes owned by the refinement tree (capacity-based);
    /// the decomposed view is [`AkIndex::mem_report`].
    pub fn heap_use(&self) -> usize {
        self.blocks.heap_use()
            + vec_cap_heap(&self.level_counts)
            + vec_cap_heap(&self.node_block)
            + vec_cap_heap(&self.node_pos)
            + vec_cap_heap(&self.mark)
            + self.split_counts.heap_use()
            + self.split_full.heap_use()
            + self.split_partner.heap_use()
    }

    /// A point-in-time deep-memory attribution of the whole tree, per
    /// the accounting contract in DESIGN.md §13. Level-`k` blocks land
    /// in the extent histogram; interior blocks carry placeholder runs
    /// whose bytes are attributed without a histogram entry.
    /// [`MemReport::total_bytes`] equals [`AkIndex::heap_use`] exactly.
    pub fn mem_report(&self) -> MemReport {
        let mut r = MemReport::default();
        let mut live_payload = 0usize;
        for (_, blk) in self.blocks.iter() {
            r.blocks += 1;
            if blk.level as usize == self.k {
                r.record_extent(
                    blk.extent.len(),
                    blk.extent.heap_bytes(),
                    blk.extent.is_shared(),
                );
            } else {
                r.add_extent_bytes(blk.extent.heap_bytes(), blk.extent.is_shared());
            }
            for m in [
                &blk.pred_cross,
                &blk.succ_cross,
                &blk.pred_intra,
                &blk.succ_intra,
            ] {
                match m.inline_occupancy() {
                    Some(occ) => r.record_inline_map(occ),
                    None => r.record_spilled_map(m.heap_use()),
                }
            }
            r.side_table_bytes += btree_set_heap::<ABlockId>(blk.tree_children.len()) as u64;
            live_payload += blk.heap_use();
        }
        let all_payload: usize = self.blocks.iter_all_slots().map(ABlock::heap_use).sum();
        r.dead_retained_bytes = (all_payload - live_payload) as u64;
        r.slab_bytes = self.blocks.shell_bytes() as u64;
        r.side_table_bytes += (vec_cap_heap(&self.level_counts)
            + vec_cap_heap(&self.node_block)
            + vec_cap_heap(&self.node_pos)
            + vec_cap_heap(&self.mark)) as u64;
        r.scratch_bytes = (self.split_counts.heap_use()
            + self.split_full.heap_use()
            + self.split_partner.heap_use()) as u64;
        r
    }

    // ------------------------------------------------------------------
    // Primitive mutations (used by `maintain`).
    // ------------------------------------------------------------------

    pub(crate) fn new_block(&mut self, level: u8, label: Label) -> ABlockId {
        self.level_counts[level as usize] += 1;
        let (id, blk) = self.blocks.alloc();
        blk.level = level;
        blk.label = label;
        blk.weight = 0;
        blk.tree_parent = ABlockId::INVALID;
        debug_assert!(blk.tree_children.is_empty() && blk.extent.is_empty());
        // Recycled maps are empty but may sit in the spilled
        // representation; clearing resets them to inline.
        blk.pred_cross.clear();
        blk.succ_cross.clear();
        blk.pred_intra.clear();
        blk.succ_intra.clear();
        id
    }

    pub(crate) fn release_block(&mut self, b: ABlockId) {
        // Hot path: debug_assert keeps the checks out of release builds;
        // the release-debug-asserts CI job still exercises them compiled in.
        let blk = &self.blocks[b];
        debug_assert_eq!(blk.weight, 0, "releasing non-empty block {b:?}");
        debug_assert!(blk.extent.is_empty());
        debug_assert!(blk.tree_children.is_empty());
        debug_assert!(blk.pred_cross.is_empty() && blk.succ_cross.is_empty());
        debug_assert!(blk.pred_intra.is_empty() && blk.succ_intra.is_empty());
        let level = blk.level as usize;
        self.level_counts[level] -= 1;
        self.blocks.release(b);
    }

    /// Makes `child` a refinement-tree child of `parent` (detaching it
    /// from its previous parent if any). Weights are **not** adjusted —
    /// callers move weight explicitly.
    pub(crate) fn link_tree(&mut self, parent: ABlockId, child: ABlockId) {
        debug_assert_eq!(self.blocks[parent].level + 1, self.blocks[child].level);
        let old = self.blocks[child].tree_parent;
        if old == parent {
            return;
        }
        if old != ABlockId::INVALID {
            self.blocks[old].tree_children.remove(&child);
        }
        self.blocks[child].tree_parent = parent;
        self.blocks[parent].tree_children.insert(child);
    }

    /// The chain `[A(0)[n], …, A(k)[n]]` of blocks containing `n`.
    pub(crate) fn chain_of(&self, n: NodeId) -> Vec<ABlockId> {
        let mut chain = vec![ABlockId::INVALID; self.k + 1];
        let mut b = self.block_of(n);
        for level in (0..=self.k).rev() {
            chain[level] = b;
            b = self.blocks[b].tree_parent;
        }
        chain
    }

    /// Registers the dedge `(u, v)` in every cross-level map and the
    /// intra-k maps. Call after the graph gained the edge (or during
    /// construction).
    pub(crate) fn register_edge(&mut self, u: NodeId, v: NodeId) {
        let cu = self.chain_of(u);
        let cv = self.chain_of(v);
        for i in 0..self.k {
            self.inc_cross(cu[i], cv[i + 1]);
        }
        self.inc_intra(cu[self.k], cv[self.k]);
    }

    /// Unregisters the dedge `(u, v)` from every map. Call after the graph
    /// lost the edge but before any block reorganization.
    pub(crate) fn unregister_edge(&mut self, u: NodeId, v: NodeId) {
        let cu = self.chain_of(u);
        let cv = self.chain_of(v);
        for i in 0..self.k {
            self.dec_cross(cu[i], cv[i + 1]);
        }
        self.dec_intra(cu[self.k], cv[self.k]);
    }

    fn inc_cross(&mut self, from: ABlockId, to: ABlockId) {
        self.blocks[from].succ_cross.add(to, 1);
        self.blocks[to].pred_cross.add(from, 1);
    }

    fn dec_cross(&mut self, from: ABlockId, to: ABlockId) {
        // IedgeMap::sub debug-asserts the increment/decrement invariant.
        self.blocks[from].succ_cross.sub(to, 1);
        self.blocks[to].pred_cross.sub(from, 1);
    }

    fn inc_intra(&mut self, from: ABlockId, to: ABlockId) {
        self.blocks[from].succ_intra.add(to, 1);
        self.blocks[to].pred_intra.add(from, 1);
    }

    fn dec_intra(&mut self, from: ABlockId, to: ABlockId) {
        self.blocks[from].succ_intra.sub(to, 1);
        self.blocks[to].pred_intra.sub(from, 1);
    }

    /// Moves node `n` from its current chain to `new_chain` (which must
    /// agree on a prefix and diverge from some level on; diverging blocks
    /// must exist and be tree-linked already). Updates extents, weights,
    /// and every affected edge count. O(deg(n) · k).
    pub(crate) fn move_node_chain(&mut self, g: &Graph, n: NodeId, new_chain: &[ABlockId]) {
        let old_chain = self.chain_of(n);
        debug_assert_eq!(new_chain.len(), self.k + 1);
        // First divergence level.
        let Some(d) = (0..=self.k).find(|&l| old_chain[l] != new_chain[l]) else {
            return;
        };
        // Weights.
        for l in d..=self.k {
            if old_chain[l] != new_chain[l] {
                self.blocks[old_chain[l]].weight -= 1;
                self.blocks[new_chain[l]].weight += 1;
            }
        }
        // Extent at level k.
        if old_chain[self.k] != new_chain[self.k] {
            let pos = self.node_pos[n.index()] as usize;
            let extent = self.blocks[old_chain[self.k]]
                .extent
                .make_mut(&mut self.cow_clones);
            debug_assert_eq!(extent[pos], n);
            extent.swap_remove(pos);
            if let Some(&moved) = extent.get(pos) {
                self.node_pos[moved.index()] = pos as u32;
            }
            let blk = &mut self.blocks[new_chain[self.k]];
            self.node_block[n.index()] = new_chain[self.k];
            self.node_pos[n.index()] = blk.extent.len() as u32;
            blk.extent.make_mut(&mut self.cow_clones).push(n);
        }
        // Edge counts: n as target (its parents' cross edges), n as source.
        for p in g.pred(n) {
            let cp = self.chain_of(p);
            for l in d.max(1)..=self.k {
                if old_chain[l] != new_chain[l] {
                    self.dec_cross(cp[l - 1], old_chain[l]);
                    self.inc_cross(cp[l - 1], new_chain[l]);
                }
            }
            if old_chain[self.k] != new_chain[self.k] {
                self.dec_intra(cp[self.k], old_chain[self.k]);
                self.inc_intra(cp[self.k], new_chain[self.k]);
            }
        }
        for c in g.succ(n) {
            let cc = self.chain_of(c);
            for l in d..self.k {
                if old_chain[l] != new_chain[l] {
                    self.dec_cross(old_chain[l], cc[l + 1]);
                    self.inc_cross(new_chain[l], cc[l + 1]);
                }
            }
            if old_chain[self.k] != new_chain[self.k] {
                self.dec_intra(old_chain[self.k], cc[self.k]);
                self.inc_intra(new_chain[self.k], cc[self.k]);
            }
        }
    }

    /// Merges block `src` into `dst` (same level, same tree parent):
    /// extents/children are transferred and all edge-count maps re-keyed.
    pub(crate) fn merge_blocks(&mut self, dst: ABlockId, src: ABlockId) {
        assert_ne!(dst, src);
        let level = self.blocks[src].level;
        debug_assert_eq!(self.blocks[dst].level, level);
        debug_assert_eq!(self.blocks[dst].label, self.blocks[src].label);
        let k = self.k as u8;

        // Extent or tree children.
        if level == k {
            // xsi-lint: allow(cow-discipline, take swaps in a fresh empty run; the taken handle still shares with any snapshot reading it)
            let src_extent = std::mem::take(&mut self.blocks[src].extent);
            for &n in src_extent.iter() {
                let blk = &mut self.blocks[dst];
                self.node_block[n.index()] = dst;
                self.node_pos[n.index()] = blk.extent.len() as u32;
                blk.extent.make_mut(&mut self.cow_clones).push(n);
            }
            // Hand the drained allocation back to the recycled slot so
            // the next block minted there starts with capacity — unless
            // a frozen snapshot still shares the run, in which case the
            // snapshot keeps the nodes and the slot starts fresh.
            if let Some(mut e) = src_extent.take_unique() {
                e.clear();
                // xsi-lint: allow(cow-discipline, take_unique proved the run unshared; no snapshot can observe the swap)
                self.blocks[src].extent = e.into();
            }
        } else {
            let kids = std::mem::take(&mut self.blocks[src].tree_children);
            for child in kids {
                self.blocks[child].tree_parent = dst;
                self.blocks[dst].tree_children.insert(child);
            }
        }
        let w = self.blocks[src].weight;
        self.blocks[dst].weight += w;
        self.blocks[src].weight = 0;

        // Cross maps: endpoints sit on different levels, so no self
        // entries can occur. Sorted drains keep re-key order canonical.
        let src_pred = self.blocks[src].pred_cross.drain_sorted();
        for &(p, _) in &src_pred {
            self.blocks[p].succ_cross.remove(src);
        }
        for (p, cnt) in src_pred {
            self.blocks[p].succ_cross.add(dst, cnt);
            self.blocks[dst].pred_cross.add(p, cnt);
        }
        let src_succ = self.blocks[src].succ_cross.drain_sorted();
        for &(c, _) in &src_succ {
            self.blocks[c].pred_cross.remove(src);
        }
        for (c, cnt) in src_succ {
            self.blocks[c].pred_cross.add(dst, cnt);
            self.blocks[dst].succ_cross.add(c, cnt);
        }

        // Intra maps (level k only): handle the src↔src self entry once.
        if level == k {
            let mut src_pred_i = self.blocks[src].pred_intra.drain_sorted();
            let mut src_succ_i = self.blocks[src].succ_intra.drain_sorted();
            let self_cnt = match src_pred_i.iter().position(|&(p, _)| p == src) {
                Some(i) => src_pred_i.remove(i).1,
                None => 0,
            };
            let self_cnt2 = match src_succ_i.iter().position(|&(c, _)| c == src) {
                Some(i) => src_succ_i.remove(i).1,
                None => 0,
            };
            debug_assert_eq!(self_cnt, self_cnt2);
            for &(p, _) in &src_pred_i {
                self.blocks[p].succ_intra.remove(src);
            }
            for &(c, _) in &src_succ_i {
                self.blocks[c].pred_intra.remove(src);
            }
            for (p, cnt) in src_pred_i {
                self.blocks[p].succ_intra.add(dst, cnt);
                self.blocks[dst].pred_intra.add(p, cnt);
            }
            for (c, cnt) in src_succ_i {
                self.blocks[c].pred_intra.add(dst, cnt);
                self.blocks[dst].succ_intra.add(c, cnt);
            }
            if self_cnt > 0 {
                self.blocks[dst].succ_intra.add(dst, self_cnt);
                self.blocks[dst].pred_intra.add(dst, self_cnt);
            }
        }

        // Detach src from the tree and free it.
        let parent = self.blocks[src].tree_parent;
        if parent != ABlockId::INVALID {
            self.blocks[parent].tree_children.remove(&src);
            self.blocks[src].tree_parent = ABlockId::INVALID;
        }
        self.release_block(src);
    }

    /// Collects the deduplicated dnode successors of the extents under the
    /// given blocks (any levels).
    pub(crate) fn collect_succ(&mut self, g: &Graph, roots: &[ABlockId]) -> Vec<NodeId> {
        self.epoch += 1;
        let epoch = self.epoch;
        let mut out = Vec::new();
        let mut stack: Vec<ABlockId> = roots.to_vec();
        while let Some(b) = stack.pop() {
            if self.blocks[b].level as usize == self.k {
                for i in 0..self.blocks[b].extent.len() {
                    let u = self.blocks[b].extent[i];
                    for v in g.succ(u) {
                        if self.mark[v.index()] != epoch {
                            self.mark[v.index()] = epoch;
                            out.push(v);
                        }
                    }
                }
            } else {
                // The emitted node order decides which fresh partner block
                // a later split allocates first, i.e. it reaches block-id
                // assignment — `tree_children` iterates sorted, so the
                // traversal is reproducible by construction.
                stack.extend(self.blocks[b].tree_children.iter().copied());
            }
        }
        out
    }

    /// Derives the intra-level iedges of the A(level)-index from the
    /// cross-level maps, in O(|E_level|): an iedge `I@level → J@level`
    /// exists iff some `E_level` entry points from `I` into a tree child
    /// of `J`. This is the paper's optional "intra-iedges inside the
    /// A(i)-indexes for i < k", materialized on demand instead of stored.
    ///
    /// For `level == k` the stored intra maps are returned directly.
    pub fn intra_iedges_at(&self, level: usize) -> Vec<(ABlockId, ABlockId)> {
        assert!(level <= self.k, "level out of range");
        let mut out: BTreeSet<(ABlockId, ABlockId)> = BTreeSet::new();
        if level == self.k {
            for b in self.blocks_at(self.k) {
                for c in self.blocks[b].succ_intra.keys() {
                    out.insert((b, c));
                }
            }
        } else {
            for b in self.blocks_at(level) {
                for t in self.blocks[b].succ_cross.keys() {
                    out.insert((b, self.blocks[t].tree_parent));
                }
            }
        }
        out.into_iter().collect()
    }

    /// The extent of a block at any level (materialized by walking the
    /// refinement tree to the leaves; prefer [`AkIndex::extent`] at level
    /// k, which is free).
    pub fn extent_at(&self, b: ABlockId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.weight(b));
        let mut stack = vec![b];
        while let Some(x) = stack.pop() {
            if self.blocks[x].level as usize == self.k {
                out.extend_from_slice(&self.blocks[x].extent);
            } else {
                // Sorted child order keeps the materialized extent
                // reproducible across runs (it escapes to callers).
                stack.extend(self.blocks[x].tree_children.iter().copied());
            }
        }
        out
    }

    /// Grows per-node side tables after graph node additions.
    pub fn ensure_capacity(&mut self, g: &Graph) {
        let cap = g.capacity();
        if cap > self.node_block.len() {
            self.node_block.resize(cap, ABlockId::INVALID);
            self.node_pos.resize(cap, 0);
            self.mark.resize(cap, 0);
        }
    }

    /// Exhaustive structural verification for tests: tree shape, weights,
    /// extents, handle currency, and every count map against a recount.
    /// O((n + m)·k).
    pub fn check_consistency(&self, g: &Graph) -> Result<(), String> {
        // Extents partition live nodes at level k.
        let mut seen = 0usize;
        for b in self.blocks_at(self.k) {
            for (pos, &n) in self.blocks[b].extent.iter().enumerate() {
                if self.node_block[n.index()] != b {
                    return Err(format!("node {n:?} extent/map mismatch"));
                }
                if self.node_pos[n.index()] as usize != pos {
                    return Err(format!("node {n:?} position mismatch"));
                }
                if g.label(n) != self.blocks[b].label {
                    return Err(format!("label mismatch in {b:?}"));
                }
                seen += 1;
            }
        }
        let live = g.nodes().count();
        if seen != live {
            return Err(format!("{seen} nodes in extents, {live} live"));
        }
        // Tree: parents/children mirror; levels consistent; weights add up.
        let mut level_counts = vec![0usize; self.k + 1];
        for (b, blk) in self.blocks.iter() {
            level_counts[blk.level as usize] += 1;
            if blk.level as usize == self.k {
                if blk.weight as usize != blk.extent.len() {
                    return Err(format!("leaf weight mismatch at {b:?}"));
                }
                if !blk.tree_children.is_empty() {
                    return Err(format!("leaf {b:?} has tree children"));
                }
            } else {
                let mut sum = 0u32;
                for &c in &blk.tree_children {
                    if !self.blocks.is_current(c) {
                        return Err(format!("tree child {c:?} of {b:?} is stale"));
                    }
                    sum += self.blocks[c].weight;
                    if self.blocks[c].tree_parent != b {
                        return Err(format!("tree link {b:?}→{c:?} not mirrored"));
                    }
                    if self.blocks[c].level != blk.level + 1 {
                        return Err(format!("tree link {b:?}→{c:?} level skew"));
                    }
                    if self.blocks[c].label != blk.label {
                        return Err(format!("tree link {b:?}→{c:?} label mismatch"));
                    }
                }
                if sum != blk.weight {
                    return Err(format!("interior weight mismatch at {b:?}"));
                }
            }
            if blk.level == 0 && blk.tree_parent != ABlockId::INVALID {
                return Err(format!("level-0 block {b:?} has a parent"));
            }
            if blk.level > 0 {
                if blk.tree_parent == ABlockId::INVALID {
                    return Err(format!("block {b:?} at level {} orphaned", blk.level));
                }
                if !self.blocks.is_current(blk.tree_parent) {
                    return Err(format!("tree parent of {b:?} is stale"));
                }
            }
            if blk.weight == 0 {
                return Err(format!("live block {b:?} has weight 0"));
            }
        }
        if level_counts != self.level_counts {
            return Err(format!(
                "level counts {level_counts:?} != cached {:?}",
                self.level_counts
            ));
        }
        // Recount all maps.
        let mut cross: BTreeMap<(ABlockId, ABlockId), u32> = BTreeMap::new();
        let mut intra: BTreeMap<(ABlockId, ABlockId), u32> = BTreeMap::new();
        for u in g.nodes() {
            let cu = self.chain_of(u);
            for v in g.succ(u) {
                let cv = self.chain_of(v);
                for i in 0..self.k {
                    *cross.entry((cu[i], cv[i + 1])).or_insert(0) += 1;
                }
                *intra.entry((cu[self.k], cv[self.k])).or_insert(0) += 1;
            }
        }
        let mut stored_cross = 0usize;
        let mut stored_intra = 0usize;
        for (b, blk) in self.blocks.iter() {
            for (c, cnt) in blk.succ_cross.iter() {
                if !self.blocks.is_current(c) {
                    return Err(format!("succ_cross of {b:?} holds stale handle {c:?}"));
                }
                if cross.get(&(b, c)) != Some(&cnt) {
                    return Err(format!("succ_cross ({b:?}→{c:?}) = {cnt} wrong"));
                }
                if self.blocks[c].pred_cross.get(b) != Some(cnt) {
                    return Err(format!("cross edge ({b:?}→{c:?}) not mirrored"));
                }
                stored_cross += 1;
            }
            for (c, cnt) in blk.succ_intra.iter() {
                if !self.blocks.is_current(c) {
                    return Err(format!("succ_intra of {b:?} holds stale handle {c:?}"));
                }
                if intra.get(&(b, c)) != Some(&cnt) {
                    return Err(format!("succ_intra ({b:?}→{c:?}) = {cnt} wrong"));
                }
                if self.blocks[c].pred_intra.get(b) != Some(cnt) {
                    return Err(format!("intra edge ({b:?}→{c:?}) not mirrored"));
                }
                stored_intra += 1;
            }
        }
        if stored_cross != cross.len() {
            return Err(format!(
                "{stored_cross} stored cross edges, recount {}",
                cross.len()
            ));
        }
        if stored_intra != intra.len() {
            return Err(format!(
                "{stored_intra} stored intra edges, recount {}",
                intra.len()
            ));
        }
        Ok(())
    }
}

impl fmt::Debug for AkIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "AkIndex {{ k={}, per-level {:?}",
            self.k, self.level_counts
        )?;
        for level in 0..=self.k {
            write!(f, "  A({level}):")?;
            for b in self.blocks_at(level) {
                if level == self.k {
                    write!(f, " {:?}{:?}", b, self.extent(b))?;
                } else {
                    write!(
                        f,
                        " {:?}(w={},kids={})",
                        b,
                        self.weight(b),
                        self.blocks[b].tree_children.len()
                    )?;
                }
            }
            writeln!(f)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{ak_chain_violation, is_valid_ak_chain};
    use crate::reference;
    use xsi_graph::GraphBuilder;

    fn sample() -> Graph {
        // Two similar substructures the A-chain distinguishes only deeply.
        let (g, _) = GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "B"), (3, "C"), (4, "A"), (5, "B"), (6, "C")])
            .nodes(&[(7, "D"), (8, "D")])
            .edges(&[(1, 2), (2, 3), (4, 5), (5, 6), (3, 7), (6, 8), (1, 5)])
            .root_to(1)
            .root_to(4)
            .build_with_ids();
        g
    }

    #[test]
    fn build_matches_reference_chain() {
        let g = sample();
        for k in 0..=4 {
            let idx = AkIndex::build(&g, k);
            idx.check_consistency(&g).unwrap();
            let chain = idx.chain_assignments(&g);
            assert!(
                is_valid_ak_chain(&g, &chain),
                "k={k}: {:?}",
                ak_chain_violation(&g, &chain)
            );
            let oracle = reference::k_bisim_chain(&g, k);
            for level in 0..=k {
                assert_eq!(
                    reference::canonical_partition(&g, &chain[level]),
                    reference::canonical_partition(&g, &oracle[level]),
                    "k={k} level {level} differs from the minimum"
                );
            }
        }
    }

    #[test]
    fn level_counts_monotone() {
        let g = sample();
        let idx = AkIndex::build(&g, 4);
        for l in 1..=4 {
            assert!(idx.level_count(l) >= idx.level_count(l - 1));
        }
        assert_eq!(
            idx.total_blocks(),
            (0..=4).map(|l| idx.level_count(l)).sum::<usize>()
        );
    }

    #[test]
    fn chain_of_walks_tree() {
        let g = sample();
        let idx = AkIndex::build(&g, 3);
        for n in g.nodes() {
            let chain = idx.chain_of(n);
            assert_eq!(chain.len(), 4);
            assert_eq!(chain[3], idx.block_of(n));
            for l in 0..3 {
                assert_eq!(idx.level(chain[l]), l);
                assert_eq!(idx.block_of_at(n, l), chain[l]);
                assert_eq!(idx.tree_parent(chain[l + 1]), Some(chain[l]));
            }
        }
    }

    #[test]
    fn register_unregister_round_trip() {
        let mut g = sample();
        let mut idx = AkIndex::build(&g, 3);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let (u, v) = (nodes[2], nodes[8]);
        assert!(!g.has_edge(u, v), "test expects (u, v) absent");
        g.insert_edge(u, v, xsi_graph::EdgeKind::IdRef).unwrap();
        idx.register_edge(u, v);
        idx.check_consistency(&g).unwrap();
        g.delete_edge(u, v).unwrap();
        idx.unregister_edge(u, v);
        idx.check_consistency(&g).unwrap();
    }

    #[test]
    fn a0_is_label_partition() {
        let g = sample();
        let idx = AkIndex::build(&g, 2);
        let mut labels = std::collections::HashSet::new();
        for n in g.nodes() {
            labels.insert(g.label(n));
        }
        assert_eq!(idx.level_count(0), labels.len());
    }

    #[test]
    fn k_zero_index() {
        let g = sample();
        let idx = AkIndex::build(&g, 0);
        idx.check_consistency(&g).unwrap();
        assert_eq!(idx.block_count(), idx.level_count(0));
    }

    #[test]
    fn handle_rehydrates_raw_ids() {
        let g = sample();
        let idx = AkIndex::build(&g, 2);
        for b in idx.blocks_at(2) {
            assert_eq!(idx.handle(b.raw()), b);
            assert!(idx.is_live(b));
        }
    }

    #[test]
    fn store_report_covers_all_maps() {
        let g = sample();
        let idx = AkIndex::build(&g, 2);
        let r = idx.store_report();
        assert_eq!(r.blocks as usize, idx.total_blocks());
        assert_eq!(r.inline_maps + r.spilled_maps, r.blocks * 4);
        assert!(r.entries > 0);
    }
}

#[cfg(test)]
mod intra_level_tests {
    use super::*;
    use xsi_graph::GraphBuilder;

    /// The derived A(i) intra-iedges must equal the stored intra-iedges
    /// of an A(k)-index built directly with k = i.
    #[test]
    fn derived_intra_iedges_match_direct_build() {
        let (g, _) = GraphBuilder::new()
            .nodes(&[(1, "a"), (2, "b"), (3, "b"), (4, "c"), (5, "c"), (6, "d")])
            .edges(&[(1, 2), (1, 3), (2, 4), (3, 5), (4, 6)])
            .idref_edges(&[(6, 3)])
            .root_to(1)
            .build_with_ids();
        let deep = AkIndex::build(&g, 4);
        for level in 0..=4 {
            let shallow = AkIndex::build(&g, level);
            // Compare as (sorted extent, sorted extent) pairs since block
            // ids differ between the two indexes.
            let canon = |idx: &AkIndex, pairs: Vec<(ABlockId, ABlockId)>, at_k: bool| {
                let mut out: Vec<(Vec<NodeId>, Vec<NodeId>)> = pairs
                    .into_iter()
                    .map(|(a, b)| {
                        let (mut ea, mut eb) = if at_k {
                            (idx.extent(a).to_vec(), idx.extent(b).to_vec())
                        } else {
                            (idx.extent_at(a), idx.extent_at(b))
                        };
                        ea.sort_unstable();
                        eb.sort_unstable();
                        (ea, eb)
                    })
                    .collect();
                out.sort();
                out
            };
            let derived = canon(&deep, deep.intra_iedges_at(level), false);
            let direct = canon(&shallow, shallow.intra_iedges_at(level), true);
            assert_eq!(derived, direct, "level {level}");
        }
    }

    #[test]
    fn extent_at_partitions_nodes() {
        let (g, _) = GraphBuilder::new()
            .nodes(&[(1, "a"), (2, "b"), (3, "b")])
            .edges(&[(1, 2), (1, 3)])
            .root_to(1)
            .build_with_ids();
        let idx = AkIndex::build(&g, 3);
        for level in 0..=3 {
            let mut all: Vec<NodeId> = idx
                .blocks_at(level)
                .flat_map(|b| idx.extent_at(b))
                .collect();
            all.sort_unstable();
            let mut live: Vec<NodeId> = g.nodes().collect();
            live.sort_unstable();
            assert_eq!(all, live, "level {level}");
        }
    }
}
