//! Incremental split/merge maintenance of the A(k)-index chain —
//! Figure 7 of the paper.
//!
//! An edge update `(u, v)` proceeds in three steps:
//!
//! 1. **Affected range.** Find the largest `i` with `v ∈ Succ(I⁽ⁱ⁾[u])`
//!    (for insertions, ignoring the new edge itself). Levels `≤ i+1` are
//!    untouched; levels `i+2..k` must single `v` out.
//! 2. **Split phase.** Single `v` out at the affected levels, then run the
//!    shared [`kernel`] compound propagation with level-tagged compounds,
//!    always processing the compound with the smallest level: a level-`j`
//!    splitter stabilizes *all* levels `j+1..k` at once, so the refinement
//!    tree stays nested.
//! 3. **Merge phase.** For each affected level in ascending order, try to
//!    re-merge `I⁽ʲ⁾[v]` with a sibling that has the same A(j−1)-index
//!    parents, and fold merges iteratively among the cross-successors of
//!    every freshly merged inode ([`kernel::merge_fold`]).
//!
//! Lemmas 5/6 and Theorem 2: this maintains the unique minimal — hence
//! **minimum** — set of A(i)-indexes on any data graph.
//!
//! The queue/propagation/fold mechanics live in [`crate::kernel`]; this
//! module contributes the A(k)-specific primitives: the chain-wide
//! `split_levels_by` stabilization (all per-call maps are epoch-stamped
//! [`ScratchTable`](crate::store::ScratchTable)s on the index, so the hot
//! path allocates nothing per call) and the (tree parent, cross-parent
//! set) merge key.
//!
//! ### Splits move nodes, never re-parent blocks
//!
//! When a splitter's successor set covers a block entirely, the paper
//! re-parents that block under the new tree chain. We instead give every
//! touched block a fresh partner and move the marked nodes; a fully
//! covered block dies and its partner takes its place (the compound queue
//! is told via `replace`). This keeps every mutation expressible as a
//! per-node chain move — the cost is within the same `O(|Succ| · deg · k)`
//! envelope the scan already pays, and no block ever has stale counts.

use super::{ABlockId, AkIndex};
use crate::kernel::{self, CompoundQueue, MergeDriver, SplitDriver};
use crate::obs::span::{SpanGuard, SpanKind};
use crate::stats::UpdateStats;
use xsi_graph::{EdgeKind, Graph, GraphError, NodeId};

impl SplitDriver for AkIndex {
    type Block = ABlockId;

    fn weight_of(&self, b: ABlockId) -> usize {
        self.weight(b)
    }

    fn scan_succ(&mut self, g: &Graph, roots: &[ABlockId]) -> Vec<NodeId> {
        self.collect_succ(g, roots)
    }

    fn stabilize(
        &mut self,
        g: &Graph,
        marked: &[NodeId],
        level: usize,
        cq: &mut CompoundQueue<ABlockId>,
        stats: &mut UpdateStats,
    ) {
        self.split_levels_by(g, marked, level, cq, stats);
    }
}

impl MergeDriver for AkIndex {
    type Block = ABlockId;
    /// (tree parent, sorted cross-parent set) — Lemma 6's merge
    /// equivalence for siblingless candidates.
    type GroupKey = (ABlockId, Vec<ABlockId>);

    fn merge_successors(&self, b: ABlockId) -> Vec<ABlockId> {
        self.blocks[b].succ_cross.keys().collect()
    }

    fn merge_key(&self, c: ABlockId) -> (ABlockId, Vec<ABlockId>) {
        let parent = self
            .tree_parent(c)
            .expect("invariant: every block above level 0 has a tree parent");
        (parent, self.cross_parents(c).collect())
    }

    fn is_live(&self, b: ABlockId) -> bool {
        self.is_live(b)
    }

    fn merge_group(&mut self, group: &[ABlockId], stats: &mut UpdateStats) -> ABlockId {
        let mut survivor = group[0];
        for &b in &group[1..] {
            survivor = self.merge_pair(survivor, b);
            stats.merges += 1;
        }
        survivor
    }

    fn requeue(&self, survivor: ABlockId) -> bool {
        self.level(survivor) < self.k()
    }
}

impl AkIndex {
    /// Inserts the dedge `(u, v)` and maintains the A(0)..A(k) chain
    /// (Figure 7). Returns per-update statistics (block counts refer to
    /// the level-k index).
    // xsi-lint: allow(span-coverage, delegates to update_levels, which opens the Split/Merge spans)
    pub fn insert_edge(
        &mut self,
        g: &mut Graph,
        u: NodeId,
        v: NodeId,
        kind: EdgeKind,
    ) -> Result<UpdateStats, GraphError> {
        g.insert_edge(u, v, kind)?;
        // Largest i with v ∈ Succ(I⁽ⁱ⁾[u]) *excluding the new edge* — the
        // single (u, v) dedge is the one we skip below.
        let j0 = self.affected_from(g, u, v, true);
        self.register_edge(u, v);
        Ok(self.update_levels(g, v, j0))
    }

    /// Deletes the dedge `(u, v)` and maintains the chain.
    // xsi-lint: allow(span-coverage, delegates to update_levels, which opens the Split/Merge spans)
    pub fn delete_edge(
        &mut self,
        g: &mut Graph,
        u: NodeId,
        v: NodeId,
    ) -> Result<(UpdateStats, EdgeKind), GraphError> {
        let kind = g.delete_edge(u, v)?;
        self.unregister_edge(u, v);
        let j0 = self.affected_from(g, u, v, false);
        Ok((self.update_levels(g, v, j0), kind))
    }

    /// Deletes a node and all of its incident edges, maintaining the
    /// chain throughout. The node must not be the root.
    // xsi-lint: allow(span-coverage, delegates per incident edge to update_levels, which opens the spans)
    pub fn delete_node(&mut self, g: &mut Graph, n: NodeId) -> Result<UpdateStats, GraphError> {
        let mut stats = UpdateStats {
            no_op: false,
            ..UpdateStats::default()
        };
        let parents: Vec<NodeId> = g.pred(n).collect();
        for p in parents {
            g.delete_edge(p, n)?;
            stats.absorb(&self.notify_edge_deleted(g, p, n));
        }
        let children: Vec<NodeId> = g.succ(n).collect();
        for c in children {
            g.delete_edge(n, c)?;
            stats.absorb(&self.notify_edge_deleted(g, n, c));
        }
        self.on_node_removing(g, n);
        g.remove_node(n)?;
        stats.final_blocks = self.block_count();
        Ok(stats)
    }

    /// Maintenance hook for an edge insertion already applied to `g` by
    /// the caller — for running several indexes over one graph. Equivalent
    /// to [`AkIndex::insert_edge`] minus the graph mutation.
    // xsi-lint: allow(span-coverage, delegates to update_levels, which opens the Split/Merge spans)
    pub fn notify_edge_inserted(&mut self, g: &Graph, u: NodeId, v: NodeId) -> UpdateStats {
        debug_assert!(g.has_edge(u, v), "notify before mutating the graph");
        let j0 = self.affected_from(g, u, v, true);
        self.register_edge(u, v);
        self.update_levels(g, v, j0)
    }

    /// Maintenance hook for an edge deletion already applied to `g` by
    /// the caller; see [`AkIndex::notify_edge_inserted`].
    // xsi-lint: allow(span-coverage, delegates to update_levels, which opens the Split/Merge spans)
    pub fn notify_edge_deleted(&mut self, g: &Graph, u: NodeId, v: NodeId) -> UpdateStats {
        debug_assert!(!g.has_edge(u, v), "notify after mutating the graph");
        self.unregister_edge(u, v);
        let j0 = self.affected_from(g, u, v, false);
        self.update_levels(g, v, j0)
    }

    /// Computes `i* + 2`, the first affected level: `i*` is the deepest
    /// level at which some *other* parent of `v` shares `u`'s inode.
    fn affected_from(&self, g: &Graph, u: NodeId, v: NodeId, exclude_u: bool) -> usize {
        let cu = self.chain_of(u);
        let mut istar: isize = -1;
        for p in g.pred(v) {
            if exclude_u && p == u {
                continue;
            }
            let cp = self.chain_of(p);
            let mut common: isize = -1;
            for l in 0..=self.k() {
                if cp[l] == cu[l] {
                    common = l as isize;
                } else {
                    break;
                }
            }
            istar = istar.max(common);
            if istar == self.k() as isize {
                break;
            }
        }
        (istar + 2) as usize
    }

    /// Runs the split and merge phases for an update whose first affected
    /// level is `j0` (no-op when `j0 > k`).
    fn update_levels(&mut self, g: &Graph, v: NodeId, j0: usize) -> UpdateStats {
        let mut stats = UpdateStats {
            intermediate_blocks: self.block_count(),
            final_blocks: self.block_count(),
            no_op: true,
            ..UpdateStats::default()
        };
        if j0 > self.k() {
            return stats;
        }
        stats.no_op = false;
        // Refinement-chain accounting for the observability layer: the
        // update touches ranks j0 ..= k of the A(0)..A(k) chain.
        stats.levels_touched = self.k() - j0 + 1;
        {
            // Span covers exactly the region timed into split_nanos.
            let sp = SpanGuard::enter(SpanKind::Split);
            let split_t = std::time::Instant::now();
            let mut cq = CompoundQueue::new(self.k() + 1);

            // Initial splits: single v out of its inode at levels j0..k,
            // then propagate lowest-level compound first. The seeding
            // sweep is the phase's first work item (O(deg·k) across the
            // chain — a real slice of the split clock); its span closes
            // before process_compounds so CompoundProcess never
            // self-nests.
            {
                let seed = SpanGuard::enter(SpanKind::CompoundProcess);
                self.split_levels_by(g, &[v], j0 - 1, &mut cq, &mut stats);
                seed.add_blocks(stats.splits as u64);
                seed.set_queue_depth(cq.work_size() as u64);
            }
            kernel::process_compounds(self, g, &mut cq, &mut stats);
            stats.intermediate_blocks = self.block_count();
            stats.split_nanos = split_t.elapsed().as_nanos() as u64;
            sp.add_blocks(stats.splits as u64);
            sp.set_queue_depth(stats.queue_peak as u64);
        }

        let sp = SpanGuard::enter(SpanKind::Merge);
        let merge_t = std::time::Instant::now();
        self.merge_phase(v, j0, &mut stats);
        stats.merge_nanos = merge_t.elapsed().as_nanos() as u64;
        sp.add_blocks(stats.merges as u64);
        drop(sp);
        stats.final_blocks = self.block_count();
        stats
    }

    /// Stabilizes levels `j+1..=k` against the node set `marked`: every
    /// touched block receives a fresh partner under the new tree chain and
    /// its marked nodes move there; a partially covered block thereby
    /// splits (compound bookkeeping via `on_split`), a fully covered one is
    /// replaced and released (`replace`).
    ///
    /// All per-call state lives in the index's epoch-stamped scratch
    /// tables (keyed by block slot index), so this path performs no map
    /// allocation and no hashing.
    fn split_levels_by(
        &mut self,
        g: &Graph,
        marked: &[NodeId],
        j: usize,
        cq: &mut CompoundQueue<ABlockId>,
        stats: &mut UpdateStats,
    ) {
        if marked.is_empty() || j >= self.k() {
            return;
        }
        let k = self.k();
        // Pass 1: per-block marked counts at levels j+1..=k.
        self.split_counts.begin();
        self.split_counts.ensure_len(self.blocks.capacity());
        for &w in marked {
            let chain = self.chain_of(w);
            for &b in &chain[j + 1..=k] {
                self.split_counts.update(b.raw(), |c| *c += 1);
            }
        }
        // Freeze "fully covered" decisions before any move. Scratch slots
        // touched here always name live blocks (nothing is released until
        // the post-pass), so `handle` cannot observe a dead slot.
        self.split_full.begin();
        let mut full_count = 0usize;
        for i in 0..self.split_counts.touched_len() {
            let idx = self.split_counts.touched()[i];
            let c = self
                .split_counts
                .get(idx)
                .expect("invariant: touched keys read back as present");
            let b = self.handle(idx);
            if c as usize == self.weight(b) {
                self.split_full.set(idx, true);
                full_count += 1;
            }
        }
        if self.split_counts.touched_len() == full_count {
            // Every touched block is fully covered: the marked set is a
            // union of whole level-(j+1) subtrees, so (inductively, top
            // down) every node keeps its chain — nothing to do.
            return;
        }

        // Pass 2: move every marked node onto its new chain. Partner
        // blocks are allocated into previously-dead slots, so their
        // indexes never collide with the live old-block keys above.
        self.split_partner.begin();
        let mut new_chain: Vec<ABlockId> = Vec::new();
        for &w in marked {
            let old = self.chain_of(w);
            new_chain.clear();
            new_chain.extend_from_slice(&old);
            for l in j + 1..=k {
                if self.split_full.get(old[l].raw()) == Some(true) && new_chain[l - 1] == old[l - 1]
                {
                    continue; // block follows its parent unchanged
                }
                let p = match self.split_partner.get(old[l].raw()) {
                    Some(p) => p,
                    None => {
                        let p = self.new_block(l as u8, self.label(old[l]));
                        self.split_partner.set(old[l].raw(), p);
                        p
                    }
                };
                let parent = new_chain[l - 1];
                self.link_tree(parent, p);
                new_chain[l] = p;
            }
            self.move_node_chain(g, w, &new_chain);
        }

        // Post-pass: classify partner pairs, then release dead originals
        // deepest-first so children are gone before their parents. Sort
        // the pairs first: the loop feeds `cq.replace`/`cq.on_split` and
        // the split counter, so its order must not depend on discovery
        // order (the PR 2 `SimpleAkIndex` bug class).
        let mut pairs: Vec<(ABlockId, ABlockId)> =
            Vec::with_capacity(self.split_partner.touched_len());
        for i in 0..self.split_partner.touched_len() {
            let idx = self.split_partner.touched()[i];
            let partner = self
                .split_partner
                .get(idx)
                .expect("invariant: touched keys read back as present");
            pairs.push((self.handle(idx), partner));
        }
        pairs.sort_unstable();
        let mut dying: Vec<ABlockId> = Vec::new();
        for (old, partner) in pairs {
            if self.weight(old) == 0 {
                cq.replace(old, partner);
                dying.push(old);
            } else {
                stats.splits += 1;
                let level = self.level(old);
                if level < k {
                    cq.on_split(level, old, partner);
                }
            }
        }
        dying.sort_by_key(|&b| std::cmp::Reverse(self.level(b)));
        for b in dying {
            if let Some(parent) = self.tree_parent(b) {
                self.unlink_child(parent, b);
            }
            self.release_block(b);
        }
    }

    pub(crate) fn unlink_child(&mut self, parent: ABlockId, child: ABlockId) {
        self.blocks[parent].tree_children.remove(&child);
        self.blocks[child].tree_parent = ABlockId::INVALID;
    }

    /// The merge phase of Figure 7: for each affected level ascending, try
    /// the sibling merge for `I⁽ʲ⁾[v]`, then fold merges among the
    /// cross-successors of each freshly merged block (lowest level first —
    /// a level-`l` merge only enqueues level-`l+1` blocks, so the kernel's
    /// FIFO order is level-ascending).
    fn merge_phase(&mut self, v: NodeId, j0: usize, stats: &mut UpdateStats) {
        let k = self.k();
        for j in j0..=k {
            // Per-level sibling search is one merge work item; the span
            // closes before merge_fold (whose served blocks open their
            // own CompoundProcess spans) so the kind never self-nests.
            let sp = SpanGuard::enter(SpanKind::CompoundProcess);
            let bv = self.block_of_at(v, j);
            let parent = self
                .tree_parent(bv)
                .expect("invariant: affected levels are >= 1 and have parents");
            let sibling = self
                .tree_children(parent)
                .find(|&s| s != bv && self.same_cross_parents(s, bv));
            if let Some(s) = sibling {
                let m = SpanGuard::enter(SpanKind::Merge);
                m.add_blocks(2);
                sp.add_blocks(2);
                let merged = self.merge_pair(s, bv);
                stats.merges += 1;
                drop(m);
                drop(sp);
                if self.level(merged) < k {
                    kernel::merge_fold(self, merged, stats);
                }
            }
        }
    }

    /// Merges two blocks keeping the heavier as survivor; returns it.
    fn merge_pair(&mut self, a: ABlockId, b: ABlockId) -> ABlockId {
        if self.weight(a) >= self.weight(b) {
            self.merge_blocks(a, b);
            a
        } else {
            self.merge_blocks(b, a);
            b
        }
    }

    /// Registers a freshly added, edge-free node: it joins (or founds) the
    /// chain of parentless blocks with its label, preserving minimality.
    // xsi-lint: allow(span-coverage, no kernel work; the engine-level caller opens the Op/IndexDispatch spans)
    // xsi-lint: allow(obs-coverage, O(k) bookkeeping with no split/merge work; the engine-level caller times it)
    pub fn on_node_added(&mut self, g: &Graph, n: NodeId) {
        self.ensure_capacity(g);
        debug_assert_eq!(g.in_degree(n) + g.out_degree(n), 0);
        let label = g.label(n);
        let k = self.k();
        let existing = self.blocks_at(0).find(|&b| self.label(b) == label);
        let mut parent = match existing {
            Some(b) => b,
            None => self.new_block(0, label),
        };
        self.blocks[parent].weight += 1;
        for level in 1..=k {
            let next = self
                .tree_children(parent)
                .find(|&c| self.blocks[c].pred_cross.is_empty());
            let b = match next {
                Some(b) => b,
                None => {
                    let b = self.new_block(level as u8, label);
                    self.link_tree(parent, b);
                    b
                }
            };
            self.blocks[b].weight += 1;
            parent = b;
        }
        self.node_block[n.index()] = parent;
        self.node_pos[n.index()] = self.extent(parent).len() as u32;
        self.extent_mut(parent).push(n);
    }

    /// Unregisters a node about to be removed (must be edge-free; call
    /// before `Graph::remove_node`).
    // xsi-lint: allow(span-coverage, no kernel work; the engine-level caller opens the Op/IndexDispatch spans)
    // xsi-lint: allow(obs-coverage, O(k) bookkeeping with no split/merge work; the engine-level caller times it)
    pub fn on_node_removing(&mut self, g: &Graph, n: NodeId) {
        debug_assert_eq!(g.in_degree(n) + g.out_degree(n), 0);
        let chain = self.chain_of(n);
        let k = self.k();
        // Extent removal at level k.
        let pos = self.node_pos[n.index()] as usize;
        let extent = self.extent_mut(chain[k]);
        extent.swap_remove(pos);
        let moved = extent.get(pos).copied();
        if let Some(moved) = moved {
            self.node_pos[moved.index()] = pos as u32;
        }
        self.node_block[n.index()] = ABlockId::INVALID;
        for l in (0..=k).rev() {
            self.blocks[chain[l]].weight -= 1;
            if self.blocks[chain[l]].weight == 0 {
                if let Some(parent) = self.tree_parent(chain[l]) {
                    self.unlink_child(parent, chain[l]);
                }
                self.release_block(chain[l]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{ak_chain_violation, is_valid_ak_chain};
    use crate::reference;
    use xsi_graph::GraphBuilder;

    /// Asserts the maintained chain equals the from-scratch minimum chain
    /// at every level (Theorem 2) and that the structure is internally
    /// consistent.
    fn assert_minimum_chain(g: &Graph, idx: &AkIndex) {
        idx.check_consistency(g).unwrap();
        let chain = idx.chain_assignments(g);
        assert!(
            is_valid_ak_chain(g, &chain),
            "{:?}",
            ak_chain_violation(g, &chain)
        );
        let oracle = reference::k_bisim_chain(g, idx.k());
        for level in 0..=idx.k() {
            assert_eq!(
                reference::canonical_partition(g, &chain[level]),
                reference::canonical_partition(g, &oracle[level]),
                "level {level} not minimum\n{idx:?}"
            );
        }
    }

    fn chain_graph() -> (Graph, std::collections::BTreeMap<u64, NodeId>) {
        // Deep chains so higher k's differ: two C-D-E tails whose context
        // differs only near the root.
        GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "B"), (3, "C"), (4, "D"), (5, "E")])
            .nodes(&[(6, "B"), (7, "C"), (8, "D"), (9, "E")])
            .edges(&[(1, 2), (2, 3), (3, 4), (4, 5), (6, 7), (7, 8), (8, 9)])
            .root_to(1)
            .root_to(6)
            .build_with_ids()
    }

    #[test]
    fn insert_and_delete_track_minimum() {
        for k in 1..=4 {
            let (mut g, ids) = chain_graph();
            let mut idx = AkIndex::build(&g, k);
            assert_minimum_chain(&g, &idx);
            // Insert an IDREF deep in one tail: affects levels near k only.
            let stats = idx
                .insert_edge(&mut g, ids[&5], ids[&7], EdgeKind::IdRef)
                .unwrap();
            assert!(!stats.no_op || k == 0);
            assert_minimum_chain(&g, &idx);
            // And delete it again.
            idx.delete_edge(&mut g, ids[&5], ids[&7]).unwrap();
            assert_minimum_chain(&g, &idx);
        }
    }

    #[test]
    fn affected_level_detection() {
        let (mut g, ids) = chain_graph();
        let mut idx = AkIndex::build(&g, 3);
        // 4 and 8 are D nodes with different 2-context; E nodes 5, 9 are
        // k-bisimilar only for small k. Inserting 1→9 (9's parents gain a
        // new label class) must affect level 1 on.
        let stats = idx
            .insert_edge(&mut g, ids[&1], ids[&9], EdgeKind::IdRef)
            .unwrap();
        assert!(!stats.no_op);
        assert_minimum_chain(&g, &idx);
    }

    #[test]
    fn update_whose_levels_are_unaffected_is_noop() {
        // Two parents in the same deep class: u's class already points at v.
        let (mut g, ids) = GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "A"), (3, "B")])
            .edges(&[(1, 3)])
            .root_to(1)
            .root_to(2)
            .build_with_ids();
        let mut idx = AkIndex::build(&g, 2);
        // 1 and 2 share classes at levels 0..?; 1 has child 3, 2 doesn't —
        // so at level 1 they differ... make them bisimilar first:
        idx.insert_edge(&mut g, ids[&2], ids[&3], EdgeKind::Child)
            .unwrap();
        assert_minimum_chain(&g, &idx);
        // Now 1, 2 are in one class at every level; delete 1→3: v=3 keeps
        // a parent (2) in the same class at all levels ⇒ no-op.
        let (stats, _) = idx.delete_edge(&mut g, ids[&1], ids[&3]).unwrap();
        assert!(stats.no_op);
        assert_minimum_chain(&g, &idx);
    }

    #[test]
    fn cyclic_graph_updates_track_minimum() {
        let (mut g, ids) = GraphBuilder::new()
            .nodes(&[(1, "P"), (2, "O"), (3, "P"), (4, "O")])
            .edges(&[(1, 2), (3, 4)])
            .root_to(1)
            .root_to(3)
            .build_with_ids();
        for k in 1..=3 {
            let mut idx = AkIndex::build(&g, k);
            idx.insert_edge(&mut g, ids[&2], ids[&3], EdgeKind::IdRef)
                .unwrap();
            assert_minimum_chain(&g, &idx);
            idx.insert_edge(&mut g, ids[&4], ids[&1], EdgeKind::IdRef)
                .unwrap();
            assert_minimum_chain(&g, &idx);
            idx.delete_edge(&mut g, ids[&2], ids[&3]).unwrap();
            assert_minimum_chain(&g, &idx);
            idx.delete_edge(&mut g, ids[&4], ids[&1]).unwrap();
            assert_minimum_chain(&g, &idx);
        }
    }

    #[test]
    fn node_add_remove_round_trip() {
        let (mut g, _) = chain_graph();
        let mut idx = AkIndex::build(&g, 3);
        let before = idx.canonical();
        let n = g.add_node("Z", None);
        idx.on_node_added(&g, n);
        assert_minimum_chain(&g, &idx);
        let m = g.add_node("Z", None);
        idx.on_node_added(&g, m);
        assert_eq!(idx.block_of(n), idx.block_of(m), "parentless twins share");
        assert_minimum_chain(&g, &idx);
        idx.on_node_removing(&g, m);
        g.remove_node(m).unwrap();
        idx.on_node_removing(&g, n);
        g.remove_node(n).unwrap();
        assert_eq!(idx.canonical(), before);
        assert_minimum_chain(&g, &idx);
    }

    #[test]
    fn connected_node_addition_via_edges() {
        let (mut g, ids) = chain_graph();
        let mut idx = AkIndex::build(&g, 2);
        let n = g.add_node("C", None);
        idx.on_node_added(&g, n);
        idx.insert_edge(&mut g, ids[&2], n, EdgeKind::Child)
            .unwrap();
        assert_minimum_chain(&g, &idx);
        // n now has the same 2-context as node 3 under B(2).
        assert_eq!(idx.block_of(n), idx.block_of(ids[&3]));
    }
}

#[cfg(test)]
mod node_op_tests {
    use crate::AkIndex;
    use xsi_graph::{EdgeKind, GraphBuilder};

    #[test]
    fn delete_node_keeps_minimum_chain() {
        let (mut g, ids) = GraphBuilder::new()
            .nodes(&[(1, "a"), (2, "b"), (3, "b"), (4, "c")])
            .edges(&[(1, 2), (1, 3), (2, 4)])
            .idref_edges(&[(4, 3)])
            .root_to(1)
            .build_with_ids();
        for k in 1..=3 {
            let mut g = g.clone();
            let mut idx = AkIndex::build(&g, k);
            idx.delete_node(&mut g, ids[&2]).unwrap();
            idx.check_consistency(&g).unwrap();
            assert_eq!(idx.canonical(), AkIndex::build(&g, k).canonical());
        }
        let _ = &mut g;
    }

    #[test]
    fn add_then_delete_node_round_trips() {
        let (mut g, ids) = GraphBuilder::new()
            .nodes(&[(1, "a"), (2, "b")])
            .edges(&[(1, 2)])
            .root_to(1)
            .build_with_ids();
        let mut idx = AkIndex::build(&g, 2);
        let before = idx.canonical();
        let n = g.add_node("b", None);
        idx.on_node_added(&g, n);
        idx.insert_edge(&mut g, ids[&1], n, EdgeKind::Child)
            .unwrap();
        idx.delete_node(&mut g, n).unwrap();
        assert_eq!(idx.canonical(), before);
        idx.check_consistency(&g).unwrap();
    }
}
