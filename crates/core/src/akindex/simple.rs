//! The *simple* A(k)-index update algorithm the paper compares against in
//! Section 7.2 — "obtained by fixing a minor mistake in the one mentioned
//! at the end of [Qun et al., SIGMOD'03]":
//!
//! after a dedge `(u, v)` is inserted or deleted, BFS from `v` to depth
//! `k−1` to find the potentially affected dnodes, and re-partition every
//! inode containing one of them according to true k-bisimilarity, computed
//! from the data graph by definition. Affected inodes are only ever
//! *refined* — the algorithm has no merge step and never coalesces nodes
//! across inodes — so the index size grows monotonically between
//! reconstructions, which is exactly the blow-up Figure 13 plots.
//!
//! Note on cost: the paper observes the recomputation is exponential in
//! `k` when done naively. By default we memoize signatures per update
//! (same scan structure, polynomial constants) so the experiment harness
//! finishes in reasonable time; [`SimpleAkIndex::with_memoization`] turns
//! the memo off to reproduce the paper's exponential-in-k cost exactly
//! (see EXPERIMENTS.md). Quality behaviour is identical either way.

use crate::stats::UpdateStats;
use std::collections::HashMap;
use xsi_graph::{bfs_descendants, EdgeKind, Graph, GraphError, NodeId};

/// A stand-alone A(k)-index (level-k partition only) maintained by the
/// simple BFS-repartition algorithm. Quality must be measured externally
/// against a freshly built [`super::AkIndex`].
#[derive(Clone, Debug)]
pub struct SimpleAkIndex {
    k: usize,
    /// dnode → block id (dense per index instance, never reused).
    node_block: Vec<u32>,
    /// block id → extent. Whole extents are rewritten on repartition, so
    /// no per-node position table is needed.
    members: HashMap<u32, Vec<NodeId>>,
    next_block: u32,
    /// Whether signature computation memoizes per (node, level) — `false`
    /// reproduces the paper's exponential-in-k baseline cost.
    memoize: bool,
}

const UNASSIGNED: u32 = u32::MAX;

impl SimpleAkIndex {
    /// Builds the minimum A(k)-index partition from scratch (also used as
    /// the baseline's periodic "reconstruction"). Internally reuses the
    /// production O(km) construction and keeps only the level-k partition.
    pub fn build(g: &Graph, k: usize) -> Self {
        let exact = crate::akindex::AkIndex::build(g, k);
        let classes = exact.assignment(g, k);
        let mut idx = SimpleAkIndex {
            k,
            node_block: vec![UNASSIGNED; g.capacity()],
            members: HashMap::new(),
            next_block: 0,
            memoize: true,
        };
        let mut remap: HashMap<u32, u32> = HashMap::new();
        for n in g.nodes() {
            let c = classes[n.index()];
            let b = match remap.get(&c) {
                Some(&b) => b,
                None => {
                    let b = idx.next_block;
                    idx.next_block += 1;
                    remap.insert(c, b);
                    b
                }
            };
            idx.node_block[n.index()] = b;
            idx.members.entry(b).or_default().push(n);
        }
        idx
    }

    /// The `k` of this index.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Switches per-update signature memoization on or off (builder
    /// style). Off reproduces the paper's exponential-in-k update cost;
    /// results are identical either way.
    pub fn with_memoization(mut self, memoize: bool) -> Self {
        self.memoize = memoize;
        self
    }

    /// Whether per-update signature memoization is enabled.
    pub fn memoize(&self) -> bool {
        self.memoize
    }

    /// Number of inodes.
    pub fn block_count(&self) -> usize {
        self.members.len()
    }

    /// The block id of a node.
    pub fn block_of(&self, n: NodeId) -> u32 {
        self.node_block[n.index()]
    }

    /// Inserts a dedge and repairs the index with the simple algorithm.
    pub fn insert_edge(
        &mut self,
        g: &mut Graph,
        u: NodeId,
        v: NodeId,
        kind: EdgeKind,
    ) -> Result<(), GraphError> {
        g.insert_edge(u, v, kind)?;
        self.repartition_affected(g, v);
        Ok(())
    }

    /// Deletes a dedge and repairs the index with the simple algorithm.
    pub fn delete_edge(
        &mut self,
        g: &mut Graph,
        u: NodeId,
        v: NodeId,
    ) -> Result<EdgeKind, GraphError> {
        let kind = g.delete_edge(u, v)?;
        self.repartition_affected(g, v);
        Ok(kind)
    }

    /// Maintenance hook for an edge insertion already applied to `g` by
    /// the caller — for running several indexes over one graph (the
    /// [`crate::StructuralIndex`] fan-out convention). Equivalent to
    /// [`SimpleAkIndex::insert_edge`] minus the graph mutation.
    pub fn notify_edge_inserted(&mut self, g: &Graph, u: NodeId, v: NodeId) -> UpdateStats {
        debug_assert!(g.has_edge(u, v), "notify before mutating the graph");
        let _ = u;
        self.repair(g, v)
    }

    /// Maintenance hook for an edge deletion already applied to `g` by
    /// the caller; see [`SimpleAkIndex::notify_edge_inserted`].
    pub fn notify_edge_deleted(&mut self, g: &Graph, u: NodeId, v: NodeId) -> UpdateStats {
        debug_assert!(!g.has_edge(u, v), "notify after mutating the graph");
        let _ = u;
        self.repair(g, v)
    }

    /// Registers a freshly added node (no edges yet): a parentless node's
    /// k-bisim class is determined by its label alone, so it joins an
    /// existing block of parentless label-twins if one exists, else gets
    /// a fresh singleton block. (Refinement-safety is preserved either
    /// way; joining twins keeps the index from fragmenting on add-heavy
    /// workloads exactly like a reconstruction would.)
    ///
    /// When several candidate twin blocks exist (the split-only algorithm
    /// never re-merges them) the one with the smallest id is chosen, so
    /// two instances fed the same update stream stay bit-identical —
    /// `HashMap` iteration order must not leak into index state (the
    /// conformance lab's deterministic replay depends on this).
    pub fn on_node_added(&mut self, g: &Graph, n: NodeId) {
        if self.node_block.len() < g.capacity() {
            self.node_block.resize(g.capacity(), UNASSIGNED);
        }
        debug_assert_eq!(g.in_degree(n) + g.out_degree(n), 0);
        let label = g.label(n);
        let twin = self
            .members
            .iter()
            .filter_map(|(&b, extent)| {
                let &rep = extent.first()?;
                (g.label(rep) == label && extent.iter().all(|&m| g.in_degree(m) == 0)).then_some(b)
            })
            .min();
        let b = twin.unwrap_or_else(|| {
            let b = self.next_block;
            self.next_block += 1;
            b
        });
        self.node_block[n.index()] = b;
        self.members.entry(b).or_default().push(n);
    }

    /// Unregisters a node about to be removed (all of its edges must have
    /// been deleted already). Call *before* `Graph::remove_node`.
    pub fn on_node_removing(&mut self, g: &Graph, n: NodeId) {
        debug_assert_eq!(g.in_degree(n) + g.out_degree(n), 0);
        let b = self.node_block[n.index()];
        self.node_block[n.index()] = UNASSIGNED;
        if let Some(extent) = self.members.get_mut(&b) {
            extent.retain(|&m| m != n);
            if extent.is_empty() {
                self.members.remove(&b);
            }
        }
    }

    /// Runs the repartition repair and reports what it did in the common
    /// [`UpdateStats`] currency (the simple algorithm only ever splits).
    fn repair(&mut self, g: &Graph, v: NodeId) -> UpdateStats {
        let before = self.block_count();
        self.repartition_affected(g, v);
        let after = self.block_count();
        UpdateStats {
            splits: after - before,
            merges: 0,
            intermediate_blocks: after,
            final_blocks: after,
            no_op: after == before,
            ..UpdateStats::default()
        }
    }

    /// Internal consistency check: the recorded partition covers exactly
    /// the live nodes, block ids agree between the two tables, and no
    /// extent is empty.
    pub fn check_consistency(&self, g: &Graph) -> Result<(), String> {
        let mut seen = 0usize;
        // xsi-lint: allow(hash-iter, consistency check: every block is verified, pass/fail is order-free)
        for (&b, extent) in &self.members {
            if extent.is_empty() {
                return Err(format!("block {b} has an empty extent"));
            }
            for &n in extent {
                if !g.is_alive(n) {
                    return Err(format!("block {b} contains dead node {n}"));
                }
                if self.node_block[n.index()] != b {
                    return Err(format!(
                        "node {n}: node_block says {}, members say {b}",
                        self.node_block[n.index()]
                    ));
                }
                seen += 1;
            }
        }
        if seen != g.node_count() {
            return Err(format!(
                "partition covers {seen} nodes, graph has {}",
                g.node_count()
            ));
        }
        Ok(())
    }

    /// BFS from `v` to depth k−1, then re-partition each inode containing
    /// an affected node by true k-bisimilarity. Refinement only: each
    /// affected inode keeps its id for the largest resulting group and
    /// spawns fresh ids for the others.
    ///
    /// Touched blocks are processed in ascending id order and group-size
    /// ties broken by smallest member, so fresh-id allocation — and with
    /// it the whole index state — is a pure function of the update
    /// stream, never of `HashMap`/`HashSet` iteration order. Determinism
    /// here is what makes conformance-lab reproducers replay exactly.
    fn repartition_affected(&mut self, g: &Graph, v: NodeId) {
        if self.node_block.len() < g.capacity() {
            self.node_block.resize(g.capacity(), UNASSIGNED);
        }
        let affected = bfs_descendants(g, v, self.k.saturating_sub(1));
        let mut touched: Vec<u32> = affected
            .iter()
            .map(|w| self.node_block[w.index()])
            .collect();
        touched.sort_unstable();
        touched.dedup();
        // Re-partition each touched inode by k-bisim signature.
        let mut memo = SignatureMemo::new(g.capacity(), self.k, self.memoize);
        for block in touched {
            let extent = self
                .members
                .get(&block)
                .expect("invariant: touched ids came from the members table");
            if extent.len() == 1 {
                continue;
            }
            let mut groups: HashMap<u32, Vec<NodeId>> = HashMap::new();
            for &m in extent {
                groups
                    .entry(memo.signature(g, m, self.k))
                    .or_default()
                    .push(m);
            }
            if groups.len() <= 1 {
                continue;
            }
            // Largest group keeps the old id; the rest get fresh ids in
            // deterministic (size, then smallest-member) order.
            let mut groups: Vec<Vec<NodeId>> = groups.into_values().collect();
            groups.sort_by_key(|grp| (std::cmp::Reverse(grp.len()), grp.iter().min().copied()));
            // xsi-lint: allow(hash-iter, `groups` was re-bound to the Vec sorted on the line above; drain order is deterministic)
            for grp in groups.drain(1..) {
                let fresh = self.next_block;
                self.next_block += 1;
                for &m in &grp {
                    self.node_block[m.index()] = fresh;
                }
                self.members.insert(fresh, grp);
            }
            self.members.insert(
                block,
                groups
                    .pop()
                    .expect("checked: groups.len() > 1 on this branch"),
            );
        }
    }

    /// Deep heap bytes (capacity-based); the decomposed view is
    /// [`SimpleAkIndex::mem_report`]. The per-update [`SignatureMemo`]
    /// is transient and deliberately uncounted (DESIGN.md §13).
    pub fn heap_use(&self) -> usize {
        use crate::obs::mem::{hash_map_heap, vec_cap_heap};
        vec_cap_heap(&self.node_block)
            + hash_map_heap::<u32, Vec<NodeId>>(self.members.capacity())
            + self.members.values().map(vec_cap_heap).sum::<usize>()
    }

    /// Deep-memory attribution for the baseline: every extent is a plain
    /// owned `Vec` (this index never freezes shared runs), the hash-map
    /// shell goes to `other_bytes`, and the node→block table is the one
    /// side table. [`MemReport::total_bytes`] equals
    /// [`SimpleAkIndex::heap_use`] exactly.
    pub fn mem_report(&self) -> crate::obs::mem::MemReport {
        use crate::obs::mem::{hash_map_heap, vec_cap_heap, MemReport};
        let mut r = MemReport::default();
        let mut ids: Vec<u32> = self.members.keys().copied().collect();
        ids.sort_unstable();
        for b in ids {
            let extent = &self.members[&b];
            r.blocks += 1;
            r.record_extent(extent.len(), vec_cap_heap(extent), false);
        }
        r.side_table_bytes = vec_cap_heap(&self.node_block) as u64;
        r.other_bytes = hash_map_heap::<u32, Vec<NodeId>>(self.members.capacity()) as u64;
        r
    }

    /// The partition in canonical form (for validity checks in tests).
    pub fn canonical(&self, _g: &Graph) -> Vec<Vec<NodeId>> {
        let mut out: Vec<Vec<NodeId>> = self.members.values().cloned().collect();
        for e in &mut out {
            e.sort_unstable();
        }
        out.sort();
        out
    }

    /// The partition as a class assignment (for the A(k) chain checker;
    /// levels below k are not maintained by this baseline).
    pub fn assignment(&self, g: &Graph) -> Vec<u32> {
        let mut out = vec![u32::MAX; g.capacity()];
        for n in g.nodes() {
            out[n.index()] = self.node_block[n.index()];
        }
        out
    }
}

/// Per-update memoized k-bisimulation signatures computed from the data
/// graph by definition: `sig₀(w) = label(w)`,
/// `sigᵢ(w) = ⟨sigᵢ₋₁(w), {sigᵢ₋₁(p) : p ∈ Pred(w)}⟩`, hash-consed per
/// level so equal signatures get equal dense ids.
struct SignatureMemo {
    /// memo[level][node] = dense signature id + 1 (0 = unset).
    memo: Vec<Vec<u32>>,
    /// Hash-consing tables, one per level ≥ 1 (always shared, so equal
    /// signatures always compare equal even with the memo off).
    interned: Vec<HashMap<(u32, Vec<u32>), u32>>,
    memoize: bool,
}

impl SignatureMemo {
    fn new(capacity: usize, k: usize, memoize: bool) -> Self {
        SignatureMemo {
            memo: vec![vec![0; capacity]; k + 1],
            interned: vec![HashMap::new(); k + 1],
            memoize,
        }
    }

    fn signature(&mut self, g: &Graph, w: NodeId, level: usize) -> u32 {
        let cached = self.memo[level][w.index()];
        if cached != 0 {
            return cached - 1;
        }
        let sig = if level == 0 {
            g.label(w).index() as u32
        } else {
            let own = self.signature(g, w, level - 1);
            let mut parents: Vec<u32> =
                g.pred(w).map(|p| self.signature(g, p, level - 1)).collect();
            parents.sort_unstable();
            parents.dedup();
            let table = &mut self.interned[level];
            let next = table.len() as u32;
            *table.entry((own, parents)).or_insert(next)
        };
        if self.memoize {
            self.memo[level][w.index()] = sig + 1;
        }
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::akindex::AkIndex;
    use crate::reference;
    use xsi_graph::GraphBuilder;

    fn graph() -> (Graph, std::collections::BTreeMap<u64, NodeId>) {
        GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "B"), (3, "C"), (4, "B"), (5, "C"), (6, "C")])
            .edges(&[(1, 2), (2, 3), (4, 5), (1, 6)])
            .root_to(1)
            .root_to(4)
            .build_with_ids()
    }

    #[test]
    fn build_matches_minimum() {
        let (g, _) = graph();
        for k in 0..=3 {
            let simple = SimpleAkIndex::build(&g, k);
            let exact = AkIndex::build(&g, k);
            assert_eq!(simple.block_count(), exact.block_count(), "k={k}");
            assert_eq!(simple.canonical(&g), exact.canonical());
        }
    }

    #[test]
    fn updates_stay_safe_but_grow() {
        // Random-ish toggles: the simple index must always be a
        // *refinement* of the true minimum (safe for queries), and its
        // size must never be smaller.
        let (mut g, ids) = graph();
        let mut simple = SimpleAkIndex::build(&g, 2);
        let pairs = [(3u64, 4u64), (5, 1), (6, 4), (3, 4), (5, 1)];
        for &(a, b) in &pairs {
            if g.has_edge(ids[&a], ids[&b]) {
                simple.delete_edge(&mut g, ids[&a], ids[&b]).unwrap();
            } else {
                simple
                    .insert_edge(&mut g, ids[&a], ids[&b], EdgeKind::IdRef)
                    .unwrap();
            }
            let exact = AkIndex::build(&g, 2);
            assert!(simple.block_count() >= exact.block_count());
            // Refinement: same simple-block ⇒ same exact-block.
            let sa = simple.assignment(&g);
            let ea = exact.assignment(&g, 2);
            let mut map: HashMap<u32, u32> = HashMap::new();
            for n in g.nodes() {
                let e = map.entry(sa[n.index()]).or_insert(ea[n.index()]);
                assert_eq!(*e, ea[n.index()], "simple index not a refinement");
            }
        }
    }

    #[test]
    fn signature_memo_consistent_with_reference() {
        let (g, _) = graph();
        for k in 0..=3 {
            let mut memo = SignatureMemo::new(g.capacity(), k, true);
            let chain = reference::k_bisim_chain(&g, k);
            // Equal reference classes ⇔ equal signatures.
            let mut sig_of_class: HashMap<u32, u32> = HashMap::new();
            let mut class_of_sig: HashMap<u32, u32> = HashMap::new();
            for n in g.nodes() {
                let s = memo.signature(&g, n, k);
                let c = chain[k][n.index()];
                assert_eq!(*sig_of_class.entry(c).or_insert(s), s);
                assert_eq!(*class_of_sig.entry(s).or_insert(c), c);
            }
        }
    }

    #[test]
    fn memoization_does_not_change_results() {
        let (mut g1, ids) = graph();
        let mut g2 = g1.clone();
        let mut memo = SimpleAkIndex::build(&g1, 3);
        let mut exact = SimpleAkIndex::build(&g2, 3).with_memoization(false);
        for &(a, b) in &[(3u64, 4u64), (5, 1), (6, 4)] {
            memo.insert_edge(&mut g1, ids[&a], ids[&b], EdgeKind::IdRef)
                .unwrap();
            exact
                .insert_edge(&mut g2, ids[&a], ids[&b], EdgeKind::IdRef)
                .unwrap();
            assert_eq!(memo.canonical(&g1), exact.canonical(&g2));
        }
    }

    #[test]
    fn rebuild_restores_minimum() {
        let (mut g, ids) = graph();
        let mut simple = SimpleAkIndex::build(&g, 2);
        simple
            .insert_edge(&mut g, ids[&3], ids[&4], EdgeKind::IdRef)
            .unwrap();
        simple
            .insert_edge(&mut g, ids[&5], ids[&1], EdgeKind::IdRef)
            .unwrap();
        let rebuilt = SimpleAkIndex::build(&g, 2);
        let exact = AkIndex::build(&g, 2);
        assert_eq!(rebuilt.block_count(), exact.block_count());
        assert!(simple.block_count() >= rebuilt.block_count());
    }
}
