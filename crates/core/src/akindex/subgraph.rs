//! Subgraph addition and removal for the A(k)-index.
//!
//! Section 6 of the paper: "subgraph addition can be done in a very
//! similar way as we did for the 1-index" (it is not evaluated there).
//! This implementation takes the simple-and-provably-right route: nodes
//! are registered individually (joining the parentless chain for their
//! label) and every edge — internal and boundary — flows through the
//! maintained edge-update algorithm, so the Theorem 2 guarantee (the
//! chain stays minimum) holds at every intermediate step by construction.
//! A batched variant in the spirit of Figure 6 would only change
//! constants, not the guarantee.

use super::AkIndex;
use crate::stats::UpdateStats;
use xsi_graph::{DetachedSubgraph, Graph, GraphError, NodeId};

impl AkIndex {
    /// Adds a detached subgraph: materializes its nodes in `g`, then
    /// feeds internal and boundary edges through incremental maintenance.
    /// Returns the local→host mapping and accumulated statistics.
    pub fn add_subgraph(
        &mut self,
        g: &mut Graph,
        sub: &DetachedSubgraph,
    ) -> Result<(Vec<NodeId>, UpdateStats), GraphError> {
        let mut stats = UpdateStats {
            no_op: false,
            ..UpdateStats::default()
        };
        // Nodes first (edge-free), then edges one at a time.
        let mut map = Vec::with_capacity(sub.node_count());
        for local in 0..sub.node_count() as u32 {
            let n = g.add_node(sub.label(local), None);
            self.on_node_added(g, n);
            map.push(n);
        }
        for &(lu, lv, kind) in sub.internal_edges() {
            g.insert_edge(map[lu as usize], map[lv as usize], kind)?;
            stats.absorb(&self.notify_edge_inserted(g, map[lu as usize], map[lv as usize]));
        }
        for &(host, local, kind) in &sub.incoming {
            g.insert_edge(host, map[local as usize], kind)?;
            stats.absorb(&self.notify_edge_inserted(g, host, map[local as usize]));
        }
        for &(local, host, kind) in &sub.outgoing {
            g.insert_edge(map[local as usize], host, kind)?;
            stats.absorb(&self.notify_edge_inserted(g, map[local as usize], host));
        }
        stats.final_blocks = self.block_count();
        Ok((map, stats))
    }

    /// Removes the given member nodes from graph and index: every incident
    /// edge is deleted through maintenance, then the bare nodes are
    /// detached — the inverse of [`AkIndex::add_subgraph`].
    pub fn remove_subgraph(
        &mut self,
        g: &mut Graph,
        members: &[NodeId],
    ) -> Result<UpdateStats, GraphError> {
        let mut stats = UpdateStats {
            no_op: false,
            ..UpdateStats::default()
        };
        let member_set: std::collections::HashSet<NodeId> = members.iter().copied().collect();
        for &m in members {
            let in_edges: Vec<NodeId> = g.pred(m).filter(|p| !member_set.contains(p)).collect();
            for p in in_edges {
                g.delete_edge(p, m)?;
                stats.absorb(&self.notify_edge_deleted(g, p, m));
            }
            let out_edges: Vec<NodeId> = g.succ(m).filter(|c| !member_set.contains(c)).collect();
            for c in out_edges {
                g.delete_edge(m, c)?;
                stats.absorb(&self.notify_edge_deleted(g, m, c));
            }
        }
        for &m in members {
            let internal: Vec<NodeId> = g.succ(m).collect();
            for c in internal {
                g.delete_edge(m, c)?;
                stats.absorb(&self.notify_edge_deleted(g, m, c));
            }
        }
        for &m in members {
            self.on_node_removing(g, m);
            g.remove_node(m)?;
        }
        stats.final_blocks = self.block_count();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsi_graph::{extract_subtree, EdgeKind, GraphBuilder};

    fn assert_minimum(g: &Graph, idx: &AkIndex) {
        idx.check_consistency(g).unwrap();
        assert_eq!(idx.canonical(), AkIndex::build(g, idx.k()).canonical());
    }

    fn host() -> (Graph, std::collections::BTreeMap<u64, NodeId>) {
        GraphBuilder::new()
            .nodes(&[
                (1, "site"),
                (2, "auction"),
                (3, "item"),
                (4, "auction"),
                (5, "item"),
            ])
            .edges(&[(1, 2), (2, 3), (1, 4), (4, 5)])
            .idref_edges(&[(3, 4)])
            .root_to(1)
            .build_with_ids()
    }

    #[test]
    fn add_twin_auction_merges_into_existing_blocks() {
        let (g, ids) = host();
        for k in 1..=3 {
            let mut g = g.clone();
            let mut idx = AkIndex::build(&g, k);
            let mut sub = DetachedSubgraph::new();
            let a = sub.add_node("auction", None);
            let i = sub.add_node("item", None);
            sub.add_edge(a, i, EdgeKind::Child);
            sub.incoming.push((ids[&1], a, EdgeKind::Child));
            let (map, stats) = idx.add_subgraph(&mut g, &sub).unwrap();
            assert!(!stats.no_op);
            assert_minimum(&g, &idx);
            // The new auction has the same k-context as auction 2 (child
            // of site, no IDREF in-edges — auction 4 has one from item 3).
            assert_eq!(idx.block_of(map[0]), idx.block_of(ids[&2]));
        }
        let _ = ids;
    }

    #[test]
    fn extract_remove_re_add_round_trip() {
        let (mut g, ids) = host();
        let mut idx = AkIndex::build(&g, 2);
        let sizes_before: usize = idx.block_count();
        let (sub, members) = extract_subtree(&g, ids[&2]);
        idx.remove_subgraph(&mut g, &members).unwrap();
        assert_minimum(&g, &idx);
        idx.add_subgraph(&mut g, &sub).unwrap();
        assert_minimum(&g, &idx);
        assert_eq!(idx.block_count(), sizes_before);
    }

    #[test]
    fn remove_everything_leaves_root() {
        let (mut g, ids) = host();
        let mut idx = AkIndex::build(&g, 3);
        let (_, members) = extract_subtree(&g, ids[&1]);
        idx.remove_subgraph(&mut g, &members).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(idx.block_count(), 1);
        assert_minimum(&g, &idx);
    }

    #[test]
    fn subgraph_with_outgoing_refs() {
        let (mut g, ids) = host();
        let mut idx = AkIndex::build(&g, 2);
        let mut sub = DetachedSubgraph::new();
        let w = sub.add_node("watcher", None);
        sub.incoming.push((ids[&1], w, EdgeKind::Child));
        sub.outgoing.push((w, ids[&2], EdgeKind::IdRef));
        sub.outgoing.push((w, ids[&4], EdgeKind::IdRef));
        idx.add_subgraph(&mut g, &sub).unwrap();
        assert_minimum(&g, &idx);
    }
}
