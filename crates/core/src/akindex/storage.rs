//! Storage accounting for Table 3 of the paper.
//!
//! The paper estimates space with a uniform cost model — "each dnode,
//! inode, or pointer takes 4 bytes" — and compares a stand-alone A(k)
//! index against the full A(0)..A(k) refinement-tree representation. The
//! stand-alone index pays for inode extents, the dnode→inode reverse map,
//! and the intra-level iedges; the chain additionally pays for interior
//! inodes, refinement-tree edges, and the inter-iedges. Table 3 reports
//! the additional storage staying below 15 % for k ≤ 5 because interior
//! levels shrink rapidly.

use super::AkIndex;

/// Byte estimates under the paper's 4-bytes-per-unit model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageReport {
    /// Extents: one 4-byte entry per dnode.
    pub extents_bytes: usize,
    /// The dnode → level-k inode reverse map: 4 bytes per dnode.
    pub reverse_map_bytes: usize,
    /// Intra-level-k iedges: two 4-byte pointers each.
    pub intra_iedge_bytes: usize,
    /// Level-k inode descriptors: 4 bytes each.
    pub leaf_inode_bytes: usize,
    /// Interior (level < k) inode descriptors: 4 bytes each.
    pub interior_inode_bytes: usize,
    /// Refinement-tree edges: one 4-byte child pointer + 4-byte parent
    /// pointer per interior link.
    pub tree_edge_bytes: usize,
    /// Inter-iedges (`E_i` maps): two 4-byte pointers each.
    pub inter_iedge_bytes: usize,
}

impl StorageReport {
    /// What a stand-alone A(k)-index must store.
    pub fn stand_alone_bytes(&self) -> usize {
        self.extents_bytes + self.reverse_map_bytes + self.intra_iedge_bytes + self.leaf_inode_bytes
    }

    /// What the full refinement-tree representation stores.
    pub fn chain_bytes(&self) -> usize {
        self.stand_alone_bytes()
            + self.interior_inode_bytes
            + self.tree_edge_bytes
            + self.inter_iedge_bytes
    }

    /// Additional storage as a fraction of the stand-alone index — the
    /// percentage row of Table 3.
    pub fn overhead_fraction(&self) -> f64 {
        (self.chain_bytes() - self.stand_alone_bytes()) as f64 / self.stand_alone_bytes() as f64
    }
}

const UNIT: usize = 4;

impl AkIndex {
    /// Computes the Table 3 storage estimate for this index.
    pub fn storage_report(&self) -> StorageReport {
        let k = self.k();
        let mut dnodes = 0usize;
        let mut intra_iedges = 0usize;
        let mut leaf_inodes = 0usize;
        for b in self.blocks_at(k) {
            leaf_inodes += 1;
            dnodes += self.extent(b).len();
            intra_iedges += self.isucc(b).count();
        }
        let mut interior_inodes = 0usize;
        let mut tree_edges = 0usize;
        let mut inter_iedges = 0usize;
        for level in 0..k {
            for b in self.blocks_at(level) {
                interior_inodes += 1;
                tree_edges += self.tree_children(b).count();
                inter_iedges += self.cross_successor_count(b);
            }
        }
        StorageReport {
            extents_bytes: dnodes * UNIT,
            reverse_map_bytes: dnodes * UNIT,
            intra_iedge_bytes: intra_iedges * 2 * UNIT,
            leaf_inode_bytes: leaf_inodes * UNIT,
            interior_inode_bytes: interior_inodes * UNIT,
            tree_edge_bytes: tree_edges * 2 * UNIT,
            inter_iedge_bytes: inter_iedges * 2 * UNIT,
        }
    }

    /// Number of distinct `E_level` inter-iedges out of `b`.
    pub(crate) fn cross_successor_count(&self, b: super::ABlockId) -> usize {
        self.blocks[b].succ_cross.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsi_graph::GraphBuilder;

    fn graph() -> xsi_graph::Graph {
        let (g, _) = GraphBuilder::new()
            .nodes(&[(1, "A"), (2, "B"), (3, "C"), (4, "B"), (5, "C")])
            .edges(&[(1, 2), (2, 3), (4, 5), (1, 4)])
            .root_to(1)
            .build_with_ids();
        g
    }

    #[test]
    fn report_components_add_up() {
        let g = graph();
        let idx = AkIndex::build(&g, 3);
        let r = idx.storage_report();
        assert_eq!(r.extents_bytes, g.node_count() * 4);
        assert_eq!(r.reverse_map_bytes, g.node_count() * 4);
        assert!(r.chain_bytes() > r.stand_alone_bytes());
        assert!(r.overhead_fraction() > 0.0);
    }

    #[test]
    fn overhead_grows_with_k() {
        let g = graph();
        let r2 = AkIndex::build(&g, 1).storage_report();
        let r4 = AkIndex::build(&g, 4).storage_report();
        // More interior levels ⇒ more chain overhead (weak monotonic).
        assert!(
            r4.chain_bytes() - r4.stand_alone_bytes() >= r2.chain_bytes() - r2.stand_alone_bytes()
        );
    }

    #[test]
    fn k_zero_has_no_overhead() {
        let g = graph();
        let r = AkIndex::build(&g, 0).storage_report();
        assert_eq!(r.chain_bytes(), r.stand_alone_bytes());
    }
}
