//! # `core::view` — frozen in-memory index views (DESIGN.md §11)
//!
//! An [`IndexSnapshot`] is a point-in-time, immutable image of a live
//! structural index, frozen in **O(blocks)**: the freeze walks the live
//! block table once and takes an `Arc` clone of each block's extent run
//! ([`crate::store::CowVec::share`]) — no node id is copied up front.
//! The writer keeps mutating the live index; its first mutation of a
//! block whose run a snapshot still shares clones exactly that run
//! (copy-on-write), leaving the snapshot's image untouched. The
//! cumulative clone count is exported as `snapshot_cow_clones` through
//! the obs layer, and the freeze itself as `snapshot_freeze_nanos`.
//!
//! The snapshot implements [`IndexQueryView`], so `xsi-query`'s
//! block-walk evaluator runs against a frozen view exactly as it does
//! against a live one — and because the snapshot owns its label strings
//! and `Arc`s (no borrows into the index or graph), it is `Send + Sync`:
//! reader threads can evaluate queries against it while the single
//! writer churns (see the `concurrent_readers` stress test in
//! `crates/tests`).
//!
//! Not to be confused with [`crate::snapshot`], which is *binary
//! persistence* — serializing an index to bytes for storage and
//! reload. A `view::IndexSnapshot` never leaves memory and shares
//! storage with the live index; a `snapshot` file is a standalone
//! byte-exact encoding. See DESIGN.md §11 for the naming rationale.
//!
//! Snapshots compare with `==` by *content* (start block, per-slot
//! label, extent, and iedge list): the conformance lab freezes a
//! replica index replayed to the same op prefix and asserts snapshot
//! equality — the oracle behind the `Freeze` scenario op.

use crate::akindex::{AkIndex, SimpleAkIndex};
use crate::index::IndexQueryView;
use crate::obs::span::{SpanGuard, SpanKind};
use crate::oneindex::OneIndex;
use std::sync::Arc;
use xsi_graph::{Graph, NodeId};

/// One frozen block: owned label, `Arc`-shared extent run, raw iedge
/// successor ids. Equality is by content (`Arc<Vec<_>>` compares the
/// pointed-to vectors).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrozenBlock {
    /// The label name shared by the block's extent (owned: the snapshot
    /// outlives any borrow of the graph's label table).
    pub label: String,
    /// The extent run, shared with the live index at freeze time. The
    /// writer clones the run on its next mutation of this block, so
    /// this image never changes.
    pub extent: Arc<Vec<NodeId>>,
    /// Raw slot ids of iedge successors, in sorted order.
    pub isucc: Vec<u32>,
}

/// An immutable point-in-time image of one structural index, keyed by
/// the live index's raw slot ids so frozen block ids remain meaningful
/// across the [`IndexQueryView`] interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexSnapshot {
    /// [`crate::index::StructuralIndex::describe`] of the source index.
    family: String,
    /// Raw slot id of the block containing the graph root.
    start: u32,
    /// Precision horizon (`None` = 1-index, `Some(k)` = A(k)).
    precise: Option<usize>,
    /// Frozen blocks keyed by raw slot id; `None` for dead slots.
    blocks: Vec<Option<FrozenBlock>>,
    /// Number of live (frozen) blocks.
    block_count: usize,
}

impl IndexSnapshot {
    /// Freezes a (split/merge or propagate) 1-index. O(blocks): one
    /// `Arc` clone per extent run, no node ids copied.
    pub fn from_one_index(g: &Graph, idx: &OneIndex, family: String) -> IndexSnapshot {
        let sp = SpanGuard::enter(SpanKind::Freeze);
        let p = idx.partition();
        let mut blocks: Vec<Option<FrozenBlock>> = Vec::new();
        let mut block_count = 0;
        for b in p.blocks() {
            let slot = b.raw() as usize;
            if blocks.len() <= slot {
                blocks.resize(slot + 1, None);
            }
            let frozen = FrozenBlock {
                label: g.labels().name(p.label(b)).to_string(),
                extent: p.share_extent(b),
                isucc: idx.isucc(b).map(|c| c.raw()).collect(),
            };
            *blocks
                .get_mut(slot)
                .expect("invariant: resized to slot + 1 just above") = Some(frozen);
            block_count += 1;
        }
        sp.add_blocks(block_count as u64);
        IndexSnapshot {
            family,
            start: idx.block_of(g.root()).raw(),
            precise: None,
            blocks,
            block_count,
        }
    }

    /// Freezes an A(k)-index's level-k layer (the query-bearing rank).
    /// O(level-k blocks), one `Arc` clone per extent run.
    pub fn from_ak_index(g: &Graph, idx: &AkIndex, family: String) -> IndexSnapshot {
        let sp = SpanGuard::enter(SpanKind::Freeze);
        let mut blocks: Vec<Option<FrozenBlock>> = Vec::new();
        let mut block_count = 0;
        for b in idx.blocks_at(idx.k()) {
            let slot = b.raw() as usize;
            if blocks.len() <= slot {
                blocks.resize(slot + 1, None);
            }
            let frozen = FrozenBlock {
                label: g.labels().name(idx.label(b)).to_string(),
                extent: idx.share_extent(b),
                isucc: idx.isucc(b).map(|c| c.raw()).collect(),
            };
            *blocks
                .get_mut(slot)
                .expect("invariant: resized to slot + 1 just above") = Some(frozen);
            block_count += 1;
        }
        sp.add_blocks(block_count as u64);
        IndexSnapshot {
            family,
            start: idx.block_of(g.root()).raw(),
            precise: Some(idx.k()),
            blocks,
            block_count,
        }
    }

    /// Freezes the simple BFS-repartition baseline by *deriving* the
    /// block graph its class assignment induces on the data graph (the
    /// baseline maintains extents only, no iedges). This is the one
    /// family whose freeze is O(n + m), not O(blocks) — it materializes
    /// extents and iedges rather than sharing live runs, so its CoW
    /// clone count is always 0.
    pub fn from_simple_ak(g: &Graph, idx: &SimpleAkIndex, family: String) -> IndexSnapshot {
        let sp = SpanGuard::enter(SpanKind::Freeze);
        let classes = idx.assignment(g);
        // Compress the (arbitrary) class ids of live nodes to dense ids,
        // assigned in node-iteration order — deterministic.
        let mut dense: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut extents: Vec<Vec<NodeId>> = Vec::new();
        let mut labels: Vec<String> = Vec::new();
        let mut of = vec![u32::MAX; g.capacity()];
        for n in g.nodes() {
            let c = classes[n.index()]; // xsi-lint: allow(slice-index, assignment() is capacity-sized)
            let id = *dense.entry(c).or_insert_with(|| {
                extents.push(Vec::new());
                labels.push(g.label_name(n).to_string());
                (extents.len() - 1) as u32
            });
            extents[id as usize].push(n); // xsi-lint: allow(slice-index, id was just minted from extents.len())
            of[n.index()] = id; // xsi-lint: allow(slice-index, of is capacity-sized)
        }
        let mut isucc: Vec<std::collections::BTreeSet<u32>> =
            vec![Default::default(); extents.len()];
        for (u, v, _) in g.edges() {
            isucc[of[u.index()] as usize].insert(of[v.index()]); // xsi-lint: allow(slice-index, every live endpoint was assigned a dense id in the node loop)
        }
        let start = of[g.root().index()]; // xsi-lint: allow(slice-index, of is capacity-sized and the root is live)
        let block_count = extents.len();
        sp.add_blocks(block_count as u64);
        let blocks = extents
            .into_iter()
            .zip(labels)
            .zip(isucc)
            .map(|((e, label), s)| {
                Some(FrozenBlock {
                    label,
                    extent: Arc::new(e),
                    isucc: s.into_iter().collect(),
                })
            })
            .collect();
        IndexSnapshot {
            family,
            start,
            precise: Some(idx.k()),
            blocks,
            block_count,
        }
    }

    /// [`crate::index::StructuralIndex::describe`] of the frozen index.
    pub fn family(&self) -> &str {
        &self.family
    }

    /// Number of frozen blocks.
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// Raw slot ids of the frozen blocks, ascending.
    pub fn block_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_some())
            .map(|(i, _)| i as u32)
    }

    /// The frozen block at a raw slot id, if that slot was live at
    /// freeze time.
    pub fn block(&self, b: u32) -> Option<&FrozenBlock> {
        self.blocks.get(b as usize).and_then(Option::as_ref)
    }
}

impl crate::obs::mem::HeapUse for FrozenBlock {
    /// Label string, the (possibly shared) extent run, and the successor
    /// list. The extent `Arc` is charged here at full size — whether the
    /// live index still co-holds it is the sharing question the live
    /// side's `MemReport` answers; the snapshot always retains it.
    fn heap_use(&self) -> usize {
        self.label.capacity()
            + crate::obs::mem::arc_vec_heap(&self.extent) // xsi-lint: allow(store-discipline, read-only size probe of FrozenBlock's own field, not arena storage)
            + crate::obs::mem::vec_cap_heap(&self.isucc)
    }
}

impl crate::obs::mem::HeapUse for IndexSnapshot {
    /// Deep bytes retained by the snapshot — exported as the
    /// `snapshot_retained_bytes` gauge at freeze time.
    fn heap_use(&self) -> usize {
        self.family.capacity()
            + crate::obs::mem::vec_cap_heap(&self.blocks)
            + self
                .blocks
                .iter()
                .flatten()
                .map(crate::obs::mem::HeapUse::heap_use)
                .sum::<usize>()
    }
}

impl IndexQueryView for IndexSnapshot {
    fn start_block(&self) -> u32 {
        self.start
    }

    fn isucc(&self, b: u32) -> Vec<u32> {
        self.block(b)
            .expect("invariant: walker only visits live frozen block ids")
            .isucc
            .clone()
    }

    fn label_name(&self, b: u32) -> &str {
        &self
            .block(b)
            .expect("invariant: walker only visits live frozen block ids")
            .label
    }

    fn extent(&self, b: u32) -> &[NodeId] {
        &self
            .block(b)
            .expect("invariant: walker only visits live frozen block ids")
            // xsi-lint: allow(store-discipline, FrozenBlock's own field on an immutable snapshot — not the live arena the accessors guard)
            .extent
    }

    fn precise_up_to(&self) -> Option<usize> {
        self.precise
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{PropagateOneIndex, StructuralIndex};
    use xsi_graph::{EdgeKind, GraphBuilder};

    /// `a2` and `a3` are bisimilar, so `b4` and `b5` share a block —
    /// deleting one of the `a→b` edges forces a split of that (frozen)
    /// extent.
    fn host() -> (Graph, std::collections::BTreeMap<u64, NodeId>) {
        GraphBuilder::new()
            .nodes(&[(1, "site"), (2, "a"), (3, "a"), (4, "b"), (5, "b")])
            .edges(&[(1, 2), (1, 3), (2, 4), (3, 5)])
            .root_to(1)
            .build_with_ids()
    }

    /// Frozen views are plain owned data: sharable across threads.
    #[test]
    fn snapshots_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IndexSnapshot>();
        assert_send_sync::<FrozenBlock>();
    }

    /// The acceptance-criteria unit test: `freeze()` copies no extent
    /// node runs up front — the CoW clone count starts at 0 and stays 0
    /// until the writer actually mutates a frozen block.
    #[test]
    fn freeze_copies_nothing_up_front() {
        let (mut g, ids) = host();
        let mut idx = OneIndex::build(&g);
        let snap = StructuralIndex::freeze(&idx, &g).unwrap();
        assert_eq!(StructuralIndex::cow_clones(&idx), 0, "freeze is copy-free");
        assert_eq!(snap.block_count(), idx.block_count());

        // First post-freeze mutation of a frozen block clones its run.
        g.delete_edge(ids[&2], ids[&4]).unwrap();
        idx.notify_edge_deleted(&g, ids[&2], ids[&4]);
        assert!(
            StructuralIndex::cow_clones(&idx) > 0,
            "writer mutation of a shared run must clone it"
        );
        // A second freeze starts sharing again without copying more.
        let before = StructuralIndex::cow_clones(&idx);
        let _snap2 = StructuralIndex::freeze(&idx, &g).unwrap();
        assert_eq!(StructuralIndex::cow_clones(&idx), before);
        drop(snap);
    }

    /// A frozen view's answers never change while the writer churns.
    #[test]
    fn frozen_views_are_isolated_from_writer_churn() {
        let (mut g, ids) = host();
        let mut one = OneIndex::build(&g);
        let mut ak = AkIndex::build(&g, 2);
        let snap_one = StructuralIndex::freeze(&one, &g).unwrap();
        let snap_ak = StructuralIndex::freeze(&ak, &g).unwrap();
        let frozen_extent: Vec<NodeId> = snap_one.extent(snap_one.start_block()).to_vec();
        let b_blocks: Vec<u32> = snap_one
            .block_ids()
            .filter(|&b| snap_one.label_name(b) == "b")
            .collect();
        assert_eq!(b_blocks.len(), 1);
        let frozen_b: Vec<NodeId> = snap_one.extent(b_blocks[0]).to_vec();

        // Churn: delete and re-insert edges, add a node.
        g.delete_edge(ids[&2], ids[&4]).unwrap();
        one.notify_edge_deleted(&g, ids[&2], ids[&4]);
        ak.notify_edge_deleted(&g, ids[&2], ids[&4]);
        let n = g.add_node("b", None);
        one.on_node_added(&g, n);
        ak.on_node_added(&g, n);
        g.insert_edge(ids[&3], n, EdgeKind::Child).unwrap();
        one.notify_edge_inserted(&g, ids[&3], n);
        ak.notify_edge_inserted(&g, ids[&3], n);

        assert_eq!(snap_one.extent(snap_one.start_block()), &frozen_extent[..]);
        assert_eq!(snap_one.extent(b_blocks[0]), &frozen_b[..]);
        assert!(
            !snap_one.extent(b_blocks[0]).contains(&n),
            "post-freeze node must not appear in the frozen view"
        );
        assert_eq!(snap_ak.precise_up_to(), Some(2));
        for b in snap_ak.block_ids() {
            assert!(!snap_ak.extent(b).contains(&n));
        }
    }

    /// Snapshot equality is by content: two identically built indexes
    /// freeze to equal snapshots; diverging the writer breaks equality
    /// with a fresh freeze but not with the old one.
    #[test]
    fn snapshot_equality_is_by_content() {
        let (g, ids) = host();
        let idx_a = OneIndex::build(&g);
        let idx_b = OneIndex::build(&g);
        let snap_a = StructuralIndex::freeze(&idx_a, &g).unwrap();
        let snap_b = StructuralIndex::freeze(&idx_b, &g).unwrap();
        assert_eq!(snap_a, snap_b);

        let mut g2 = g.clone();
        let mut idx_c = OneIndex::build(&g);
        g2.delete_edge(ids[&3], ids[&5]).unwrap();
        idx_c.notify_edge_deleted(&g2, ids[&3], ids[&5]);
        let snap_c = StructuralIndex::freeze(&idx_c, &g2).unwrap();
        assert_ne!(snap_a, snap_c);
    }

    /// All four families freeze; the propagate wrapper and the simple
    /// baseline carry their own family strings and precision horizons.
    #[test]
    fn all_four_families_freeze() {
        let (g, _) = host();
        let indexes: Vec<Box<dyn StructuralIndex>> = vec![
            Box::new(OneIndex::build(&g)),
            Box::new(PropagateOneIndex::build(&g)),
            Box::new(AkIndex::build(&g, 2)),
            Box::new(SimpleAkIndex::build(&g, 2)),
        ];
        for idx in &indexes {
            let snap = idx.freeze(&g).unwrap_or_else(|| {
                panic!("{} must support freeze", idx.describe());
            });
            assert_eq!(snap.family(), idx.describe());
            assert!(snap.block_count() > 0);
            assert_eq!(
                snap.label_name(snap.start_block()),
                "ROOT",
                "{}",
                idx.describe()
            );
        }
    }
}
