//! Robustness property tests: the parser must never panic — arbitrary
//! byte soup yields either a parsed document or a structured error, and
//! near-valid documents (random mutations of valid XML) are handled the
//! same way.

use proptest::prelude::*;
use xsi_xml::{parse_str, ParseOptions, SerializeOptions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary strings never panic the parser.
    #[test]
    fn arbitrary_input_never_panics(input in ".{0,200}") {
        let _ = parse_str(&input, &ParseOptions::default());
    }

    /// Markup-flavored soup (higher density of XML metacharacters) never
    /// panics either.
    #[test]
    fn markup_soup_never_panics(input in "[<>/a-c'\"=\\[\\]&;! ?-]{0,120}") {
        let _ = parse_str(&input, &ParseOptions::default());
    }

    /// Mutating one byte of a valid document never panics, and if it
    /// still parses, the result is internally consistent.
    #[test]
    fn mutated_valid_document(pos in 0usize..100, byte in 0u8..128) {
        let valid = r#"<db><a id="x" n="1">text</a><b ref="x"><c/></b></db>"#;
        let mut bytes = valid.as_bytes().to_vec();
        bytes[pos % valid.len()] = byte;
        if let Ok(s) = String::from_utf8(bytes) {
            if let Ok(doc) = parse_str(&s, &ParseOptions::default()) {
                doc.graph.check_consistency().unwrap();
                // And serialization of whatever parsed must succeed
                // (parse always yields a containment tree).
                xsi_xml::serialize(&doc.graph, &SerializeOptions::default()).unwrap();
            }
        }
    }
}
