//! Robustness tests: the parser must never panic — arbitrary byte soup
//! yields either a parsed document or a structured error, and near-valid
//! documents (random mutations of valid XML) are handled the same way.
//! Driven by the in-repo seeded PRNG so tier-1 runs fully offline.

use xsi_workload::SplitMix64;
use xsi_xml::{parse_str, ParseOptions, SerializeOptions};

fn random_string(rng: &mut SplitMix64, alphabet: &[u8], max_len: usize) -> String {
    let len = rng.random_range(0..=max_len);
    (0..len)
        .map(|_| alphabet[rng.random_range(0..alphabet.len())] as char)
        .collect()
}

/// Arbitrary strings never panic the parser.
#[test]
fn arbitrary_input_never_panics() {
    // Printable ASCII plus a couple of controls and a multi-byte char.
    let mut alphabet: Vec<u8> = (0x20..0x7f).collect();
    alphabet.extend([b'\n', b'\t']);
    for case in 0..512u64 {
        let mut rng = SplitMix64::seed_from_u64(0x50A9 + case);
        let mut input = random_string(&mut rng, &alphabet, 200);
        if rng.random_bool(0.3) {
            input.push('é'); // exercise non-ASCII UTF-8 too
        }
        let _ = parse_str(&input, &ParseOptions::default());
    }
}

/// Markup-flavored soup (higher density of XML metacharacters) never
/// panics either.
#[test]
fn markup_soup_never_panics() {
    let alphabet = b"<>/abc'\"=[]&;! ?-";
    for case in 0..512u64 {
        let mut rng = SplitMix64::seed_from_u64(0xBEEF + case);
        let input = random_string(&mut rng, alphabet, 120);
        let _ = parse_str(&input, &ParseOptions::default());
    }
}

/// Mutating one byte of a valid document never panics, and if it still
/// parses, the result is internally consistent.
#[test]
fn mutated_valid_document() {
    let valid = r#"<db><a id="x" n="1">text</a><b ref="x"><c/></b></db>"#;
    for case in 0..512u64 {
        let mut rng = SplitMix64::seed_from_u64(0x3117 + case);
        let pos = rng.random_range(0..valid.len());
        let byte = rng.random_range(0..128usize) as u8;
        let mut bytes = valid.as_bytes().to_vec();
        bytes[pos] = byte;
        if let Ok(s) = String::from_utf8(bytes) {
            if let Ok(doc) = parse_str(&s, &ParseOptions::default()) {
                doc.graph.check_consistency().unwrap();
                // And serialization of whatever parsed must succeed
                // (parse always yields a containment tree).
                xsi_xml::serialize(&doc.graph, &SerializeOptions::default()).unwrap();
            }
        }
    }
}
