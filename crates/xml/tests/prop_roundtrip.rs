//! Randomized test: serialize(graph) → parse → graph is an ordered
//! isomorphism, for arbitrary containment trees with IDREF edges, values
//! and attribute nodes — including values containing XML metacharacters.
//! A seeded in-repo PRNG replaces proptest so tier-1 runs fully offline.

use xsi_graph::{EdgeKind, Graph, NodeId};
use xsi_workload::SplitMix64;
use xsi_xml::{parse_str, serialize, ParseOptions, SerializeOptions};

#[derive(Debug, Clone)]
struct TreeSpec {
    /// parent[i] < i + 1 positions each node under an earlier one.
    parents: Vec<usize>,
    labels: Vec<u8>,
    values: Vec<Option<String>>,
    attrs: Vec<Option<(u8, String)>>,
    idrefs: Vec<(usize, usize)>,
}

/// Exercise escaping: include &, <, >, quotes; avoid leading/trailing
/// whitespace (the parser trims text) and inner whitespace runs (text
/// concatenation normalizes them to single spaces).
fn random_value(rng: &mut SplitMix64) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz\
                              ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789&<>'\"";
    let len = rng.random_range(1..=12usize);
    (0..len)
        .map(|_| ALPHABET[rng.random_range(0..ALPHABET.len())] as char)
        .collect()
}

fn random_tree(rng: &mut SplitMix64) -> TreeSpec {
    let n = rng.random_range(1..12usize);
    let parents = (0..n)
        .map(|i| if i == 0 { 0 } else { rng.random_range(0..=i) })
        .collect();
    let labels = (0..n).map(|_| rng.random_range(0..4usize) as u8).collect();
    let values = (0..n)
        .map(|_| rng.random_bool(0.5).then(|| random_value(rng)))
        .collect();
    let attrs = (0..n)
        .map(|_| {
            rng.random_bool(0.5)
                .then(|| (rng.random_range(0..3usize) as u8, random_value(rng)))
        })
        .collect();
    let idrefs = (0..rng.random_range(0..4usize))
        .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
        .collect();
    TreeSpec {
        parents,
        labels,
        values,
        attrs,
        idrefs,
    }
}

fn build(spec: &TreeSpec) -> Graph {
    let labels = ["alpha", "beta", "gamma", "delta"];
    let attr_names = ["@size", "@color", "@lang"];
    let mut g = Graph::new();
    let mut nodes: Vec<NodeId> = Vec::new();
    for i in 0..spec.parents.len() {
        let n = g.add_node(labels[spec.labels[i] as usize], spec.values[i].clone());
        let parent = if i == 0 {
            g.root()
        } else {
            nodes[spec.parents[i].min(i - 1)]
        };
        g.insert_edge(parent, n, EdgeKind::Child).unwrap();
        nodes.push(n);
        if let Some((a, v)) = &spec.attrs[i] {
            let attr = g.add_node(attr_names[*a as usize], Some(v.clone()));
            g.insert_edge(n, attr, EdgeKind::Child).unwrap();
        }
    }
    for &(u, v) in &spec.idrefs {
        if u != v {
            let _ = g.insert_edge(nodes[u], nodes[v], EdgeKind::IdRef);
        }
    }
    g
}

/// Parallel-DFS ordered isomorphism check (same shape, labels, values and
/// IdRef structure through the visit correspondence).
fn assert_ordered_isomorphic(a: &Graph, b: &Graph) {
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.edge_count(), b.edge_count());
    let mut map = std::collections::HashMap::new();
    let mut stack = vec![(a.root(), b.root())];
    map.insert(a.root(), b.root());
    while let Some((x, y)) = stack.pop() {
        assert_eq!(a.label_name(x), b.label_name(y));
        assert_eq!(a.value(x), b.value(y), "value mismatch at {x:?}");
        let xc: Vec<NodeId> = a
            .succ_with_kind(x)
            .filter(|&(_, k)| k == EdgeKind::Child)
            .map(|(n, _)| n)
            .collect();
        let yc: Vec<NodeId> = b
            .succ_with_kind(y)
            .filter(|&(_, k)| k == EdgeKind::Child)
            .map(|(n, _)| n)
            .collect();
        assert_eq!(xc.len(), yc.len());
        for (&cx, &cy) in xc.iter().zip(&yc) {
            map.insert(cx, cy);
            stack.push((cx, cy));
        }
    }
    for (u, v, k) in a.edges() {
        if k == EdgeKind::IdRef {
            assert_eq!(b.edge_kind(map[&u], map[&v]), Some(EdgeKind::IdRef));
        }
    }
}

#[test]
fn serialize_parse_round_trip() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::seed_from_u64(0x0001_0000 + case);
        let spec = random_tree(&mut rng);
        let g = build(&spec);
        for indent in [None, Some(2)] {
            let opts = SerializeOptions {
                indent,
                ..SerializeOptions::default()
            };
            let xml = serialize(&g, &opts).unwrap();
            let reparsed = parse_str(&xml, &ParseOptions::default())
                .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e}\n{xml}"));
            assert_ordered_isomorphic(&g, &reparsed.graph);
        }
    }
}

/// Serializing the reparsed graph again yields byte-identical XML
/// (serialization is a normal form).
#[test]
fn second_serialization_is_stable() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::seed_from_u64(0x0002_0000 + case);
        let spec = random_tree(&mut rng);
        let g = build(&spec);
        let opts = SerializeOptions::default();
        let xml1 = serialize(&g, &opts).unwrap();
        let reparsed = parse_str(&xml1, &ParseOptions::default()).unwrap();
        let xml2 = serialize(&reparsed.graph, &opts).unwrap();
        assert_eq!(xml1, xml2, "case {case}");
    }
}
