//! A minimal, dependency-free XML parser producing [`xsi_graph::Graph`]s.

use std::collections::HashMap;
use std::fmt;
use xsi_graph::{EdgeKind, Graph, NodeId};

/// Parsing options controlling identity resolution.
#[derive(Clone, Debug)]
pub struct ParseOptions {
    /// Attribute names declaring an element's identifier.
    pub id_attrs: Vec<String>,
    /// Attribute names holding whitespace-separated identifier references.
    pub idref_attrs: Vec<String>,
    /// When `true`, an unresolvable reference is an error; when `false`
    /// (default) it degrades to a plain `@attr` child node.
    pub strict_refs: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            id_attrs: vec!["id".into()],
            idref_attrs: vec!["ref".into(), "refs".into(), "idref".into(), "idrefs".into()],
            strict_refs: false,
        }
    }
}

/// A parsed document: the data graph plus the identifier table.
#[derive(Debug)]
pub struct ParsedDocument {
    /// The data graph; top-level elements hang off `graph.root()`.
    pub graph: Graph,
    /// `ID` value → element node.
    pub ids: HashMap<String, NodeId>,
}

/// Parse errors, with the byte offset where they occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses an XML document (or forest of documents) into a data graph.
pub fn parse_str(input: &str, options: &ParseOptions) -> Result<ParsedDocument, ParseError> {
    Parser {
        bytes: input.as_bytes(),
        pos: 0,
        options,
        graph: Graph::new(),
        ids: HashMap::new(),
        pending_refs: Vec::new(),
    }
    .run()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    options: &'a ParseOptions,
    graph: Graph,
    ids: HashMap<String, NodeId>,
    /// `(element, attr name, raw value)` reference attributes, resolved
    /// once the whole document is read (forward references are legal).
    pending_refs: Vec<(NodeId, String, String)>,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else {
            self.err(format!("expected {s:?}"))
        }
    }

    /// Advances past `..close`, erroring at EOF.
    fn skip_until(&mut self, close: &str) -> Result<(), ParseError> {
        match find(&self.bytes[self.pos..], close.as_bytes()) {
            Some(i) => {
                self.pos += i + close.len();
                Ok(())
            }
            None => self.err(format!("unterminated section (missing {close:?})")),
        }
    }

    fn run(mut self) -> Result<ParsedDocument, ParseError> {
        let root = self.graph.root();
        let mut stack: Vec<(NodeId, String)> = Vec::new();
        loop {
            // Text up to the next markup.
            let text_start = self.pos;
            while self.peek().is_some() && self.peek() != Some(b'<') {
                self.pos += 1;
            }
            if self.pos > text_start {
                let raw = std::str::from_utf8(&self.bytes[text_start..self.pos]).map_err(|_| {
                    ParseError {
                        offset: text_start,
                        message: "invalid UTF-8".into(),
                    }
                })?;
                let decoded = decode_entities(raw, text_start)?;
                if !decoded.trim().is_empty() {
                    match stack.last() {
                        Some(&(element, _)) => self.append_text(element, decoded.trim()),
                        None => return self.err("character data outside any element"),
                    }
                }
            }
            let Some(_) = self.peek() else {
                break; // EOF
            };
            if self.starts_with("<!--") {
                self.pos += 4;
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                self.pos += 9;
                let start = self.pos;
                self.skip_until("]]>")?;
                let raw = std::str::from_utf8(&self.bytes[start..self.pos - 3]).map_err(|_| {
                    ParseError {
                        offset: start,
                        message: "invalid UTF-8 in CDATA".into(),
                    }
                })?;
                match stack.last() {
                    Some(&(element, _)) => {
                        if !raw.is_empty() {
                            self.append_text(element, raw);
                        }
                    }
                    None => return self.err("CDATA outside any element"),
                }
            } else if self.starts_with("<?") {
                self.pos += 2;
                self.skip_until("?>")?;
            } else if self.starts_with("<!") {
                // DOCTYPE and friends: skip to matching '>'. Internal
                // subsets with nested brackets are handled bracket-aware.
                self.pos += 2;
                let mut depth = 0usize;
                loop {
                    match self.peek() {
                        Some(b'[') => depth += 1,
                        Some(b']') => depth = depth.saturating_sub(1),
                        Some(b'>') if depth == 0 => {
                            self.pos += 1;
                            break;
                        }
                        Some(_) => {}
                        None => return self.err("unterminated <! section"),
                    }
                    self.pos += 1;
                }
            } else if self.starts_with("</") {
                self.pos += 2;
                let name = self.read_name()?;
                self.skip_ws();
                self.expect(">")?;
                match stack.pop() {
                    Some((_, open)) if open == name => {}
                    Some((_, open)) => {
                        return self.err(format!("mismatched close: <{open}> vs </{name}>"))
                    }
                    None => return self.err(format!("close tag </{name}> with nothing open")),
                }
            } else {
                // Start tag.
                self.expect("<")?;
                let name = self.read_name()?;
                let parent = stack.last().map(|&(n, _)| n).unwrap_or(root);
                let element = self.graph.add_node(&name, None);
                self.graph
                    .insert_edge(parent, element, EdgeKind::Child)
                    .expect("tree edge");
                // Attributes.
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(b'>') => {
                            self.pos += 1;
                            stack.push((element, name.clone()));
                            break;
                        }
                        Some(b'/') => {
                            self.expect("/>")?;
                            break;
                        }
                        Some(_) => {
                            let attr = self.read_name()?;
                            self.skip_ws();
                            self.expect("=")?;
                            self.skip_ws();
                            let value = self.read_quoted()?;
                            self.handle_attribute(element, attr, value)?;
                        }
                        None => return self.err("unterminated start tag"),
                    }
                }
            }
        }
        if let Some((_, open)) = stack.pop() {
            return self.err(format!("unclosed element <{open}>"));
        }
        self.resolve_refs()?;
        debug_assert_eq!(self.graph.check_consistency(), Ok(()));
        Ok(ParsedDocument {
            graph: self.graph,
            ids: self.ids,
        })
    }

    fn append_text(&mut self, element: NodeId, text: &str) {
        let value = match self.graph.value(element) {
            Some(existing) => format!("{existing} {text}"),
            None => text.to_string(),
        };
        self.graph.set_value(element, Some(value));
    }

    fn handle_attribute(
        &mut self,
        element: NodeId,
        name: String,
        value: String,
    ) -> Result<(), ParseError> {
        if self.options.id_attrs.contains(&name) {
            if self.ids.insert(value.clone(), element).is_some() {
                return self.err(format!("duplicate ID {value:?}"));
            }
        } else if self.options.idref_attrs.contains(&name) {
            self.pending_refs.push((element, name, value));
        } else {
            let attr_node = self.graph.add_node(&format!("@{name}"), Some(value));
            self.graph
                .insert_edge(element, attr_node, EdgeKind::Child)
                .expect("attribute edge");
        }
        Ok(())
    }

    fn resolve_refs(&mut self) -> Result<(), ParseError> {
        for (element, name, value) in std::mem::take(&mut self.pending_refs) {
            let mut unresolved = Vec::new();
            for token in value.split_whitespace() {
                match self.ids.get(token) {
                    Some(&target) => {
                        // Ignore duplicate references (set semantics).
                        let _ = self.graph.insert_edge(element, target, EdgeKind::IdRef);
                    }
                    None if self.options.strict_refs => {
                        return Err(ParseError {
                            offset: 0,
                            message: format!("unresolved reference {token:?} in @{name}"),
                        });
                    }
                    None => unresolved.push(token.to_string()),
                }
            }
            if !unresolved.is_empty() {
                let attr_node = self
                    .graph
                    .add_node(&format!("@{name}"), Some(unresolved.join(" ")));
                self.graph
                    .insert_edge(element, attr_node, EdgeKind::Child)
                    .expect("attribute edge");
            }
        }
        Ok(())
    }

    fn read_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn read_quoted(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return self.err("expected a quoted attribute value"),
        };
        self.pos += 1;
        let start = self.pos;
        while self.peek().is_some() && self.peek() != Some(quote) {
            self.pos += 1;
        }
        if self.peek() != Some(quote) {
            return self.err("unterminated attribute value");
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| ParseError {
            offset: start,
            message: "invalid UTF-8 in attribute".into(),
        })?;
        self.pos += 1;
        decode_entities(raw, start)
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Decodes the five predefined entities and numeric character references.
fn decode_entities(raw: &str, offset: usize) -> Result<String, ParseError> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest.find(';').ok_or_else(|| ParseError {
            offset,
            message: "unterminated entity reference".into(),
        })?;
        let entity = &rest[1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16).map_err(|_| ParseError {
                    offset,
                    message: format!("bad character reference &{entity};"),
                })?;
                out.push(char::from_u32(code).ok_or_else(|| ParseError {
                    offset,
                    message: format!("invalid code point &{entity};"),
                })?);
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..].parse().map_err(|_| ParseError {
                    offset,
                    message: format!("bad character reference &{entity};"),
                })?;
                out.push(char::from_u32(code).ok_or_else(|| ParseError {
                    offset,
                    message: format!("invalid code point &{entity};"),
                })?);
            }
            _ => {
                return Err(ParseError {
                    offset,
                    message: format!("unknown entity &{entity};"),
                })
            }
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> ParsedDocument {
        parse_str(s, &ParseOptions::default()).unwrap()
    }

    #[test]
    fn simple_tree() {
        let d = parse("<a><b>hello</b><c/></a>");
        let g = &d.graph;
        assert_eq!(g.node_count(), 4); // ROOT, a, b, c
        let a = g.succ(g.root()).next().unwrap();
        assert_eq!(g.label_name(a), "a");
        let labels: Vec<&str> = g.succ(a).map(|n| g.label_name(n)).collect();
        assert_eq!(labels, ["b", "c"]);
        let b = g.succ(a).next().unwrap();
        assert_eq!(g.value(b), Some("hello"));
    }

    #[test]
    fn attributes_become_nodes() {
        let d = parse(r#"<item price="10" currency="USD"/>"#);
        let g = &d.graph;
        let item = g.succ(g.root()).next().unwrap();
        let attrs: Vec<(&str, Option<&str>)> = g
            .succ(item)
            .map(|n| (g.label_name(n), g.value(n)))
            .collect();
        assert_eq!(attrs, [("@price", Some("10")), ("@currency", Some("USD"))]);
    }

    #[test]
    fn id_and_refs_resolve_across_document() {
        let d = parse(r#"<db><a ref="later"/><b id="later"/></db>"#);
        let g = &d.graph;
        assert_eq!(g.edge_count_of_kind(EdgeKind::IdRef), 1);
        let (u, v, _) = g.edges().find(|&(_, _, k)| k == EdgeKind::IdRef).unwrap();
        assert_eq!(g.label_name(u), "a");
        assert_eq!(g.label_name(v), "b");
        assert_eq!(d.ids.len(), 1);
    }

    #[test]
    fn idrefs_list() {
        let d = parse(r#"<db><w refs="x y"/><p id="x"/><q id="y"/></db>"#);
        assert_eq!(d.graph.edge_count_of_kind(EdgeKind::IdRef), 2);
    }

    #[test]
    fn unresolved_ref_degrades_to_attribute() {
        let d = parse(r#"<db><a ref="missing"/></db>"#);
        let g = &d.graph;
        assert_eq!(g.edge_count_of_kind(EdgeKind::IdRef), 0);
        let a = {
            let db = g.succ(g.root()).next().unwrap();
            g.succ(db).next().unwrap()
        };
        let attr = g.succ(a).next().unwrap();
        assert_eq!(g.label_name(attr), "@ref");
        assert_eq!(g.value(attr), Some("missing"));
    }

    #[test]
    fn unresolved_ref_strict_errors() {
        let opts = ParseOptions {
            strict_refs: true,
            ..ParseOptions::default()
        };
        assert!(parse_str(r#"<db><a ref="missing"/></db>"#, &opts).is_err());
    }

    #[test]
    fn entities_and_cdata() {
        let d = parse("<t>a &amp; b &#65; &#x42;<![CDATA[<raw>]]></t>");
        let g = &d.graph;
        let t = g.succ(g.root()).next().unwrap();
        assert_eq!(g.value(t), Some("a & b A B <raw>"));
    }

    #[test]
    fn comments_pis_doctype_skipped() {
        let d = parse(
            "<?xml version=\"1.0\"?><!DOCTYPE site [<!ELEMENT a (b)>]><!-- hi --><a><b/></a>",
        );
        assert_eq!(d.graph.node_count(), 3);
    }

    #[test]
    fn mismatched_tags_error() {
        assert!(parse_str("<a><b></a></b>", &ParseOptions::default()).is_err());
        assert!(parse_str("<a>", &ParseOptions::default()).is_err());
        assert!(parse_str("</a>", &ParseOptions::default()).is_err());
    }

    #[test]
    fn duplicate_id_errors() {
        assert!(parse_str(
            r#"<db><a id="x"/><b id="x"/></db>"#,
            &ParseOptions::default()
        )
        .is_err());
    }

    #[test]
    fn multiple_top_level_elements() {
        // A database of multiple documents under the artificial root.
        let d = parse("<doc1><x/></doc1><doc2/>");
        let g = &d.graph;
        assert_eq!(g.succ(g.root()).count(), 2);
    }

    #[test]
    fn text_outside_elements_errors() {
        assert!(parse_str("junk<a/>", &ParseOptions::default()).is_err());
    }
}
