//! # xsi-xml — XML text ↔ data graph
//!
//! A small, dependency-free XML parser and serializer that materializes
//! the paper's data model (Section 3): elements become labeled dnodes,
//! containment becomes `Child` dedges, and `ID`/`IDREF(S)` attributes
//! become `IdRef` dedges once the whole document is read.
//!
//! Supported XML subset (enough for benchmark-style documents):
//! elements, attributes, character data (with the five predefined
//! entities plus decimal/hex character references), CDATA sections,
//! comments, processing instructions and a DOCTYPE prolog (both skipped).
//! Namespaces are treated literally (prefixes stay in the label).
//!
//! Identity handling: an attribute named in
//! [`ParseOptions::id_attrs`] declares the element's identifier; an
//! attribute named in [`ParseOptions::idref_attrs`] holds one or more
//! whitespace-separated identifiers that become `IdRef` dedges. Other
//! attributes become child dnodes labeled `@name` carrying the value —
//! keeping every piece of the document addressable by path queries.
//!
//! ```
//! use xsi_xml::{parse_str, ParseOptions};
//!
//! let doc = r#"<site><person id="p0"><name>Ann</name></person>
//!              <auction><seller ref="p0"/></auction></site>"#;
//! let parsed = parse_str(doc, &ParseOptions::default()).unwrap();
//! assert_eq!(parsed.graph.edge_count_of_kind(xsi_graph::EdgeKind::IdRef), 1);
//! ```

#![forbid(unsafe_code)]

mod parser;
mod serializer;

pub use parser::{parse_str, ParseError, ParseOptions, ParsedDocument};
pub use serializer::{serialize, SerializeError, SerializeOptions};

#[cfg(test)]
mod roundtrip_tests {
    use super::*;
    use xsi_graph::{EdgeKind, Graph, NodeId};

    /// Compares two graphs for ordered isomorphism: a parallel DFS from
    /// the roots must see identical labels, values, child counts, and
    /// IdRef structure (through the visit-order correspondence).
    pub(crate) fn assert_ordered_isomorphic(a: &Graph, b: &Graph) {
        assert_eq!(a.node_count(), b.node_count(), "node counts differ");
        assert_eq!(a.edge_count(), b.edge_count(), "edge counts differ");
        let mut map: std::collections::HashMap<NodeId, NodeId> = std::collections::HashMap::new();
        let mut stack = vec![(a.root(), b.root())];
        map.insert(a.root(), b.root());
        while let Some((x, y)) = stack.pop() {
            assert_eq!(a.label_name(x), b.label_name(y), "labels differ");
            assert_eq!(a.value(x), b.value(y), "values differ at {x:?}");
            let xs: Vec<(NodeId, EdgeKind)> = a.succ_with_kind(x).collect();
            let ys: Vec<(NodeId, EdgeKind)> = b.succ_with_kind(y).collect();
            let xc: Vec<NodeId> = xs
                .iter()
                .filter(|&&(_, k)| k == EdgeKind::Child)
                .map(|&(n, _)| n)
                .collect();
            let yc: Vec<NodeId> = ys
                .iter()
                .filter(|&&(_, k)| k == EdgeKind::Child)
                .map(|&(n, _)| n)
                .collect();
            assert_eq!(xc.len(), yc.len(), "child counts differ at {x:?}");
            for (&cx, &cy) in xc.iter().zip(&yc) {
                map.insert(cx, cy);
                stack.push((cx, cy));
            }
        }
        // IdRef edges must map through the correspondence.
        for (u, v, k) in a.edges() {
            if k == EdgeKind::IdRef {
                let (mu, mv) = (map[&u], map[&v]);
                assert_eq!(
                    b.edge_kind(mu, mv),
                    Some(EdgeKind::IdRef),
                    "IdRef ({u:?}→{v:?}) not mirrored"
                );
            }
        }
    }

    #[test]
    fn parse_serialize_round_trip() {
        let doc = r#"<site>
          <people>
            <person id="p0"><name>Ann &amp; Bo</name><age>33</age></person>
            <person id="p1"><name>Cy</name></person>
          </people>
          <auctions>
            <auction id="a0"><seller ref="p0"/><watchers refs="p0 p1"/></auction>
          </auctions>
        </site>"#;
        let parsed = parse_str(doc, &ParseOptions::default()).unwrap();
        let xml = serialize(&parsed.graph, &SerializeOptions::default()).unwrap();
        let reparsed = parse_str(&xml, &ParseOptions::default()).unwrap();
        assert_ordered_isomorphic(&parsed.graph, &reparsed.graph);
    }

    #[test]
    fn generated_workload_round_trips() {
        // Serialize a generated XMark-like tree (cyclic via IDREFs) and
        // parse it back.
        let g = {
            let mut g = Graph::new();
            let root = g.root();
            let site = g.add_node("site", None);
            g.insert_edge(root, site, EdgeKind::Child).unwrap();
            let p = g.add_node("person", None);
            let a = g.add_node("auction", Some("live".into()));
            g.insert_edge(site, p, EdgeKind::Child).unwrap();
            g.insert_edge(site, a, EdgeKind::Child).unwrap();
            g.insert_edge(p, a, EdgeKind::IdRef).unwrap();
            g.insert_edge(a, p, EdgeKind::IdRef).unwrap();
            g
        };
        let xml = serialize(&g, &SerializeOptions::default()).unwrap();
        let reparsed = parse_str(&xml, &ParseOptions::default()).unwrap();
        assert_ordered_isomorphic(&g, &reparsed.graph);
    }
}
