//! Serializes a (containment-tree-shaped) data graph back to XML.
//!
//! The inverse of [`crate::parser`]: `@name` child nodes become
//! attributes, element values become character data, incoming `IdRef`
//! edges mint an `id` attribute, and outgoing `IdRef` edges are written as
//! a reference attribute listing the targets' ids.

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use xsi_graph::{EdgeKind, Graph, NodeId};

/// Serialization options.
#[derive(Clone, Debug)]
pub struct SerializeOptions {
    /// Attribute used for minted identifiers (must be in the parser's
    /// `id_attrs` for a round trip).
    pub id_attr: String,
    /// Attribute used for outgoing references (must be in the parser's
    /// `idref_attrs`).
    pub idref_attr: String,
    /// Pretty-print with this many spaces per depth, or `None` for
    /// compact output.
    pub indent: Option<usize>,
}

impl Default for SerializeOptions {
    fn default() -> Self {
        SerializeOptions {
            id_attr: "id".into(),
            idref_attr: "refs".into(),
            indent: Some(2),
        }
    }
}

/// Why serialization can fail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SerializeError {
    /// A node is reachable by `Child` edges from two different parents —
    /// the graph is not a containment tree, so it has no faithful XML
    /// rendering.
    NotATree(NodeId),
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerializeError::NotATree(n) => {
                write!(f, "node {n} has multiple containment parents")
            }
        }
    }
}

impl std::error::Error for SerializeError {}

/// Serializes `g` to XML text. Top-level elements are the `Child`
/// successors of the root.
pub fn serialize(g: &Graph, options: &SerializeOptions) -> Result<String, SerializeError> {
    // Verify tree shape over Child edges and mint ids for IdRef targets.
    let mut child_parent_seen = vec![false; g.capacity()];
    for n in g.nodes() {
        for (c, kind) in g.succ_with_kind(n) {
            if kind == EdgeKind::Child {
                if child_parent_seen[c.index()] {
                    return Err(SerializeError::NotATree(c));
                }
                child_parent_seen[c.index()] = true;
            }
        }
    }
    // Mint identifiers for IdRef targets in document (pre-order) position
    // so serialization is a normal form: serializing a reparsed document
    // yields identical text.
    let referenced: std::collections::HashSet<NodeId> = g
        .edges()
        .filter(|&(_, _, k)| k == EdgeKind::IdRef)
        .map(|(_, v, _)| v)
        .collect();
    let mut ids: HashMap<NodeId, String> = HashMap::new();
    let mut stack: Vec<NodeId> = g
        .succ_with_kind(g.root())
        .filter(|&(_, k)| k == EdgeKind::Child)
        .map(|(n, _)| n)
        .collect();
    stack.reverse(); // visit first child first
    while let Some(n) = stack.pop() {
        if referenced.contains(&n) && !ids.contains_key(&n) {
            let next = ids.len();
            ids.insert(n, format!("n{next}"));
        }
        let children: Vec<NodeId> = g
            .succ_with_kind(n)
            .filter(|&(_, k)| k == EdgeKind::Child)
            .map(|(c, _)| c)
            .collect();
        stack.extend(children.into_iter().rev());
    }

    let mut out = String::new();
    for (top, kind) in g.succ_with_kind(g.root()) {
        if kind == EdgeKind::Child {
            write_element(g, top, options, &ids, 0, &mut out);
        }
    }
    Ok(out)
}

fn write_element(
    g: &Graph,
    n: NodeId,
    options: &SerializeOptions,
    ids: &HashMap<NodeId, String>,
    depth: usize,
    out: &mut String,
) {
    let pad = |out: &mut String, depth: usize| {
        if let Some(width) = options.indent {
            for _ in 0..depth * width {
                out.push(' ');
            }
        }
    };
    let nl = |out: &mut String| {
        if options.indent.is_some() {
            out.push('\n');
        }
    };

    pad(out, depth);
    let _ = write!(out, "<{}", g.label_name(n));
    if let Some(id) = ids.get(&n) {
        let _ = write!(out, " {}=\"{}\"", options.id_attr, escape_attr(id));
    }
    let refs: Vec<&str> = g
        .succ_with_kind(n)
        .filter(|&(_, k)| k == EdgeKind::IdRef)
        .map(|(t, _)| ids[&t].as_str())
        .collect();
    if !refs.is_empty() {
        let _ = write!(out, " {}=\"{}\"", options.idref_attr, refs.join(" "));
    }
    let mut element_children = Vec::new();
    for (c, kind) in g.succ_with_kind(n) {
        if kind != EdgeKind::Child {
            continue;
        }
        let label = g.label_name(c);
        if let Some(attr) = label.strip_prefix('@') {
            let _ = write!(
                out,
                " {}=\"{}\"",
                attr,
                escape_attr(g.value(c).unwrap_or(""))
            );
        } else {
            element_children.push(c);
        }
    }

    let text = g.value(n);
    if element_children.is_empty() && text.is_none() {
        out.push_str("/>");
        nl(out);
        return;
    }
    out.push('>');
    if let Some(text) = text {
        out.push_str(&escape_text(text));
    }
    if element_children.is_empty() {
        let _ = write!(out, "</{}>", g.label_name(n));
        nl(out);
        return;
    }
    nl(out);
    for c in element_children {
        write_element(g, c, options, ids, depth + 1, out);
    }
    pad(out, depth);
    let _ = write!(out, "</{}>", g.label_name(n));
    nl(out);
}

fn escape_text(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn escape_attr(s: &str) -> String {
    escape_text(s).replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_str, ParseOptions};

    #[test]
    fn simple_output_shape() {
        let d = parse_str("<a><b>hi</b><c/></a>", &ParseOptions::default()).unwrap();
        let xml = serialize(
            &d.graph,
            &SerializeOptions {
                indent: None,
                ..SerializeOptions::default()
            },
        )
        .unwrap();
        assert_eq!(xml, "<a><b>hi</b><c/></a>");
    }

    #[test]
    fn attributes_and_refs_round() {
        let d = parse_str(
            r#"<db><p id="x" age="3"/><q ref="x"/></db>"#,
            &ParseOptions::default(),
        )
        .unwrap();
        let xml = serialize(
            &d.graph,
            &SerializeOptions {
                indent: None,
                ..SerializeOptions::default()
            },
        )
        .unwrap();
        assert!(xml.contains("age=\"3\""));
        assert!(xml.contains("refs=\"n0\""));
        assert!(xml.contains("id=\"n0\""));
    }

    #[test]
    fn escaping() {
        let d = parse_str(
            "<t a=\"q&quot;uo\">x &lt; y &amp; z</t>",
            &ParseOptions::default(),
        )
        .unwrap();
        let xml = serialize(
            &d.graph,
            &SerializeOptions {
                indent: None,
                ..SerializeOptions::default()
            },
        )
        .unwrap();
        assert!(xml.contains("x &lt; y &amp; z"));
        assert!(xml.contains("q&quot;uo"));
        // Re-parse restores the original strings.
        let d2 = parse_str(&xml, &ParseOptions::default()).unwrap();
        let t = d2.graph.succ(d2.graph.root()).next().unwrap();
        assert_eq!(d2.graph.value(t), Some("x < y & z"));
    }

    #[test]
    fn non_tree_rejected() {
        let mut g = xsi_graph::Graph::new();
        let root = g.root();
        let a = g.add_node("a", None);
        let b = g.add_node("b", None);
        let shared = g.add_node("s", None);
        g.insert_edge(root, a, EdgeKind::Child).unwrap();
        g.insert_edge(root, b, EdgeKind::Child).unwrap();
        g.insert_edge(a, shared, EdgeKind::Child).unwrap();
        g.insert_edge(b, shared, EdgeKind::Child).unwrap();
        assert_eq!(
            serialize(&g, &SerializeOptions::default()),
            Err(SerializeError::NotATree(shared))
        );
    }

    #[test]
    fn indented_output_nests() {
        let d = parse_str("<a><b><c/></b></a>", &ParseOptions::default()).unwrap();
        let xml = serialize(&d.graph, &SerializeOptions::default()).unwrap();
        assert!(xml.contains("\n    <c/>"), "{xml}");
    }
}
