//! End-to-end lab tests: the oracle harness passes on pinned seeds, the
//! mutation-smoke contract holds (planted bugs are caught, shrunk to
//! tiny reproducers, and replay deterministically), and replay files
//! round-trip through the text format.
//!
//! All randomness derives from `xsi_workload::test_seed`, so a failing
//! run can be replayed exactly with e.g.
//! `XSI_TEST_SEED=0xC0FF cargo test -p xsi-conformance`.
//! Failure messages always print the derived per-case seed.

use xsi_conformance::{generate_scenario, run_scenario, shrink, FaultSpec, GenConfig, Scenario};
use xsi_workload::test_seed;

/// The maintained indexes agree with every oracle over a spread of
/// cyclic and acyclic seed-pinned scenarios.
#[test]
fn lab_passes_on_pinned_seeds() {
    let base = test_seed(0xC0F0);
    for case in 0..24u64 {
        let seed = base.wrapping_add(case);
        let cyclic = case % 2 == 1;
        let scenario = generate_scenario(seed, &GenConfig::small(cyclic));
        if let Err(f) = run_scenario(&scenario) {
            panic!(
                "seed {seed:#x} (cyclic={cyclic}; replay with XSI_TEST_SEED={seed:#x}): {f}\n\
                 --- replay ---\n{}",
                scenario.to_replay()
            );
        }
    }
}

/// Larger/longer scenarios than the default config, to push node-id
/// reuse and deep subtree churn through every family.
#[test]
fn lab_passes_on_larger_scenarios() {
    let base = test_seed(0xBEEF);
    for case in 0..6u64 {
        let seed = base.wrapping_add(case);
        let mut cfg = GenConfig::small(case % 2 == 0);
        cfg.max_base_nodes = 16;
        cfg.max_extra_edges = 14;
        cfg.ops = 48;
        cfg.k = 3;
        let scenario = generate_scenario(seed, &cfg);
        if let Err(f) = run_scenario(&scenario) {
            panic!("seed {seed:#x} (replay with XSI_TEST_SEED={seed:#x}): {f}");
        }
    }
}

fn smoke(fault: FaultSpec) -> (Scenario, xsi_conformance::ShrinkResult) {
    xsi_conformance::silence_panics();
    let base = test_seed(1);
    let mut found = None;
    for case in 0..128u64 {
        let seed = base.wrapping_add(case);
        let mut s = generate_scenario(seed, &GenConfig::small(case % 2 == 1));
        s.fault = Some(fault);
        if run_scenario(&s).is_err() {
            found = Some(s);
            break;
        }
    }
    let s = found
        .unwrap_or_else(|| panic!("{fault:?} not convicted within 128 seeds from base {base:#x}"));
    let shrunk = shrink(&s, 500).expect("input fails, so shrinking succeeds");
    (s, shrunk)
}

/// Acceptance: a planted skip-merge bug is caught and shrinks to a
/// reproducer of at most 10 ops that replays deterministically from its
/// emitted replay text.
#[test]
fn mutation_smoke_skip_merge() {
    let (original, shrunk) = smoke(FaultSpec::SkipMerge);
    assert!(
        shrunk.scenario.ops.len() <= 10,
        "got {} ops",
        shrunk.scenario.ops.len()
    );
    assert!(shrunk.scenario.ops.len() <= original.ops.len());
    let replay = shrunk.scenario.to_replay();
    let back = Scenario::parse_replay(&replay).unwrap();
    let f1 = run_scenario(&back).expect_err("replay still fails");
    let f2 = run_scenario(&back).expect_err("replay fails twice");
    assert_eq!(f1, f2, "deterministic replay");
}

/// Same acceptance contract for the dropped-deletion fault, which is
/// detected through a different path (validity/consistency, or the
/// engine's paranoid self-check when that feature is unified in).
#[test]
fn mutation_smoke_drop_edge_delete() {
    let (_, shrunk) = smoke(FaultSpec::DropEdgeDelete { period: 2 });
    assert!(
        shrunk.scenario.ops.len() <= 10,
        "got {} ops",
        shrunk.scenario.ops.len()
    );
    let back = Scenario::parse_replay(&shrunk.scenario.to_replay()).unwrap();
    let f1 = run_scenario(&back).expect_err("replay still fails");
    let f2 = run_scenario(&back).expect_err("replay fails twice");
    assert_eq!(f1, f2);
}

/// The emitted regression test skeleton embeds a replay that parses and
/// reproduces.
#[test]
fn regression_test_emission_is_replayable() {
    let (_, shrunk) = smoke(FaultSpec::SkipMerge);
    let code = shrunk
        .scenario
        .to_regression_test("repro_demo", &shrunk.failure.to_string());
    // Extract the embedded replay from the generated source and run it.
    let start = code.find("r#\"").expect("raw string start") + 3;
    let end = code[start..].find("\"#").expect("raw string end") + start;
    let embedded = &code[start..end];
    let s = Scenario::parse_replay(embedded).unwrap();
    assert!(
        run_scenario(&s).is_err(),
        "embedded replay reproduces the failure"
    );
}

/// Regression found by the lab itself (xsi-fuzz seed 0x32): a cyclic
/// base graph whose minimum 1-index carries a self-loop iedge used to
/// panic `reconstruct_1index` during the final rebuild phase.
#[test]
fn repro_0x32_self_loop_iedge_rebuild() {
    let replay = "xsi-conformance-replay v1\n\
                  seed 0x32\n\
                  k 2\n\
                  base-node c\n\
                  base-node c\n\
                  base-edge 0 1 child\n\
                  base-edge 1 2 child\n\
                  base-edge 2 1 idref\n\
                  base-edge 0 2 child\n\
                  end\n";
    let s = Scenario::parse_replay(replay).unwrap();
    if let Err(f) = run_scenario(&s) {
        panic!("conformance regression: {f}");
    }
}
