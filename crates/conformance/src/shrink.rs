//! Delta-debugging shrinker for failing scenarios.
//!
//! Classic ddmin adapted to the scenario structure. Because op node
//! references resolve *modulo the live handle list*, deleting arbitrary
//! op subsets always yields a well-formed scenario — the key property
//! that makes naive list minimization sound here. The shrinker:
//!
//! 1. **truncates** the op tail after the failing step (ops after the
//!    conviction cannot matter);
//! 2. runs chunked ddmin over the **op list** (remove chunks of size
//!    n/2, n/4, …, 1 while the scenario still fails);
//! 3. ddmin over the **queries** (they only matter for query checks);
//! 4. ddmin over the **extra base edges** and then the **base nodes**
//!    (removing a node drops its incident base edges and renumbers the
//!    rest);
//! 5. repeats 2–4 to a fixpoint or until the probe budget runs out.
//!
//! Following standard ddmin practice, *any* failure keeps a candidate —
//! the minimized scenario may be convicted by a different check than
//! the original (both are recorded in [`ShrinkResult`]).

use crate::harness::{run_scenario, Failure};
use crate::scenario::Scenario;
use xsi_graph::EdgeKind;

/// The outcome of shrinking: the smallest failing scenario found, what
/// it fails with now, what the input failed with, and the probe spend.
#[derive(Debug)]
pub struct ShrinkResult {
    /// The minimized scenario (still failing).
    pub scenario: Scenario,
    /// The failure of the minimized scenario.
    pub failure: Failure,
    /// The failure of the original input scenario.
    pub original_failure: Failure,
    /// How many `run_scenario` probes were spent.
    pub probes: usize,
}

struct Budget {
    probes: usize,
    max: usize,
}

impl Budget {
    fn probe(&mut self, s: &Scenario) -> Option<Failure> {
        if self.probes >= self.max {
            return None; // budget exhausted ⇒ treat as "does not fail"
        }
        self.probes += 1;
        run_scenario(s).err()
    }
}

/// Minimizes `scenario` (which must fail) under a probe budget. Returns
/// `None` if the input does not actually fail.
pub fn shrink(scenario: &Scenario, max_probes: usize) -> Option<ShrinkResult> {
    let original_failure = run_scenario(scenario).err()?;
    let mut budget = Budget {
        probes: 1,
        max: max_probes.max(2),
    };

    let mut best = scenario.clone();
    let mut best_failure = original_failure.clone();

    // Step 1: truncate after the failing op.
    if let Some(step) = best_failure.step {
        if step + 1 < best.ops.len() {
            let mut cand = best.clone();
            cand.ops.truncate(step + 1);
            if let Some(f) = budget.probe(&cand) {
                best = cand;
                best_failure = f;
            }
        }
    }

    // Steps 2–5: fixpoint over the structured passes.
    loop {
        let size_before = weight(&best);

        ddmin_field(&mut best, &mut best_failure, &mut budget, |s| &mut s.ops);
        ddmin_field(&mut best, &mut best_failure, &mut budget, |s| {
            &mut s.queries
        });
        ddmin_field(&mut best, &mut best_failure, &mut budget, |s| {
            &mut s.base_edges
        });
        shrink_base_nodes(&mut best, &mut best_failure, &mut budget);

        if weight(&best) == size_before || budget.probes >= budget.max {
            break;
        }
    }

    Some(ShrinkResult {
        scenario: best,
        failure: best_failure,
        original_failure,
        probes: budget.probes,
    })
}

fn weight(s: &Scenario) -> usize {
    s.ops.len() + s.queries.len() + s.base_edges.len() + s.base_labels.len()
}

/// Chunked ddmin over one `Vec` field of the scenario.
fn ddmin_field<T: Clone>(
    best: &mut Scenario,
    best_failure: &mut Failure,
    budget: &mut Budget,
    field: impl Fn(&mut Scenario) -> &mut Vec<T>,
) {
    let mut chunk = {
        let len = field(best).len();
        if len == 0 {
            return;
        }
        (len / 2).max(1)
    };
    loop {
        let len = field(best).len();
        if len == 0 {
            break;
        }
        let mut start = 0;
        let mut removed_any = false;
        while start < field(best).len() {
            let mut cand = best.clone();
            {
                let list = field(&mut cand);
                let end = (start + chunk).min(list.len());
                list.drain(start..end);
            }
            if let Some(f) = budget.probe(&cand) {
                *best = cand;
                *best_failure = f;
                removed_any = true;
                // Do not advance: the next chunk slid into `start`.
            } else {
                start += chunk;
            }
            if budget.probes >= budget.max {
                return;
            }
        }
        if chunk == 1 {
            if !removed_any {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// Tries to remove each base node (renumbering base edges; op refs are
/// modulo-resolved and need no rewrite).
fn shrink_base_nodes(best: &mut Scenario, best_failure: &mut Failure, budget: &mut Budget) {
    let mut i = 0;
    while i < best.base_labels.len() {
        let cand = without_base_node(best, i);
        if let Some(f) = budget.probe(&cand) {
            *best = cand;
            *best_failure = f;
            // Same index now names the next node.
        } else {
            i += 1;
        }
        if budget.probes >= budget.max {
            return;
        }
    }
}

/// The scenario with base node `i` (handle `i + 1`) removed: its base
/// edges are dropped and higher handle indices shift down by one.
fn without_base_node(s: &Scenario, i: usize) -> Scenario {
    let handle = i + 1;
    let mut cand = s.clone();
    cand.base_labels.remove(i);
    let remap = |h: usize| if h > handle { h - 1 } else { h };
    cand.base_edges = s
        .base_edges
        .iter()
        .filter(|&&(u, v, _)| u != handle && v != handle)
        .map(|&(u, v, k)| (remap(u), remap(v), k))
        .collect::<Vec<(usize, usize, EdgeKind)>>();
    cand
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSpec;
    use crate::gen::{generate_scenario, GenConfig};

    /// Find a fault-convicted scenario, shrink it, and verify the
    /// acceptance contract: small reproducer, deterministic replay.
    #[test]
    fn shrinks_injected_fault_to_a_small_reproducer() {
        crate::silence_panics();
        let mut found = None;
        for seed in 0..64u64 {
            let mut s = generate_scenario(seed, &GenConfig::small(seed % 2 == 1));
            s.fault = Some(FaultSpec::SkipMerge);
            if run_scenario(&s).is_err() {
                found = Some(s);
                break;
            }
        }
        let s = found.expect("skip-merge must be convicted within 64 seeds");
        let shrunk = shrink(&s, 600).expect("input fails, so shrink returns a result");
        assert!(
            run_scenario(&shrunk.scenario).is_err(),
            "minimized scenario still fails"
        );
        assert!(
            shrunk.scenario.ops.len() <= 10,
            "acceptance: ≤ 10 ops, got {}",
            shrunk.scenario.ops.len()
        );
        assert!(shrunk.scenario.ops.len() <= s.ops.len());
        // Deterministic replay through the text format.
        let replay = shrunk.scenario.to_replay();
        let back = Scenario::parse_replay(&replay).unwrap();
        let f1 = run_scenario(&back).expect_err("replay fails");
        let f2 = run_scenario(&back).expect_err("replay fails again");
        assert_eq!(f1, f2, "replay is bit-for-bit deterministic");
    }

    #[test]
    fn shrink_on_passing_scenario_is_none() {
        let s = generate_scenario(3, &GenConfig::small(false));
        assert!(shrink(&s, 50).is_none());
    }
}
