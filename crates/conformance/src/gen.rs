//! Deterministic scenario generation.
//!
//! One seed → one [`Scenario`], bit-for-bit. The generator produces a
//! small connected base graph (every base node gets a tree edge from an
//! earlier handle, so everything is reachable from the root), optional
//! extra edges (forward-only in acyclic mode; any direction — back-edges
//! forced to `IdRef`, like the paper's cyclicity knob — in cyclic mode),
//! a stream of weighted update ops over the whole [`ScenarioOp`]
//! vocabulary, and a handful of random label-path queries.
//!
//! Acyclic mode is *best effort for the base graph*: the op stream may
//! still close a cycle later (handle-order stops being a topological
//! order once nodes are removed and ids reused), which is fine — the
//! harness detects acyclicity dynamically at every step and applies the
//! exact-equality oracle only when the graph actually is acyclic.

use crate::scenario::{Scenario, ScenarioOp};
use xsi_graph::EdgeKind;
use xsi_workload::SplitMix64;

/// The label alphabet; small on purpose so random graphs have
/// non-trivial bisimulation structure instead of all-singleton blocks.
pub const LABELS: [&str; 4] = ["a", "b", "c", "d"];

/// Knobs for [`generate_scenario`].
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum number of base nodes (≥ 2 are always generated).
    pub max_base_nodes: usize,
    /// Maximum number of *extra* base edges beyond the spanning tree.
    pub max_extra_edges: usize,
    /// Number of update ops.
    pub ops: usize,
    /// Number of label-path queries.
    pub queries: usize,
    /// Whether the base graph may contain cycles.
    pub cyclic: bool,
    /// The A(k) parameter.
    pub k: usize,
}

impl GenConfig {
    /// The default lab configuration (small graphs, dense oracle checks).
    pub fn small(cyclic: bool) -> Self {
        GenConfig {
            max_base_nodes: 10,
            max_extra_edges: 8,
            ops: 24,
            queries: 4,
            cyclic,
            k: 2,
        }
    }
}

/// Generates the scenario for `seed` under `cfg`. Deterministic.
pub fn generate_scenario(seed: u64, cfg: &GenConfig) -> Scenario {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = rng.random_range(2..=cfg.max_base_nodes.max(2));
    let base_labels: Vec<String> = (0..n)
        .map(|_| LABELS[rng.random_range(0..LABELS.len())].to_string())
        .collect();

    // Spanning tree: base node i (handle i + 1) hangs under an earlier
    // handle, so the base graph is connected and root-reachable.
    let mut base_edges: Vec<(usize, usize, EdgeKind)> = Vec::new();
    for i in 0..n {
        let parent = rng.random_range(0..=i); // handle index < i + 1
        base_edges.push((parent, i + 1, EdgeKind::Child));
    }
    // Extra edges.
    let extra = rng.random_range(0..=cfg.max_extra_edges);
    for _ in 0..extra {
        let (u, v) = if cfg.cyclic {
            (rng.random_range(0..=n), rng.random_range(1..=n))
        } else {
            // Forward in handle order keeps the base acyclic.
            let v = rng.random_range(2..=n);
            (rng.random_range(0..v), v)
        };
        if u == v || base_edges.iter().any(|&(a, b, _)| a == u && b == v) {
            continue;
        }
        // Back-edges are references, as in the paper; forward edges are
        // IdRef 30 % of the time. (`||` short-circuits, so the RNG draw
        // happens exactly when it did before — stream-compatible.)
        let kind = if (cfg.cyclic && u >= v) || rng.random_bool(0.3) {
            EdgeKind::IdRef
        } else {
            EdgeKind::Child
        };
        base_edges.push((u, v, kind));
    }

    let queries = (0..cfg.queries).map(|_| random_query(&mut rng)).collect();

    let ops = (0..cfg.ops).map(|_| random_op(&mut rng, cfg)).collect();

    Scenario {
        seed,
        k: cfg.k,
        fault: None,
        base_labels,
        base_edges,
        queries,
        ops,
    }
}

fn random_label(rng: &mut SplitMix64) -> String {
    LABELS[rng.random_range(0..LABELS.len())].to_string()
}

fn random_kind(rng: &mut SplitMix64) -> EdgeKind {
    if rng.random_bool(0.3) {
        EdgeKind::IdRef
    } else {
        EdgeKind::Child
    }
}

/// Raw handle references are drawn from a fixed range and resolved
/// modulo the live handle count, so any op is applicable at any time.
fn raw_ref(rng: &mut SplitMix64) -> usize {
    rng.random_range(0..64usize)
}

fn random_op(rng: &mut SplitMix64, cfg: &GenConfig) -> ScenarioOp {
    match rng.random_range(0..100usize) {
        0..=29 => ScenarioOp::InsertEdge {
            from: raw_ref(rng),
            to: raw_ref(rng),
            kind: random_kind(rng),
        },
        30..=49 => ScenarioOp::DeleteEdge {
            from: raw_ref(rng),
            to: raw_ref(rng),
        },
        50..=64 => ScenarioOp::AddNode {
            label: random_label(rng),
        },
        65..=74 => ScenarioOp::RemoveNode { node: raw_ref(rng) },
        75..=89 => {
            let count = rng.random_range(1..=4);
            let mut nodes = vec![(random_label(rng), 0usize)];
            for i in 1..count {
                nodes.push((random_label(rng), rng.random_range(0..i)));
            }
            ScenarioOp::AddSubtree {
                parent: raw_ref(rng),
                nodes,
            }
        }
        90..=94 => {
            let _ = cfg; // uniform across configs today; knob reserved
            ScenarioOp::RemoveSubtree { root: raw_ref(rng) }
        }
        // 5 % freeze points: frozen views are held across the remaining
        // ops and re-validated by the prefix-replay oracle at the end.
        _ => ScenarioOp::Freeze,
    }
}

/// A random label-path query: 1–3 steps, `/` or `//` axes, labels from
/// the alphabet with occasional `*`. Always parseable.
fn random_query(rng: &mut SplitMix64) -> String {
    let steps = rng.random_range(1..=3);
    let mut q = String::new();
    for _ in 0..steps {
        q.push_str(if rng.random_bool(0.35) { "//" } else { "/" });
        if rng.random_bool(0.2) {
            q.push('*');
        } else {
            q.push_str(&random_label(rng));
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsi_query::PathExpr;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::small(true);
        let a = generate_scenario(42, &cfg);
        let b = generate_scenario(42, &cfg);
        assert_eq!(a, b);
        let c = generate_scenario(43, &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_queries_always_parse() {
        for seed in 0..50 {
            let s = generate_scenario(seed, &GenConfig::small(seed % 2 == 0));
            for q in &s.queries {
                PathExpr::parse(q).unwrap_or_else(|e| panic!("seed {seed}: {q:?}: {e}"));
            }
        }
    }

    #[test]
    fn generated_scenarios_round_trip_through_replay() {
        for seed in 0..20 {
            let s = generate_scenario(seed, &GenConfig::small(seed % 2 == 1));
            let back = crate::Scenario::parse_replay(&s.to_replay()).unwrap();
            assert_eq!(s, back, "seed {seed}");
        }
    }

    #[test]
    fn base_graph_is_acyclic_when_asked() {
        // Spanning tree + forward extra edges ⇒ handle order is
        // topological for the base graph.
        for seed in 0..30 {
            let s = generate_scenario(seed, &GenConfig::small(false));
            for &(u, v, _) in &s.base_edges {
                assert!(u < v, "seed {seed}: base edge {u}->{v} is not forward");
            }
        }
    }
}
