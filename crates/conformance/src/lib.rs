//! # xsi-conformance — the differential conformance lab
//!
//! A deterministic, seed-pinned fuzzing harness that drives random
//! (cyclic *and* acyclic) graphs and random update sequences through the
//! [`xsi_core::UpdateEngine`] with **all four index families** registered
//! at once, and checks after every operation that each maintained index
//! still agrees with an independent oracle:
//!
//! * **graph + trait invariants** — `Graph::check_consistency` and every
//!   index's `StructuralIndex::check` (validity, chain stability);
//! * **1-index minimality** — [`xsi_core::check`]'s Definition-5 oracle,
//!   sound on *any* graph (Theorem 1 guarantees split/merge keeps the
//!   index minimal even when cycles make the minimum non-unique);
//! * **exactness where exactness is sound** — on acyclic graphs the
//!   1-index partition must equal the naive-fixpoint bisimulation oracle
//!   exactly (up to renumbering); on cyclic graphs it must sit between
//!   the minimum size and the node count. The A(k) chain is compared
//!   exactly against a fresh Paige–Tarjan-style rebuild on *every* graph
//!   (Theorem 2: the maintained chain is minimum on any graph);
//! * **refinement** — the `simple` baseline's partition must refine the
//!   exact k-bisimulation classes; the `propagate` baseline must stay
//!   valid and within the size bounds;
//! * **query agreement** — every generated label-path query evaluated
//!   through each index's [`xsi_core::IndexQueryView`] (the `simple`
//!   baseline through a [`DerivedView`]) must return the same node set as
//!   naive data-graph evaluation.
//!
//! When any check fails, the [`shrink`] module runs a delta-debugging
//! minimizer over the (base graph, op sequence, queries) triple and
//! emits a self-contained replay file ([`Scenario::to_replay`]) plus a
//! ready-to-paste Rust regression test
//! ([`Scenario::to_regression_test`]). The `xsi-fuzz` binary wraps all of
//! this with soak, replay and mutation-smoke modes; see EXPERIMENTS.md.
//!
//! Everything is deterministic: a scenario is fully described by its
//! seed + generator config (or its replay file), so every failure is
//! replayable bit-for-bit with `xsi-fuzz --replay <file>`.

#![forbid(unsafe_code)]

pub mod fault;
pub mod gen;
pub mod harness;
pub mod scenario;
pub mod shrink;
pub mod view;

pub use fault::{FaultSpec, FaultyOneIndex};
pub use gen::{generate_scenario, GenConfig};
pub use harness::{run_scenario, run_scenario_traced, Failure, RunReport, TRACE_CAP};
pub use scenario::{Scenario, ScenarioOp};
pub use shrink::{shrink, ShrinkResult};
pub use view::DerivedView;

/// Installs the silent postmortem hook: expected panics (the harness
/// converts them into shrinkable [`Failure`]s) stop spamming stderr
/// during soak runs and shrinking, but each one is still *captured* —
/// message, location, thread, open span stack — into the black-box slot
/// ([`xsi_core::obs::postmortem::last_capture`]), so the driver can
/// dump a postmortem for the final failure it reports. Global and
/// irreversible by design — call it from binaries and tests that probe
/// failing scenarios on purpose.
pub fn silence_panics() {
    xsi_core::obs::postmortem::arm(false);
}
