//! `xsi-fuzz` — the conformance lab's command-line front end.
//!
//! ```text
//! xsi-fuzz [--seed N] [--cases N | --soak DUR] [--k N]
//!          [--cyclic-only | --acyclic-only]
//!          [--shrink-budget N] [--out DIR]
//! xsi-fuzz --replay FILE
//! xsi-fuzz --mutation-smoke [--seed N] [--out DIR]
//! xsi-fuzz --postmortem-selftest [--out DIR]
//! ```
//!
//! * **fuzz mode** (default): runs `--cases` seed-derived scenarios
//!   (seed `base + i`; cyclic and acyclic alternate unless pinned), or
//!   as many as fit in `--soak 60s`/`2m`. On the first failure it
//!   shrinks, writes `repro-<seed>.txt` (replay) and `repro-<seed>.rs`
//!   (regression test) under `--out`, prints the replay, and exits 1.
//! * **replay mode**: re-runs a reproducer file. Exit 0 when the lab
//!   passes — or, for fault-injected reproducers, when the lab still
//!   catches the planted fault — else 1.
//! * **mutation-smoke mode**: plants each [`FaultSpec`] in turn, proves
//!   the lab convicts it, shrinks to ≤ 10 ops, writes the reproducer,
//!   re-parses it, and verifies the replay fails deterministically with
//!   the same check. Exits 0 only if every planted bug is caught.
//! * **postmortem-selftest mode**: plants a panic under an open span,
//!   proves the black-box hook captured it (message, location, span
//!   stack), writes the JSONL dump, and re-parses every line. Exits 0
//!   only when the whole capture → dump → parse loop closes; CI runs
//!   this so a broken black box cannot lurk until the first real crash.
//!
//! All randomness is SplitMix64 on the given seed; two runs with the
//! same flags are identical.

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::time::{Duration, Instant};
use xsi_conformance::{
    generate_scenario, run_scenario, run_scenario_traced, shrink, silence_panics, FaultSpec,
    GenConfig, Scenario,
};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Cyclicity {
    Alternate,
    CyclicOnly,
    AcyclicOnly,
}

struct Args {
    seed: u64,
    cases: usize,
    soak: Option<Duration>,
    k: usize,
    cyclicity: Cyclicity,
    shrink_budget: usize,
    out: std::path::PathBuf,
    replay: Option<std::path::PathBuf>,
    mutation_smoke: bool,
    postmortem_selftest: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: xsi-fuzz [--seed N] [--cases N | --soak DUR] [--k N]\n\
         \x20               [--cyclic-only | --acyclic-only] [--shrink-budget N] [--out DIR]\n\
         \x20      xsi-fuzz --replay FILE\n\
         \x20      xsi-fuzz --mutation-smoke [--seed N] [--out DIR]\n\
         \x20      xsi-fuzz --postmortem-selftest [--out DIR]"
    );
    std::process::exit(2)
}

fn parse_duration(s: &str) -> Option<Duration> {
    let s = s.trim();
    if let Some(m) = s.strip_suffix('m') {
        m.parse::<u64>().ok().map(|v| Duration::from_secs(v * 60))
    } else {
        let secs = s.strip_suffix('s').unwrap_or(s);
        secs.parse::<u64>().ok().map(Duration::from_secs)
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 1,
        cases: 100,
        soak: None,
        k: 2,
        cyclicity: Cyclicity::Alternate,
        shrink_budget: 800,
        out: "target/conformance".into(),
        replay: None,
        mutation_smoke: false,
        postmortem_selftest: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--seed" => {
                let v = value("--seed");
                args.seed = xsi_workload::parse_seed(&v).unwrap_or_else(|| {
                    eprintln!("bad --seed {v:?}");
                    usage()
                });
            }
            "--cases" => {
                args.cases = value("--cases").parse().unwrap_or_else(|_| usage());
            }
            "--soak" => {
                let v = value("--soak");
                args.soak = Some(parse_duration(&v).unwrap_or_else(|| {
                    eprintln!("bad --soak {v:?} (use 45s or 2m)");
                    usage()
                }));
            }
            "--k" => args.k = value("--k").parse().unwrap_or_else(|_| usage()),
            "--cyclic-only" => args.cyclicity = Cyclicity::CyclicOnly,
            "--acyclic-only" => args.cyclicity = Cyclicity::AcyclicOnly,
            "--shrink-budget" => {
                args.shrink_budget = value("--shrink-budget").parse().unwrap_or_else(|_| usage());
            }
            "--out" => args.out = value("--out").into(),
            "--replay" => args.replay = Some(value("--replay").into()),
            "--mutation-smoke" => args.mutation_smoke = true,
            "--postmortem-selftest" => args.postmortem_selftest = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    silence_panics(); // expected panics become shrinkable failures
    let code = if let Some(path) = &args.replay {
        replay_mode(path)
    } else if args.mutation_smoke {
        mutation_smoke(&args)
    } else if args.postmortem_selftest {
        postmortem_selftest(&args.out)
    } else {
        fuzz(&args)
    };
    std::process::exit(code);
}

fn config_for(case: usize, args: &Args) -> GenConfig {
    let cyclic = match args.cyclicity {
        Cyclicity::Alternate => case % 2 == 1,
        Cyclicity::CyclicOnly => true,
        Cyclicity::AcyclicOnly => false,
    };
    let mut cfg = GenConfig::small(cyclic);
    cfg.k = args.k;
    cfg
}

fn fuzz(args: &Args) -> i32 {
    let start = Instant::now();
    let mut case = 0usize;
    let mut applied = 0usize;
    let mut checks = 0usize;
    loop {
        match args.soak {
            Some(d) => {
                if start.elapsed() >= d {
                    break;
                }
            }
            None => {
                if case >= args.cases {
                    break;
                }
            }
        }
        let seed = args.seed.wrapping_add(case as u64);
        let scenario = generate_scenario(seed, &config_for(case, args));
        match run_scenario(&scenario) {
            Ok(report) => {
                applied += report.applied;
                checks += report.checks;
            }
            Err(failure) => {
                println!("case {case} (seed {seed:#x}) FAILED: {failure}");
                return report_failure(&scenario, args);
            }
        }
        case += 1;
    }
    println!(
        "ok: {case} scenarios, {applied} ops applied, {checks} oracle checks, {:.1}s",
        start.elapsed().as_secs_f64()
    );
    0
}

/// Proves the postmortem black box end to end on a planted panic: the
/// silent hook (installed by `silence_panics` in `main`) must capture
/// message, location, and the open span stack; the JSONL dump must
/// write; and every written line must re-parse with the in-repo JSON
/// reader. Exit 0 only when the whole loop closes.
fn postmortem_selftest(out: &std::path::Path) -> i32 {
    use xsi_core::obs::json::Json;
    use xsi_core::obs::postmortem;
    use xsi_core::obs::span::{self, SpanGuard, SpanKind};

    postmortem::clear();
    span::begin_collection();
    let unwound = std::panic::catch_unwind(|| {
        let _sp = SpanGuard::enter(SpanKind::Op);
        panic!("postmortem selftest: planted panic");
    });
    let _ = span::end_collection();
    if unwound.is_ok() {
        eprintln!("postmortem-selftest: the planted panic did not fire");
        return 1;
    }
    let Some(cap) = postmortem::last_capture() else {
        eprintln!("postmortem-selftest: the hook did not capture the panic");
        return 1;
    };
    if !cap.message.contains("planted panic") {
        eprintln!(
            "postmortem-selftest: wrong message captured: {:?}",
            cap.message
        );
        return 1;
    }
    if cap.location.is_empty() {
        eprintln!("postmortem-selftest: no panic location captured");
        return 1;
    }
    if cap.open_spans.is_empty() {
        eprintln!("postmortem-selftest: open span stack empty (hook ran after unwind?)");
        return 1;
    }
    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("postmortem-selftest: cannot create {}: {e}", out.display());
        return 1;
    }
    let path = out.join("postmortem-selftest.jsonl");
    let tail = vec!["{\"event\":\"selftest\"}".to_string()];
    let written =
        match postmortem::write_blackbox(&path, Some(&cap), &tail, Some("{\"total_bytes\":0}")) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("postmortem-selftest: black box write failed: {e}");
                return 1;
            }
        };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("postmortem-selftest: cannot re-read the black box: {e}");
            return 1;
        }
    };
    let mut kinds = Vec::new();
    for (i, line) in text.lines().enumerate() {
        match Json::parse(line) {
            Ok(v) => kinds.push(
                v.get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
            ),
            Err(e) => {
                eprintln!("postmortem-selftest: line {} does not parse: {e}", i + 1);
                return 1;
            }
        }
    }
    if kinds.len() != written || kinds.first().map(String::as_str) != Some("panic") {
        eprintln!("postmortem-selftest: dump shape wrong: {kinds:?} ({written} written)");
        return 1;
    }
    if !kinds.iter().any(|k| k == "trace") || !kinds.iter().any(|k| k == "mem-report") {
        eprintln!("postmortem-selftest: dump missing trace/mem-report lines: {kinds:?}");
        return 1;
    }
    println!(
        "postmortem-selftest: ok ({} lines, {} open spans) at {}",
        written,
        cap.open_spans.len(),
        path.display()
    );
    0
}

/// Shrinks a failing scenario and writes the reproducer pair; always
/// returns exit code 1.
fn report_failure(scenario: &Scenario, args: &Args) -> i32 {
    let Some(result) = shrink(scenario, args.shrink_budget) else {
        println!("warning: failure did not reproduce during shrinking");
        return 1;
    };
    println!(
        "shrunk to {} ops / {} base nodes in {} probes; now fails with: {}",
        result.scenario.ops.len(),
        result.scenario.base_labels.len(),
        result.probes,
        result.failure
    );
    // Re-run the shrunken scenario with the flight recorder on so the
    // reproducer carries the engine's own account of the failing op.
    let (_, trace) = run_scenario_traced(&result.scenario);
    // Panic failures also get the black box: the silent hook captured
    // the traced re-run's panic site + open spans, and the flight tail
    // above is exactly the pre-crash event stream.
    if let Some(cap) = xsi_core::obs::postmortem::last_capture() {
        let bb = args.out.join("blackbox.jsonl");
        match xsi_core::obs::postmortem::write_blackbox(&bb, Some(&cap), &trace, None) {
            Ok(lines) => println!("black box ({lines} lines): {}", bb.display()),
            Err(e) => println!("warning: could not write the black box: {e}"),
        }
    }
    match write_repro(
        &result.scenario,
        &result.failure.to_string(),
        &trace,
        &args.out,
    ) {
        Ok((txt, _rs)) => {
            println!("reproducer: {}", txt.display());
            println!("replay with: xsi-fuzz --replay {}", txt.display());
        }
        Err(e) => println!("warning: could not write reproducer: {e}"),
    }
    println!("--- replay ---\n{}", result.scenario.to_replay());
    1
}

fn write_repro(
    scenario: &Scenario,
    failure: &str,
    trace: &[String],
    out: &std::path::Path,
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    std::fs::create_dir_all(out)?;
    let fault_tag = match scenario.fault {
        Some(FaultSpec::SkipMerge) => "-skip-merge",
        Some(FaultSpec::DropEdgeDelete { .. }) => "-drop-edge-delete",
        None => "",
    };
    let stem = format!("repro-{:#x}{fault_tag}", scenario.seed);
    let txt = out.join(format!("{stem}.txt"));
    let rs = out.join(format!("{stem}.rs"));
    let mut body = scenario.to_replay();
    if !trace.is_empty() {
        body.push_str(&format!(
            "# flight-recorder trace: last {} engine events before the conviction\n\
             # (informational; `--replay` re-derives and cross-checks it)\n",
            trace.len()
        ));
        for line in trace {
            body.push_str(&format!("trace {line}\n"));
        }
    }
    std::fs::File::create(&txt)?.write_all(body.as_bytes())?;
    let test_name = format!("repro_{:x}{}", scenario.seed, fault_tag.replace('-', "_"));
    std::fs::File::create(&rs)?
        .write_all(scenario.to_regression_test(&test_name, failure).as_bytes())?;
    Ok((txt, rs))
}

fn replay_mode(path: &std::path::Path) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let scenario = match Scenario::parse_replay(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot parse {}: {e}", path.display());
            return 2;
        }
    };
    let embedded = Scenario::embedded_trace(&text);
    let (outcome, regenerated) = run_scenario_traced(&scenario);
    // A still-failing replay must regenerate the trace the reproducer
    // carries: the run is deterministic, so any divergence means the
    // engine no longer takes the recorded path. A passing replay (the
    // bug was fixed) runs further than the recorded conviction, so the
    // embedded trace is informational only there.
    if !embedded.is_empty() && outcome.is_err() && embedded != regenerated {
        println!(
            "replay FAILED: regenerated trace ({} events) diverges from the embedded one ({})",
            regenerated.len(),
            embedded.len()
        );
        for (i, (e, r)) in embedded.iter().zip(regenerated.iter()).enumerate() {
            if e != r {
                println!("  first divergence at trace line {i}:\n    embedded:    {e}\n    regenerated: {r}");
                break;
            }
        }
        return 1;
    }
    match (scenario.fault.is_some(), outcome) {
        (false, Ok(report)) => {
            println!(
                "replay ok: {} ops applied, {} checks",
                report.applied, report.checks
            );
            0
        }
        (false, Err(f)) => {
            println!("replay FAILED: {f}");
            1
        }
        (true, Err(f)) => {
            println!("replay ok: planted fault still caught ({f})");
            0
        }
        (true, Ok(_)) => {
            println!("replay FAILED: planted fault was NOT caught");
            1
        }
    }
}

/// Proves the lab catches planted maintenance bugs and shrinks them to
/// tiny deterministic reproducers. This is the credibility check the
/// whole lab rests on — see ISSUE acceptance criteria.
fn mutation_smoke(args: &Args) -> i32 {
    let faults = [
        ("skip-merge", FaultSpec::SkipMerge),
        ("drop-edge-delete", FaultSpec::DropEdgeDelete { period: 2 }),
    ];
    let mut failures = 0;
    for (name, fault) in faults {
        match smoke_one(name, fault, args) {
            Ok(summary) => println!("mutation-smoke [{name}]: {summary}"),
            Err(e) => {
                println!("mutation-smoke [{name}]: FAILED — {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!("mutation-smoke: all planted bugs caught, shrunk and replayed");
        0
    } else {
        1
    }
}

fn smoke_one(name: &str, fault: FaultSpec, args: &Args) -> Result<String, String> {
    // 1. Find a convicting scenario.
    let mut found = None;
    for case in 0..200usize {
        let seed = args.seed.wrapping_add(case as u64);
        let mut scenario = generate_scenario(seed, &config_for(case, args));
        scenario.fault = Some(fault);
        if run_scenario(&scenario).is_err() {
            found = Some(scenario);
            break;
        }
    }
    let scenario = found.ok_or_else(|| format!("{name} was not convicted within 200 seeds"))?;

    // 2. Shrink and enforce the acceptance bound.
    let result = shrink(&scenario, args.shrink_budget)
        .ok_or_else(|| "failure vanished during shrinking".to_string())?;
    if result.scenario.ops.len() > 10 {
        return Err(format!(
            "shrunk reproducer has {} ops (acceptance bound is 10)",
            result.scenario.ops.len()
        ));
    }

    // 3. Write the reproducer (with its flight-recorder trace) and
    //    replay it from disk.
    let (_, trace) = run_scenario_traced(&result.scenario);
    if trace.is_empty() {
        return Err("traced re-run produced an empty flight-recorder trace".into());
    }
    let (txt, rs) = write_repro(
        &result.scenario,
        &result.failure.to_string(),
        &trace,
        &args.out,
    )
    .map_err(|e| format!("cannot write reproducer: {e}"))?;
    let text = std::fs::read_to_string(&txt).map_err(|e| e.to_string())?;
    if Scenario::embedded_trace(&text).is_empty() {
        return Err("written reproducer carries no trace section".into());
    }
    let replayed = Scenario::parse_replay(&text).map_err(|e| format!("reproducer reparse: {e}"))?;
    let (o1, t1) = run_scenario_traced(&replayed);
    let f1 = o1.err().ok_or("replayed reproducer passed")?;
    let (o2, t2) = run_scenario_traced(&replayed);
    let f2 = o2.err().ok_or("second replay passed")?;
    if f1 != f2 {
        return Err(format!("replay is not deterministic: {f1} vs {f2}"));
    }
    if f1.check != result.failure.check {
        return Err(format!(
            "replay convicted by {} but shrink recorded {}",
            f1.check, result.failure.check
        ));
    }
    if t1 != t2 {
        return Err("replayed traces diverge between identical runs".into());
    }
    if t1 != trace {
        return Err("replayed trace diverges from the embedded one".into());
    }

    Ok(format!(
        "caught as '{}', shrunk {} → {} ops in {} probes, {} trace events, replayed from {} (test: {})",
        result.failure.check,
        scenario.ops.len(),
        result.scenario.ops.len(),
        result.probes,
        trace.len(),
        txt.display(),
        rs.display(),
    ))
}
