//! Fault injection: deliberately broken 1-index maintenance.
//!
//! The conformance lab is only trustworthy if it demonstrably *catches*
//! maintenance bugs. [`FaultyOneIndex`] registers in the engine slot the
//! harness treats as "the split/merge 1-index" but runs corrupted
//! maintenance, so a mutation-smoke run must (a) fail, (b) shrink to a
//! tiny reproducer, and (c) replay deterministically. Two fault modes
//! cover the two detection paths:
//!
//! * [`FaultSpec::SkipMerge`] — runs the split phase only (the
//!   `propagate` baseline's behaviour wearing the full algorithm's
//!   badge). The index stays *valid*, so trait-level checks pass; only
//!   the harness's Definition-5 **minimality** oracle can convict it —
//!   exactly the class of bug (a forgotten merge step) the paper's
//!   Figure 3 deletion algorithm exists to prevent.
//! * [`FaultSpec::DropEdgeDelete`] — silently drops every `period`-th
//!   edge-deletion observation, leaving stale partition state. This
//!   corrupts **validity**/consistency, so the trait-level
//!   `StructuralIndex::check` (and, under the `paranoid` feature, the
//!   engine's own per-mutation self-check) fires.

use xsi_core::{
    IndexQueryView, OneIndex, Partition, PropagateOneIndex, StructuralIndex, UpdateStats,
};
use xsi_graph::{Graph, NodeId};

/// Which maintenance bug to plant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// Never merge: run split-only maintenance while claiming to be the
    /// full split/merge algorithm. Detected by the minimality oracle.
    SkipMerge,
    /// Drop every `period`-th edge-deletion observation (1-based count).
    /// Detected by validity/consistency checks.
    DropEdgeDelete {
        /// Drop the `period`-th, `2·period`-th, … deletion observations.
        period: usize,
    },
}

enum Flavor {
    /// Full split/merge index (used by `DropEdgeDelete`, which corrupts
    /// it by withholding observations).
    Full(OneIndex),
    /// Split-only maintenance (used by `SkipMerge`).
    SplitOnly(PropagateOneIndex),
}

/// A 1-index with a planted maintenance bug (see [`FaultSpec`]).
pub struct FaultyOneIndex {
    flavor: Flavor,
    fault: FaultSpec,
    deletes_seen: usize,
}

impl FaultyOneIndex {
    /// Builds the (initially correct) minimum 1-index of `g`; the fault
    /// manifests only during maintenance.
    pub fn build(g: &Graph, fault: FaultSpec) -> Self {
        let flavor = match fault {
            FaultSpec::SkipMerge => Flavor::SplitOnly(PropagateOneIndex::build(g)),
            FaultSpec::DropEdgeDelete { .. } => Flavor::Full(OneIndex::build(g)),
        };
        FaultyOneIndex {
            flavor,
            fault,
            deletes_seen: 0,
        }
    }

    /// The underlying partition (for the harness's minimality oracle).
    pub fn partition(&self) -> &Partition {
        match &self.flavor {
            Flavor::Full(idx) => idx.partition(),
            Flavor::SplitOnly(idx) => idx.inner().partition(),
        }
    }

    /// Canonical sorted extents, like [`OneIndex::canonical`].
    pub fn canonical(&self) -> Vec<Vec<NodeId>> {
        match &self.flavor {
            Flavor::Full(idx) => idx.canonical(),
            Flavor::SplitOnly(idx) => idx.inner().canonical(),
        }
    }

    fn as_dyn(&self) -> &dyn StructuralIndex {
        match &self.flavor {
            Flavor::Full(idx) => idx,
            Flavor::SplitOnly(idx) => idx,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn StructuralIndex {
        match &mut self.flavor {
            Flavor::Full(idx) => idx,
            Flavor::SplitOnly(idx) => idx,
        }
    }
}

impl StructuralIndex for FaultyOneIndex {
    fn describe(&self) -> String {
        match self.fault {
            FaultSpec::SkipMerge => "1-index(fault:skip-merge)".into(),
            FaultSpec::DropEdgeDelete { period } => {
                format!("1-index(fault:drop-edge-delete/{period})")
            }
        }
    }

    fn block_count(&self) -> usize {
        self.as_dyn().block_count()
    }

    fn on_node_added(&mut self, g: &Graph, n: NodeId) {
        self.as_dyn_mut().on_node_added(g, n);
    }

    fn on_node_removing(&mut self, g: &Graph, n: NodeId) {
        self.as_dyn_mut().on_node_removing(g, n);
    }

    fn on_edge_inserted(&mut self, g: &Graph, u: NodeId, v: NodeId) -> UpdateStats {
        self.as_dyn_mut().on_edge_inserted(g, u, v)
    }

    fn on_edge_deleted(&mut self, g: &Graph, u: NodeId, v: NodeId) -> UpdateStats {
        if let FaultSpec::DropEdgeDelete { period } = self.fault {
            self.deletes_seen += 1;
            if period > 0 && self.deletes_seen.is_multiple_of(period) {
                // The planted bug: pretend the deletion never happened.
                return UpdateStats::default();
            }
        }
        self.as_dyn_mut().on_edge_deleted(g, u, v)
    }

    fn rebuild(&mut self, g: &Graph) {
        // Rebuild genuinely repairs the index — the realistic behaviour
        // for an incremental-maintenance bug (mutation-smoke detection
        // therefore must come from the per-op oracles, not the final
        // rebuild pass).
        self.as_dyn_mut().rebuild(g);
    }

    fn minimum_block_count(&self, g: &Graph) -> usize {
        OneIndex::build(g).block_count()
    }

    fn check(&self, g: &Graph) -> Result<(), String> {
        self.as_dyn().check(g)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn query_view<'a>(&'a self, g: &'a Graph) -> Option<Box<dyn IndexQueryView + 'a>> {
        self.as_dyn().query_view(g)
    }

    // Freezes delegate to the (corrupted) inner index: the harness's
    // prefix-replay freeze oracle must hold even for a faulty index,
    // since the replica replays the identical faulty behaviour.
    fn freeze(&self, g: &Graph) -> Option<xsi_core::IndexSnapshot> {
        self.as_dyn().freeze(g)
    }

    fn cow_clones(&self) -> u64 {
        self.as_dyn().cow_clones()
    }
}

/// Downcasts any registered 1-index-family trait object (real,
/// propagate-baseline or fault-injected) to its [`Partition`].
pub fn one_index_partition(idx: &dyn StructuralIndex) -> Option<&Partition> {
    let any = idx.as_any();
    if let Some(one) = any.downcast_ref::<OneIndex>() {
        Some(one.partition())
    } else if let Some(prop) = any.downcast_ref::<PropagateOneIndex>() {
        Some(prop.inner().partition())
    } else {
        any.downcast_ref::<FaultyOneIndex>().map(|f| f.partition())
    }
}

/// Canonical sorted extents of any registered 1-index-family object.
pub fn one_index_canonical(idx: &dyn StructuralIndex) -> Option<Vec<Vec<NodeId>>> {
    let any = idx.as_any();
    if let Some(one) = any.downcast_ref::<OneIndex>() {
        Some(one.canonical())
    } else if let Some(prop) = any.downcast_ref::<PropagateOneIndex>() {
        Some(prop.inner().canonical())
    } else {
        any.downcast_ref::<FaultyOneIndex>().map(|f| f.canonical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsi_core::check;
    use xsi_graph::EdgeKind;

    /// The skip-merge fault leaves the index valid but (after a
    /// split-then-unsplit update pair) non-minimal.
    #[test]
    fn skip_merge_breaks_minimality_not_validity() {
        let mut g = Graph::new();
        let r = g.root();
        let a = g.add_node("a", None);
        let b1 = g.add_node("b", None);
        let b2 = g.add_node("b", None);
        g.insert_edge(r, a, EdgeKind::Child).unwrap();
        g.insert_edge(a, b1, EdgeKind::Child).unwrap();
        g.insert_edge(a, b2, EdgeKind::Child).unwrap();
        let c = g.add_node("c", None);
        g.insert_edge(r, c, EdgeKind::Child).unwrap();

        let mut idx = FaultyOneIndex::build(&g, FaultSpec::SkipMerge);
        // Split {b1,b2}: b1 gains a second parent...
        g.insert_edge(c, b1, EdgeKind::IdRef).unwrap();
        idx.on_edge_inserted(&g, c, b1);
        // ...then lose it again: merge is required but skipped.
        g.delete_edge(c, b1).unwrap();
        idx.on_edge_deleted(&g, c, b1);

        assert!(idx.check(&g).is_ok(), "fault keeps the index valid");
        assert!(
            check::minimality_violation(&g, idx.partition()).is_some(),
            "skip-merge must leave mergeable blocks behind"
        );
    }

    /// The drop-edge-delete fault corrupts validity.
    #[test]
    fn drop_edge_delete_breaks_validity() {
        let mut g = Graph::new();
        let r = g.root();
        let a = g.add_node("a", None);
        let b1 = g.add_node("b", None);
        let b2 = g.add_node("b", None);
        g.insert_edge(r, a, EdgeKind::Child).unwrap();
        g.insert_edge(a, b1, EdgeKind::Child).unwrap();
        g.insert_edge(a, b2, EdgeKind::Child).unwrap();
        g.insert_edge(r, b1, EdgeKind::IdRef).unwrap();

        // Every deletion observation is dropped (period 1).
        let mut idx = FaultyOneIndex::build(&g, FaultSpec::DropEdgeDelete { period: 1 });
        g.delete_edge(r, b1).unwrap();
        idx.on_edge_deleted(&g, r, b1);
        assert!(
            idx.check(&g).is_err(),
            "stale partition after a dropped deletion must fail validity"
        );
    }
}
