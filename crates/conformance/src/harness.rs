//! The differential oracle harness: run one [`Scenario`] and convict
//! the first divergence.
//!
//! All four index families are registered in one [`UpdateEngine`] and
//! observe the same mutation stream; after **every** applied operation
//! the harness cross-examines them against independent oracles (see
//! crate docs for the soundness argument behind each check):
//!
//! | check               | applies to        | oracle                              |
//! |---------------------|-------------------|-------------------------------------|
//! | `graph-consistency` | the data graph    | `Graph::check_consistency`          |
//! | `engine-check`      | every index       | `StructuralIndex::check` (validity) |
//! | `one-minimality`    | split/merge 1-idx | Definition 5 (`check.rs`), any graph|
//! | `one-exact-acyclic` | split/merge 1-idx | naive bisimulation, acyclic only    |
//! | `one-bounds`        | split/merge 1-idx | minimum ≤ blocks ≤ nodes            |
//! | `prop-bounds`       | propagate 1-idx   | minimum ≤ blocks ≤ nodes            |
//! | `ak-exact`          | A(k) split/merge  | fresh rebuild, any graph (Thm 2)    |
//! | `ak-chain-oracle`   | A(k) split/merge  | naive k-bisim chain, any graph      |
//! | `simple-refinement` | simple A(k)       | refines exact k-bisim classes       |
//! | `query-*`           | every view        | naive data-graph evaluation         |
//! | `freeze-live-*`     | every frozen view | live view at the freeze point       |
//! | `freeze-replay-*`   | every frozen view | replica replayed to the freeze point|
//! | `final-*`           | every index       | rebuild restores the minimum        |
//!
//! The `Freeze` scenario op freezes every registered index into an
//! in-memory [`xsi_core::IndexSnapshot`]. Frozen views are validated
//! twice: immediately (their raw query answers must match the live
//! views'), and again at the *end* of the run — after arbitrary write
//! churn — against a replica engine replayed to the same op prefix
//! (`freeze-replay`: snapshot content equality plus query-answer
//! equality). Together these prove snapshot isolation: the writer's
//! post-freeze mutations never leak into a frozen view.
//!
//! Panics anywhere in the pipeline (including the engine's own
//! `paranoid`-feature self-checks) are caught per-operation and turned
//! into ordinary, shrinkable [`Failure`]s.

use crate::fault::{one_index_canonical, one_index_partition, FaultyOneIndex};
use crate::scenario::{Scenario, ScenarioOp};
use crate::view::DerivedView;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use xsi_core::obs::event::EventPayload;
use xsi_core::{
    check, reference, AkIndex, FlightRecorder, IndexHandle, IndexSnapshot, NodeRef, OneIndex,
    PropagateOneIndex, SimpleAkIndex, StructuralIndex, UpdateEngine, UpdateOp,
};
use xsi_graph::{is_acyclic, EdgeKind, Graph, NodeId};
use xsi_query::{eval_graph, eval_index, eval_index_raw, PathExpr};

/// A convicted divergence: which step (by op index; `None` for the
/// final rebuild phase), which check, and the oracle's explanation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Failure {
    /// Index into `Scenario::ops` of the op whose checks failed, or
    /// `None` when the final rebuild phase failed.
    pub step: Option<usize>,
    /// Stable check name (`one-minimality`, `panic`, `query-ak`, …).
    pub check: String,
    /// Human-readable detail from the oracle.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.step {
            Some(i) => write!(f, "[op {i}] {}: {}", self.check, self.detail),
            None => write!(f, "[final] {}: {}", self.check, self.detail),
        }
    }
}

/// Summary of a passing run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Ops that mutated the graph.
    pub applied: usize,
    /// Ops skipped by the deterministic applicability rules.
    pub skipped: usize,
    /// Total oracle check passes executed.
    pub checks: usize,
}

struct Handles {
    one: IndexHandle,
    prop: IndexHandle,
    ak: IndexHandle,
    simple: IndexHandle,
}

/// How many flight-recorder events a traced run retains (and therefore
/// how many `trace` lines a reproducer can carry).
pub const TRACE_CAP: usize = 256;

/// Runs `scenario` end to end. `Ok` means every per-op and final oracle
/// agreed; `Err` carries the first divergence.
pub fn run_scenario(scenario: &Scenario) -> Result<RunReport, Failure> {
    run_scenario_impl(scenario, false).0
}

/// Like [`run_scenario`], but with the engine's flight recorder enabled
/// ([`TRACE_CAP`] events). Returns the run outcome together with the
/// engine's own account of the tail of the run: the retained events'
/// deterministic [`stable_line`](xsi_core::obs::event::Event::stable_line)
/// projections (timestamps excluded), oldest first. The trace is
/// captured just before the final rebuild phase — on a conviction it
/// ends with the `oracle-check ... failed=true` event for the failing
/// op — and is byte-identical across replays of the same scenario.
pub fn run_scenario_traced(scenario: &Scenario) -> (Result<RunReport, Failure>, Vec<String>) {
    run_scenario_impl(scenario, true)
}

/// Builds the lab engine for a scenario: base graph, handle list, all
/// four families registered (slot 0 possibly fault-injected). Shared by
/// the main run and the freeze oracle's prefix replicas, so both evolve
/// bit-identically from the same op stream.
fn build_lab_engine(scenario: &Scenario, traced: bool) -> (UpdateEngine, Vec<NodeId>, Handles) {
    let mut g = Graph::new();
    let mut handles: Vec<NodeId> = vec![g.root()];
    for label in &scenario.base_labels {
        handles.push(g.add_node(label, None));
    }
    for &(u, v, kind) in &scenario.base_edges {
        if u < handles.len() && v < handles.len() && u != v {
            // Tolerate (skip) edges the graph rejects so hand-edited
            // replay files degrade deterministically instead of erroring.
            let _ = g.insert_edge(handles[u], handles[v], kind);
        }
    }
    let one: Box<dyn StructuralIndex> = match scenario.fault {
        Some(fault) => Box::new(FaultyOneIndex::build(&g, fault)),
        None => Box::new(OneIndex::build(&g)),
    };
    let prop = PropagateOneIndex::build(&g);
    let ak = AkIndex::build(&g, scenario.k);
    let simple = SimpleAkIndex::build(&g, scenario.k);

    let mut engine = UpdateEngine::new(g);
    if traced {
        engine
            .obs_mut()
            .set_recorder(Box::new(FlightRecorder::new(TRACE_CAP)));
    }
    let hs = Handles {
        one: engine.register(one),
        prop: engine.register(Box::new(prop)),
        ak: engine.register(Box::new(ak)),
        simple: engine.register(Box::new(simple)),
    };
    (engine, handles, hs)
}

/// Applies one scenario op to the engine (translate → batch), keeping
/// the handle list in sync. Returns whether the graph was mutated;
/// `Freeze` and deterministically inapplicable ops return `false`.
fn apply_scenario_op(
    engine: &mut UpdateEngine,
    handles: &mut Vec<NodeId>,
    op: &ScenarioOp,
) -> bool {
    let Some(batch) = translate(op, handles, engine.graph()) else {
        return false;
    };
    match engine.apply_batch(&batch) {
        Ok(result) => {
            handles.retain(|&h| engine.graph().is_alive(h));
            handles.extend(result.created);
            true
        }
        // Structurally rejected batches leave all state untouched; count
        // them as (deterministic) skips.
        Err(_) => false,
    }
}

fn run_scenario_impl(
    scenario: &Scenario,
    traced: bool,
) -> (Result<RunReport, Failure>, Vec<String>) {
    let queries: Vec<(String, PathExpr)> = scenario
        .queries
        .iter()
        .filter_map(|q| PathExpr::parse(q).ok().map(|e| (q.clone(), e)))
        .collect();
    let (mut engine, mut handles, hs) = build_lab_engine(scenario, traced);

    let mut report = RunReport::default();
    // Frozen views captured at `Freeze` ops, held across all subsequent
    // churn: (op index, per-slot snapshots in registration order).
    let mut frozen: Vec<(usize, Vec<Option<IndexSnapshot>>)> = Vec::new();

    for (i, op) in scenario.ops.iter().enumerate() {
        let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<bool, Failure> {
            if matches!(op, ScenarioOp::Freeze) {
                let snaps = engine.freeze();
                let checks = check_freeze_live(&engine, &hs, scenario.k, &queries, &snaps)
                    .map_err(|(check, detail)| Failure {
                        step: Some(i),
                        check,
                        detail,
                    })?;
                report.checks += checks;
                frozen.push((i, snaps));
                return Ok(true);
            }
            if !apply_scenario_op(&mut engine, &mut handles, op) {
                return Ok(false);
            }
            let checks =
                check_all(&engine, &hs, scenario.k, &queries).map_err(|(check, detail)| {
                    Failure {
                        step: Some(i),
                        check,
                        detail,
                    }
                })?;
            report.checks += checks;
            Ok(true)
        }));
        // One OracleCheck event per attempted op (skips included): the
        // reproducer trace shows exactly how far the oracles got.
        let failed = !matches!(outcome, Ok(Ok(_)));
        engine.obs_mut().emit(EventPayload::OracleCheck {
            checks: u32::try_from(report.checks).unwrap_or(u32::MAX),
            failed,
        });
        match outcome {
            Ok(Ok(true)) => report.applied += 1,
            Ok(Ok(false)) => report.skipped += 1,
            Ok(Err(failure)) => {
                let trace = engine.obs().stable_trace();
                return (Err(failure), trace);
            }
            Err(payload) => {
                let trace = engine.obs().stable_trace();
                return (
                    Err(Failure {
                        step: Some(i),
                        check: "panic".into(),
                        detail: panic_message(payload),
                    }),
                    trace,
                );
            }
        }
    }

    // The final phase consumes the engine; snapshot the trace first.
    let trace = engine.obs().stable_trace();

    // Freeze oracle: every view frozen mid-run must — after all the
    // churn above — still equal a replica index replayed to its freeze
    // point, in content and in query answers (snapshot isolation).
    for (i, snaps) in &frozen {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            check_freeze_replay(scenario, *i, snaps, &queries)
        }));
        match outcome {
            Ok(Ok(checks)) => report.checks += checks,
            Ok(Err((check, detail))) => {
                return (
                    Err(Failure {
                        step: Some(*i),
                        check,
                        detail,
                    }),
                    trace,
                );
            }
            Err(payload) => {
                return (
                    Err(Failure {
                        step: Some(*i),
                        check: "panic".into(),
                        detail: panic_message(payload),
                    }),
                    trace,
                );
            }
        }
    }

    // Final phase: rebuild must restore the family minimum everywhere.
    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<usize, Failure> {
        final_checks(engine).map_err(|(check, detail)| Failure {
            step: None,
            check,
            detail,
        })
    }));
    let result = match outcome {
        Ok(Ok(checks)) => {
            report.checks += checks;
            Ok(report)
        }
        Ok(Err(failure)) => Err(failure),
        Err(payload) => Err(Failure {
            step: None,
            check: "panic".into(),
            detail: panic_message(payload),
        }),
    };
    (result, trace)
}

/// Extracts a printable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Lowers a [`ScenarioOp`] to an engine batch, or `None` when the op is
/// deterministically inapplicable in the current state (see the
/// scenario module docs for the rules).
fn translate(op: &ScenarioOp, handles: &[NodeId], g: &Graph) -> Option<Vec<UpdateOp>> {
    let resolve = |raw: usize| handles[raw % handles.len()];
    match op {
        ScenarioOp::AddNode { label } => Some(vec![UpdateOp::AddNode {
            label: label.clone(),
        }]),
        ScenarioOp::InsertEdge { from, to, kind } => {
            let (u, v) = (resolve(*from), resolve(*to));
            if u == v || v == g.root() || g.has_edge(u, v) {
                return None;
            }
            Some(vec![UpdateOp::InsertEdge {
                from: NodeRef::Existing(u),
                to: NodeRef::Existing(v),
                kind: *kind,
            }])
        }
        ScenarioOp::DeleteEdge { from, to } => {
            let (u, v) = (resolve(*from), resolve(*to));
            if !g.has_edge(u, v) {
                return None;
            }
            Some(vec![UpdateOp::DeleteEdge { from: u, to: v }])
        }
        ScenarioOp::RemoveNode { node } => {
            let n = resolve(*node);
            if n == g.root() {
                return None;
            }
            Some(vec![UpdateOp::RemoveNode { node: n }])
        }
        ScenarioOp::AddSubtree { parent, nodes } => {
            let p = resolve(*parent);
            let mut batch: Vec<UpdateOp> = nodes
                .iter()
                .map(|(label, _)| UpdateOp::AddNode {
                    label: label.clone(),
                })
                .collect();
            for (i, (_, local_parent)) in nodes.iter().enumerate() {
                let from = if i == 0 {
                    NodeRef::Existing(p)
                } else {
                    NodeRef::New(*local_parent)
                };
                batch.push(UpdateOp::InsertEdge {
                    from,
                    to: NodeRef::New(i),
                    kind: EdgeKind::Child,
                });
            }
            Some(batch)
        }
        ScenarioOp::RemoveSubtree { root } => {
            let r = resolve(*root);
            if r == g.root() {
                return None;
            }
            // Child-reachable closure (the paper's subtree extraction
            // follows containment edges only).
            let mut seen: HashSet<NodeId> = HashSet::new();
            let mut order = vec![r];
            seen.insert(r);
            let mut head = 0;
            while head < order.len() {
                let u = order[head];
                head += 1;
                for (v, kind) in g.succ_with_kind(u) {
                    if kind == EdgeKind::Child && seen.insert(v) {
                        order.push(v);
                    }
                }
            }
            Some(
                order
                    .into_iter()
                    .map(|node| UpdateOp::RemoveNode { node })
                    .collect(),
            )
        }
        // Freeze never mutates the graph; the op loop handles it before
        // translation (and prefix replicas simply skip it).
        ScenarioOp::Freeze => None,
    }
}

/// All per-op oracle checks; returns the number of checks that passed.
fn check_all(
    engine: &UpdateEngine,
    hs: &Handles,
    k: usize,
    queries: &[(String, PathExpr)],
) -> Result<usize, (String, String)> {
    let mut passed = 0usize;
    let g = engine.graph();

    g.check_consistency()
        .map_err(|e| ("graph-consistency".to_string(), e))?;
    passed += 1;
    engine
        .check()
        .map_err(|e| ("engine-check".to_string(), e))?;
    passed += 1;

    let bisim = reference::bisim_classes(g);
    let minimum = reference::partition_size(g, &bisim);
    let nodes = g.node_count();
    let acyclic = is_acyclic(g);

    // --- split/merge 1-index slot (possibly fault-injected) ---
    let one = engine.index(hs.one);
    let partition = one_index_partition(one).expect("slot 0 holds a 1-index family object");
    if let Some(v) = check::minimality_violation(g, partition) {
        return Err(("one-minimality".into(), v));
    }
    passed += 1;
    let blocks = one.block_count();
    if blocks < minimum || blocks > nodes {
        return Err((
            "one-bounds".into(),
            format!("{blocks} blocks outside [{minimum}, {nodes}]"),
        ));
    }
    passed += 1;
    if acyclic {
        let canon = one_index_canonical(one).expect("1-index family object");
        let expected = reference::canonical_partition(g, &bisim);
        if canon != expected {
            return Err((
                "one-exact-acyclic".into(),
                format!(
                    "maintained partition ({} blocks) != bisimulation oracle ({} blocks)",
                    canon.len(),
                    expected.len()
                ),
            ));
        }
        passed += 1;
    }

    // --- propagate baseline: valid (engine-check) + size-bounded ---
    let prop_blocks = engine.index(hs.prop).block_count();
    if prop_blocks < minimum || prop_blocks > nodes {
        return Err((
            "prop-bounds".into(),
            format!("{prop_blocks} blocks outside [{minimum}, {nodes}]"),
        ));
    }
    passed += 1;

    // --- A(k) split/merge: exact on ANY graph (Theorem 2) ---
    let ak = engine
        .index(hs.ak)
        .as_any()
        .downcast_ref::<AkIndex>()
        .expect("slot 2 holds the A(k)-index");
    let fresh = AkIndex::build(g, k);
    if ak.canonical() != fresh.canonical() {
        return Err((
            "ak-exact".into(),
            format!(
                "maintained A({k}) has {} blocks, fresh build {}",
                ak.block_count(),
                fresh.block_count()
            ),
        ));
    }
    passed += 1;
    let chain = ak.chain_assignments(g);
    let ref_chain = reference::k_bisim_chain(g, k);
    for (level, (got, want)) in chain.iter().zip(ref_chain.iter()).enumerate() {
        if reference::canonical_partition(g, got) != reference::canonical_partition(g, want) {
            return Err((
                "ak-chain-oracle".into(),
                format!("A({level}) level disagrees with the naive k-bisimulation chain"),
            ));
        }
    }
    passed += 1;

    // --- simple baseline: must refine the exact k-bisim classes ---
    let simple = engine
        .index(hs.simple)
        .as_any()
        .downcast_ref::<SimpleAkIndex>()
        .expect("slot 3 holds the simple A(k) baseline");
    let assignment = simple.assignment(g);
    let exact = ref_chain.last().expect("chain has k+1 levels");
    let mut class_map: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for n in g.nodes() {
        let (s, e) = (assignment[n.index()], exact[n.index()]);
        match class_map.insert(s, e) {
            Some(prev) if prev != e => {
                return Err((
                    "simple-refinement".into(),
                    format!("simple class {s} straddles exact k-bisim classes {prev} and {e}"),
                ));
            }
            _ => {}
        }
    }
    passed += 1;

    // --- query agreement across every view ---
    for (text, expr) in queries {
        let mut expected = eval_graph(g, expr);
        expected.sort_unstable();
        expected.dedup();
        let derived = DerivedView::from_assignment(g, &assignment, Some(k));
        let views: [(&str, Box<dyn xsi_core::IndexQueryView + '_>); 4] = [
            ("one", one.query_view(g).expect("1-index view")),
            (
                "prop",
                engine.index(hs.prop).query_view(g).expect("propagate view"),
            ),
            ("ak", engine.index(hs.ak).query_view(g).expect("A(k) view")),
            ("simple", Box::new(derived)),
        ];
        for (name, view) in &views {
            let mut got = eval_index(g, view.as_ref(), expr);
            got.sort_unstable();
            got.dedup();
            if got != expected {
                return Err((
                    format!("query-{name}"),
                    format!(
                        "{text}: index answered {} nodes, data graph {}",
                        got.len(),
                        expected.len()
                    ),
                ));
            }
            passed += 1;
        }
    }

    Ok(passed)
}

/// Registration-order slot names for freeze-check conviction messages.
const SLOT_NAMES: [&str; 4] = ["one", "prop", "ak", "simple"];

/// At-freeze validation: every frozen view's *raw* (graph-free) query
/// answers must match the corresponding live view's raw answers at the
/// freeze point. Returns the number of checks that passed.
fn check_freeze_live(
    engine: &UpdateEngine,
    hs: &Handles,
    k: usize,
    queries: &[(String, PathExpr)],
    snaps: &[Option<IndexSnapshot>],
) -> Result<usize, (String, String)> {
    let mut passed = 0usize;
    let g = engine.graph();
    let slots = [hs.one, hs.prop, hs.ak, hs.simple];
    for (slot, (&handle, name)) in slots.iter().zip(SLOT_NAMES).enumerate() {
        let Some(snap) = snaps.get(slot).and_then(Option::as_ref) else {
            continue;
        };
        if snap.block_count() == 0 {
            return Err((
                format!("freeze-live-{name}"),
                "frozen view has no blocks".into(),
            ));
        }
        passed += 1;
        // The live reference view: the index's own query view, or the
        // assignment-derived view for the simple baseline (which has
        // none). Faulty slot-0 indexes still expose their inner view.
        let idx = engine.index(handle);
        let live: Box<dyn xsi_core::IndexQueryView + '_> = match idx.query_view(g) {
            Some(v) => v,
            None => {
                let simple = idx
                    .as_any()
                    .downcast_ref::<SimpleAkIndex>()
                    .expect("invariant: every non-simple family exposes a query view");
                Box::new(DerivedView::from_assignment(
                    g,
                    &simple.assignment(g),
                    Some(k),
                ))
            }
        };
        for (text, expr) in queries {
            let frozen_ans = eval_index_raw(snap, expr);
            let live_ans = eval_index_raw(live.as_ref(), expr);
            if frozen_ans != live_ans {
                return Err((
                    format!("freeze-live-{name}"),
                    format!(
                        "{text}: frozen view answered {} nodes, live view {}",
                        frozen_ans.len(),
                        live_ans.len()
                    ),
                ));
            }
            passed += 1;
        }
    }
    Ok(passed)
}

/// End-of-run freeze oracle: replays a fresh replica engine to the
/// freeze point (same base graph, same families, same fault, `Freeze`
/// prefix ops skipped), freezes it, and demands (a) snapshot content
/// equality and (b) raw query-answer equality per family. The original
/// snapshots were held across all post-freeze churn, so any CoW leak in
/// the live index shows up here. Returns the number of passed checks.
fn check_freeze_replay(
    scenario: &Scenario,
    freeze_op: usize,
    snaps: &[Option<IndexSnapshot>],
    queries: &[(String, PathExpr)],
) -> Result<usize, (String, String)> {
    let mut passed = 0usize;
    let (mut engine, mut handles, _hs) = build_lab_engine(scenario, false);
    for op in scenario.ops.iter().take(freeze_op) {
        apply_scenario_op(&mut engine, &mut handles, op);
    }
    let replica = engine.freeze();
    if replica.len() != snaps.len() {
        return Err((
            "freeze-replay".into(),
            format!(
                "replica froze {} slots, original {}",
                replica.len(),
                snaps.len()
            ),
        ));
    }
    for (slot, name) in SLOT_NAMES.iter().enumerate() {
        let (orig, rep) = (&snaps[slot], &replica[slot]); // xsi-lint: allow(slice-index, both vecs hold one entry per registered slot)
        if orig != rep {
            let describe = |s: &Option<IndexSnapshot>| match s {
                Some(s) => format!("{} blocks", s.block_count()),
                None => "no snapshot".into(),
            };
            return Err((
                format!("freeze-replay-{name}"),
                format!(
                    "frozen view diverged from the replay-to-freeze-point replica \
                     (original: {}, replica: {})",
                    describe(orig),
                    describe(rep)
                ),
            ));
        }
        passed += 1;
        if let (Some(orig), Some(rep)) = (orig.as_ref(), rep.as_ref()) {
            for (text, expr) in queries {
                let a = eval_index_raw(orig, expr);
                let b = eval_index_raw(rep, expr);
                if a != b {
                    return Err((
                        format!("freeze-replay-{name}"),
                        format!(
                            "{text}: frozen view answered {} nodes, replica {}",
                            a.len(),
                            b.len()
                        ),
                    ));
                }
                passed += 1;
            }
        }
    }
    Ok(passed)
}

/// Consumes the engine and verifies that `rebuild` restores the family
/// minimum for every registered index.
fn final_checks(engine: UpdateEngine) -> Result<usize, (String, String)> {
    let mut passed = 0usize;
    let (g, mut indexes) = engine.into_parts();
    let acyclic = is_acyclic(&g);
    for idx in &mut indexes {
        let name = idx.describe();
        idx.rebuild(&g);
        idx.check(&g)
            .map_err(|e| ("final-check".to_string(), format!("{name}: {e}")))?;
        passed += 1;
        let minimum = idx.minimum_block_count(&g);
        if idx.block_count() != minimum {
            return Err((
                "final-rebuild-minimum".into(),
                format!(
                    "{name}: rebuilt to {} blocks, minimum is {minimum}",
                    idx.block_count()
                ),
            ));
        }
        passed += 1;
    }
    // On acyclic graphs the minimum 1-index is unique, so the rebuilt
    // slot-0 partition must equal a from-scratch build exactly.
    if acyclic {
        let canon = one_index_canonical(indexes[0].as_ref()).expect("1-index family object");
        if canon != OneIndex::build(&g).canonical() {
            return Err((
                "final-one-exact".into(),
                "rebuilt 1-index differs from a fresh Paige–Tarjan build".into(),
            ));
        }
        passed += 1;
    }
    Ok(passed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_scenario, GenConfig};

    #[test]
    fn empty_scenario_passes() {
        let s = Scenario {
            seed: 0,
            k: 2,
            fault: None,
            base_labels: vec!["a".into()],
            base_edges: vec![(0, 1, EdgeKind::Child)],
            queries: vec!["/a".into()],
            ops: vec![],
        };
        let report = run_scenario(&s).unwrap();
        assert_eq!(report.applied, 0);
        assert!(report.checks > 0);
    }

    #[test]
    fn small_generated_scenarios_pass() {
        for seed in 0..6u64 {
            let s = generate_scenario(seed, &GenConfig::small(seed % 2 == 1));
            if let Err(f) = run_scenario(&s) {
                panic!("seed {seed} (replay with XSI_TEST_SEED={seed}): {f}");
            }
        }
    }

    #[test]
    fn skipped_ops_are_deterministic() {
        // Deleting a non-existent edge and removing the root are skips.
        let s = Scenario {
            seed: 1,
            k: 1,
            fault: None,
            base_labels: vec!["a".into(), "b".into()],
            base_edges: vec![(0, 1, EdgeKind::Child), (1, 2, EdgeKind::Child)],
            queries: vec![],
            ops: vec![
                ScenarioOp::DeleteEdge { from: 2, to: 1 }, // absent edge
                ScenarioOp::RemoveNode { node: 0 },        // the root
                ScenarioOp::RemoveNode { node: 3 },        // 3 % 3 = 0 → root
            ],
        };
        let report = run_scenario(&s).unwrap();
        assert_eq!(report.applied, 0);
        assert_eq!(report.skipped, 3);
    }

    /// Freezes interleave with real churn: at-freeze validation and the
    /// end-of-run prefix-replay oracle both pass, and freeze checks are
    /// counted.
    #[test]
    fn freeze_ops_validate_against_the_replay_oracle() {
        let s = Scenario {
            seed: 3,
            k: 2,
            fault: None,
            base_labels: vec!["a".into(), "a".into(), "b".into(), "b".into()],
            base_edges: vec![
                (0, 1, EdgeKind::Child),
                (0, 2, EdgeKind::Child),
                (1, 3, EdgeKind::Child),
                (2, 4, EdgeKind::Child),
            ],
            queries: vec!["/a/b".into(), "//b".into(), "//*".into()],
            ops: vec![
                ScenarioOp::Freeze,                        // freeze the base state
                ScenarioOp::DeleteEdge { from: 1, to: 3 }, // splits {b,b}
                ScenarioOp::Freeze,                        // freeze mid-churn
                ScenarioOp::AddSubtree {
                    parent: 2,
                    nodes: vec![("b".into(), 0), ("c".into(), 0)],
                },
                ScenarioOp::InsertEdge {
                    from: 1,
                    to: 4,
                    kind: EdgeKind::IdRef,
                },
                ScenarioOp::Freeze, // freeze again, then more churn
                ScenarioOp::RemoveSubtree { root: 2 },
            ],
        };
        let report = run_scenario(&s).unwrap();
        // Freezes count as applied ops alongside the four mutations.
        assert_eq!(report.applied, 7);
        assert_eq!(report.skipped, 0);
        assert!(report.checks > 0);
    }

    /// Freeze ops survive generation → replay → run in fault-injected
    /// scenarios too (the replica replays the same faulty behaviour, so
    /// the freeze oracle itself stays quiet while the planted fault is
    /// convicted by the maintenance oracles).
    #[test]
    fn freeze_coexists_with_fault_injection() {
        use crate::fault::FaultSpec;
        let s = Scenario {
            seed: 4,
            k: 1,
            fault: Some(FaultSpec::SkipMerge),
            base_labels: vec!["a".into(), "b".into(), "b".into()],
            base_edges: vec![
                (0, 1, EdgeKind::Child),
                (1, 2, EdgeKind::Child),
                (1, 3, EdgeKind::Child),
            ],
            queries: vec!["//b".into()],
            ops: vec![
                ScenarioOp::Freeze,
                ScenarioOp::InsertEdge {
                    from: 0,
                    to: 2,
                    kind: EdgeKind::IdRef,
                },
                ScenarioOp::Freeze,
                ScenarioOp::DeleteEdge { from: 0, to: 2 },
            ],
        };
        let err = run_scenario(&s).unwrap_err();
        // The skip-merge fault is convicted by the minimality oracle at
        // the delete — not misattributed to the freeze machinery.
        assert_eq!(err.check, "one-minimality", "{err}");
    }

    #[test]
    fn subtree_ops_round_trip() {
        let s = Scenario {
            seed: 2,
            k: 2,
            fault: None,
            base_labels: vec!["a".into()],
            base_edges: vec![(0, 1, EdgeKind::Child)],
            queries: vec!["//b".into(), "/a/b/c".into()],
            ops: vec![
                ScenarioOp::AddSubtree {
                    parent: 1,
                    nodes: vec![("b".into(), 0), ("c".into(), 0), ("c".into(), 1)],
                },
                ScenarioOp::RemoveSubtree { root: 2 },
            ],
        };
        let report = run_scenario(&s).unwrap();
        assert_eq!(report.applied, 2);
    }
}
