//! [`DerivedView`]: an [`IndexQueryView`] materialized from any class
//! assignment.
//!
//! The `simple` A(k) baseline maintains extents only — no iedges — so it
//! exposes no query view of its own. The conformance lab (and the
//! query-equivalence property suite) still wants to route queries
//! through it; `DerivedView` bridges the gap by materializing the block
//! graph that the assignment *induces* on the data graph: one block per
//! class, one iedge per dedge between classes, label per block from any
//! member (the harness separately verifies label homogeneity).
//!
//! Soundness of `precise_up_to = Some(k)`: the assignment is checked (by
//! the harness) to be a refinement of exact k-bisimulation. Any such
//! refinement answers label paths of length ≤ k exactly — every member
//! of a block is k-bisimilar to every other, so they share all incoming
//! label paths up to length k, and the induced iedge walk can then
//! neither over- nor under-approximate short paths. Longer paths and
//! predicates are handled by `eval_index`'s validation pass, as for the
//! real A(k)-index.

use std::collections::BTreeSet;
use xsi_core::IndexQueryView;
use xsi_graph::{Graph, NodeId};

/// A self-contained block-graph view induced by a class assignment.
pub struct DerivedView {
    extents: Vec<Vec<NodeId>>,
    labels: Vec<String>,
    isucc: Vec<BTreeSet<u32>>,
    start: u32,
    precise: Option<usize>,
}

impl DerivedView {
    /// Materializes the view from `classes` (indexed by node slot, as
    /// produced by `SimpleAkIndex::assignment` or the `reference`
    /// oracles; dead slots are ignored). `precise` declares the view's
    /// precision horizon — pass `Some(k)` for an assignment refining
    /// exact k-bisimulation, `None` for a bisimulation partition.
    pub fn from_assignment(g: &Graph, classes: &[u32], precise: Option<usize>) -> Self {
        // Compress the (arbitrary) class ids of live nodes to dense ids.
        let mut dense: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut extents: Vec<Vec<NodeId>> = Vec::new();
        let mut labels: Vec<String> = Vec::new();
        let mut of = vec![u32::MAX; g.capacity()];
        for n in g.nodes() {
            let c = classes[n.index()];
            let id = *dense.entry(c).or_insert_with(|| {
                extents.push(Vec::new());
                labels.push(g.label_name(n).to_string());
                (extents.len() - 1) as u32
            });
            extents[id as usize].push(n);
            of[n.index()] = id;
        }
        let mut isucc = vec![BTreeSet::new(); extents.len()];
        for (u, v, _) in g.edges() {
            isucc[of[u.index()] as usize].insert(of[v.index()]);
        }
        for e in &mut extents {
            e.sort_unstable();
        }
        DerivedView {
            start: of[g.root().index()],
            extents,
            labels,
            isucc,
            precise,
        }
    }

    /// Number of blocks in the view.
    pub fn block_count(&self) -> usize {
        self.extents.len()
    }
}

impl IndexQueryView for DerivedView {
    fn start_block(&self) -> u32 {
        self.start
    }

    fn isucc(&self, b: u32) -> Vec<u32> {
        self.isucc[b as usize].iter().copied().collect()
    }

    fn label_name(&self, b: u32) -> &str {
        &self.labels[b as usize]
    }

    fn extent(&self, b: u32) -> &[NodeId] {
        &self.extents[b as usize]
    }

    fn precise_up_to(&self) -> Option<usize> {
        self.precise
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsi_core::reference;
    use xsi_graph::EdgeKind;
    use xsi_query::{eval_graph, eval_index, PathExpr};

    #[test]
    fn derived_view_answers_like_the_data_graph() {
        let mut g = Graph::new();
        let r = g.root();
        let a = g.add_node("a", None);
        let b1 = g.add_node("b", None);
        let b2 = g.add_node("b", None);
        let c = g.add_node("c", None);
        g.insert_edge(r, a, EdgeKind::Child).unwrap();
        g.insert_edge(a, b1, EdgeKind::Child).unwrap();
        g.insert_edge(a, b2, EdgeKind::Child).unwrap();
        g.insert_edge(b1, c, EdgeKind::Child).unwrap();
        g.insert_edge(c, a, EdgeKind::IdRef).unwrap(); // a cycle

        // Bisimulation assignment → exact for every linear path.
        let classes = reference::bisim_classes(&g);
        let view = DerivedView::from_assignment(&g, &classes, None);
        for q in ["/a", "/a/b", "//b/c", "//*", "/a//c"] {
            let expr = PathExpr::parse(q).unwrap();
            let mut expected = eval_graph(&g, &expr);
            expected.sort_unstable();
            let got = eval_index(&g, &view, &expr);
            assert_eq!(got, expected, "query {q}");
        }
        assert_eq!(view.block_count(), reference::partition_size(&g, &classes));
    }

    #[test]
    fn bounded_precision_triggers_validation() {
        let mut g = Graph::new();
        let r = g.root();
        let a = g.add_node("a", None);
        let b = g.add_node("b", None);
        g.insert_edge(r, a, EdgeKind::Child).unwrap();
        g.insert_edge(a, b, EdgeKind::Child).unwrap();
        // A(1) classes: still answers the length-2 path exactly because
        // eval_index validates beyond the horizon.
        let chain = reference::k_bisim_chain(&g, 1);
        let view = DerivedView::from_assignment(&g, chain.last().unwrap(), Some(1));
        let expr = PathExpr::parse("/a/b").unwrap();
        let mut expected = eval_graph(&g, &expr);
        expected.sort_unstable();
        assert_eq!(eval_index(&g, &view, &expr), expected);
    }
}
