//! The scenario model and its replayable text format.
//!
//! A [`Scenario`] is a *self-contained* description of one conformance
//! run: the base graph (labels + edges), the update-op sequence, the
//! queries to differentially evaluate, the A(k) parameter, and an
//! optional injected fault (for mutation-smoke runs). Node references in
//! ops are **handle indices**, not raw [`xsi_graph::NodeId`]s: the
//! harness keeps an ordered list of live handles (handle 0 is the root,
//! base node `i` is handle `i + 1`, nodes created by ops are appended)
//! and resolves a raw reference `r` as `handles[r % handles.len()]`.
//! That makes every op sequence total — no op can dangle — which is what
//! lets the delta-debugging shrinker delete arbitrary subsets of ops and
//! still have a meaningful scenario.
//!
//! The replay format is line-based and versioned:
//!
//! ```text
//! xsi-conformance-replay v1
//! seed 0xE9E9
//! k 2
//! fault skip-merge            # optional
//! base-node a                 # one per base node, in handle order
//! base-edge 0 1 child         # handle indices into {root} ∪ base nodes
//! query /a//b
//! op insert-edge 3 7 idref
//! op add-subtree 2 a b:0 c:1
//! end
//! ```
//!
//! [`Scenario::to_replay`] / [`Scenario::parse_replay`] round-trip this
//! exactly; [`Scenario::to_regression_test`] wraps a replay in a
//! ready-to-paste `#[test]`.

use crate::fault::FaultSpec;
use xsi_graph::EdgeKind;

/// One update operation, with handle-index node references (see module
/// docs for the resolution rule).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioOp {
    /// Add a fresh node with this label (appends a handle).
    AddNode { label: String },
    /// Insert an edge between two resolved handles. Skipped (a no-op) if
    /// the graph rejects it (duplicate, self-loop, edge into the root).
    InsertEdge {
        from: usize,
        to: usize,
        kind: EdgeKind,
    },
    /// Delete the edge between two resolved handles; skipped if absent.
    DeleteEdge { from: usize, to: usize },
    /// Remove a resolved node (and its remaining edges); skipped if it
    /// resolves to the root.
    RemoveNode { node: usize },
    /// Add a small tree under a resolved parent as ONE engine batch
    /// (exercises the batch path and Figure 6 semantics). `nodes[i]` is
    /// `(label, local_parent)`: node 0 attaches to the resolved external
    /// parent, node `i > 0` to subtree node `local_parent < i`.
    AddSubtree {
        parent: usize,
        nodes: Vec<(String, usize)>,
    },
    /// Remove the Child-reachable subtree of a resolved node as one
    /// engine batch of `RemoveNode`s; skipped if it resolves to the root.
    RemoveSubtree { root: usize },
    /// Freeze every registered index into an in-memory
    /// [`xsi_core::IndexSnapshot`]. The harness validates the frozen
    /// views against the live index at the freeze point, holds them
    /// across all subsequent ops, and re-validates them at the end of
    /// the run against a replica index replayed to the same op prefix
    /// (snapshot isolation under write churn).
    Freeze,
}

/// A complete, replayable conformance scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// The seed this scenario was generated from (informational; the
    /// scenario itself is already fully explicit).
    pub seed: u64,
    /// The A(k) parameter for the two A(k) families.
    pub k: usize,
    /// Injected fault for mutation-smoke runs; `None` for real fuzzing.
    pub fault: Option<FaultSpec>,
    /// Labels of the base nodes; base node `i` is handle `i + 1`.
    pub base_labels: Vec<String>,
    /// Base edges over handle indices `0..=base_labels.len()` (0 = root).
    pub base_edges: Vec<(usize, usize, EdgeKind)>,
    /// Label-path queries (parseable by `xsi_query::PathExpr`).
    pub queries: Vec<String>,
    /// The update sequence.
    pub ops: Vec<ScenarioOp>,
}

fn kind_str(k: EdgeKind) -> &'static str {
    match k {
        EdgeKind::Child => "child",
        EdgeKind::IdRef => "idref",
    }
}

fn parse_kind(s: &str) -> Result<EdgeKind, String> {
    match s {
        "child" => Ok(EdgeKind::Child),
        "idref" => Ok(EdgeKind::IdRef),
        other => Err(format!("unknown edge kind {other:?}")),
    }
}

impl Scenario {
    /// Serializes the scenario to the v1 replay format.
    pub fn to_replay(&self) -> String {
        let mut out = String::new();
        out.push_str("xsi-conformance-replay v1\n");
        out.push_str(&format!("seed {:#x}\n", self.seed));
        out.push_str(&format!("k {}\n", self.k));
        match &self.fault {
            Some(FaultSpec::SkipMerge) => out.push_str("fault skip-merge\n"),
            Some(FaultSpec::DropEdgeDelete { period }) => {
                out.push_str(&format!("fault drop-edge-delete {period}\n"));
            }
            None => {}
        }
        for l in &self.base_labels {
            out.push_str(&format!("base-node {l}\n"));
        }
        for &(u, v, k) in &self.base_edges {
            out.push_str(&format!("base-edge {u} {v} {}\n", kind_str(k)));
        }
        for q in &self.queries {
            out.push_str(&format!("query {q}\n"));
        }
        for op in &self.ops {
            match op {
                ScenarioOp::AddNode { label } => {
                    out.push_str(&format!("op add-node {label}\n"));
                }
                ScenarioOp::InsertEdge { from, to, kind } => {
                    out.push_str(&format!("op insert-edge {from} {to} {}\n", kind_str(*kind)));
                }
                ScenarioOp::DeleteEdge { from, to } => {
                    out.push_str(&format!("op delete-edge {from} {to}\n"));
                }
                ScenarioOp::RemoveNode { node } => {
                    out.push_str(&format!("op remove-node {node}\n"));
                }
                ScenarioOp::AddSubtree { parent, nodes } => {
                    out.push_str(&format!("op add-subtree {parent}"));
                    for (i, (label, lp)) in nodes.iter().enumerate() {
                        if i == 0 {
                            out.push_str(&format!(" {label}"));
                        } else {
                            out.push_str(&format!(" {label}:{lp}"));
                        }
                    }
                    out.push('\n');
                }
                ScenarioOp::RemoveSubtree { root } => {
                    out.push_str(&format!("op remove-subtree {root}\n"));
                }
                ScenarioOp::Freeze => {
                    out.push_str("op freeze\n");
                }
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses a v1 replay file. Strict: unknown directives, bad indices
    /// and a missing `end` are errors (a reproducer must be exact).
    pub fn parse_replay(text: &str) -> Result<Scenario, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        match lines.next() {
            Some("xsi-conformance-replay v1") => {}
            other => return Err(format!("bad header: {other:?}")),
        }
        let mut s = Scenario {
            seed: 0,
            k: 2,
            fault: None,
            base_labels: Vec::new(),
            base_edges: Vec::new(),
            queries: Vec::new(),
            ops: Vec::new(),
        };
        let mut saw_end = false;
        for line in lines {
            if saw_end {
                // Reproducers append the engine's flight-recorder trace
                // after `end` as informational `trace` directives; the
                // scenario itself never depends on them, so they are
                // skipped here (forward-compatible parsing). Anything
                // else after `end` is still an error.
                if line == "trace" || line.starts_with("trace ") {
                    continue;
                }
                return Err(format!("content after end: {line:?}"));
            }
            let (dir, rest) = line.split_once(' ').unwrap_or((line, ""));
            let words: Vec<&str> = rest.split_whitespace().collect();
            match dir {
                "seed" => {
                    s.seed = xsi_workload::parse_seed(rest)
                        .ok_or_else(|| format!("bad seed {rest:?}"))?;
                }
                "k" => {
                    s.k = rest.trim().parse().map_err(|_| format!("bad k {rest:?}"))?;
                }
                "fault" => {
                    s.fault = Some(match words.as_slice() {
                        ["skip-merge"] => FaultSpec::SkipMerge,
                        ["drop-edge-delete", p] => FaultSpec::DropEdgeDelete {
                            period: p.parse().map_err(|_| format!("bad period {p:?}"))?,
                        },
                        _ => return Err(format!("bad fault {rest:?}")),
                    });
                }
                "base-node" => {
                    if words.len() != 1 {
                        return Err(format!("bad base-node {rest:?}"));
                    }
                    s.base_labels.push(words[0].to_string());
                }
                "base-edge" => {
                    let [u, v, k] = words.as_slice() else {
                        return Err(format!("bad base-edge {rest:?}"));
                    };
                    s.base_edges.push((
                        u.parse().map_err(|_| format!("bad index {u:?}"))?,
                        v.parse().map_err(|_| format!("bad index {v:?}"))?,
                        parse_kind(k)?,
                    ));
                }
                "query" => {
                    if rest.trim().is_empty() {
                        return Err("empty query".into());
                    }
                    s.queries.push(rest.trim().to_string());
                }
                "op" => s.ops.push(parse_op(&words)?),
                "end" => saw_end = true,
                other => return Err(format!("unknown directive {other:?}")),
            }
        }
        if !saw_end {
            return Err("missing end".into());
        }
        Ok(s)
    }

    /// Extracts the informational flight-recorder trace appended after
    /// `end` (one stable line per `trace` directive, oldest first).
    /// Returns an empty vec for reproducers written before traces
    /// existed — the replay itself never depends on these lines.
    pub fn embedded_trace(text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut after_end = false;
        for line in text.lines().map(str::trim) {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if after_end {
                if let Some(rest) = line.strip_prefix("trace ") {
                    out.push(rest.to_string());
                }
            } else if line == "end" {
                after_end = true;
            }
        }
        out
    }

    /// Emits a ready-to-paste Rust regression test embedding the replay.
    /// Fault-free scenarios assert the lab passes (paste after fixing
    /// the bug); fault-injected ones assert the lab still catches the
    /// planted fault.
    pub fn to_regression_test(&self, name: &str, original_failure: &str) -> String {
        let assertion = if self.fault.is_some() {
            "    // The scenario carries an injected fault; the lab must keep catching it.\n    \
             assert!(xsi_conformance::run_scenario(&s).is_err());\n"
        } else {
            "    // Paste this test after fixing the bug: the lab must pass.\n    \
             if let Err(f) = xsi_conformance::run_scenario(&s) {\n        \
             panic!(\"conformance regression: {f}\");\n    }\n"
        };
        format!(
            "/// Auto-generated by xsi-fuzz (seed {:#x}).\n\
             /// Original failure: {}\n\
             #[test]\n\
             fn {name}() {{\n    \
             let replay = r#\"{}\"#;\n    \
             let s = xsi_conformance::Scenario::parse_replay(replay).unwrap();\n\
             {assertion}}}\n",
            self.seed,
            original_failure.replace('\n', " "),
            self.to_replay(),
        )
    }
}

fn parse_op(words: &[&str]) -> Result<ScenarioOp, String> {
    match words {
        ["add-node", label] => Ok(ScenarioOp::AddNode {
            label: label.to_string(),
        }),
        ["insert-edge", f, t, k] => Ok(ScenarioOp::InsertEdge {
            from: f.parse().map_err(|_| format!("bad index {f:?}"))?,
            to: t.parse().map_err(|_| format!("bad index {t:?}"))?,
            kind: parse_kind(k)?,
        }),
        ["delete-edge", f, t] => Ok(ScenarioOp::DeleteEdge {
            from: f.parse().map_err(|_| format!("bad index {f:?}"))?,
            to: t.parse().map_err(|_| format!("bad index {t:?}"))?,
        }),
        ["remove-node", n] => Ok(ScenarioOp::RemoveNode {
            node: n.parse().map_err(|_| format!("bad index {n:?}"))?,
        }),
        ["add-subtree", parent, first, rest @ ..] => {
            let parent = parent
                .parse()
                .map_err(|_| format!("bad index {parent:?}"))?;
            if first.contains(':') {
                return Err(format!("subtree node 0 takes no local parent: {first:?}"));
            }
            let mut nodes = vec![(first.to_string(), 0usize)];
            for (i, w) in rest.iter().enumerate() {
                let (label, lp) = w
                    .split_once(':')
                    .ok_or_else(|| format!("subtree node needs label:parent, got {w:?}"))?;
                let lp: usize = lp.parse().map_err(|_| format!("bad local parent {lp:?}"))?;
                if lp > i {
                    return Err(format!("local parent {lp} is not an earlier subtree node"));
                }
                nodes.push((label.to_string(), lp));
            }
            Ok(ScenarioOp::AddSubtree { parent, nodes })
        }
        ["remove-subtree", r] => Ok(ScenarioOp::RemoveSubtree {
            root: r.parse().map_err(|_| format!("bad index {r:?}"))?,
        }),
        ["freeze"] => Ok(ScenarioOp::Freeze),
        _ => Err(format!("unknown op {words:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario {
            seed: 0xE9E9,
            k: 2,
            fault: Some(FaultSpec::DropEdgeDelete { period: 3 }),
            base_labels: vec!["a".into(), "b".into()],
            base_edges: vec![(0, 1, EdgeKind::Child), (1, 2, EdgeKind::IdRef)],
            queries: vec!["/a//b".into(), "//*".into()],
            ops: vec![
                ScenarioOp::AddNode { label: "c".into() },
                ScenarioOp::InsertEdge {
                    from: 3,
                    to: 1,
                    kind: EdgeKind::IdRef,
                },
                ScenarioOp::DeleteEdge { from: 1, to: 2 },
                ScenarioOp::AddSubtree {
                    parent: 1,
                    nodes: vec![("a".into(), 0), ("b".into(), 0), ("c".into(), 1)],
                },
                ScenarioOp::Freeze,
                ScenarioOp::RemoveSubtree { root: 2 },
                ScenarioOp::RemoveNode { node: 1 },
            ],
        }
    }

    #[test]
    fn replay_round_trips() {
        let s = sample();
        let text = s.to_replay();
        let back = Scenario::parse_replay(&text).unwrap();
        assert_eq!(s, back);
        // And the round-trip is a fixpoint.
        assert_eq!(back.to_replay(), text);
    }

    #[test]
    fn replay_round_trips_without_fault() {
        let mut s = sample();
        s.fault = None;
        assert_eq!(Scenario::parse_replay(&s.to_replay()).unwrap(), s);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "xsi-conformance-replay v2\nend\n",
            "xsi-conformance-replay v1\n", // missing end
            "xsi-conformance-replay v1\nbogus 1\nend\n",
            "xsi-conformance-replay v1\nop insert-edge 1\nend\n",
            "xsi-conformance-replay v1\nbase-edge 0 1 sideways\nend\n",
            "xsi-conformance-replay v1\nop add-subtree 0 a:3\nend\n",
            "xsi-conformance-replay v1\nend\nop add-node a\n",
        ] {
            assert!(Scenario::parse_replay(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn trace_lines_after_end_are_ignored_and_extractable() {
        let text = "xsi-conformance-replay v1\nseed 7\nk 1\nend\n\
                    # flight-recorder trace\n\
                    trace 0 op-received op=insert-edge\n\
                    trace 1 index-dispatch family=1-index op=insert-edge splits=1 merges=0 no_op=false\n";
        let s = Scenario::parse_replay(text).unwrap();
        assert_eq!(s.seed, 7);
        let trace = Scenario::embedded_trace(text);
        assert_eq!(trace.len(), 2);
        assert!(trace[0].starts_with("0 op-received"));
        // Non-trace content after end is still rejected.
        let bad = "xsi-conformance-replay v1\nend\ntraceish 0\n";
        assert!(Scenario::parse_replay(bad).is_err());
        // Traceless reproducers extract an empty trace.
        assert!(Scenario::embedded_trace("xsi-conformance-replay v1\nend\n").is_empty());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "xsi-conformance-replay v1\n# a comment\n\nseed 7\nk 1\nend\n";
        let s = Scenario::parse_replay(text).unwrap();
        assert_eq!(s.seed, 7);
        assert_eq!(s.k, 1);
    }

    #[test]
    fn regression_test_embeds_replay() {
        let s = sample();
        let test = s.to_regression_test("repro_e9e9", "one-minimality: mergeable blocks");
        assert!(test.contains("xsi-conformance-replay v1"));
        assert!(test.contains("fn repro_e9e9()"));
        assert!(test.contains("run_scenario"));
        // Fault-injected scenarios assert the lab keeps failing.
        assert!(test.contains("is_err"));
        let mut clean = s;
        clean.fault = None;
        let test2 = clean.to_regression_test("repro_clean", "x");
        assert!(test2.contains("conformance regression"));
    }
}
