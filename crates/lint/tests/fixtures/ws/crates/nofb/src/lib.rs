//! Fixture crate root without `#![forbid(unsafe_code)]` — the
//! forbid-unsafe rule must flag it.

pub fn noop() {}
