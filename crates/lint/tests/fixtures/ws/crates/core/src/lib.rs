//! Fixture crate: determinism + panic findings, waivers, and clean
//! counter-examples, one per golden expectation in `tests/fixtures.rs`.

#![forbid(unsafe_code)]

use std::collections::HashMap;

pub fn hash_iter_positive(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (k, _) in m.iter() {
        out.push(*k);
    }
    out
}

pub fn hash_iter_waived(m: &HashMap<u32, u32>) -> u32 {
    let mut acc = 0;
    // xsi-lint: allow(hash-iter, xor is commutative, order cannot escape)
    for (&k, _) in m.iter() {
        acc ^= k;
    }
    acc
}

pub fn hash_iter_sorted(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut v: Vec<u32> = m.keys().copied().collect();
    v.sort_unstable();
    v
}

pub fn unwrap_positive(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn expect_positive(x: Option<u32>) -> u32 {
    x.expect("present")
}

pub fn expect_clean(x: Option<u32>) -> u32 {
    x.expect("invariant: caller checked emptiness")
}

pub fn slice_index_positive(v: &[u32]) -> u32 {
    v[0]
}

// TODO: tighten the fixture once the rule set grows.

// xsi-lint: allow(hash-iter)
pub fn bad_waiver_line() {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (k, _) in m.iter() {
            let _ = k;
        }
        let _ = None::<u32>.unwrap_or(0);
    }
}
