//! Fixture view: store-discipline "other tier" expectations and a
//! deliberately dead waiver for the self-audit rule.

pub struct View {
    pub top: Block,
}

// Positive: raw extent field access outside the index modules.
fn peek_raw(v: &View) -> usize {
    v.top.extent.len()
}

// Waived: audited read.
fn peek_waived(v: &View) -> usize {
    // xsi-lint: allow(store-discipline, fixture: audited read during freeze)
    v.top.extent.len()
}

// Clean: routed through the accessor.
fn peek_routed(idx: &AkIndex) -> usize {
    idx.extent(0).len()
}

// Dead waiver: suppresses nothing on the line it covers.
// xsi-lint: allow(cow-discipline, fixture: the hazard this argued safe is gone)
fn peek_weight(v: &View) -> u64 {
    v.top.weight
}
