//! Fixture partition: dense-side-table expectations. The path suffix
//! (`core/src/partition.rs`) puts it on that rule's target list — and
//! on hot-assert's, so this file stays assert-free.

pub struct BlockId(pub u32);
pub struct NodeId(pub u32);

pub struct Partition {
    // Positive: a hash container keyed by a block handle.
    pub twins: HashMap<BlockId, u32>,
    // xsi-lint: allow(dense-side-table, cold-path cache; neither density nor order matters here)
    pub memo: HashMap<NodeId, u32>,
    // Clean: sorted map over handles, and a hash map over a plain key.
    pub spill: BTreeMap<BlockId, u32>,
    pub by_label: HashMap<u64, u32>,
}
