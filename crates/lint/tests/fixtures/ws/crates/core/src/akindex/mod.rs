//! Fixture ak accessor layer: cow-discipline expectations. The path
//! suffix (`core/src/akindex/mod.rs`) makes this accessor-tier, so
//! store-discipline stays quiet here and the CoW cases test in
//! isolation.

pub struct Block {
    pub extent: CowVec,
    pub weight: u64,
}

pub struct AkIndex {
    pub top: Block,
    pub cow_clones: u64,
}

impl AkIndex {
    // Clean: mutation routed through the CoW gate.
    pub fn push_through_gate(&mut self, n: u32) {
        self.top.extent.make_mut(&mut self.cow_clones).push(n);
    }

    // Positive: whole-handle replacement bypasses the gate.
    pub fn swap_in(&mut self, fresh: CowVec) {
        self.top.extent = fresh;
    }

    // Waived: the taken handle still shares with any snapshot.
    pub fn recycle(&mut self) {
        // xsi-lint: allow(cow-discipline, fixture: take swaps in a fresh run; snapshots keep the taken handle alive)
        let run = std::mem::take(&mut self.top.extent);
        drop(run);
    }

    // Clean: comparisons and shared reads are not mutations.
    pub fn same_extent(&self, other: &Block) -> bool {
        self.top.extent == other.extent
    }

    // The accessor the other tiers must route reads through.
    pub fn extent(&self, _b: u32) -> &[u32] {
        &self.top.extent
    }
}
