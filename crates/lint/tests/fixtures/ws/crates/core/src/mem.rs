//! Fixture store: mem-accounting expectations. The rule self-scopes to
//! any file that implements `heap_use` for a locally declared struct,
//! so no path suffix is needed here.

/// Clean: every heap-owning field is named in `heap_use`.
pub struct Accounted {
    pub rows: Vec<u32>,
    pub tag: u32,
}

impl Accounted {
    pub fn heap_use(&self) -> usize {
        self.rows.capacity() * 4
    }
}

/// Positive: `spill` is heap-owning but `heap_use` never names it.
pub struct Leaky {
    pub spill: Vec<u32>,
    pub seen: u32,
}

impl Leaky {
    pub fn heap_use(&self) -> usize {
        self.seen as usize
    }
}

/// Waived: the deliberately-uncounted field argues why on its line.
pub struct Transient {
    // xsi-lint: allow(mem-accounting, per-update memo, dropped before any report is taken)
    pub memo: Vec<u32>,
}

impl Transient {
    pub fn heap_use(&self) -> usize {
        0
    }
}

/// Clean via one helper level: `heap_use` → `table_bytes` → field.
pub struct ViaHelper {
    pub table: Vec<u32>,
}

impl ViaHelper {
    pub fn heap_use(&self) -> usize {
        self.table_bytes()
    }

    fn table_bytes(&self) -> usize {
        self.table.capacity() * 4
    }
}
