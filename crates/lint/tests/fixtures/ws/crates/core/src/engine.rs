//! Fixture engine: obs-coverage and hot-assert expectations. The file's
//! path suffix (`core/src/engine.rs`) puts it on both rules' target
//! lists.

pub struct Engine {
    pub stats_total: u64,
}

impl Engine {
    pub fn uninstrumented(&mut self, n: u64) -> u64 {
        n + 1
    }

    pub fn instrumented(&mut self, n: u64) -> u64 {
        let stats = n; // UpdateStats bookkeeping stand-in
        self.stats_total += stats;
        stats
    }

    // xsi-lint: allow(obs-coverage, thin shim; instrumented() books the stats)
    pub fn waived_shim(&mut self, n: u64) -> u64 {
        self.instrumented(n)
    }

    pub fn hot_assert_positive(&mut self, n: u64) {
        assert!(n > 0, "n must be positive");
        let stats = n;
        self.stats_total += stats;
    }

    pub fn hot_assert_clean(&mut self, n: u64) {
        debug_assert!(n > 0, "n must be positive");
        let stats = n;
        self.stats_total += stats;
    }

    // Freeze entry points are checked regardless of receiver: this
    // `&self` freeze skips the hub, so obs-coverage must flag it.
    pub fn freeze_uninstrumented(&self) -> u64 {
        self.stats_total
    }

    pub fn freeze_instrumented(&self) -> u64 {
        let stats = self.stats_total; // UpdateStats bookkeeping stand-in
        stats
    }

    // Report publishers are receiver-agnostic too: a `&self` publisher
    // that never feeds the hub is a silent no-op.
    pub fn publish_uninstrumented(&self) -> u64 {
        self.stats_total
    }

    // xsi-lint: allow(obs-coverage, thin shim; publish_instrumented feeds the hub)
    pub fn publish_shim(&self) -> u64 {
        self.publish_instrumented()
    }

    pub fn publish_instrumented(&self) -> u64 {
        let stats = self.stats_total; // UpdateStats bookkeeping stand-in
        stats
    }
}
