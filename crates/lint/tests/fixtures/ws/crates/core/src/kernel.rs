//! Fixture for `span-coverage`: one uninstrumented driver entry point,
//! one waived delegator, one instrumented driver, and exempt queue
//! plumbing (no `UpdateStats` in the signature).

pub struct Driver {
    pending: Vec<u32>,
}

pub struct UpdateStats {
    pub scans: u64,
}

/// Positive: a kernel driver threading `UpdateStats` with no causal
/// span anywhere in its body.
pub fn refine_pass(d: &mut Driver, stats: &mut UpdateStats) {
    stats.scans += 1;
    d.pending.clear();
}

// xsi-lint: allow(span-coverage, delegates to refine_pass, which opens the guard)
pub fn refine_waived(d: &mut Driver, stats: &mut UpdateStats) {
    refine_pass(d, stats);
}

/// Clean: opens a guard before touching the driver.
pub fn refine_instrumented(d: &mut Driver, stats: &mut UpdateStats) {
    let sp = SpanGuard::enter(SpanKind::KernelScan);
    stats.scans += 1;
    d.pending.clear();
    drop(sp);
}

impl Driver {
    /// Exempt: queue plumbing, no `UpdateStats` in the signature.
    pub fn push(&mut self, b: u32) {
        self.pending.push(b);
    }
}
