//! Fixture ak maintainer: store-discipline and panic-reach
//! expectations. Maintainer tier: arena side fields are fair game, but
//! extent storage must route through the accessors. Also a panic-reach
//! entry file; the entry fns take `&self` so the obs/span coverage
//! rules stay out of the frame.

impl AkIndex {
    // Positive: raw extent access in maintainer tier.
    fn raw_touch(&mut self) {
        self.top.extent.clear();
    }

    // Positive (one level down): calling the raw helper is flagged too.
    fn via_helper(&mut self) {
        self.raw_touch();
    }

    // Waived: the waiver argues the access safe, so it neither fires
    // nor taints this fn's callers.
    fn raw_read(&self) -> usize {
        // xsi-lint: allow(store-discipline, fixture: audited read with a single call site)
        self.top.extent.len()
    }

    // Clean: routed through the accessor layer.
    fn routed(&self) -> usize {
        self.extent(0).len()
    }

    // Positive: a pub entry point whose private helper unwraps.
    pub fn entry_reaches_unwrap(&self, x: Option<u32>) -> u32 {
        self.lookup(x)
    }

    // Waived: same chain, argued safe at the entry point.
    // xsi-lint: allow(panic-reach, fixture: callers validate the input before entering)
    pub fn entry_waived(&self, x: Option<u32>) -> u32 {
        self.lookup(x)
    }

    // Clean: the only reachable expect carries the contract prefix.
    pub fn entry_clean(&self, x: Option<u32>) -> u32 {
        self.checked(x)
    }

    fn lookup(&self, x: Option<u32>) -> u32 {
        x.unwrap()
    }

    fn checked(&self, x: Option<u32>) -> u32 {
        x.expect("invariant: fixture caller guarantees presence")
    }
}
