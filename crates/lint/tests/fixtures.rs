//! Golden fixture tests: each rule fires on its positive example,
//! respects waivers, and stays quiet on the clean counter-example —
//! plus a baseline round-trip and a self-run over the real workspace.

use std::path::{Path, PathBuf};
use xsi_lint::baseline::Baseline;
use xsi_lint::source::SourceFile;
use xsi_lint::{LintConfig, Report, Suppression};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate sits two levels under the workspace root")
        .to_path_buf()
}

fn run_fixture(baseline: Option<Baseline>) -> Report {
    let config = LintConfig {
        root: fixture_root(),
        baseline,
        deny_all: true,
    };
    xsi_lint::run(&config).expect("fixture tree is readable")
}

/// Live (unsuppressed) findings for one rule, as (path, line) pairs.
fn live(report: &Report, rule: &str) -> Vec<(String, u32)> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed.is_none())
        .map(|f| (f.path.clone(), f.line))
        .collect()
}

fn count_suppressed(report: &Report, rule: &str, how: Suppression) -> usize {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed == Some(how))
        .count()
}

#[test]
fn hash_iter_fires_respects_waiver_and_sort() {
    let r = run_fixture(None);
    let hits = live(&r, "hash-iter");
    assert_eq!(
        hits.len(),
        1,
        "exactly the unsorted escaping iteration: {hits:?}"
    );
    assert_eq!(hits[0].0, "crates/core/src/lib.rs");
    assert_eq!(count_suppressed(&r, "hash-iter", Suppression::Waived), 1);
}

#[test]
fn dense_side_table_fires_respects_waiver_and_ignores_clean_forms() {
    let r = run_fixture(None);
    let hits = live(&r, "dense-side-table");
    assert_eq!(
        hits.len(),
        1,
        "exactly the handle-keyed HashMap field: {hits:?}"
    );
    assert_eq!(hits[0].0, "crates/core/src/partition.rs");
    assert_eq!(
        count_suppressed(&r, "dense-side-table", Suppression::Waived),
        1
    );
    // Not baselineable: freezing today's counts must not hide it.
    let frozen = Baseline::from_counts(r.ratchet_counts.clone());
    let second = run_fixture(Some(frozen));
    assert_eq!(live(&second, "dense-side-table").len(), 1);
}

#[test]
fn panic_rules_fire_and_accept_contract_prefixes() {
    let r = run_fixture(None);
    // lib.rs's unwrap_positive + the maintainer fixture's lookup helper.
    assert_eq!(
        live(&r, "panic-unwrap").len(),
        2,
        "{:?}",
        live(&r, "panic-unwrap")
    );
    // `expect("present")` fires; `expect("invariant: …")` does not.
    assert_eq!(
        live(&r, "panic-expect").len(),
        1,
        "{:?}",
        live(&r, "panic-expect")
    );
    assert_eq!(
        live(&r, "slice-index").len(),
        1,
        "{:?}",
        live(&r, "slice-index")
    );
}

#[test]
fn obs_coverage_fires_on_uninstrumented_entry_point_only() {
    let r = run_fixture(None);
    let hits = live(&r, "obs-coverage");
    // One uninstrumented mutation entry point + one uninstrumented
    // `&self` freeze + one uninstrumented `&self` publisher (snapshot
    // and report entry points are receiver-agnostic).
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert!(hits.iter().all(|h| h.0 == "crates/core/src/engine.rs"));
    assert!(r.findings.iter().any(|f| f.rule == "obs-coverage"
        && f.suppressed.is_none()
        && f.message.contains("publish_uninstrumented")));
    assert_eq!(count_suppressed(&r, "obs-coverage", Suppression::Waived), 2);
}

#[test]
fn mem_accounting_fires_respects_waiver_and_is_not_baselineable() {
    let r = run_fixture(None);
    let hits = live(&r, "mem-accounting");
    // Exactly Leaky.spill; the waived Transient.memo, the directly
    // accounted struct, and the one-helper-level route are quiet.
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].0, "crates/core/src/mem.rs");
    let f = r
        .findings
        .iter()
        .find(|f| f.rule == "mem-accounting" && f.suppressed.is_none())
        .expect("the live finding just counted");
    assert!(f.message.contains("Leaky.spill"), "{}", f.message);
    assert_eq!(
        count_suppressed(&r, "mem-accounting", Suppression::Waived),
        1
    );
    // Not baselineable: freezing today's counts must not hide it.
    let frozen = Baseline::from_counts(r.ratchet_counts.clone());
    let second = run_fixture(Some(frozen));
    assert_eq!(live(&second, "mem-accounting").len(), 1);
}

#[test]
fn span_coverage_fires_respects_waiver_and_is_not_baselineable() {
    let r = run_fixture(None);
    let hits = live(&r, "span-coverage");
    // Exactly the uninstrumented kernel driver; the instrumented one and
    // the `UpdateStats`-free queue plumbing stay quiet.
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].0, "crates/core/src/kernel.rs");
    assert_eq!(
        count_suppressed(&r, "span-coverage", Suppression::Waived),
        1
    );
    // Not baselineable: freezing today's counts must not hide it.
    let frozen = Baseline::from_counts(r.ratchet_counts.clone());
    let second = run_fixture(Some(frozen));
    assert_eq!(live(&second, "span-coverage").len(), 1);
}

#[test]
fn hygiene_rules_fire() {
    let r = run_fixture(None);
    let unsafe_hits = live(&r, "forbid-unsafe");
    assert_eq!(unsafe_hits.len(), 1, "{unsafe_hits:?}");
    assert_eq!(unsafe_hits[0].0, "crates/nofb/src/lib.rs");
    assert_eq!(live(&r, "hot-assert").len(), 1);
    assert_eq!(live(&r, "todo").len(), 1);
    // The reason-less waiver is reported, not silently honoured.
    assert_eq!(live(&r, "bad-waiver").len(), 1);
}

#[test]
fn panic_reach_fires_waives_and_ratchets_per_entry_point() {
    let r = run_fixture(None);
    let hits = live(&r, "panic-reach");
    // Exactly `entry_reaches_unwrap` → `lookup` → unwrap; the waived
    // twin is suppressed and `entry_clean` only reaches a
    // contract-prefixed expect.
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].0, "crates/core/src/akindex/maintain.rs");
    assert_eq!(count_suppressed(&r, "panic-reach", Suppression::Waived), 1);
    let f = r
        .findings
        .iter()
        .find(|f| f.rule == "panic-reach" && f.suppressed.is_none())
        .expect("the live finding just counted");
    assert!(f.message.contains("entry_reaches_unwrap"), "{}", f.message);
    assert!(
        f.message.contains("lookup"),
        "chain rendered: {}",
        f.message
    );
    assert_eq!(
        f.ratchet_key.as_deref(),
        Some("crates/core/src/akindex/maintain.rs#AkIndex::entry_reaches_unwrap"),
        "ratchets per (entry point, rule), not per file"
    );
    // Baselineable: freezing today's counts hides the debt…
    let frozen = Baseline::from_counts(r.ratchet_counts.clone());
    let second = run_fixture(Some(frozen));
    assert_eq!(live(&second, "panic-reach").len(), 0);
}

#[test]
fn store_discipline_fires_direct_and_one_level_down() {
    let r = run_fixture(None);
    let hits = live(&r, "store-discipline");
    // raw_touch's direct hit, via_helper's call site, and view.rs's
    // raw peek; the waived reads and the accessor-routed fns are quiet.
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert!(r
        .findings
        .iter()
        .any(|f| f.rule == "store-discipline" && f.message.contains("one level down")));
    assert_eq!(
        count_suppressed(&r, "store-discipline", Suppression::Waived),
        2
    );
    // Not baselineable: freezing today's counts must not hide it.
    let frozen = Baseline::from_counts(r.ratchet_counts.clone());
    let second = run_fixture(Some(frozen));
    assert_eq!(live(&second, "store-discipline").len(), 3);
}

#[test]
fn cow_discipline_fires_on_bypass_and_respects_waiver() {
    let r = run_fixture(None);
    let hits = live(&r, "cow-discipline");
    // Exactly swap_in's whole-handle replacement; recycle's `&mut`
    // take is waived and the make_mut route is clean.
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].0, "crates/core/src/akindex/mod.rs");
    assert_eq!(
        count_suppressed(&r, "cow-discipline", Suppression::Waived),
        1
    );
}

#[test]
fn dead_waiver_flags_the_stale_allow() {
    let r = run_fixture(None);
    let hits = live(&r, "dead-waiver");
    // Exactly view.rs's cow-discipline waiver over a plain field read;
    // every other fixture waiver suppresses at least one finding.
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].0, "crates/core/src/view.rs");
}

#[test]
fn stale_baseline_flags_gone_files_and_zeroed_counts() {
    let json = r#"{
  "version": 1,
  "entries": {
    "crates/core/src/gone.rs": { "slice-index": 3 },
    "crates/core/src/lib.rs": { "panic-unwrap": 99 }
  }
}"#;
    let stale = Baseline::parse(json).expect("handcrafted baseline parses");
    let r = run_fixture(Some(stale));
    let hits = live(&r, "stale-baseline");
    // `gone.rs` no longer exists; lib.rs still has a live unwrap, so
    // only the vanished file is stale.
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].0, "crates/core/src/gone.rs");

    let json = r#"{
  "version": 1,
  "entries": {
    "crates/core/src/engine.rs": { "panic-unwrap": 4 }
  }
}"#;
    let zeroed = Baseline::parse(json).expect("handcrafted baseline parses");
    let r = run_fixture(Some(zeroed));
    let hits = live(&r, "stale-baseline");
    // engine.rs exists but has no unwraps at all: the count dropped to
    // zero and the entry must be pruned.
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].0, "crates/core/src/engine.rs");
}

#[test]
fn update_baseline_prunes_stale_entries() {
    // `from_counts` only writes groups with at least one live finding,
    // so a re-freeze drops vanished files and zeroed rules — the
    // mechanism `--update-baseline` relies on.
    let r = run_fixture(None);
    let frozen = Baseline::from_counts(r.ratchet_counts.clone());
    assert!(frozen.entries().keys().all(|k| !k.contains("gone")));
    assert!(frozen
        .entries()
        .values()
        .all(|rules| rules.values().all(|&n| n > 0)));
    // And a second run under the fresh freeze reports nothing stale.
    let second = run_fixture(Some(frozen));
    assert_eq!(
        live(&second, "stale-baseline").len(),
        0,
        "fresh freeze is never stale"
    );
}

#[test]
fn baseline_round_trips_and_suppresses() {
    let first = run_fixture(None);
    let frozen = Baseline::from_counts(first.ratchet_counts.clone());
    let json = frozen.to_json();
    let reparsed = Baseline::parse(&json).expect("self-written baseline parses");
    assert_eq!(reparsed.to_json(), json, "parse∘to_json is a fixpoint");

    let second = run_fixture(Some(reparsed));
    // Every ratcheted finding is now baselined…
    assert_eq!(live(&second, "panic-unwrap").len(), 0);
    assert_eq!(live(&second, "panic-expect").len(), 0);
    assert_eq!(live(&second, "slice-index").len(), 0);
    assert!(second.count(Some(Suppression::Baselined)) >= 3);
    // …but non-ratcheted rules still fire.
    assert_eq!(live(&second, "hash-iter").len(), 1);
    assert_eq!(live(&second, "forbid-unsafe").len(), 1);
}

#[test]
fn workspace_self_run_is_clean_under_deny_all() {
    let root = workspace_root();
    let baseline_path = root.join("lint-baseline.json");
    let text = std::fs::read_to_string(&baseline_path).expect("committed ratchet baseline");
    let config = LintConfig {
        root,
        baseline: Some(Baseline::parse(&text).expect("committed baseline parses")),
        deny_all: true,
    };
    let report = xsi_lint::run(&config).expect("workspace is readable");
    let fatal: Vec<String> = report
        .fatal(true)
        .map(|f| format!("{}:{} [{}] {}", f.path, f.line, f.rule, f.message))
        .collect();
    assert!(
        fatal.is_empty(),
        "self-run must be clean:\n{}",
        fatal.join("\n")
    );
}

#[test]
fn reintroducing_a_reachable_unwrap_under_an_engine_entry_fails_the_lint() {
    // The interprocedural regression guard: a NEW pub entry point in
    // engine.rs whose helper unwraps has no per-entry baseline key, so
    // it must come out live and fatal even under the committed ratchet.
    let root = workspace_root();
    let path = root.join("crates/core/src/engine.rs");
    let mut src = std::fs::read_to_string(&path).expect("engine.rs exists");
    src.push_str(
        "\nimpl RegressionProbe {\n\
         \tpub fn regression_entry(&self, x: Option<u32>) -> u32 {\n\
         \t\tself.fetch_unchecked(x)\n\
         \t}\n\
         \tfn fetch_unchecked(&self, x: Option<u32>) -> u32 {\n\
         \t\tx.unwrap()\n\
         \t}\n\
         }\n",
    );
    let parsed = SourceFile::parse("crates/core/src/engine.rs".to_string(), path, &src);
    let text = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("committed ratchet baseline");
    let config = LintConfig {
        root,
        baseline: Some(Baseline::parse(&text).expect("committed baseline parses")),
        deny_all: true,
    };
    let report = xsi_lint::run_on_sources(&config, &[parsed]);
    let fatal: Vec<&xsi_lint::Finding> = report
        .fatal(true)
        .filter(|f| f.rule == "panic-reach" && f.message.contains("regression_entry"))
        .collect();
    assert!(
        !fatal.is_empty(),
        "a reachable unwrap under a new engine entry point must fail the lint"
    );
}

#[test]
fn reintroducing_hash_iteration_into_simple_ak_fails_the_lint() {
    // The PR 2 regression: SimpleAkIndex once let HashMap order pick
    // block ids. Appending such code to today's file must be caught.
    let root = workspace_root();
    let path = root.join("crates/core/src/akindex/simple.rs");
    let mut src = std::fs::read_to_string(&path).expect("simple.rs exists");
    src.push_str(
        "\npub fn regression(&self) -> Vec<u32> {\n\
         \tlet mut out = Vec::new();\n\
         \tfor (&b, _) in &self.members {\n\
         \t\tout.push(b);\n\
         \t}\n\
         \tout\n\
         }\n",
    );
    let parsed = SourceFile::parse("crates/core/src/akindex/simple.rs".to_string(), path, &src);
    let config = LintConfig {
        root,
        baseline: None,
        deny_all: true,
    };
    let report = xsi_lint::run_on_sources(&config, &[parsed]);
    let hits = live(&report, "hash-iter");
    assert!(
        !hits.is_empty(),
        "raw members iteration must trip hash-iter"
    );
}
