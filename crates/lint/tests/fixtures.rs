//! Golden fixture tests: each rule fires on its positive example,
//! respects waivers, and stays quiet on the clean counter-example —
//! plus a baseline round-trip and a self-run over the real workspace.

use std::path::{Path, PathBuf};
use xsi_lint::baseline::Baseline;
use xsi_lint::source::SourceFile;
use xsi_lint::{LintConfig, Report, Suppression};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate sits two levels under the workspace root")
        .to_path_buf()
}

fn run_fixture(baseline: Option<Baseline>) -> Report {
    let config = LintConfig {
        root: fixture_root(),
        baseline,
        deny_all: true,
    };
    xsi_lint::run(&config).expect("fixture tree is readable")
}

/// Live (unsuppressed) findings for one rule, as (path, line) pairs.
fn live(report: &Report, rule: &str) -> Vec<(String, u32)> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed.is_none())
        .map(|f| (f.path.clone(), f.line))
        .collect()
}

fn count_suppressed(report: &Report, rule: &str, how: Suppression) -> usize {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed == Some(how))
        .count()
}

#[test]
fn hash_iter_fires_respects_waiver_and_sort() {
    let r = run_fixture(None);
    let hits = live(&r, "hash-iter");
    assert_eq!(
        hits.len(),
        1,
        "exactly the unsorted escaping iteration: {hits:?}"
    );
    assert_eq!(hits[0].0, "crates/core/src/lib.rs");
    assert_eq!(count_suppressed(&r, "hash-iter", Suppression::Waived), 1);
}

#[test]
fn dense_side_table_fires_respects_waiver_and_ignores_clean_forms() {
    let r = run_fixture(None);
    let hits = live(&r, "dense-side-table");
    assert_eq!(
        hits.len(),
        1,
        "exactly the handle-keyed HashMap field: {hits:?}"
    );
    assert_eq!(hits[0].0, "crates/core/src/partition.rs");
    assert_eq!(
        count_suppressed(&r, "dense-side-table", Suppression::Waived),
        1
    );
    // Not baselineable: freezing today's counts must not hide it.
    let frozen = Baseline::from_counts(r.ratchet_counts.clone());
    let second = run_fixture(Some(frozen));
    assert_eq!(live(&second, "dense-side-table").len(), 1);
}

#[test]
fn panic_rules_fire_and_accept_contract_prefixes() {
    let r = run_fixture(None);
    assert_eq!(
        live(&r, "panic-unwrap").len(),
        1,
        "{:?}",
        live(&r, "panic-unwrap")
    );
    // `expect("present")` fires; `expect("invariant: …")` does not.
    assert_eq!(
        live(&r, "panic-expect").len(),
        1,
        "{:?}",
        live(&r, "panic-expect")
    );
    assert_eq!(
        live(&r, "slice-index").len(),
        1,
        "{:?}",
        live(&r, "slice-index")
    );
}

#[test]
fn obs_coverage_fires_on_uninstrumented_entry_point_only() {
    let r = run_fixture(None);
    let hits = live(&r, "obs-coverage");
    // One uninstrumented mutation entry point + one uninstrumented
    // `&self` freeze (snapshot entry points are receiver-agnostic).
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits.iter().all(|h| h.0 == "crates/core/src/engine.rs"));
    assert_eq!(count_suppressed(&r, "obs-coverage", Suppression::Waived), 1);
}

#[test]
fn span_coverage_fires_respects_waiver_and_is_not_baselineable() {
    let r = run_fixture(None);
    let hits = live(&r, "span-coverage");
    // Exactly the uninstrumented kernel driver; the instrumented one and
    // the `UpdateStats`-free queue plumbing stay quiet.
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].0, "crates/core/src/kernel.rs");
    assert_eq!(
        count_suppressed(&r, "span-coverage", Suppression::Waived),
        1
    );
    // Not baselineable: freezing today's counts must not hide it.
    let frozen = Baseline::from_counts(r.ratchet_counts.clone());
    let second = run_fixture(Some(frozen));
    assert_eq!(live(&second, "span-coverage").len(), 1);
}

#[test]
fn hygiene_rules_fire() {
    let r = run_fixture(None);
    let unsafe_hits = live(&r, "forbid-unsafe");
    assert_eq!(unsafe_hits.len(), 1, "{unsafe_hits:?}");
    assert_eq!(unsafe_hits[0].0, "crates/nofb/src/lib.rs");
    assert_eq!(live(&r, "hot-assert").len(), 1);
    assert_eq!(live(&r, "todo").len(), 1);
    // The reason-less waiver is reported, not silently honoured.
    assert_eq!(live(&r, "bad-waiver").len(), 1);
}

#[test]
fn baseline_round_trips_and_suppresses() {
    let first = run_fixture(None);
    let frozen = Baseline::from_counts(first.ratchet_counts.clone());
    let json = frozen.to_json();
    let reparsed = Baseline::parse(&json).expect("self-written baseline parses");
    assert_eq!(reparsed.to_json(), json, "parse∘to_json is a fixpoint");

    let second = run_fixture(Some(reparsed));
    // Every ratcheted finding is now baselined…
    assert_eq!(live(&second, "panic-unwrap").len(), 0);
    assert_eq!(live(&second, "panic-expect").len(), 0);
    assert_eq!(live(&second, "slice-index").len(), 0);
    assert!(second.count(Some(Suppression::Baselined)) >= 3);
    // …but non-ratcheted rules still fire.
    assert_eq!(live(&second, "hash-iter").len(), 1);
    assert_eq!(live(&second, "forbid-unsafe").len(), 1);
}

#[test]
fn workspace_self_run_is_clean_under_deny_all() {
    let root = workspace_root();
    let baseline_path = root.join("lint-baseline.json");
    let text = std::fs::read_to_string(&baseline_path).expect("committed ratchet baseline");
    let config = LintConfig {
        root,
        baseline: Some(Baseline::parse(&text).expect("committed baseline parses")),
        deny_all: true,
    };
    let report = xsi_lint::run(&config).expect("workspace is readable");
    let fatal: Vec<String> = report
        .fatal(true)
        .map(|f| format!("{}:{} [{}] {}", f.path, f.line, f.rule, f.message))
        .collect();
    assert!(
        fatal.is_empty(),
        "self-run must be clean:\n{}",
        fatal.join("\n")
    );
}

#[test]
fn reintroducing_hash_iteration_into_simple_ak_fails_the_lint() {
    // The PR 2 regression: SimpleAkIndex once let HashMap order pick
    // block ids. Appending such code to today's file must be caught.
    let root = workspace_root();
    let path = root.join("crates/core/src/akindex/simple.rs");
    let mut src = std::fs::read_to_string(&path).expect("simple.rs exists");
    src.push_str(
        "\npub fn regression(&self) -> Vec<u32> {\n\
         \tlet mut out = Vec::new();\n\
         \tfor (&b, _) in &self.members {\n\
         \t\tout.push(b);\n\
         \t}\n\
         \tout\n\
         }\n",
    );
    let parsed = SourceFile::parse("crates/core/src/akindex/simple.rs".to_string(), path, &src);
    let config = LintConfig {
        root,
        baseline: None,
        deny_all: true,
    };
    let report = xsi_lint::run_on_sources(&config, &[parsed]);
    let hits = live(&report, "hash-iter");
    assert!(
        !hits.is_empty(),
        "raw members iteration must trip hash-iter"
    );
}
