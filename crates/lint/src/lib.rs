//! # xsi-lint — project-specific static analysis for the xsi workspace
//!
//! A dependency-free (hand-rolled lexer, no `syn`, no rustc plugin)
//! static-analysis pass that walks every `crates/*/src/**/*.rs` file and
//! enforces the invariant catalog of DESIGN.md §9:
//!
//! * **`hash-iter`** — iteration over `HashMap`/`HashSet` whose order can
//!   leak into index state, serialized output, or traces (the exact bug
//!   class behind the PR 2 `SimpleAkIndex` block-assignment
//!   nondeterminism);
//! * **`panic-unwrap` / `panic-expect` / `slice-index`** — panic-freedom
//!   debt in non-test library code, frozen by the ratchet baseline
//!   (`lint-baseline.json`) so existing call sites are tolerated but any
//!   *new* one fails CI;
//! * **`obs-coverage`** — every `pub fn` mutation entry point in the
//!   engine and the two maintainers must feed the observability layer
//!   (DESIGN.md §8), by touching the obs hub or the `UpdateStats`
//!   phase counters;
//! * **`forbid-unsafe` / `hot-assert` / `todo` / `bad-waiver`** —
//!   hygiene: crate roots carry `#![forbid(unsafe_code)]`, hot paths use
//!   `debug_assert!` rather than release-mode `assert!`, deferred-work
//!   markers are inventoried, and malformed waivers are findings.
//!
//! Findings are suppressed three ways, in order: an explicit
//! `// xsi-lint: allow(<rule>, <reason>)` waiver on (or immediately
//! above) the offending line; rule-specific safe patterns (e.g. a sort
//! directly downstream of a hash iteration); or — for the panic-freedom
//! rules only — an entry in the committed ratchet baseline.
//!
//! The binary (`cargo run -p xsi-lint`) renders findings diff-style and
//! exits non-zero when any fatal finding survives; `--json` emits a
//! machine-readable report, `--update-baseline` re-freezes the ratchet,
//! and `--explain <rule>` prints a rule's full documentation.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod render;
pub mod rules;
pub mod sarif;
pub mod source;
pub mod symbols;

use crate::baseline::Baseline;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// How bad a finding is by default.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational inventory (deferred-work markers); never fails the run.
    Note,
    /// Fails only under `--deny-all` (the CI mode).
    Warn,
    /// Fails every run.
    Deny,
}

/// Why a finding did not count against the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suppression {
    /// An explicit `xsi-lint: allow(...)` waiver covers the line.
    Waived,
    /// The ratchet baseline froze this (file, rule) occurrence.
    Baselined,
}

/// One lint hit.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    /// The offending source line, for diff-style rendering.
    pub excerpt: String,
    /// `None` when the finding is live; otherwise why it was suppressed.
    pub suppressed: Option<Suppression>,
    /// Ratchet grouping key override. `None` groups by `path` (the
    /// per-file rules); `panic-reach` sets `<file>#<Type::fn>` so each
    /// entry point ratchets independently.
    pub ratchet_key: Option<String>,
}

/// Static description of one rule, for `--explain` and the registry.
pub struct RuleInfo {
    pub name: &'static str,
    pub severity: Severity,
    /// May occurrences of this rule be frozen in the ratchet baseline?
    pub baselineable: bool,
    /// May a `// xsi-lint: allow(...)` comment suppress this rule?
    pub waivable: bool,
    /// One-line summary.
    pub summary: &'static str,
    /// Long-form documentation: the bug class targeted, the incident
    /// that motivated it, and how to fix or waive a finding.
    pub explain: &'static str,
}

/// Input to a lint run.
pub struct LintConfig {
    /// Workspace root; `crates/*/src/**/*.rs` is walked below it.
    pub root: PathBuf,
    /// Ratchet baseline (already loaded); `None` means empty.
    pub baseline: Option<Baseline>,
    /// Promote `Warn` findings to fatal.
    pub deny_all: bool,
}

/// Result of a lint run, before rendering.
pub struct Report {
    /// Every finding, including suppressed ones (render decides what to
    /// show; JSON output carries all of them).
    pub findings: Vec<Finding>,
    /// Files scanned (workspace-relative), in walk order.
    pub files: Vec<String>,
    /// Per-(file, rule) live counts for baselineable rules — exactly
    /// what `--update-baseline` writes.
    pub ratchet_counts: BTreeMap<String, BTreeMap<String, usize>>,
    /// (file, rule) pairs whose live count came in *under* baseline —
    /// improvements worth re-freezing.
    pub improvements: Vec<(String, String, usize, usize)>,
}

impl Report {
    /// Findings that actually fail the run under the given mode.
    pub fn fatal(&self, deny_all: bool) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| {
            f.suppressed.is_none()
                && match f.severity {
                    Severity::Deny => true,
                    Severity::Warn => deny_all,
                    Severity::Note => false,
                }
        })
    }

    pub fn count(&self, s: Option<Suppression>) -> usize {
        self.findings.iter().filter(|f| f.suppressed == s).count()
    }
}

/// Walk `crates/*/src/**/*.rs` under `root`, sorted for determinism.
pub fn discover_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let path = entry?.path();
        if path.is_dir() {
            crate_dirs.push(path);
        }
    }
    crate_dirs.sort();
    let mut files = Vec::new();
    for c in crate_dirs {
        let src = c.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut files)?;
        }
    }
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Find the workspace root by walking up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

/// Run every rule over every discovered file and fold in waivers and
/// the ratchet baseline.
pub fn run(config: &LintConfig) -> std::io::Result<Report> {
    let paths = discover_files(&config.root)?;
    let mut sources = Vec::with_capacity(paths.len());
    for p in &paths {
        let text = std::fs::read_to_string(p)?;
        let rel = rel_path(&config.root, p);
        sources.push(SourceFile::parse(rel, p.clone(), &text));
    }
    Ok(run_on_sources(config, &sources))
}

/// Testable core: lint already-parsed sources.
pub fn run_on_sources(config: &LintConfig, sources: &[SourceFile]) -> Report {
    let mut findings: Vec<Finding> = Vec::new();
    for f in sources {
        rules::run_all(f, &mut findings);
    }

    // Phase 2: interprocedural rules over the one-pass workspace
    // symbol table and its conservative call graph.
    let table = symbols::SymbolTable::build(sources);
    let graph = callgraph::CallGraph::build(&table, sources);
    rules::run_interproc(sources, &table, &graph, &mut findings);

    // 1. Waivers: any waivable finding on a waived line is suppressed.
    // Track which waiver fired — unused waivers are themselves findings.
    let mut used_waivers: BTreeSet<(usize, usize)> = BTreeSet::new();
    for fi in &mut findings {
        let Some((si, src)) = sources
            .iter()
            .enumerate()
            .find(|(_, s)| s.rel_path == fi.path)
        else {
            continue;
        };
        if rules::info(fi.rule).is_some_and(|r| r.waivable) {
            if let Some(wi) = src.waiver_covering(fi.rule, fi.line) {
                fi.suppressed = Some(Suppression::Waived);
                used_waivers.insert((si, wi));
            }
        }
    }

    // 1b. Dead waivers: a well-formed waiver that suppressed nothing
    // (and exempted no panic site from reachability) is a stale safety
    // claim — flag it so suppression debt can only shrink. Waivers
    // naming unknown rules are `bad-waiver`'s job.
    for (si, src) in sources.iter().enumerate() {
        for (wi, w) in src.waivers.iter().enumerate() {
            if rules::info(&w.rule).is_none() || used_waivers.contains(&(si, wi)) {
                continue;
            }
            if exempts_panic_macro(src, w) {
                continue;
            }
            findings.push(rules::finding(
                src,
                "dead-waiver",
                w.line,
                format!(
                    "waiver for `{}` suppressed zero findings (covers lines {}\u{2013}{}); \
                     the hazard it argued safe is gone — delete the waiver",
                    w.rule, w.applies_from, w.applies_to
                ),
            ));
        }
    }

    // 2. Ratchet baseline: for baselineable rules, freeze up to the
    // baselined count per (file, rule), preferring the earliest lines
    // (stable under appends).
    let empty = Baseline::default();
    let base = config.baseline.as_ref().unwrap_or(&empty);
    let mut ratchet_counts: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
    let mut improvements = Vec::new();
    {
        // Group indices of live, baselineable findings by (key, rule),
        // where key is the file path unless the rule set a ratchet key
        // (panic-reach ratchets per `<file>#<entry fn>`).
        let mut groups: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, fi) in findings.iter().enumerate() {
            if fi.suppressed.is_some() {
                continue;
            }
            let baselineable = rules::info(fi.rule)
                .map(|r| r.baselineable)
                .unwrap_or(false);
            if baselineable {
                let key = fi.ratchet_key.clone().unwrap_or_else(|| fi.path.clone());
                groups
                    .entry((key, fi.rule.to_string()))
                    .or_default()
                    .push(i);
            }
        }
        for ((path, rule), idxs) in groups {
            let budget = base.get(&path, &rule);
            let live = idxs.len();
            ratchet_counts
                .entry(path.clone())
                .or_default()
                .insert(rule.clone(), live);
            for (n, &i) in idxs.iter().enumerate() {
                if n < budget {
                    findings[i].suppressed = Some(Suppression::Baselined);
                } else {
                    findings[i].message = format!(
                        "{} ({} found vs {} frozen in baseline)",
                        findings[i].message, live, budget
                    );
                }
            }
            if live < budget {
                improvements.push((path, rule, live, budget));
            }
        }
        // Baseline entries for files/rules that no longer fire at all are
        // improvements (ratchet down to zero) — and, because a leftover
        // budget would quietly absorb future regressions, they are also
        // `stale-baseline` findings until `--update-baseline` prunes them.
        for (path, rules_map) in base.entries() {
            for (rule, &budget) in rules_map {
                let live = ratchet_counts
                    .get(path)
                    .and_then(|m| m.get(rule))
                    .copied()
                    .unwrap_or(0);
                if live == 0 && budget > 0 {
                    improvements.push((path.clone(), rule.clone(), 0, budget));
                    // For panic-reach keys (`file#entry`), anchor the
                    // finding at the file part.
                    let file_part = path.split('#').next().unwrap_or(path).to_string();
                    let gone = !sources.iter().any(|s| s.rel_path == file_part);
                    findings.push(Finding {
                        rule: "stale-baseline",
                        severity: rules::info("stale-baseline")
                            .map(|r| r.severity)
                            .unwrap_or(Severity::Deny),
                        path: file_part.clone(),
                        line: 0,
                        message: if gone {
                            format!(
                                "baseline entry `{path}` / `{rule}` (budget {budget}) refers to a \
                                 file no longer scanned; run --update-baseline to prune it"
                            )
                        } else {
                            format!(
                                "baseline entry `{path}` / `{rule}` froze {budget} finding(s) but 0 \
                                 remain live; run --update-baseline to ratchet the budget away"
                            )
                        },
                        excerpt: String::new(),
                        suppressed: None,
                        ratchet_key: None,
                    });
                }
            }
        }
        improvements.sort();
        improvements.dedup();
    }

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Report {
        findings,
        files: sources.iter().map(|s| s.rel_path.clone()).collect(),
        ratchet_counts,
        improvements,
    }
}

/// Does a `panic-reach` waiver exempt an explicit panic-macro site
/// from reachability? Such a waiver never suppresses a finding at its
/// own line (the finding sits at the entry point), so the dead-waiver
/// audit must recognize this second way of being load-bearing. The
/// three ratcheted panic kinds need no such carve-out: their per-file
/// rules always produce a (suppressed) finding at the waived site.
fn exempts_panic_macro(src: &SourceFile, w: &source::Waiver) -> bool {
    if w.rule != "panic-reach" {
        return false;
    }
    src.toks.windows(2).any(|p| {
        p[0].kind == lexer::TokKind::Ident
            && symbols::PANIC_MACROS.contains(&p[0].text.as_str())
            && p[1].is_punct('!')
            && w.applies_from <= p[0].line
            && p[0].line <= w.applies_to
    })
}

/// Workspace-relative `/`-separated path for reports and baselines.
pub fn rel_path(root: &Path, p: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    let s = rel.to_string_lossy();
    if std::path::MAIN_SEPARATOR == '/' {
        s.into_owned()
    } else {
        s.replace(std::path::MAIN_SEPARATOR, "/")
    }
}
