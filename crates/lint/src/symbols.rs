//! Phase-1 workspace symbol table: a hand-rolled item parser (no
//! `syn`, tier-1 stays offline) that walks every file's token stream
//! once and records each `fn` item — name, visibility, receiver,
//! arity, enclosing `impl`/`mod` context, and body token span — plus
//! the live panic sites inside each body.
//!
//! The table is deliberately *name-resolution free*: two `fn new`s in
//! different impls are two entries sharing a name, and it is the call
//! graph ([`crate::callgraph`]) that decides — conservatively, by
//! name + arity — which entries a call site may reach. That keeps the
//! parser robust in exactly the way the token-level lexer is: macro
//! bodies, cfg-gated items, and generics-heavy signatures degrade into
//! *extra* conservatism (an unparsed item becomes an opaque callee),
//! never into a parse failure.

use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Item visibility, as far as the call-graph rules care.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Visibility {
    /// No `pub` at all.
    Private,
    /// `pub(crate)`, `pub(super)`, `pub(in …)` — restricted.
    Restricted,
    /// Plain `pub`.
    Public,
}

/// How a fn takes `self`, if at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Receiver {
    /// Free function or associated fn without `self`.
    None,
    /// `self` / `mut self` by value.
    Value,
    /// `&self` (possibly with a lifetime).
    Ref,
    /// `&mut self` (possibly with a lifetime).
    RefMut,
}

/// What kind of panic a site is — mirrors the per-file ratchet rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PanicKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect("…")` without an `invariant:`/`checked:` prefix.
    Expect,
    /// Panicking `container[index]`.
    SliceIndex,
    /// Explicit `panic!` / `todo!` / `unimplemented!` macro.
    PanicMacro,
}

impl PanicKind {
    /// The per-file rule whose waiver exempts a site of this kind.
    pub fn waiver_rule(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "panic-unwrap",
            PanicKind::Expect => "panic-expect",
            PanicKind::SliceIndex => "slice-index",
            // No dedicated per-file rule; panic-reach waivers on the
            // line exempt explicit panics.
            PanicKind::PanicMacro => "panic-reach",
        }
    }

    /// Short human label for chain messages.
    pub fn label(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "`.unwrap()`",
            PanicKind::Expect => "uncontracted `.expect(…)`",
            PanicKind::SliceIndex => "panicking `[…]` index",
            PanicKind::PanicMacro => "explicit panic macro",
        }
    }
}

/// One live panic site inside a fn body.
#[derive(Clone, Debug)]
pub struct PanicSite {
    pub kind: PanicKind,
    /// 1-based line in the owning file.
    pub line: u32,
}

/// One parsed `fn` item.
#[derive(Clone, Debug)]
pub struct FnSym {
    /// Index into the source list the table was built from.
    pub file: usize,
    /// Workspace-relative path of that file (denormalized for messages).
    pub path: String,
    /// Bare fn name.
    pub name: String,
    /// `Type::name` when inside `impl … Type { … }`, else the bare name.
    pub qual_name: String,
    /// 1-based line of the fn name.
    pub line: u32,
    pub vis: Visibility,
    pub receiver: Receiver,
    /// Number of parameters *excluding* any `self` receiver.
    pub arity: usize,
    /// Trait name when declared inside `impl Trait for Type`.
    pub trait_impl: Option<String>,
    /// Token span (`{`, `}`) of the body in the owning file's token
    /// stream; `None` for body-less trait declarations.
    pub body: Option<(usize, usize)>,
    /// Token index of the fn name (signature tokens follow until the
    /// body open).
    pub name_tok: usize,
    /// Live panic sites in the body (test lines and per-rule-waived
    /// lines already excluded; contract `expect` messages exempt).
    pub sites: Vec<PanicSite>,
}

/// The phase-1 output: every fn in the workspace, plus a name index.
#[derive(Debug, Default)]
pub struct SymbolTable {
    pub fns: Vec<FnSym>,
    /// Bare name → indexes into `fns`, in (file, line) order.
    by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Walk every source once and build the table. `sources` must be
    /// the same slice later handed to the call-graph builder: `FnSym::
    /// file` indexes into it.
    pub fn build(sources: &[SourceFile]) -> SymbolTable {
        let mut fns = Vec::new();
        for (fi, src) in sources.iter().enumerate() {
            parse_file(fi, src, &mut fns);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        SymbolTable { fns, by_name }
    }

    /// All fns sharing a bare name, in (file, line) order.
    pub fn candidates(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Is any fn in the table called `name`?
    pub fn knows(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }
}

/// Keywords that can sit between a visibility and `fn`.
const FN_QUALIFIERS: &[&str] = &["const", "async", "unsafe", "extern"];

/// Parse one file's items into `out`.
fn parse_file(fi: usize, src: &SourceFile, out: &mut Vec<FnSym>) {
    let toks = &src.toks;
    // Stack of enclosing brace contexts: for each open `{` we remember
    // the impl type name active inside it (if it opened an impl block)
    // or carry the parent's.
    let mut impl_stack: Vec<Option<ImplCtx>> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            let inherited = impl_stack.last().cloned().flatten();
            impl_stack.push(inherited);
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            impl_stack.pop();
            i += 1;
            continue;
        }
        if t.is_ident("impl") {
            // Parse forward to the block `{`, extracting the self type
            // (the last path segment before `{`, after any `for`).
            if let Some((ctx, open)) = parse_impl_header(toks, i) {
                impl_stack.push(Some(ctx));
                i = open + 1;
                continue;
            }
        }
        if t.is_ident("fn") && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            let ctx = impl_stack.last().cloned().flatten();
            if let Some((sym, next)) = parse_fn(fi, src, i, ctx.as_ref()) {
                out.push(sym);
                // `next` points just past the signature; bodies are
                // re-entered so nested fns and closures still parse.
                i = next;
                continue;
            }
        }
        i += 1;
    }
}

#[derive(Clone, Debug)]
struct ImplCtx {
    self_type: String,
    trait_name: Option<String>,
}

/// From `toks[start] == impl`, find the self type and the block `{`.
fn parse_impl_header(toks: &[Tok], start: usize) -> Option<(ImplCtx, usize)> {
    let mut j = start + 1;
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    let mut before_for: Option<String> = None;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            // `->` cannot appear in an impl header before the block.
            angle -= 1;
        } else if angle == 0 {
            if t.is_punct('{') {
                let self_type = last_ident?;
                return Some((
                    ImplCtx {
                        self_type,
                        trait_name: before_for,
                    },
                    j,
                ));
            }
            if t.is_punct(';') {
                return None; // `impl Trait for Type;` — nothing to enter
            }
            if t.is_ident("for") {
                before_for = last_ident.take();
            } else if t.kind == TokKind::Ident && t.text != "where" && t.text != "dyn" {
                last_ident = Some(t.text.clone());
            } else if t.is_punct('(') {
                // `impl Trait for (A, B)` tuples etc.: skip the group.
                let mut depth = 1usize;
                j += 1;
                while j < toks.len() && depth > 0 {
                    if toks[j].is_punct('(') {
                        depth += 1;
                    } else if toks[j].is_punct(')') {
                        depth -= 1;
                    }
                    j += 1;
                }
                continue;
            }
        }
        j += 1;
    }
    None
}

/// Parse one `fn` starting at the `fn` keyword. Returns the symbol and
/// the token index to resume scanning from (just past the parameter
/// list, so bodies are re-scanned for nested items).
fn parse_fn(
    fi: usize,
    src: &SourceFile,
    fn_idx: usize,
    ctx: Option<&ImplCtx>,
) -> Option<(FnSym, usize)> {
    let toks = &src.toks;
    let name_tok = fn_idx + 1;
    let name = toks[name_tok].text.clone();
    let line = toks[name_tok].line;

    // Visibility: scan backwards over qualifiers to a possible `pub`.
    let mut k = fn_idx;
    while k > 0
        && toks[k - 1].kind == TokKind::Ident
        && FN_QUALIFIERS.contains(&toks[k - 1].text.as_str())
    {
        k -= 1;
    }
    // `extern "C" fn` leaves a string literal before `fn`.
    while k > 0 && toks[k - 1].kind == TokKind::Str {
        k -= 1;
        while k > 0
            && toks[k - 1].kind == TokKind::Ident
            && FN_QUALIFIERS.contains(&toks[k - 1].text.as_str())
        {
            k -= 1;
        }
    }
    let vis = if k > 0 && toks[k - 1].is_punct(')') {
        // Possible `pub(crate)` / `pub(super)` / `pub(in path)`.
        let mut d = k - 1;
        let mut depth = 1usize;
        while d > 0 && depth > 0 {
            d -= 1;
            if toks[d].is_punct(')') {
                depth += 1;
            } else if toks[d].is_punct('(') {
                depth -= 1;
            }
        }
        if d > 0 && toks[d - 1].is_ident("pub") {
            Visibility::Restricted
        } else {
            Visibility::Private
        }
    } else if k > 0 && toks[k - 1].is_ident("pub") {
        Visibility::Public
    } else {
        Visibility::Private
    };

    // Skip generics between name and `(`.
    let mut j = name_tok + 1;
    if toks.get(j).is_some_and(|t| t.is_punct('<')) {
        let mut angle = 1i32;
        j += 1;
        while j < toks.len() && angle > 0 {
            if toks[j].is_punct('<') {
                angle += 1;
            } else if toks[j].is_punct('>') {
                angle -= 1;
            }
            j += 1;
        }
    }
    if !toks.get(j).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    // Walk the parameter list: count top-level commas, detect `self`.
    let mut depth = 0i32; // (), [], {} nesting
    let mut angle = 0i32; // <> nesting (arrows handled below)
    let mut receiver = Receiver::None;
    let mut saw_any_param = false;
    let mut commas = 0usize;
    let mut first_param_toks: Vec<usize> = Vec::new();
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            if j > 0 && toks[j - 1].is_punct('-') {
                // `->` arrow inside an fn-type parameter: not a close.
            } else if angle > 0 {
                angle -= 1;
            }
        } else if depth == 1 && angle == 0 && t.is_punct(',') {
            commas += 1;
        } else if depth == 1 && !t.is_punct(',') {
            saw_any_param = true;
            if commas == 0 && first_param_toks.len() < 4 {
                first_param_toks.push(j);
            }
        }
        j += 1;
    }
    let params_close = j;

    // Classify the first parameter as a receiver.
    if let Some(&first) = first_param_toks.first() {
        let f0 = &toks[first];
        if f0.is_ident("self")
            || (f0.is_ident("mut") && toks.get(first + 1).is_some_and(|t| t.is_ident("self")))
        {
            receiver = Receiver::Value;
        } else if f0.is_punct('&') {
            let mut r = first + 1;
            if toks.get(r).is_some_and(|t| t.kind == TokKind::Lifetime) {
                r += 1;
            }
            if toks.get(r).is_some_and(|t| t.is_ident("mut"))
                && toks.get(r + 1).is_some_and(|t| t.is_ident("self"))
            {
                receiver = Receiver::RefMut;
            } else if toks.get(r).is_some_and(|t| t.is_ident("self")) {
                receiver = Receiver::Ref;
            }
        }
    }
    let params = if saw_any_param { commas + 1 } else { 0 };
    let arity = if receiver == Receiver::None {
        params
    } else {
        params.saturating_sub(1)
    };

    // Find the body span (or a `;` for trait declarations).
    let body = crate::rules::obs_coverage::fn_body_span(toks, name_tok);
    let sites = body
        .map(|(open, close)| collect_panic_sites(src, &toks[open..=close]))
        .unwrap_or_default();

    let qual_name = match ctx {
        Some(c) => format!("{}::{}", c.self_type, name),
        None => name.clone(),
    };
    Some((
        FnSym {
            file: fi,
            path: src.rel_path.clone(),
            name,
            qual_name,
            line,
            vis,
            receiver,
            arity,
            trait_impl: ctx.and_then(|c| c.trait_name.clone()),
            body,
            name_tok,
            sites,
        },
        params_close + 1,
    ))
}

/// Contract prefixes that make an `expect` message acceptable — kept in
/// sync with [`crate::rules::panics`].
const EXPECT_PREFIXES: &[&str] = &["invariant:", "checked:"];

/// Keywords that may precede `[` without it being an indexing
/// expression — kept in sync with [`crate::rules::panics`].
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "const", "static", "move", "as",
    "dyn", "impl", "for", "where", "box", "break", "yield",
];

/// Panic macros counted as sites for reachability (beyond the three
/// ratcheted per-file classes).
pub(crate) const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Scan a body token slice for live panic sites: non-test,
/// non-contract, and not exempted by a waiver for the corresponding
/// per-file rule (a waiver argues the site safe; arguing it removes it
/// from the reachability debt, unlike the baseline, which merely
/// freezes it).
fn collect_panic_sites(src: &SourceFile, body: &[Tok]) -> Vec<PanicSite> {
    let mut sites = Vec::new();
    let mut push = |kind: PanicKind, line: u32| {
        if src.is_test_line(line) {
            return;
        }
        if src.waived(kind.waiver_rule(), line) {
            return;
        }
        sites.push(PanicSite { kind, line });
    };
    for i in 0..body.len() {
        let t = &body[i];
        if t.is_punct('.')
            && body.get(i + 1).is_some_and(|m| m.is_ident("unwrap"))
            && body.get(i + 2).is_some_and(|p| p.is_punct('('))
        {
            push(PanicKind::Unwrap, body[i + 1].line);
        } else if t.is_punct('.')
            && body.get(i + 1).is_some_and(|m| m.is_ident("expect"))
            && body.get(i + 2).is_some_and(|p| p.is_punct('('))
        {
            if let Some(msg) = body.get(i + 3).filter(|m| m.kind == TokKind::Str) {
                if !EXPECT_PREFIXES.iter().any(|p| msg.text.starts_with(p)) {
                    push(PanicKind::Expect, body[i + 1].line);
                }
            }
        } else if t.is_punct('[') && i > 0 {
            let prev = &body[i - 1];
            let indexable = match prev.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
                _ => false,
            };
            if indexable {
                push(PanicKind::SliceIndex, t.line);
            }
        } else if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && body.get(i + 1).is_some_and(|p| p.is_punct('!'))
        {
            push(PanicKind::PanicMacro, t.line);
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn table(src: &str) -> SymbolTable {
        let f = SourceFile::parse("crates/x/src/lib.rs".into(), PathBuf::from("/x.rs"), src);
        SymbolTable::build(std::slice::from_ref(&f))
    }

    fn sym<'a>(t: &'a SymbolTable, name: &str) -> &'a FnSym {
        let c = t.candidates(name);
        assert_eq!(c.len(), 1, "exactly one `{name}`");
        &t.fns[c[0]]
    }

    #[test]
    fn free_fn_visibility_receiver_arity() {
        let t = table("pub fn a(x: u32, y: u32) {} fn b() {} pub(crate) fn c(z: u64) {}");
        assert_eq!(sym(&t, "a").vis, Visibility::Public);
        assert_eq!(sym(&t, "a").arity, 2);
        assert_eq!(sym(&t, "a").receiver, Receiver::None);
        assert_eq!(sym(&t, "b").vis, Visibility::Private);
        assert_eq!(sym(&t, "b").arity, 0);
        assert_eq!(sym(&t, "c").vis, Visibility::Restricted);
        assert_eq!(sym(&t, "c").arity, 1);
    }

    #[test]
    fn impl_methods_get_qualified_names_and_receivers() {
        let t = table(
            "struct S; impl S { pub fn m(&mut self, a: u32) -> u32 { a } \
             fn r(&self) {} fn v(self) {} pub fn assoc(n: u32) -> S { S } }",
        );
        let m = sym(&t, "m");
        assert_eq!(m.qual_name, "S::m");
        assert_eq!(m.receiver, Receiver::RefMut);
        assert_eq!(m.arity, 1);
        assert_eq!(sym(&t, "r").receiver, Receiver::Ref);
        assert_eq!(sym(&t, "v").receiver, Receiver::Value);
        let a = sym(&t, "assoc");
        assert_eq!(a.receiver, Receiver::None);
        assert_eq!(a.arity, 1);
    }

    #[test]
    fn trait_impls_record_the_trait() {
        let t = table(
            "impl Display for Wrapper { fn fmt(&self, f: &mut Formatter) -> Result { ok() } }",
        );
        let f = sym(&t, "fmt");
        assert_eq!(f.qual_name, "Wrapper::fmt");
        assert_eq!(f.trait_impl.as_deref(), Some("Display"));
        assert_eq!(f.arity, 1);
    }

    #[test]
    fn generic_params_do_not_confuse_arity() {
        let t = table("fn g<K: Ord, V>(m: BTreeMap<K, V>, d: V) -> V { pick(m, d) }");
        assert_eq!(sym(&t, "g").arity, 2);
    }

    #[test]
    fn bodyless_trait_decls_have_no_body() {
        let t = table("trait T { fn decl(&self, x: u32); fn with_default(&self) -> u32 { 1 } }");
        assert!(sym(&t, "decl").body.is_none());
        assert!(sym(&t, "with_default").body.is_some());
    }

    #[test]
    fn nested_fns_are_found() {
        let t = table("fn outer() { fn inner(q: u8) {} inner(3); }");
        assert_eq!(sym(&t, "inner").arity, 1);
        assert!(sym(&t, "outer").body.is_some());
    }

    #[test]
    fn panic_sites_collected_with_exemptions() {
        let t = table(
            "fn f(v: &[u32], o: Option<u32>) -> u32 {\n\
             let a = o.unwrap();\n\
             let b = o.expect(\"boom\");\n\
             let c = o.expect(\"invariant: checked by caller\");\n\
             let d = v[0];\n\
             let e = v[1]; // xsi-lint: allow(slice-index, len checked above)\n\
             if a > b { panic!(\"no\"); }\n\
             a + b + c + d + e\n}",
        );
        let f = sym(&t, "f");
        let kinds: Vec<PanicKind> = f.sites.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            [
                PanicKind::Unwrap,
                PanicKind::Expect,
                PanicKind::SliceIndex,
                PanicKind::PanicMacro
            ],
            "{:?}",
            f.sites
        );
    }

    #[test]
    fn test_fns_have_no_live_sites() {
        let t = table("#[test]\nfn t() { x().unwrap(); }\nfn live() { y().unwrap(); }");
        assert!(sym(&t, "t").sites.is_empty());
        assert_eq!(sym(&t, "live").sites.len(), 1);
    }

    #[test]
    fn multiple_same_name_fns_are_all_candidates() {
        let t = table("impl A { fn new() -> A { A } } impl B { fn new() -> B { B } }");
        assert_eq!(t.candidates("new").len(), 2);
        assert!(t.knows("new"));
        assert!(!t.knows("absent"));
    }
}
