//! Phase-1.5: a conservative, name-resolution-only call graph over the
//! [`crate::symbols::SymbolTable`].
//!
//! Resolution is deliberately approximate (DESIGN.md §9 documents the
//! false-negative classes):
//!
//! * a **method call** `recv.name(a, b)` resolves to every fn in the
//!   workspace named `name` that takes a receiver and has matching
//!   arity — no type inference, so two impls of the same trait method
//!   both become edges (conservative over-approximation);
//! * a **free/path call** `path::name(a)` resolves to every fn named
//!   `name` without a receiver and matching arity, plus
//!   receiver-taking fns of arity `n-1` (UFCS `Type::method(x)`);
//! * when arity matching eliminates every candidate (closure commas and
//!   turbofish noise can skew the count), resolution falls back to
//!   *all* same-name fns rather than silently dropping the edge;
//! * calls whose name matches **no** workspace fn are **opaque** —
//!   std/external callees assumed non-panicking. That is the big
//!   documented false-negative class: `Vec::push` reallocation aborts,
//!   `RefCell::borrow` panics, and arithmetic overflow are all
//!   invisible here.
//!
//! Macro invocations (`name!(…)`) are not calls; panic-family macros
//! are instead counted as in-body panic sites by the symbol pass.

use crate::symbols::{FnSym, PanicSite, Receiver, SymbolTable};
use std::collections::{BTreeMap, VecDeque};

/// One syntactic call site inside a fn body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee name as written (last path segment for `a::b::c(…)`).
    pub name: String,
    /// 1-based line of the callee name in the caller's file.
    pub line: u32,
    /// Indices into the symbol table's fn list this call may reach.
    /// Empty iff `opaque`.
    pub targets: Vec<usize>,
    /// True when no workspace fn shares the callee's name.
    pub opaque: bool,
}

/// The call graph: per-fn call sites plus a deduplicated, sorted
/// adjacency list (deterministic BFS order).
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `calls[i]` — call sites in `table.fns[i]`'s body, in token order.
    pub calls: Vec<Vec<CallSite>>,
    adj: Vec<Vec<usize>>,
}

/// One shortest path from an entry fn to a panicking fn.
#[derive(Clone, Debug)]
pub struct PanicChain {
    /// Fn indices from the entry (inclusive) to the fn owning the site.
    pub path: Vec<usize>,
    /// The first (lowest-line) live site in the terminal fn.
    pub site: PanicSite,
}

/// Identifiers that look like `name(` but never are calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "match", "return", "in", "loop", "fn", "let", "mut", "ref",
    "move", "as", "impl", "dyn", "where", "pub", "crate", "super", "use", "mod", "struct", "enum",
    "trait", "type", "const", "static", "unsafe", "async", "await", "box", "break", "continue",
    "yield",
];

impl CallGraph {
    /// Extract call sites from every fn body and resolve them against
    /// the table. `sources` must be the slice the table was built from.
    pub fn build(table: &SymbolTable, sources: &[crate::source::SourceFile]) -> CallGraph {
        let mut calls = Vec::with_capacity(table.fns.len());
        let mut adj = Vec::with_capacity(table.fns.len());
        for f in &table.fns {
            let sites = extract_calls(f, sources, table);
            let mut edges: Vec<usize> = sites
                .iter()
                .flat_map(|c| c.targets.iter().copied())
                .collect();
            edges.sort_unstable();
            edges.dedup();
            calls.push(sites);
            adj.push(edges);
        }
        CallGraph { calls, adj }
    }

    /// Direct callees of fn `i`, sorted, deduplicated.
    pub fn callees(&self, i: usize) -> &[usize] {
        self.adj.get(i).map(Vec::as_slice).unwrap_or(&[])
    }

    /// BFS from `entry`: maps every reachable fn (including `entry`)
    /// to its BFS parent (`entry` maps to itself). Parents encode
    /// shortest call chains; iteration order is fn-index order, which
    /// is (file, line) order — deterministic.
    pub fn reachable(&self, entry: usize) -> BTreeMap<usize, usize> {
        let mut parents = BTreeMap::new();
        let mut queue = VecDeque::new();
        parents.insert(entry, entry);
        queue.push_back(entry);
        while let Some(u) = queue.pop_front() {
            for &v in self.callees(u) {
                if let std::collections::btree_map::Entry::Vacant(e) = parents.entry(v) {
                    e.insert(u);
                    queue.push_back(v);
                }
            }
        }
        parents
    }

    /// BFS from `entry` to the nearest fn with a live panic site
    /// (possibly `entry` itself). Deterministic: adjacency is sorted,
    /// and ties break toward the earliest-discovered fn.
    pub fn shortest_panic_chain(&self, table: &SymbolTable, entry: usize) -> Option<PanicChain> {
        let n = table.fns.len();
        let mut parent: Vec<usize> = vec![usize::MAX; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[entry] = true;
        queue.push_back(entry);
        while let Some(u) = queue.pop_front() {
            if let Some(site) = first_site(&table.fns[u]) {
                let mut path = vec![u];
                let mut cur = u;
                while cur != entry {
                    cur = parent[cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(PanicChain { path, site });
            }
            for &v in self.callees(u) {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        None
    }
}

fn first_site(f: &FnSym) -> Option<PanicSite> {
    f.sites.iter().min_by_key(|s| (s.line, s.kind)).cloned()
}

/// Walk one fn body for call sites.
fn extract_calls(
    f: &FnSym,
    sources: &[crate::source::SourceFile],
    table: &SymbolTable,
) -> Vec<CallSite> {
    let Some((open, close)) = f.body else {
        return Vec::new();
    };
    let src = &sources[f.file];
    let toks = &src.toks;
    let mut out = Vec::new();
    // Dedup repeated identical (name, method) calls per body to keep
    // site lists compact; adjacency dedups anyway, but store-discipline
    // iterates sites, so cap the noise. Key: (name, line).
    let mut seen: BTreeMap<(String, u32), ()> = BTreeMap::new();
    for i in open..=close {
        let t = &toks[i];
        if t.kind != crate::lexer::TokKind::Ident {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|p| p.is_punct('(')) {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        // `fn name(` is a declaration (nested fns re-parse separately).
        if prev.is_some_and(|p| p.is_ident("fn")) {
            continue;
        }
        if src.is_test_line(t.line) {
            continue;
        }
        let method = prev.is_some_and(|p| p.is_punct('.'));
        let nargs = count_args(toks, i + 1);
        let name = t.text.clone();
        if seen.insert((name.clone(), t.line), ()).is_some() {
            continue;
        }
        let (targets, opaque) = resolve(table, &name, method, nargs);
        out.push(CallSite {
            name,
            line: t.line,
            targets,
            opaque,
        });
    }
    out
}

/// Count arguments in the paren group opening at `open` (`toks[open]`
/// must be `(`): 0 for `()`, else top-level commas + 1. Closure-param
/// commas can inflate the count; resolution's arity fallback absorbs
/// that.
fn count_args(toks: &[crate::lexer::Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 {
            if t.is_punct(',') {
                commas += 1;
            } else {
                any = true;
            }
        }
        j += 1;
    }
    if any {
        commas + 1
    } else {
        0
    }
}

/// Conservative name+arity resolution. Returns (targets, opaque).
fn resolve(table: &SymbolTable, name: &str, method: bool, nargs: usize) -> (Vec<usize>, bool) {
    let cands = table.candidates(name);
    if cands.is_empty() {
        return (Vec::new(), true);
    }
    let exact: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| {
            let f = &table.fns[i];
            if method {
                f.receiver != Receiver::None && f.arity == nargs
            } else {
                (f.receiver == Receiver::None && f.arity == nargs)
                    || (f.receiver != Receiver::None && nargs > 0 && f.arity == nargs - 1)
            }
        })
        .collect();
    if exact.is_empty() {
        // Arity mismatch everywhere (closure commas, default-heavy
        // macros): keep every candidate rather than dropping the edge.
        (cands.to_vec(), false)
    } else {
        (exact, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn setup(src: &str) -> (Vec<SourceFile>, SymbolTable) {
        let f = SourceFile::parse("crates/x/src/lib.rs".into(), PathBuf::from("/x.rs"), src);
        let sources = vec![f];
        let table = SymbolTable::build(&sources);
        (sources, table)
    }

    fn idx(t: &SymbolTable, name: &str) -> usize {
        let c = t.candidates(name);
        assert_eq!(c.len(), 1, "exactly one `{name}`");
        c[0]
    }

    #[test]
    fn direct_call_makes_an_edge() {
        let (s, t) = setup("fn a() { b(); } fn b() { x.unwrap(); }");
        let g = CallGraph::build(&t, &s);
        assert_eq!(g.callees(idx(&t, "a")), [idx(&t, "b")]);
        let chain = g.shortest_panic_chain(&t, idx(&t, "a")).expect("chain");
        assert_eq!(chain.path, [idx(&t, "a"), idx(&t, "b")]);
    }

    #[test]
    fn cycles_terminate_and_still_find_the_site() {
        let (s, t) = setup("fn a() { b(); } fn b() { a(); c(); } fn c() { v.unwrap(); }");
        let g = CallGraph::build(&t, &s);
        let chain = g.shortest_panic_chain(&t, idx(&t, "a")).expect("chain");
        assert_eq!(chain.path, [idx(&t, "a"), idx(&t, "b"), idx(&t, "c")]);
    }

    #[test]
    fn mutual_recursion_without_panics_is_none() {
        let (s, t) = setup("fn even(n: u32) { odd(n); } fn odd(n: u32) { even(n); }");
        let g = CallGraph::build(&t, &s);
        assert!(g.shortest_panic_chain(&t, idx(&t, "even")).is_none());
    }

    #[test]
    fn trait_methods_resolve_to_every_impl() {
        let (s, t) = setup(
            "fn drive(x: &X, y: &Y) { x.go(); }\n\
             impl Step for X { fn go(&self) {} }\n\
             impl Step for Y { fn go(&self) { q.unwrap(); } }",
        );
        let g = CallGraph::build(&t, &s);
        // `x.go()` cannot be typed; both impls become edges, so the
        // panicking one is (conservatively) reachable.
        assert_eq!(g.callees(idx(&t, "drive")).len(), 2);
        assert!(g.shortest_panic_chain(&t, idx(&t, "drive")).is_some());
    }

    #[test]
    fn opaque_calls_are_recorded_but_make_no_edges() {
        let (s, t) = setup("fn a() { std::mem::swap(p, q); }");
        let g = CallGraph::build(&t, &s);
        let a = idx(&t, "a");
        assert!(g.callees(a).is_empty());
        assert_eq!(g.calls[a].len(), 1);
        assert!(g.calls[a][0].opaque);
        assert_eq!(g.calls[a][0].name, "swap");
        assert!(g.shortest_panic_chain(&t, a).is_none());
    }

    #[test]
    fn arity_filters_same_name_candidates() {
        let (s, t) = setup(
            "fn caller() { helper(1); }\n\
             impl A { fn helper(&self) { x.unwrap(); } }\n\
             fn helper(n: u32) {}",
        );
        let g = CallGraph::build(&t, &s);
        // Free call with 1 arg: matches the free fn (arity 1) and the
        // UFCS form (receiver + arity 0) — the method stays reachable.
        assert_eq!(g.callees(idx(&t, "caller")).len(), 2);
    }

    #[test]
    fn arity_mismatch_falls_back_to_all_candidates() {
        let (s, t) = setup("fn caller() { f(1, 2, 3); } fn f(a: u32) { x.unwrap(); }");
        let g = CallGraph::build(&t, &s);
        assert_eq!(g.callees(idx(&t, "caller")), [idx(&t, "f")]);
    }

    #[test]
    fn macro_invocations_are_not_calls() {
        let (s, t) = setup("fn a() { println!(\"x\"); vec![1]; } fn println() { x.unwrap(); }");
        let g = CallGraph::build(&t, &s);
        assert!(g.callees(idx(&t, "a")).is_empty());
    }

    #[test]
    fn entry_with_own_site_is_a_length_one_chain() {
        let (s, t) = setup("fn a() { v.unwrap(); }");
        let g = CallGraph::build(&t, &s);
        let chain = g.shortest_panic_chain(&t, idx(&t, "a")).expect("chain");
        assert_eq!(chain.path.len(), 1);
    }

    #[test]
    fn shortest_path_wins_over_longer_ones() {
        let (s, t) = setup(
            "fn a() { long1(); short(); }\n\
             fn long1() { long2(); } fn long2() { boom(); }\n\
             fn short() { boom(); } fn boom() { x.unwrap(); }",
        );
        let g = CallGraph::build(&t, &s);
        let chain = g.shortest_panic_chain(&t, idx(&t, "a")).expect("chain");
        assert_eq!(
            chain.path,
            [idx(&t, "a"), idx(&t, "short"), idx(&t, "boom")]
        );
    }
}
