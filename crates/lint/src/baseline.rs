//! The ratchet baseline: `lint-baseline.json` freezes today's
//! panic-freedom debt per (file, rule) so existing call sites are
//! tolerated while any *new* occurrence fails CI.
//!
//! Format (stable, diff-friendly — keys sorted, one entry per line):
//!
//! ```json
//! {
//!   "version": 1,
//!   "entries": {
//!     "crates/core/src/partition.rs": { "slice-index": 24 }
//!   }
//! }
//! ```
//!
//! The reader is a hand-rolled parser for exactly this JSON subset
//! (two-level string-keyed objects with non-negative integer leaves) —
//! keeping the crate dependency-free. Unknown top-level keys are
//! ignored for forward compatibility.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Frozen (file → rule → count) debt.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<String, BTreeMap<String, usize>>,
}

impl Baseline {
    /// Budget for (file, rule); zero when absent.
    pub fn get(&self, path: &str, rule: &str) -> usize {
        self.entries
            .get(path)
            .and_then(|m| m.get(rule))
            .copied()
            .unwrap_or(0)
    }

    pub fn entries(&self) -> &BTreeMap<String, BTreeMap<String, usize>> {
        &self.entries
    }

    pub fn from_counts(counts: BTreeMap<String, BTreeMap<String, usize>>) -> Baseline {
        let entries = counts
            .into_iter()
            .map(|(p, m)| (p, m.into_iter().filter(|&(_, n)| n > 0).collect()))
            .filter(|(_, m): &(_, BTreeMap<String, usize>)| !m.is_empty())
            .collect();
        Baseline { entries }
    }

    /// Serialize in the stable on-disk format.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n  \"entries\": {");
        let mut first_file = true;
        for (path, rules) in &self.entries {
            if !first_file {
                s.push(',');
            }
            first_file = false;
            let _ = write!(s, "\n    {}: {{ ", quote(path));
            let mut first_rule = true;
            for (rule, n) in rules {
                if !first_rule {
                    s.push_str(", ");
                }
                first_rule = false;
                let _ = write!(s, "{}: {}", quote(rule), n);
            }
            s.push_str(" }");
        }
        if !self.entries.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("}\n}\n");
        s
    }

    /// Parse the on-disk format. Errors carry a byte offset for context.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.eat(b'{')?;
        let mut entries = BTreeMap::new();
        loop {
            p.skip_ws();
            if p.try_eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.eat(b':')?;
            p.skip_ws();
            match key.as_str() {
                "entries" => {
                    p.eat(b'{')?;
                    loop {
                        p.skip_ws();
                        if p.try_eat(b'}') {
                            break;
                        }
                        let path = p.string()?;
                        p.skip_ws();
                        p.eat(b':')?;
                        p.skip_ws();
                        p.eat(b'{')?;
                        let mut rules = BTreeMap::new();
                        loop {
                            p.skip_ws();
                            if p.try_eat(b'}') {
                                break;
                            }
                            let rule = p.string()?;
                            p.skip_ws();
                            p.eat(b':')?;
                            p.skip_ws();
                            let n = p.number()?;
                            rules.insert(rule, n);
                            p.skip_ws();
                            p.try_eat(b',');
                        }
                        entries.insert(path, rules);
                        p.skip_ws();
                        p.try_eat(b',');
                    }
                }
                _ => p.skip_value()?, // "version" and forward-compat keys
            }
            p.skip_ws();
            p.try_eat(b',');
        }
        Ok(Baseline { entries })
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "baseline parse error at byte {}: expected `{}`",
                self.pos, b as char
            ))
        }
    }

    fn try_eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("baseline parse error: unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        other => {
                            return Err(format!(
                                "baseline parse error at byte {}: unsupported escape {:?}",
                                self.pos, other
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&c| (c & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "baseline parse error: invalid UTF-8".to_string())?,
                    );
                    let _ = b;
                }
            }
        }
    }

    fn number(&mut self) -> Result<usize, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!(
                "baseline parse error at byte {}: expected a number",
                self.pos
            ));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "baseline parse error: bad number".to_string())
    }

    /// Skip any scalar or (possibly nested) object/array value.
    fn skip_value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'"') => {
                self.string()?;
            }
            Some(b'{') | Some(b'[') => {
                let open = self.bytes[self.pos];
                let close = if open == b'{' { b'}' } else { b']' };
                self.pos += 1;
                let mut depth = 1usize;
                while depth > 0 {
                    match self.bytes.get(self.pos) {
                        None => return Err("baseline parse error: unterminated value".into()),
                        Some(b'"') => {
                            self.string()?;
                            continue;
                        }
                        Some(&b) if b == open => depth += 1,
                        Some(&b) if b == close => depth -= 1,
                        _ => {}
                    }
                    self.pos += 1;
                }
            }
            _ => {
                // number / true / false / null: scan to a delimiter.
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|b| !matches!(b, b',' | b'}' | b']') && !b.is_ascii_whitespace())
                {
                    self.pos += 1;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, &str, usize)]) -> BTreeMap<String, BTreeMap<String, usize>> {
        let mut m: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        for &(p, r, n) in pairs {
            m.entry(p.to_string()).or_default().insert(r.to_string(), n);
        }
        m
    }

    #[test]
    fn round_trip() {
        let b = Baseline::from_counts(counts(&[
            ("crates/core/src/partition.rs", "slice-index", 24),
            ("crates/core/src/partition.rs", "panic-expect", 3),
            ("crates/xml/src/parser.rs", "panic-unwrap", 7),
        ]));
        let json = b.to_json();
        let b2 = Baseline::parse(&json).expect("invariant: writer output must re-parse");
        assert_eq!(b, b2);
        assert_eq!(b2.get("crates/core/src/partition.rs", "slice-index"), 24);
        assert_eq!(b2.get("crates/xml/src/parser.rs", "slice-index"), 0);
    }

    #[test]
    fn zero_counts_are_dropped() {
        let b = Baseline::from_counts(counts(&[("a.rs", "panic-unwrap", 0)]));
        assert!(b.entries().is_empty());
        assert_eq!(b.to_json(), "{\n  \"version\": 1,\n  \"entries\": {}\n}\n");
    }

    #[test]
    fn unknown_keys_ignored() {
        let src = r#"{ "version": 2, "generator": "future", "entries": { "a.rs": { "panic-unwrap": 1 } }, "extra": [1, {"x": 2}] }"#;
        let b = Baseline::parse(src).expect("invariant: forward-compatible parse");
        assert_eq!(b.get("a.rs", "panic-unwrap"), 1);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Baseline::parse("{").is_err());
        assert!(Baseline::parse(r#"{ "entries": { "a.rs": { "r": x } } }"#).is_err());
    }

    #[test]
    fn deterministic_output_is_sorted() {
        let b = Baseline::from_counts(counts(&[("b.rs", "r", 1), ("a.rs", "r", 1)]));
        let json = b.to_json();
        let a = json.find("a.rs").expect("invariant: a.rs serialized");
        let bpos = json.find("b.rs").expect("invariant: b.rs serialized");
        assert!(a < bpos);
    }
}
