//! SARIF 2.1.0 export (`--sarif`), hand-serialized like the rest of
//! the output layer — no serde, tier-1 stays dependency-free.
//!
//! Shape contract (validated offline by `xsi_metrics_check --sarif`):
//! one run; `tool.driver` carries the full rule registry with stable
//! indices; every finding (live *and* suppressed) becomes a result
//! with `ruleId`/`ruleIndex`, a `level` mapped from [`Severity`]
//! (Deny→error, Warn→warning, Note→note), one physical location with
//! a `startLine` region, and a `suppressions` array — empty for live
//! findings, `inSource` for waivers, `external` for ratchet-baselined
//! debt. GitHub code scanning hides suppressed results but keeps them
//! queryable, which is exactly the ratchet story: frozen debt is
//! visible, new debt annotates the PR.

use crate::rules::RULES;
use crate::{Report, Severity, Suppression};

/// Render a report as a SARIF 2.1.0 JSON document.
pub fn sarif(report: &Report) -> String {
    let mut s = String::with_capacity(16 * 1024);
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"xsi-lint\",\n");
    s.push_str("          \"informationUri\": \"https://example.invalid/xsi/DESIGN.md#9\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        s.push_str("            {\n");
        s.push_str(&format!("              \"id\": {},\n", quote(r.name)));
        s.push_str(&format!(
            "              \"shortDescription\": {{ \"text\": {} }},\n",
            quote(r.summary)
        ));
        s.push_str(&format!(
            "              \"defaultConfiguration\": {{ \"level\": {} }}\n",
            quote(level(r.severity))
        ));
        s.push_str("            }");
        if i + 1 < RULES.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"columnKind\": \"utf16CodeUnits\",\n");
    s.push_str("      \"results\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let rule_index = RULES.iter().position(|r| r.name == f.rule);
        s.push_str("        {\n");
        s.push_str(&format!("          \"ruleId\": {},\n", quote(f.rule)));
        if let Some(ri) = rule_index {
            s.push_str(&format!("          \"ruleIndex\": {ri},\n"));
        }
        s.push_str(&format!(
            "          \"level\": {},\n",
            quote(level(f.severity))
        ));
        s.push_str(&format!(
            "          \"message\": {{ \"text\": {} }},\n",
            quote(&f.message)
        ));
        s.push_str("          \"locations\": [\n            {\n");
        s.push_str("              \"physicalLocation\": {\n");
        s.push_str(&format!(
            "                \"artifactLocation\": {{ \"uri\": {}, \"uriBaseId\": \"SRCROOT\" }},\n",
            quote(&f.path)
        ));
        s.push_str(&format!(
            "                \"region\": {{ \"startLine\": {} }}\n",
            f.line.max(1)
        ));
        s.push_str("              }\n            }\n          ],\n");
        s.push_str("          \"suppressions\": [");
        match f.suppressed {
            None => {}
            Some(Suppression::Waived) => {
                s.push_str("\n            { \"kind\": \"inSource\" }\n          ");
            }
            Some(Suppression::Baselined) => {
                s.push_str(
                    "\n            { \"kind\": \"external\", \"justification\": \
                     \"frozen in lint-baseline.json (ratchet)\" }\n          ",
                );
            }
        }
        s.push_str("]\n        }");
        if i + 1 < report.findings.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Deny => "error",
        Severity::Warn => "warning",
        Severity::Note => "note",
    }
}

/// JSON string literal with escaping.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;
    use std::collections::BTreeMap;

    fn report_with(findings: Vec<Finding>) -> Report {
        Report {
            findings,
            files: vec!["crates/x/src/lib.rs".into()],
            ratchet_counts: BTreeMap::new(),
            improvements: Vec::new(),
        }
    }

    fn fnd(rule: &'static str, suppressed: Option<Suppression>) -> Finding {
        Finding {
            rule,
            severity: Severity::Deny,
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            message: "a \"quoted\"\nmessage".into(),
            excerpt: "x.unwrap()".into(),
            suppressed,
            ratchet_key: None,
        }
    }

    #[test]
    fn shape_has_schema_version_and_rules() {
        let out = sarif(&report_with(vec![]));
        assert!(out.contains("\"version\": \"2.1.0\""));
        assert!(out.contains("sarif-2.1.0.json"));
        assert!(out.contains("\"name\": \"xsi-lint\""));
        assert!(out.contains("\"id\": \"panic-unwrap\""));
    }

    #[test]
    fn live_and_suppressed_results_differ_in_suppressions() {
        let out = sarif(&report_with(vec![
            fnd("panic-unwrap", None),
            fnd("panic-unwrap", Some(Suppression::Waived)),
            fnd("panic-unwrap", Some(Suppression::Baselined)),
        ]));
        assert!(out.contains("\"suppressions\": []"));
        assert!(out.contains("\"kind\": \"inSource\""));
        assert!(out.contains("\"kind\": \"external\""));
    }

    #[test]
    fn messages_are_escaped() {
        let out = sarif(&report_with(vec![fnd("panic-unwrap", None)]));
        assert!(out.contains("a \\\"quoted\\\"\\nmessage"));
    }

    #[test]
    fn rule_index_points_into_the_registry() {
        let out = sarif(&report_with(vec![fnd("hash-iter", None)]));
        let pos = RULES.iter().position(|r| r.name == "hash-iter").unwrap();
        assert!(out.contains(&format!("\"ruleIndex\": {pos}")));
    }
}
