//! Per-file source model: token stream + comments + waivers + test
//! regions, shared by every rule.

use crate::lexer::{self, Comment, Tok};
use std::path::PathBuf;

/// A parsed `// xsi-lint: allow(<rule>, <reason>)` waiver.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// Rule the waiver names (not validated here; unknown names are
    /// reported by the `bad-waiver` meta-rule).
    pub rule: String,
    /// Mandatory free-text justification.
    pub reason: String,
    /// Line the waiver comment sits on.
    pub line: u32,
    /// First line the waiver applies to (the comment's own line, or the
    /// next line when the comment stands alone).
    pub applies_from: u32,
    /// Last line the waiver applies to.
    pub applies_to: u32,
}

/// A waiver-looking comment that failed to parse (missing reason,
/// malformed syntax). Surfaced as findings so typos cannot silently
/// disable a lint.
#[derive(Clone, Debug)]
pub struct BadWaiver {
    pub line: u32,
    pub message: String,
}

/// One lexed and pre-analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the lint root (used in reports and baselines;
    /// always `/`-separated).
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// Raw source lines (for excerpts in reports).
    pub lines: Vec<String>,
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
    pub waivers: Vec<Waiver>,
    pub bad_waivers: Vec<BadWaiver>,
    /// `test_lines[i]` is true when 1-based line `i+1` is inside a
    /// `#[cfg(test)]` module or a `#[test]` function.
    test_lines: Vec<bool>,
}

impl SourceFile {
    pub fn parse(rel_path: String, abs_path: PathBuf, src: &str) -> SourceFile {
        let (toks, comments) = lexer::lex(src);
        let lines: Vec<String> = src.lines().map(str::to_string).collect();
        let (waivers, bad_waivers) = parse_waivers(&comments);
        let test_lines = mark_test_lines(&toks, lines.len());
        SourceFile {
            rel_path,
            abs_path,
            lines,
            toks,
            comments,
            waivers,
            bad_waivers,
            test_lines,
        }
    }

    /// Is the given 1-based line inside test-only code?
    pub fn is_test_line(&self, line: u32) -> bool {
        let idx = line.saturating_sub(1) as usize;
        self.test_lines.get(idx).copied().unwrap_or(false)
    }

    /// Does a waiver for `rule` cover `line`?
    pub fn waived(&self, rule: &str, line: u32) -> bool {
        self.waiver_covering(rule, line).is_some()
    }

    /// Index (into `self.waivers`) of the first waiver for `rule`
    /// covering `line` — identity matters for dead-waiver auditing.
    pub fn waiver_covering(&self, rule: &str, line: u32) -> Option<usize> {
        self.waivers
            .iter()
            .position(|w| w.rule == rule && w.applies_from <= line && line <= w.applies_to)
    }

    /// The 1-based line's text, for report excerpts.
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(String::as_str)
            .unwrap_or("")
    }
}

/// Scan comments for `xsi-lint: allow(rule, reason)` markers.
fn parse_waivers(comments: &[Comment]) -> (Vec<Waiver>, Vec<BadWaiver>) {
    let mut waivers = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        if c.doc {
            // Doc comments describe the waiver syntax; only regular
            // comments enact it.
            continue;
        }
        let Some(at) = c.text.find("xsi-lint:") else {
            continue;
        };
        let rest = c.text[at + "xsi-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            bad.push(BadWaiver {
                line: c.line,
                message: format!(
                    "unrecognized xsi-lint directive (expected `xsi-lint: allow(<rule>, <reason>)`): `{}`",
                    c.text
                ),
            });
            continue;
        };
        let rest = rest.trim_start();
        let (Some(open), Some(close)) = (rest.find('('), rest.rfind(')')) else {
            bad.push(BadWaiver {
                line: c.line,
                message: "malformed waiver: missing parentheses".to_string(),
            });
            continue;
        };
        let inner = &rest[open + 1..close];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        if rule.is_empty() || reason.is_empty() {
            bad.push(BadWaiver {
                line: c.line,
                message: format!(
                    "waiver for `{}` needs a reason: `xsi-lint: allow({}, <why this is safe>)`",
                    if rule.is_empty() { "<rule>" } else { rule },
                    if rule.is_empty() { "<rule>" } else { rule },
                ),
            });
            continue;
        }
        // An own-line comment waives the following line (and any lines the
        // comment spans); an end-of-line comment waives its own line.
        let mut applies_to = if c.own_line {
            c.end_line + 1
        } else {
            c.end_line
        };
        // Own-line waivers chain through any own-line comments that
        // follow (further waivers, doc comments) to the first code
        // line, so waivers for different rules can stack above one
        // declaration.
        if c.own_line {
            while let Some(next) = comments.iter().find(|n| n.own_line && n.line == applies_to) {
                applies_to = next.end_line + 1;
            }
        }
        waivers.push(Waiver {
            rule: rule.to_string(),
            reason: reason.to_string(),
            line: c.line,
            applies_from: c.line,
            applies_to,
        });
    }
    (waivers, bad)
}

/// Mark lines covered by `#[cfg(test)] mod … { … }` blocks and
/// `#[test] fn … { … }` items as test-only.
fn mark_test_lines(toks: &[Tok], n_lines: usize) -> Vec<bool> {
    let mut marks = vec![false; n_lines];
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(kind) = test_attr_at(toks, i) {
            // Find the start of the following item's body and mark
            // through its matching close brace.
            let attr_end = skip_attr(toks, i);
            if let Some((open, close)) = body_span(toks, attr_end, kind) {
                let from = toks[i].line.saturating_sub(1) as usize;
                let to = toks[close].line as usize; // inclusive, 1-based
                for m in marks.iter_mut().take(to.min(n_lines)).skip(from) {
                    *m = true;
                }
                i = close + 1;
                let _ = open;
                continue;
            }
        }
        i += 1;
    }
    marks
}

#[derive(Clone, Copy, PartialEq)]
enum TestAttrKind {
    /// `#[cfg(test)]` — the next `mod`/`fn` item is test-only.
    CfgTest,
    /// `#[test]` — the next `fn` is test-only.
    Test,
}

/// If `toks[i..]` starts a test attribute, say which kind.
fn test_attr_at(toks: &[Tok], i: usize) -> Option<TestAttrKind> {
    if !toks.get(i)?.is_punct('#') || !toks.get(i + 1)?.is_punct('[') {
        return None;
    }
    let t2 = toks.get(i + 2)?;
    if t2.is_ident("test") && toks.get(i + 3)?.is_punct(']') {
        return Some(TestAttrKind::Test);
    }
    if t2.is_ident("cfg")
        && toks.get(i + 3)?.is_punct('(')
        && toks.get(i + 4)?.is_ident("test")
        && toks.get(i + 5)?.is_punct(')')
        && toks.get(i + 6)?.is_punct(']')
    {
        return Some(TestAttrKind::CfgTest);
    }
    None
}

/// Given `toks[i]` == `#` starting an attribute, return the index just
/// past the attribute's closing `]`.
fn skip_attr(toks: &[Tok], i: usize) -> usize {
    let mut j = i + 2; // past `#[`
    let mut depth = 1usize;
    while j < toks.len() && depth > 0 {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
        }
        j += 1;
    }
    j
}

/// From `start` (just past the test attribute), skip further attributes
/// and find the item body's brace span. Returns (open, close) token
/// indices of the `{`/`}` pair.
fn body_span(toks: &[Tok], mut start: usize, kind: TestAttrKind) -> Option<(usize, usize)> {
    // Skip any further attributes (e.g. `#[test] #[ignore] fn …`).
    while start < toks.len() && toks[start].is_punct('#') {
        if toks.get(start + 1).is_some_and(|t| t.is_punct('[')) {
            start = skip_attr(toks, start);
        } else {
            break;
        }
    }
    // For `#[test]` the item must be a fn; for `#[cfg(test)]` accept
    // mod/fn/impl/struct/… — anything brace-delimited. Walk to the first
    // `{` at angle-bracket-insensitive depth 0, skipping a possible
    // `mod name;` (out-of-line test module: nothing to mark here).
    let mut j = start;
    let mut paren = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if kind == TestAttrKind::CfgTest && t.is_punct(';') && paren == 0 {
            return None; // `#[cfg(test)] mod tests;` — body is elsewhere
        }
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('{') && paren == 0 {
            // Found the body; match braces.
            let mut depth = 1usize;
            let mut k = j + 1;
            while k < toks.len() && depth > 0 {
                if toks[k].is_punct('{') {
                    depth += 1;
                } else if toks[k].is_punct('}') {
                    depth -= 1;
                }
                k += 1;
            }
            return Some((j, k - 1));
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("demo.rs".into(), PathBuf::from("/demo.rs"), src)
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let f = file(
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n",
        );
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_fn_is_marked() {
        let f = file("#[test]\nfn t() {\n    boom();\n}\nfn real() {}\n");
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
    }

    #[test]
    fn out_of_line_test_mod_is_ignored() {
        let f = file("#[cfg(test)]\nmod tests;\nfn real() {}\n");
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn waiver_same_line_and_next_line() {
        let f = file(
            "let a = m.iter(); // xsi-lint: allow(hash-iter, order irrelevant)\n\
             // xsi-lint: allow(panic-unwrap, startup only)\n\
             let b = x.unwrap();\n\
             let c = y.unwrap();\n",
        );
        assert!(f.waived("hash-iter", 1));
        assert!(f.waived("panic-unwrap", 3));
        assert!(!f.waived("panic-unwrap", 4));
        assert!(!f.waived("hash-iter", 3));
    }

    #[test]
    fn stacked_waivers_chain_to_the_first_code_line() {
        // Two waivers (and a doc comment) above one declaration: every
        // own-line waiver must reach the code line below the block.
        let f = file(
            "// xsi-lint: allow(span-coverage, delegate opens the span)\n\
             // xsi-lint: allow(obs-coverage, caller times it)\n\
             /// Registers a node.\n\
             pub fn on_node_added() {}\n\
             fn next() {}\n",
        );
        assert!(f.waived("span-coverage", 4));
        assert!(f.waived("obs-coverage", 4));
        assert!(!f.waived("span-coverage", 5));
        assert!(!f.waived("obs-coverage", 5));
    }

    #[test]
    fn waiver_without_reason_is_bad() {
        let f = file("// xsi-lint: allow(hash-iter)\nlet a = 1;\n");
        assert!(f.waivers.is_empty());
        assert_eq!(f.bad_waivers.len(), 1);
        assert!(f.bad_waivers[0].message.contains("needs a reason"));
    }

    #[test]
    fn unknown_directive_is_bad() {
        let f = file("// xsi-lint: disable-everything\nlet a = 1;\n");
        assert_eq!(f.bad_waivers.len(), 1);
    }
}
