//! A hand-rolled, dependency-free Rust lexer — just enough tokenization
//! for the invariant lints in [`crate::rules`].
//!
//! Scope: the lexer understands line/block comments (nested), string
//! literals (plain, raw, byte, C), char literals vs. lifetimes,
//! identifiers (including raw `r#ident`), numbers, and single-character
//! punctuation. It does **not** build a syntax tree; the rules work on
//! the token stream plus line information. That is deliberate: the bug
//! classes we target (hash-order iteration, `unwrap()` call sites,
//! missing crate attributes) are all recognizable at token level, and a
//! token-level tool cannot be broken by the kind of macro-heavy code a
//! real parser would choke on.
//!
//! Comments are not tokens; they are collected separately so waiver
//! scanning ([`crate::source`]) can see them while rules see only code.

/// What kind of token this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `HashMap`, `unwrap`, …).
    Ident,
    /// Lifetime (`'a`, `'static`). Kept distinct so char-literal
    /// heuristics cannot confuse rules.
    Lifetime,
    /// String literal; `text` holds the *contents* (quotes stripped,
    /// escapes left undecoded — enough for prefix checks).
    Str,
    /// Char or byte literal; `text` holds the raw source.
    Char,
    /// Numeric literal.
    Num,
    /// Single punctuation character (`.`, `[`, `!`, …).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Is this token the given punctuation character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Is this token the given identifier?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// One comment (line or block) with its line span and raw text
/// (comment markers stripped for line comments, kept for block bodies).
#[derive(Clone, Debug)]
pub struct Comment {
    pub line: u32,
    pub end_line: u32,
    pub text: String,
    /// True when the comment is the only thing on its line (after
    /// whitespace) — such comments waive the *following* line too.
    pub own_line: bool,
    /// True for doc comments (`///`, `//!`, `/** */`, `/*! */`). Doc
    /// comments never carry waivers — prose describing the waiver
    /// syntax must not accidentally enact it.
    pub doc: bool,
}

/// Lex `src` into code tokens plus a parallel comment list.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    /// Byte offset where the current line started (to detect own-line
    /// comments).
    line_start: usize,
    toks: Vec<Tok>,
    comments: Vec<Comment>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
            toks: Vec::new(),
            comments: Vec::new(),
        }
    }

    fn peek(&self, off: usize) -> u8 {
        *self.bytes.get(self.pos + off).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        b
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        self.toks.push(Tok {
            kind,
            text: self.src[start..self.pos].to_string(),
            line,
        });
    }

    fn run(mut self) -> (Vec<Tok>, Vec<Comment>) {
        while self.pos < self.bytes.len() {
            let b = self.peek(0);
            let start = self.pos;
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string_lit(start, line),
                b'r' | b'b' | b'c' if self.raw_or_prefixed_string() => {}
                b'\'' => self.char_or_lifetime(start, line),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(start, line),
                b'0'..=b'9' => self.number(start, line),
                _ => {
                    // Multi-byte UTF-8 or punctuation: consume one char.
                    self.bump();
                    while self.pos < self.bytes.len() && (self.peek(0) & 0xC0) == 0x80 {
                        self.pos += 1; // continuation bytes, never '\n'
                    }
                    self.push(TokKind::Punct, start, line);
                }
            }
        }
        (self.toks, self.comments)
    }

    fn own_line_comment(&self, start: usize) -> bool {
        self.src[self.line_start..start]
            .chars()
            .all(char::is_whitespace)
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        let own_line = self.own_line_comment(start);
        while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let raw = &self.src[start..self.pos];
        let doc = raw.starts_with("///") || raw.starts_with("//!");
        let mut text = raw;
        while let Some(rest) = text.strip_prefix('/') {
            text = rest;
        }
        let text = text.strip_prefix('!').unwrap_or(text);
        self.comments.push(Comment {
            line,
            end_line: line,
            text: text.trim().to_string(),
            own_line,
            doc,
        });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        let own_line = self.own_line_comment(start);
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        let raw = &self.src[start..self.pos];
        let doc = raw.starts_with("/**") && !raw.starts_with("/***") || raw.starts_with("/*!");
        self.comments.push(Comment {
            line,
            end_line: self.line,
            text: raw
                .trim_start_matches("/*")
                .trim_end_matches("*/")
                .trim()
                .to_string(),
            own_line,
            doc,
        });
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`, raw idents
    /// `r#ident`, and `c"…"`. Returns true when it consumed something.
    fn raw_or_prefixed_string(&mut self) -> bool {
        let start = self.pos;
        let line = self.line;
        let b0 = self.peek(0);
        // b'x' byte char.
        if b0 == b'b' && self.peek(1) == b'\'' {
            self.bump();
            self.char_or_lifetime(start, line);
            return true;
        }
        // b"…" / c"…" plain string with prefix.
        if (b0 == b'b' || b0 == b'c') && self.peek(1) == b'"' {
            self.bump();
            self.string_lit(start, line);
            return true;
        }
        // r / br / cr raw strings, and raw idents r#ident.
        let mut off = 1usize;
        if b0 == b'b' || b0 == b'c' {
            if self.peek(1) != b'r' {
                return false;
            }
            off = 2;
        }
        let mut hashes = 0usize;
        while self.peek(off + hashes) == b'#' {
            hashes += 1;
        }
        if self.peek(off + hashes) == b'"' {
            // Raw string: consume prefix, hashes, then scan to `"` + hashes.
            for _ in 0..off + hashes + 1 {
                self.bump();
            }
            let content_start = self.pos;
            loop {
                if self.pos >= self.bytes.len() {
                    break;
                }
                if self.peek(0) == b'"' {
                    let mut ok = true;
                    for h in 0..hashes {
                        if self.peek(1 + h) != b'#' {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        let text = self.src[content_start..self.pos].to_string();
                        for _ in 0..1 + hashes {
                            self.bump();
                        }
                        self.toks.push(Tok {
                            kind: TokKind::Str,
                            text,
                            line,
                        });
                        return true;
                    }
                }
                self.bump();
            }
            // Unterminated raw string: emit what we have.
            self.toks.push(Tok {
                kind: TokKind::Str,
                text: self.src[content_start..self.pos].to_string(),
                line,
            });
            return true;
        }
        if b0 == b'r' && hashes == 1 && is_ident_start(self.peek(off + hashes)) {
            // Raw identifier r#ident: token text keeps the prefix off.
            self.bump(); // r
            self.bump(); // #
            let id_start = self.pos;
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            self.push(TokKind::Ident, id_start, line);
            return true;
        }
        false
    }

    fn string_lit(&mut self, start: usize, line: u32) {
        // `start` may point at a b/c prefix; skip to the quote.
        while self.peek(0) != b'"' && self.pos < self.bytes.len() {
            self.bump();
        }
        self.bump(); // opening quote
        let content_start = self.pos;
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let text = self.src[content_start..self.pos].to_string();
        self.bump(); // closing quote
        let _ = start;
        self.toks.push(Tok {
            kind: TokKind::Str,
            text,
            line,
        });
    }

    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        // self.pos is at `'` (possibly after a consumed b prefix).
        self.bump(); // '
        if self.peek(0) == b'\\' {
            // Escaped char literal.
            self.bump();
            self.bump();
            while self.pos < self.bytes.len() && self.peek(0) != b'\'' {
                self.bump();
            }
            self.bump();
            self.push(TokKind::Char, start, line);
            return;
        }
        if is_ident_start(self.peek(0)) {
            // Could be 'a (lifetime) or 'a' (char). Scan the ident.
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            if self.peek(0) == b'\'' {
                self.bump();
                self.push(TokKind::Char, start, line);
            } else {
                self.push(TokKind::Lifetime, start, line);
            }
            return;
        }
        // Non-ident char like '.' or '"'.
        self.bump();
        if self.peek(0) == b'\'' {
            self.bump();
        }
        self.push(TokKind::Char, start, line);
    }

    fn ident(&mut self, start: usize, line: u32) {
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        self.push(TokKind::Ident, start, line);
    }

    fn number(&mut self, start: usize, line: u32) {
        // Loose: digits plus alphanumerics, `_`, and `.` when followed by
        // a digit (so `0..n` and `x.1` don't swallow ranges/fields).
        while self.pos < self.bytes.len() {
            let b = self.peek(0);
            if is_ident_continue(b) || (b == b'.' && self.peek(1).is_ascii_digit()) {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, start, line);
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).0.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("for x in m.iter() {}");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            ["for", "x", "in", "m", ".", "iter", "(", ")", "{", "}"]
        );
    }

    #[test]
    fn strings_do_not_leak_code() {
        let ks = kinds(r#"let s = "m.iter() // not code";"#);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("not code")));
        // The `.iter()` inside the string must not show up as idents.
        assert_eq!(ks.iter().filter(|(_, t)| t == "iter").count(), 0);
    }

    #[test]
    fn raw_strings_and_hashes() {
        let ks = kinds(r##"let s = r#"a "quoted" b"#;"##);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == r#"a "quoted" b"#));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn comments_collected_not_tokenized() {
        let (toks, comments) =
            lex("let a = 1; // xsi-lint: allow(hash-iter, demo)\n/* block */ let b = 2;");
        assert!(toks
            .iter()
            .all(|t| t.kind != TokKind::Punct || t.text != "/"));
        assert_eq!(comments.len(), 2);
        assert!(comments[0].text.contains("xsi-lint: allow"));
        assert!(!comments[0].own_line);
        assert_eq!(comments[1].text, "block");
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = lex("/* a /* b */ c */ let x = 1;");
        assert_eq!(comments.len(), 1);
        assert!(toks.iter().any(|t| t.is_ident("let")));
    }

    #[test]
    fn line_numbers_advance() {
        let (toks, _) = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn raw_ident() {
        let ks = kinds("let r#match = 1;");
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Ident && t == "match"));
    }

    #[test]
    fn byte_strings_and_chars() {
        let ks = kinds(r#"let a = b"bytes"; let c = b'x';"#);
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Str && t == "bytes"));
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
    }
}
