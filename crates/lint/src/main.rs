//! The `xsi-lint` binary. See `xsi-lint --help`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use xsi_lint::baseline::Baseline;
use xsi_lint::{render, LintConfig};

const USAGE: &str = "\
xsi-lint — project-specific static analysis for the xsi workspace (DESIGN.md §9)

USAGE:
    xsi-lint [OPTIONS]

OPTIONS:
    --root <DIR>         workspace root (default: walk up from cwd)
    --baseline <FILE>    ratchet baseline (default: <root>/lint-baseline.json)
    --deny-all           promote warn-level findings to fatal (the CI mode)
    --update-baseline    re-freeze the ratchet baseline to current counts
    --json               machine-readable report on stdout
    --sarif <FILE>       also write the report as SARIF 2.1.0 (for code scanning)
    --verbose            also render waived/baselined findings
    --explain <RULE>     print a rule's full documentation
    --list-rules         list every rule with its severity
    -h, --help           this text

EXIT CODES:
    0  no fatal findings (or --update-baseline succeeded)
    1  fatal findings
    2  usage or I/O error";

struct Opts {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    deny_all: bool,
    update_baseline: bool,
    json: bool,
    sarif: Option<PathBuf>,
    verbose: bool,
    explain: Option<String>,
    list_rules: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        baseline: None,
        deny_all: false,
        update_baseline: false,
        json: false,
        sarif: None,
        verbose: false,
        explain: None,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => opts.root = Some(PathBuf::from(need(&mut args, "--root")?)),
            "--baseline" => opts.baseline = Some(PathBuf::from(need(&mut args, "--baseline")?)),
            "--deny-all" => opts.deny_all = true,
            "--update-baseline" => opts.update_baseline = true,
            "--json" => opts.json = true,
            "--sarif" => opts.sarif = Some(PathBuf::from(need(&mut args, "--sarif")?)),
            "--verbose" => opts.verbose = true,
            "--explain" => opts.explain = Some(need(&mut args, "--explain")?),
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn need(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("xsi-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;

    if opts.list_rules {
        print!("{}", render::list_rules());
        return Ok(ExitCode::SUCCESS);
    }
    if let Some(rule) = &opts.explain {
        return match render::explain(rule) {
            Some(text) => {
                print!("{text}");
                Ok(ExitCode::SUCCESS)
            }
            None => Err(format!("unknown rule `{rule}` (try --list-rules)")),
        };
    }

    let root = match opts.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            xsi_lint::find_root(&cwd).ok_or_else(|| {
                "no workspace root found (no ancestor with Cargo.toml + crates/); pass --root"
                    .to_string()
            })?
        }
    };
    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("lint-baseline.json"));
    let baseline = if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
        Some(Baseline::parse(&text)?)
    } else {
        None
    };

    let config = LintConfig {
        root: root.clone(),
        baseline,
        deny_all: opts.deny_all,
    };
    let report =
        xsi_lint::run(&config).map_err(|e| format!("walk failed under {}: {e}", root.display()))?;

    if opts.update_baseline {
        let frozen = Baseline::from_counts(report.ratchet_counts.clone());
        std::fs::write(&baseline_path, frozen.to_json())
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        eprintln!(
            "xsi-lint: froze {} file entr{} into {}",
            frozen.entries().len(),
            if frozen.entries().len() == 1 {
                "y"
            } else {
                "ies"
            },
            baseline_path.display()
        );
        // Still report non-ratcheted fatal findings so --update-baseline
        // cannot paper over hash-iter/obs-coverage/hygiene violations.
    }

    if opts.json {
        print!("{}", render::json(&report, opts.deny_all));
    } else {
        print!("{}", render::human(&report, opts.deny_all, opts.verbose));
    }
    if let Some(path) = &opts.sarif {
        std::fs::write(path, xsi_lint::sarif::sarif(&report))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("xsi-lint: wrote SARIF report to {}", path.display());
    }

    let fatal = if opts.update_baseline {
        // Ratcheted findings were just frozen; only non-baselineable
        // rules can still fail the run. `stale-baseline` is likewise
        // forgiven here — the write above is exactly the pruning the
        // rule demands, so failing the run that performs it would make
        // the contract unsatisfiable.
        report
            .fatal(opts.deny_all)
            .filter(|f| {
                f.rule != "stale-baseline"
                    && xsi_lint::rules::info(f.rule)
                        .map(|r| !r.baselineable)
                        .unwrap_or(true)
            })
            .count()
    } else {
        report.fatal(opts.deny_all).count()
    };
    Ok(if fatal == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
