//! `store-discipline`: raw access to the dense store's slot arenas and
//! extent storage outside the accessor layer — including via one level
//! of helper-fn indirection through the call graph.
//!
//! The motivation is a Rust privacy gap: the maintainers
//! (`akindex/maintain.rs`, `oneindex/maintain.rs`) are *child modules*
//! of the index modules that own the arenas, so the compiler lets them
//! poke private fields (`self.blocks[b].extent`) directly. The
//! compiler cannot enforce the accessor discipline there; this rule
//! does. See the registry entry in [`super::RULES`].

use crate::callgraph::CallGraph;
use crate::source::SourceFile;
use crate::symbols::SymbolTable;
use crate::Finding;

/// Where a file sits in the store-access hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tier {
    /// Owns the arenas (or is the kernel): all access allowed.
    Accessor,
    /// Maintainer modules: arena indexing for side fields is their
    /// job, but extent storage must go through accessors.
    Maintainer,
    /// Every other core file: neither raw arena indexing nor raw
    /// extent access.
    Other,
    /// Not part of the core crate: out of scope.
    OutOfScope,
}

fn tier(path: &str) -> Tier {
    const ACCESSOR_DIRS: &[&str] = &["core/src/store/"];
    const ACCESSOR_FILES: &[&str] = &[
        "core/src/kernel.rs",
        "core/src/partition.rs",
        "core/src/akindex/mod.rs",
        "core/src/akindex/storage.rs",
        "core/src/oneindex/mod.rs",
    ];
    const MAINTAINER_DIRS: &[&str] = &["core/src/akindex/", "core/src/oneindex/"];
    if ACCESSOR_DIRS.iter().any(|d| path.contains(d))
        || ACCESSOR_FILES.iter().any(|f| path.ends_with(f))
    {
        Tier::Accessor
    } else if MAINTAINER_DIRS.iter().any(|d| path.contains(d)) {
        Tier::Maintainer
    } else if path.contains("core/src/") {
        Tier::Other
    } else {
        Tier::OutOfScope
    }
}

/// One raw-access hit inside a file.
struct Hit {
    line: u32,
    /// Token index of the accessed field name, for owner-fn lookup.
    tok: usize,
    what: &'static str,
}

/// Scan a file for raw-access patterns appropriate to its tier:
/// `.extent` field access (not the `extent()` accessor call) in
/// maintainer + other tiers; `.blocks[` arena indexing in other tier.
fn raw_hits(src: &SourceFile, t: Tier) -> Vec<Hit> {
    let mut hits = Vec::new();
    let toks = &src.toks;
    for i in 0..toks.len() {
        if !toks[i].is_punct('.') {
            continue;
        }
        let Some(name) = toks.get(i + 1) else {
            continue;
        };
        let line = name.line;
        if src.is_test_line(line) {
            continue;
        }
        let next = toks.get(i + 2);
        if name.is_ident("extent") && !next.is_some_and(|n| n.is_punct('(')) {
            hits.push(Hit {
                line,
                tok: i + 1,
                what: "raw `.extent` field access (use the `extent`/`share_extent`/extent-mutating accessors)",
            });
        } else if t == Tier::Other
            && name.is_ident("blocks")
            && next.is_some_and(|n| n.is_punct('['))
        {
            hits.push(Hit {
                line,
                tok: i + 1,
                what: "raw slot-arena indexing `.blocks[…]` (route through the owning index's accessors)",
            });
        }
    }
    hits
}

pub fn run(sources: &[SourceFile], table: &SymbolTable, graph: &CallGraph, out: &mut Vec<Finding>) {
    // Pass 1: direct hits, and the set of "dirty" fns — fns in
    // non-accessor files whose bodies contain an *unwaived* raw access
    // (a waiver argues the access safe, so it does not taint callers).
    let mut dirty: Vec<bool> = vec![false; table.fns.len()];
    for (si, src) in sources.iter().enumerate() {
        let t = tier(&src.rel_path);
        if matches!(t, Tier::Accessor | Tier::OutOfScope) {
            continue;
        }
        for hit in raw_hits(src, t) {
            out.push(super::finding(
                src,
                "store-discipline",
                hit.line,
                format!("{} outside the accessor layer", hit.what),
            ));
            if src.waived("store-discipline", hit.line) {
                continue;
            }
            // Innermost fn whose body token span owns the hit (nested
            // fns share lines with their enclosing fn).
            let owner = table
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.file == si)
                .filter_map(|(fi, f)| {
                    let (open, close) = f.body?;
                    (open <= hit.tok && hit.tok <= close).then_some((fi, close - open))
                })
                .min_by_key(|&(_, width)| width);
            if let Some((fi, _)) = owner {
                dirty[fi] = true;
            }
        }
    }
    // Pass 2: one level of helper indirection — calls from
    // non-accessor files to dirty fns. A helper that raw-accesses the
    // store is not a laundering device: its call sites surface too.
    for (ci, caller) in table.fns.iter().enumerate() {
        let t = tier(&caller.path);
        if matches!(t, Tier::Accessor | Tier::OutOfScope) {
            continue;
        }
        for call in &graph.calls[ci] {
            let Some(&target) = call.targets.iter().find(|&&tg| dirty[tg] && tg != ci) else {
                continue;
            };
            let tf = &table.fns[target];
            out.push(super::finding(
                &sources[caller.file],
                "store-discipline",
                call.line,
                format!(
                    "call to `{}` ({}:{}) reaches raw store access one level down \
                     (helper indirection does not launder store discipline)",
                    tf.qual_name, tf.path, tf.line
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn lint(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(p, s)| SourceFile::parse(p.to_string(), PathBuf::from("/x.rs"), s))
            .collect();
        let table = SymbolTable::build(&sources);
        let graph = CallGraph::build(&table, &sources);
        let mut out = Vec::new();
        run(&sources, &table, &graph, &mut out);
        out
    }

    #[test]
    fn maintainer_raw_extent_access_is_flagged() {
        let hits = lint(&[(
            "crates/core/src/akindex/maintain.rs",
            "impl A { fn f(&mut self, b: Id) { self.blocks[b].extent.make_mut(&mut self.c).push(n); } }",
        )]);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains(".extent"));
    }

    #[test]
    fn maintainer_arena_indexing_of_side_fields_is_allowed() {
        let hits = lint(&[(
            "crates/core/src/akindex/maintain.rs",
            "impl A { fn f(&mut self, b: Id) { self.blocks[b].weight += 1; } }",
        )]);
        assert!(hits.is_empty());
    }

    #[test]
    fn other_core_files_may_not_index_the_arena_at_all() {
        let hits = lint(&[(
            "crates/core/src/view.rs",
            "fn peek(idx: &A, b: Id) -> u32 { idx.blocks[b].weight }",
        )]);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains(".blocks["));
    }

    #[test]
    fn accessor_files_are_exempt() {
        let hits = lint(&[(
            "crates/core/src/akindex/mod.rs",
            "impl A { pub fn extent(&self, b: Id) -> &[N] { &self.blocks[b].extent } }",
        )]);
        assert!(hits.is_empty());
    }

    #[test]
    fn accessor_method_calls_are_not_field_access() {
        let hits = lint(&[(
            "crates/core/src/view.rs",
            "fn f(idx: &A, b: Id) { idx.extent(b); idx.share_extent(b); }",
        )]);
        assert!(hits.is_empty());
    }

    #[test]
    fn helper_indirection_flags_the_call_site() {
        let hits = lint(&[(
            "crates/core/src/akindex/maintain.rs",
            "impl A { fn public_path(&mut self, b: Id) { self.poke(b); } \
             fn poke(&mut self, b: Id) { self.blocks[b].extent.make_mut(&mut self.c).clear(); } }",
        )]);
        // Direct hit inside `poke` + the call-site hit in `public_path`.
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().any(|h| h.message.contains("one level down")));
    }

    #[test]
    fn waived_helper_does_not_taint_callers() {
        let hits = lint(&[(
            "crates/core/src/akindex/maintain.rs",
            "impl A { fn public_path(&mut self, b: Id) { self.poke(b); } \
             fn poke(&mut self, b: Id) { \
             self.blocks[b].extent.make_mut(&mut self.c).clear(); // xsi-lint: allow(store-discipline, single callee audited)\n\
             } }",
        )]);
        // The direct finding still exists (lib.rs suppresses it via the
        // waiver); no call-site finding is generated.
        assert_eq!(hits.len(), 1);
        assert!(!hits[0].message.contains("one level down"));
    }

    #[test]
    fn non_core_crates_are_out_of_scope() {
        let hits = lint(&[(
            "crates/bench/src/main.rs",
            "fn f(a: &A, b: Id) { a.blocks[b].extent.len(); }",
        )]);
        assert!(hits.is_empty());
    }
}
