//! `obs-coverage`: public mutation entry points in the engine and the
//! two maintainers must feed the observability layer (DESIGN.md §8).
//! Snapshot freezes are entry points too: any `pub fn freeze*` in a
//! target file is checked *regardless of receiver* — a `&self` freeze
//! that skips the hub would silently lose the `snapshot_*` series. So
//! are report publishers (`pub fn publish_*`): their entire contract
//! is feeding the hub, so one that never touches it is a silent no-op
//! the caller cannot distinguish from working telemetry.
//! See the registry entry in [`super::RULES`].

use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;
use crate::Finding;

/// Files the rule applies to (suffix match on the workspace-relative
/// path, so fixture mini-workspaces exercise the rule too).
const TARGET_SUFFIXES: &[&str] = &[
    "core/src/engine.rs",
    "core/src/oneindex/maintain.rs",
    "core/src/akindex/maintain.rs",
];

/// Identifiers that count as "touches the observability layer": the obs
/// hub itself, its emit/observe entry points, or the `UpdateStats`
/// phase counters the hub exports (maintainers report through those).
const OBS_TOKENS: &[&str] = &[
    "obs",
    "ObsHub",
    "emit",
    "observe_op",
    "observe_edge",
    "observe_index_dispatch",
    "Recorder",
    "UpdateStats",
    "stats",
    "split_nanos",
    "merge_nanos",
    "queue_peak",
    "levels_touched",
];

pub fn run(f: &SourceFile, out: &mut Vec<Finding>) {
    if !TARGET_SUFFIXES.iter().any(|s| f.rel_path.ends_with(s)) {
        return;
    }
    let toks = &f.toks;
    let mut i = 0usize;
    while i < toks.len() {
        // `pub fn name` — but not `pub(crate) fn`: pub(crate) helpers are
        // internal plumbing, not entry points.
        if toks[i].is_ident("pub")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("fn"))
            && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
        {
            let name = toks[i + 2].text.clone();
            let line = toks[i + 2].line;
            if !f.is_test_line(line) {
                if let Some((body_open, body_close)) = fn_body_span(toks, i + 2) {
                    let sig = &toks[i + 3..body_open];
                    // Freeze entry points count whatever their receiver:
                    // a read-only `freeze` still owes a SnapshotFreeze
                    // emission or the snapshot_* series silently vanish.
                    // Publishers likewise: `publish_*` exists only to
                    // feed the hub, so an uninstrumented one is a
                    // silent no-op, the worst kind of telemetry hole.
                    let is_freeze = name.starts_with("freeze");
                    let is_publisher = name.starts_with("publish");
                    if takes_mut_self(sig) || is_freeze || is_publisher {
                        let covered = toks[i + 3..=body_close].iter().any(|t| {
                            t.kind == TokKind::Ident && OBS_TOKENS.contains(&t.text.as_str())
                        });
                        if !covered {
                            let what = if is_freeze {
                                format!("snapshot entry point `pub fn {name}(…)`")
                            } else if is_publisher {
                                format!("report publisher `pub fn {name}(…)`")
                            } else {
                                format!("mutation entry point `pub fn {name}(&mut self, …)`")
                            };
                            out.push(super::finding(
                                f,
                                "obs-coverage",
                                line,
                                format!(
                                    "{what} never touches the \
                                     observability layer (no obs hub call, no UpdateStats phase counters); \
                                     instrument it or waive naming the instrumented delegate"
                                ),
                            ));
                        }
                        i = body_close + 1;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
}

/// From the token index of a fn's name, find its body `{`/`}` token
/// span. Returns `None` for body-less fns (trait decls).
pub(crate) fn fn_body_span(toks: &[Tok], name_idx: usize) -> Option<(usize, usize)> {
    let mut j = name_idx + 1;
    let mut paren = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if paren == 0 && t.is_punct(';') {
            return None;
        } else if paren == 0 && t.is_punct('{') {
            let mut depth = 1usize;
            let mut k = j + 1;
            while k < toks.len() && depth > 0 {
                if toks[k].is_punct('{') {
                    depth += 1;
                } else if toks[k].is_punct('}') {
                    depth -= 1;
                }
                k += 1;
            }
            return Some((j, k - 1));
        }
        j += 1;
    }
    None
}

/// Does the signature contain `&mut self` (possibly `&'a mut self`)?
pub(crate) fn takes_mut_self(sig: &[Tok]) -> bool {
    for w in 0..sig.len() {
        if sig[w].is_punct('&') {
            let mut k = w + 1;
            if sig.get(k).is_some_and(|t| t.kind == TokKind::Lifetime) {
                k += 1;
            }
            if sig.get(k).is_some_and(|t| t.is_ident("mut"))
                && sig.get(k + 1).is_some_and(|t| t.is_ident("self"))
            {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn lint(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(
            "crates/core/src/engine.rs".into(),
            PathBuf::from("/x/crates/core/src/engine.rs"),
            src,
        );
        let mut out = Vec::new();
        run(&f, &mut out);
        out
    }

    #[test]
    fn uninstrumented_mut_self_pub_fn_flagged() {
        let src = "impl E { pub fn mutate(&mut self, n: u32) { self.g.poke(n); } }";
        let hits = lint(src);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("mutate"));
    }

    #[test]
    fn stats_reference_counts_as_coverage() {
        let src = "impl E { pub fn mutate(&mut self) -> UpdateStats { self.go() } }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn obs_emit_counts_as_coverage() {
        let src = "impl E { pub fn mutate(&mut self) { self.obs.emit(x()); self.g.poke(); } }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn uninstrumented_freeze_flagged_even_on_shared_receiver() {
        let src = "impl E { pub fn freeze(&self) -> Vec<Snap> { self.entries.iter().map(snap).collect() } }";
        let hits = lint(src);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("snapshot entry point"));
        assert!(hits[0].message.contains("freeze"));
    }

    #[test]
    fn uninstrumented_publisher_flagged_even_on_shared_receiver() {
        let src = "impl E { pub fn publish_reports(&self) -> usize { self.entries.len() } }";
        let hits = lint(src);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("report publisher"));
        assert!(hits[0].message.contains("publish_reports"));
    }

    #[test]
    fn instrumented_publisher_is_clean() {
        let src = "impl E { pub fn publish_reports(&mut self) { self.obs.emit(ev()); } }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn instrumented_freeze_is_clean() {
        let src = "impl E { pub fn freeze(&mut self) -> Vec<Snap> { let s = snap(); self.obs.emit(ev(&s)); s } }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn shared_ref_and_private_fns_ignored() {
        let src = "impl E { pub fn size(&self) -> usize { self.n } fn helper(&mut self) { poke(); } pub(crate) fn h2(&mut self) { poke(); } }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn non_target_files_ignored() {
        let f = SourceFile::parse(
            "crates/graph/src/graph.rs".into(),
            PathBuf::from("/x/crates/graph/src/graph.rs"),
            "impl G { pub fn mutate(&mut self) { poke(); } }",
        );
        let mut out = Vec::new();
        run(&f, &mut out);
        assert!(out.is_empty());
    }
}
