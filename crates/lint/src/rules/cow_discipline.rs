//! `cow-discipline`: mutation of shareable extent storage must route
//! through the copy-on-write gate (`make_mut` / `share` /
//! `take_unique`), the invariant behind frozen-view correctness
//! (DESIGN.md §11). A raw assignment or `&mut` borrow of a `.extent`
//! field bypasses the clone-on-shared check and can mutate a run a
//! frozen snapshot is still reading.
//!
//! The rule leans on a structural property of `CowVec`: it implements
//! `Deref<Target = [T]>` but **not** `DerefMut`, so in-place mutation
//! *methods* cannot compile outside `make_mut`. What remains
//! expressible — and what this rule flags — is whole-handle
//! replacement (`….extent = …`) and raw `&mut` borrows
//! (`mem::take(&mut ….extent)`, `&mut blk.extent` escaping to a
//! helper). See the registry entry in [`super::RULES`].

use crate::callgraph::CallGraph;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::symbols::SymbolTable;
use crate::Finding;

/// In scope: the core crate, minus the store layer itself (the CowVec
/// impl and its siblings are the gate, not its users).
fn in_scope(path: &str) -> bool {
    path.contains("core/src/") && !path.contains("core/src/store/")
}

pub fn run(
    sources: &[SourceFile],
    _table: &SymbolTable,
    _graph: &CallGraph,
    out: &mut Vec<Finding>,
) {
    for src in sources {
        if !in_scope(&src.rel_path) {
            continue;
        }
        let toks = &src.toks;
        for i in 0..toks.len() {
            if !toks[i].is_punct('.') {
                continue;
            }
            let Some(name) = toks.get(i + 1) else {
                continue;
            };
            if !name.is_ident("extent") {
                continue;
            }
            // `.extent(` is the accessor method, not the field.
            if toks.get(i + 2).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            if src.is_test_line(name.line) {
                continue;
            }
            // Replacement: `….extent = …` (but not `==` comparison).
            if toks.get(i + 2).is_some_and(|n| n.is_punct('='))
                && !toks.get(i + 3).is_some_and(|n| n.is_punct('='))
            {
                out.push(super::finding(
                    src,
                    "cow-discipline",
                    name.line,
                    "extent storage replaced by assignment, bypassing the CoW gate \
                     (route the write through `make_mut`, or waive with the ownership argument)"
                        .to_string(),
                ));
                continue;
            }
            // Raw `&mut` borrow: walk back over the receiver expression
            // (`self.blocks[src]`, `blk`, …) to a possible `&mut`.
            let mut j = i; // at the `.` before `extent`
            while j > 0 {
                let p = &toks[j - 1];
                let receiverish = match p.kind {
                    // `mut` is the marker we are walking back *to*,
                    // never part of the receiver expression.
                    TokKind::Ident => !p.is_ident("mut"),
                    TokKind::Num => true,
                    TokKind::Punct => {
                        p.is_punct('.') || p.is_punct('[') || p.is_punct(']') || p.is_punct(')')
                    }
                    _ => false,
                };
                if receiverish {
                    j -= 1;
                } else {
                    break;
                }
            }
            if j >= 2 && toks[j - 1].is_ident("mut") && toks[j - 2].is_punct('&') {
                out.push(super::finding(
                    src,
                    "cow-discipline",
                    name.line,
                    "raw `&mut` borrow of extent storage bypasses the CoW gate \
                     (use `make_mut`, which clones shared runs first, or waive with the \
                     ownership argument)"
                        .to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(path.into(), PathBuf::from("/x.rs"), src);
        let sources = vec![f];
        let table = SymbolTable::build(&sources);
        let graph = CallGraph::build(&table, &sources);
        let mut out = Vec::new();
        run(&sources, &table, &graph, &mut out);
        out
    }

    #[test]
    fn assignment_is_flagged() {
        let hits = lint(
            "crates/core/src/partition.rs",
            "impl P { fn recycle(&mut self, src: Id) { self.blocks[src].extent = recycled.into(); } }",
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("assignment"));
    }

    #[test]
    fn mem_take_mut_borrow_is_flagged() {
        let hits = lint(
            "crates/core/src/partition.rs",
            "impl P { fn drain(&mut self, src: Id) { let e = std::mem::take(&mut self.blocks[src].extent); } }",
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("&mut"));
    }

    #[test]
    fn make_mut_route_is_clean() {
        let hits = lint(
            "crates/core/src/partition.rs",
            "impl P { fn push(&mut self, b: Id, n: N) { self.blocks[b].extent.make_mut(&mut self.c).push(n); } }",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn reads_and_comparisons_are_clean() {
        let hits = lint(
            "crates/core/src/partition.rs",
            "impl P { fn check(&self, b: Id) -> bool { self.blocks[b].extent.len() == 0 && self.a.extent == self.b.extent } }",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn accessor_method_calls_are_not_the_field() {
        let hits = lint(
            "crates/core/src/view.rs",
            "fn f(idx: &A, b: Id) { let _ = idx.extent(b); }",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn store_layer_itself_is_exempt() {
        let hits = lint(
            "crates/core/src/store/cow.rs",
            "impl<T> C<T> { fn steal(&mut self) { let x = std::mem::take(&mut self.inner.extent); } }",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn shared_borrow_is_clean() {
        let hits = lint(
            "crates/core/src/view.rs",
            "fn f(blk: &B) -> usize { let e = &blk.extent; e.len() }",
        );
        // A `&` (shared) borrow reads; only `&mut` bypasses the gate.
        // The raw field access itself is store-discipline's concern.
        assert!(hits.is_empty());
    }
}
